//! Shared helpers for the cross-crate integration tests.
//!
//! The integration tests deliberately assemble scenarios from the low-level
//! crates (`ispn-net`, `ispn-sched`, `ispn-traffic`, …) rather than through
//! `ispn-experiments`, so they exercise the public API the way a downstream
//! user would.

pub mod dist_fixtures;

use ispn_core::{FlowId, FlowSpec, ServiceClass};
use ispn_net::{FlowConfig, LinkId, Network, Topology};
use ispn_sim::SimTime;
use ispn_traffic::{OnOffConfig, OnOffSource};

/// The paper's link rate.
pub const LINK_RATE: f64 = 1_000_000.0;
/// The paper's packet size.
pub const PACKET_BITS: u64 = 1000;
/// The paper's switch buffer.
pub const BUFFER: usize = 200;

/// Build a chain of `switches` switches with paper-parameter links.
pub fn chain(switches: usize) -> (Topology, Vec<LinkId>) {
    let (topo, _nodes, links) = Topology::chain(switches, LINK_RATE, SimTime::ZERO, BUFFER);
    (topo, links)
}

/// Add a best-effort flow carried in the single predicted class, fed by the
/// paper's on/off source (A = 85 pkt/s, `(A, 50)` source policer).
pub fn add_paper_flow(net: &mut Network, route: Vec<LinkId>, seed: u64) -> FlowId {
    let flow = net.add_flow(FlowConfig {
        route,
        spec: FlowSpec::Datagram,
        class: ServiceClass::Predicted { priority: 0 },
        edge_policer: None,
        sink: None,
    });
    net.add_agent(Box::new(OnOffSource::new(
        flow,
        OnOffConfig::paper(85.0, seed),
    )));
    flow
}

/// Convert a delay in seconds into packet transmission times (1 ms).
pub fn packet_times(delay_secs: f64) -> f64 {
    delay_secs * 1000.0
}
