//! The worker binary behind the distributed-sweep integration tests:
//! serves the sweep suite named by its first argument over stdin/stdout
//! (see `ispn_integration_tests::dist_fixtures`).  The tests locate this
//! binary through `CARGO_BIN_EXE_dist_worker` and point a `DistRunner`'s
//! `WorkerCommand` at it.

fn main() {
    let suite = std::env::args().nth(1).expect("usage: dist_worker <suite>");
    ispn_integration_tests::dist_fixtures::serve_suite(&suite).expect("sweep worker I/O");
}
