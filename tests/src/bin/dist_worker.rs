//! The worker binary behind the distributed-sweep integration tests:
//! serves the sweep suite named by its first argument over stdin/stdout,
//! or — with `--serve ADDR` — over a TCP listener bound to `ADDR` (see
//! `ispn_integration_tests::dist_fixtures`).  The tests locate this
//! binary through `CARGO_BIN_EXE_dist_worker` and point a `DistRunner`'s
//! `WorkerCommand` (stdio) or `HostSpec` list (TCP) at it.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let suite = args
        .get(1)
        .expect("usage: dist_worker <suite> [--serve ADDR]");
    match args.iter().position(|a| a == "--serve") {
        Some(i) => {
            let addr = args
                .get(i + 1)
                .expect("usage: dist_worker <suite> --serve ADDR");
            ispn_integration_tests::dist_fixtures::serve_suite_listener(suite, addr)
                .expect("sweep listener I/O");
        }
        None => {
            ispn_integration_tests::dist_fixtures::serve_suite(suite).expect("sweep worker I/O");
        }
    }
}
