//! Shared fixtures for the distributed-sweep test harness.
//!
//! A distributed sweep needs the parent and its workers to build the
//! **same** `ScenarioSet` from the same configuration.  In the integration
//! tests the worker is the `dist_worker` bin of this package (located via
//! `CARGO_BIN_EXE_dist_worker` at test compile time), and this module is
//! the single source of truth both sides share: each *suite* names one
//! sweep — the six experiment sweeps at short horizons, a generic
//! `ScenarioReport` sweep, and the instant `square` sweep the
//! fault-injection tests use (its points cost microseconds, so a test can
//! kill, wedge and garbage workers without waiting on simulations).

use ispn_experiments::{churn, hetmix, mesh, table1, table2, table3, PaperConfig};
use ispn_scenario::{
    DisciplineSpec, FlowDef, HistogramSpec, MeasurementPlan, ScenarioBuilder, ScenarioReport,
    ScenarioSet, SourceSpec,
};
use ispn_sim::SimTime;

/// A paper configuration shortened to `secs` simulated seconds.
pub fn short(secs: u64) -> PaperConfig {
    PaperConfig {
        duration: SimTime::from_secs(secs),
        ..PaperConfig::paper()
    }
}

/// Table-1 suite configuration.
pub fn table1_cfg() -> PaperConfig {
    short(5)
}

/// Table-2 suite configuration.
pub fn table2_cfg() -> PaperConfig {
    short(5)
}

/// Table-3 seed-replication suite configuration.
pub fn table3_cfg() -> PaperConfig {
    short(5)
}

/// The Table-3 suite's seed axis.
pub fn table3_seeds(cfg: &PaperConfig) -> Vec<u64> {
    vec![cfg.seed, cfg.seed.wrapping_add(1)]
}

/// Heterogeneous-mix suite configuration.
pub fn hetmix_cfg() -> PaperConfig {
    short(4)
}

/// Heterogeneous-mix suite load levels (4 disciplines × 1 level = 4 points).
pub const HETMIX_LEVELS: &[usize] = &[1];

/// Mesh suite configuration.
pub fn mesh_cfg() -> PaperConfig {
    short(4)
}

/// Mesh suite cross-traffic levels.
pub const MESH_LEVELS: &[usize] = &[1, 2];

/// Churn suite configuration (long enough for accepts *and* rejects, so
/// the decision sequence is worth comparing).
pub fn churn_cfg() -> PaperConfig {
    PaperConfig {
        duration: SimTime::from_secs(20),
        ..PaperConfig::fast()
    }
}

/// Churn suite arrival rates.
pub const CHURN_RATES: &[f64] = &[0.6, 1.2];

/// Churn suite mean holding time, seconds.
pub const CHURN_HOLD: f64 = 15.0;

/// Points in the default `square` suite.
pub const SQUARE_POINTS: usize = 8;

/// The `square` sweep: `n` instant points tagged by index.
pub fn square_set(n: usize) -> ScenarioSet<(usize,)> {
    ScenarioSet::over("i", (0..n).collect::<Vec<_>>())
}

/// The `square` point closure.
pub fn square_point(&(i,): &(usize,)) -> u64 {
    (i * i) as u64
}

/// The generic `scenario` sweep: three load levels of a small two-switch
/// mix, reported as full `ScenarioReport`s (per-class distributions and a
/// histogram included), so the whole report schema crosses the wire.
pub fn scenario_set() -> ScenarioSet<(usize,)> {
    ScenarioSet::over("level", vec![1usize, 2, 3])
}

/// The `scenario` point closure.
pub fn scenario_point(&(level,): &(usize,)) -> ScenarioReport {
    let mut builder = ScenarioBuilder::chain(2).discipline(DisciplineSpec::Wfq);
    for i in 0..level {
        builder = builder
            .flow(FlowDef::guaranteed(0, 1, 120_000.0).source(SourceSpec::cbr(85.0, 1000)))
            .flow(
                FlowDef::best_effort_realtime(0, 1)
                    .source(SourceSpec::onoff_paper(85.0, 40 + i as u64)),
            )
            .flow(FlowDef::datagram(0, 1).source(SourceSpec::poisson(85.0, 1000, 80 + i as u64)));
    }
    let mut sim = builder.build().expect("valid scenario suite point");
    sim.run_until(SimTime::from_secs(3));
    sim.report(&MeasurementPlan::default().with_histogram(HistogramSpec::up_to(0.2, 16)))
}

/// Serve one named suite over stdin/stdout (the `dist_worker` bin's whole
/// job).  Parent tests must build their sets from the **same** fixtures.
pub fn serve_suite(suite: &str) -> std::io::Result<()> {
    match suite {
        "table1" => table1::serve_worker(&table1_cfg()),
        "table2" => table2::serve_worker(&table2_cfg()),
        "table3" => {
            let cfg = table3_cfg();
            let seeds = table3_seeds(&cfg);
            table3::serve_worker(&cfg, &seeds)
        }
        "hetmix" => hetmix::serve_worker(&hetmix_cfg(), HETMIX_LEVELS),
        "mesh" => mesh::serve_worker(&mesh_cfg(), MESH_LEVELS),
        "churn" => churn::serve_worker(&churn_cfg(), CHURN_RATES, CHURN_HOLD),
        "square" => ispn_scenario::serve_worker(&square_set(SQUARE_POINTS), square_point),
        // A deliberately mismatched sweep (5 points where the parent
        // expects 8) for the configuration-skew test.
        "square5" => ispn_scenario::serve_worker(&square_set(5), square_point),
        // A revision-2 worker, for the batch-negotiation fallback test.
        "square-rev2" => serve_square_rev2(),
        // A worker wedged before its hello, for the handshake-deadline
        // test: the parent must cut this slot loose on its own clock.
        "hang-hello" => loop {
            std::thread::sleep(std::time::Duration::from_millis(50));
        },
        "scenario" => ispn_scenario::serve_worker(&scenario_set(), scenario_point),
        other => panic!("unknown dist suite {other:?}"),
    }
}

/// Serve one named suite over a TCP listener bound to `addr` (the
/// `dist_worker` bin's `--serve` mode).  Only returns on bind failure.
pub fn serve_suite_listener(suite: &str, addr: &str) -> std::io::Result<()> {
    match suite {
        "table1" => table1::serve_listener(&table1_cfg(), addr),
        "table2" => table2::serve_listener(&table2_cfg(), addr),
        "table3" => {
            let cfg = table3_cfg();
            let seeds = table3_seeds(&cfg);
            table3::serve_listener(&cfg, &seeds, addr)
        }
        "hetmix" => hetmix::serve_listener(&hetmix_cfg(), HETMIX_LEVELS, addr),
        "mesh" => mesh::serve_listener(&mesh_cfg(), MESH_LEVELS, addr),
        "churn" => churn::serve_listener(&churn_cfg(), CHURN_RATES, CHURN_HOLD, addr),
        "square" => ispn_scenario::serve_listener(addr, &square_set(SQUARE_POINTS), square_point),
        "square5" => ispn_scenario::serve_listener(addr, &square_set(5), square_point),
        "scenario" => ispn_scenario::serve_listener(addr, &scenario_set(), scenario_point),
        other => panic!("unknown dist listener suite {other:?}"),
    }
}

/// A hand-rolled **revision 2** stdio worker over the `square` sweep: says
/// hello with `"protocol":2` and understands only single-point request
/// lines — a batch line is a hard error, exactly what a real pre-batching
/// worker binary would do.  The batch-negotiation test points a batching
/// parent at this worker and expects byte-identical output (the parent
/// must fall back to one-request-per-line for rev-2 sessions).
pub fn serve_square_rev2() -> std::io::Result<()> {
    use ispn_scenario::sweep::wire;
    use ispn_scenario::WireResult;
    use std::io::{BufRead, Write};

    let set = square_set(SQUARE_POINTS);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    writeln!(
        stdout,
        "{{\"hello\":{{\"protocol\":2,\"points\":{}}}}}",
        set.len()
    )?;
    stdout.flush()?;
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = wire::parse_request(&line)
            .expect("a revision-2 worker understands only single-point requests");
        let index = request.index;
        // ispn-lint: allow(wall-clock) -- fixture worker's telemetry frame
        // mirrors the real worker's out-of-band wall clock.
        #[allow(clippy::disallowed_methods)]
        let started = std::time::Instant::now();
        let result = square_point(&set.points()[index].params);
        writeln!(
            stdout,
            "{}",
            wire::encode_telemetry_frame(index, started.elapsed().as_secs_f64())
        )?;
        writeln!(
            stdout,
            "{}",
            wire::encode_report_frame(index, &result.to_wire_json())
        )?;
        stdout.flush()?;
    }
    Ok(())
}
