//! Distributed-sweep acceptance harness: byte identity and fault
//! injection for `ispn-scenario::sweep::dist`.
//!
//! The contract under test has two halves:
//!
//! * **Byte identity** — a sweep fanned across worker subprocesses must
//!   produce results byte-identical to `SweepRunner::run` in this
//!   process: same point order, same tags, same wire JSON for every
//!   result, same rendered tables — for all six experiments, for worker
//!   counts 1..=4, including the churn accept/reject decision sequence.
//! * **Supervision** — a worker that panics, exits, emits garbage or
//!   hangs poisons exactly its in-flight point (a structured `SweepError`
//!   naming the point's tags) while every sibling point completes on the
//!   surviving workers; only the checked (`try_run`-style) paths report
//!   the failure, and each point's final outcome is observed exactly once.
//!
//! Both halves are exercised over **both transports**: stdio subprocess
//! workers (`--sweep-worker`) and loopback-TCP listeners (`--serve`,
//! driven through `DistRunner::over_hosts`).  The TCP tests share the
//! `tcp_` name prefix so CI can select them as a group; the socket fault
//! tests add the socket-only failure modes (mid-point disconnect,
//! pre-hello hang, stream garbage), each poisoning exactly one point
//! while its siblings survive on a reconnected session.  Batched
//! dispatch (protocol revision 3) is proven byte-identical too, including
//! the fallback to one-request-per-line when the worker only speaks
//! revision 2.
//!
//! The workers are the `dist_worker` bin of this package; the suites it
//! serves are pinned in `ispn_integration_tests::dist_fixtures`, which
//! the parent side of every test reuses so both processes build the same
//! `ScenarioSet`.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use ispn_experiments::{churn, hetmix, mesh, report, table1, table2, table3};
use ispn_integration_tests::dist_fixtures as fx;
use ispn_scenario::{
    failed_points, sweep_to_json, sweep_to_json_checked, DistRunner, FaultPlan, HostSpec,
    NullObserver, PointResult, ProgressObserver, SweepExec, SweepReport, SweepRunner,
    TelemetryCollector, WireResult, WorkerCommand, LISTENING_BANNER,
};

/// The worker command serving one fixture suite.
fn worker(suite: &str) -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_dist_worker")).arg(suite)
}

/// A live `dist_worker --serve` listener on an ephemeral loopback port,
/// killed on drop.  The bound address is learned from the discovery
/// banner the listener prints on startup.
struct Listener {
    child: Child,
    addr: String,
}

impl Listener {
    fn spawn(suite: &str) -> Listener {
        Listener::spawn_inner(suite, None)
    }

    /// A listener whose sessions run under an injected fault plan.
    fn spawn_with_fault(suite: &str, fault: FaultPlan) -> Listener {
        Listener::spawn_inner(suite, Some(fault.env_value()))
    }

    fn spawn_inner(suite: &str, fault: Option<String>) -> Listener {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_dist_worker"));
        cmd.arg(suite)
            .arg("--serve")
            .arg("127.0.0.1:0")
            .stdout(Stdio::piped());
        if let Some(value) = fault {
            cmd.env(FaultPlan::ENV, value);
        }
        let mut child = cmd.spawn().expect("spawn sweep listener");
        let stdout = child.stdout.take().expect("listener stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read listener banner");
        let addr = banner
            .trim()
            .strip_prefix(LISTENING_BANNER)
            .unwrap_or_else(|| panic!("unexpected listener banner: {banner:?}"))
            .to_string();
        Listener { child, addr }
    }

    /// This listener as a one-host `--hosts` list contributing `limit`
    /// concurrent connections.
    fn hosts(&self, limit: usize) -> Vec<HostSpec> {
        vec![HostSpec::new(self.addr.clone(), limit)]
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// A distributed runner over one fixture suite.
fn dist(suite: &str, workers: usize) -> DistRunner {
    DistRunner::new(workers, worker(suite))
}

/// A distributed `SweepExec` over one fixture suite.
fn dist_exec(suite: &str, workers: usize) -> SweepExec {
    SweepExec::Distributed(dist(suite, workers))
}

/// Byte identity of two checked report lists: same order, same tags, and
/// the same wire encoding for every result.
fn assert_identical<R: WireResult>(
    serial: &[SweepReport<PointResult<R>>],
    dist: &[SweepReport<PointResult<R>>],
) {
    assert_eq!(serial.len(), dist.len(), "same point count");
    for (s, d) in serial.iter().zip(dist) {
        assert_eq!(s.index, d.index, "point order must match");
        assert_eq!(s.tags, d.tags, "axis tags must match");
        let idx = s.index;
        let s = s.result.as_ref().expect("serial point succeeded");
        let d = d.result.as_ref().expect("distributed point succeeded");
        assert_eq!(
            s.to_wire_json(),
            d.to_wire_json(),
            "point {idx} diverged across the process boundary"
        );
    }
}

#[test]
fn table1_distributed_is_byte_identical_to_in_process() {
    let cfg = fx::table1_cfg();
    let serial = table1::run_reports(&cfg, &SweepRunner::serial(), &NullObserver);
    let dist = table1::exec_reports(&cfg, &dist_exec("table1", 2), &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(report::render_table1(&serial), report::render_table1(&dist));
}

#[test]
fn table2_distributed_is_byte_identical_to_in_process() {
    let cfg = fx::table2_cfg();
    let serial = table2::run_reports(&cfg, &SweepRunner::serial(), &NullObserver);
    let dist = table2::exec_reports(&cfg, &dist_exec("table2", 3), &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(report::render_table2(&serial), report::render_table2(&dist));
}

#[test]
fn table3_seed_replication_distributed_is_byte_identical() {
    let cfg = fx::table3_cfg();
    let seeds = fx::table3_seeds(&cfg);
    let serial = table3::run_seeds_reports(&cfg, &seeds, &SweepRunner::serial(), &NullObserver);
    let dist = table3::run_seeds_exec(&cfg, &seeds, &dist_exec("table3", 2), &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(
        report::render_table3_seeds(&serial),
        report::render_table3_seeds(&dist)
    );
}

#[test]
fn hetmix_distributed_is_byte_identical_to_in_process() {
    let cfg = fx::hetmix_cfg();
    let serial = hetmix::sweep_reports(
        &cfg,
        fx::HETMIX_LEVELS,
        &SweepRunner::serial(),
        &NullObserver,
    );
    let dist = hetmix::sweep_exec(
        &cfg,
        fx::HETMIX_LEVELS,
        &dist_exec("hetmix", 4),
        &NullObserver,
    );
    assert_identical(&serial, &dist);
    assert_eq!(report::render_hetmix(&serial), report::render_hetmix(&dist));
}

#[test]
fn mesh_distributed_is_byte_identical_to_in_process() {
    let cfg = fx::mesh_cfg();
    let serial = mesh::sweep_reports(&cfg, fx::MESH_LEVELS, &SweepRunner::serial(), &NullObserver);
    let dist = mesh::sweep_exec(&cfg, fx::MESH_LEVELS, &dist_exec("mesh", 2), &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(report::render_mesh(&serial), report::render_mesh(&dist));
}

#[test]
fn churn_distributed_reproduces_the_decision_sequence() {
    let cfg = fx::churn_cfg();
    let serial = churn::sweep_reports(
        &cfg,
        fx::CHURN_RATES,
        fx::CHURN_HOLD,
        &SweepRunner::serial(),
        &NullObserver,
    );
    let dist = churn::sweep_exec(
        &cfg,
        fx::CHURN_RATES,
        fx::CHURN_HOLD,
        &dist_exec("churn", 2),
        &NullObserver,
    );
    assert_identical(&serial, &dist);
    // The decision sequence — the churn experiment's determinism surface —
    // survives the process boundary decision for decision.
    for (s, d) in serial.iter().zip(&dist) {
        let s = s.result.as_ref().unwrap();
        let d = d.result.as_ref().unwrap();
        assert_eq!(s.decisions, d.decisions);
        assert!(s.offered > 0, "a silent empty run would prove nothing");
    }
}

/// The generic `ScenarioReport` sweep is byte-identical to the serial
/// runner's JSON for every worker count 1..=4 — the full report schema
/// (flows, links, classes, quantiles, histograms, disciplines, signaling)
/// crosses the pipe losslessly.
#[test]
fn scenario_json_is_byte_identical_for_one_through_four_workers() {
    let set = fx::scenario_set();
    let serial = SweepRunner::serial().run(&set, fx::scenario_point);
    let serial_json = sweep_to_json(&serial);
    for workers in 1..=4 {
        let reports = dist("scenario", workers).try_run(&set);
        assert_eq!(
            sweep_to_json_checked(&reports),
            serial_json,
            "{workers} workers diverged from serial"
        );
    }
}

/// A worker panic inside the point's closure is the graceful path: the
/// worker survives, the point carries a structured error naming its tags,
/// and every sibling completes.
#[test]
fn panicking_point_is_isolated_and_named() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::panic_at(3).env_value()),
    );
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[3].result.as_ref().unwrap_err();
    assert_eq!(err.index, 3);
    assert_eq!(err.tags, vec![("i".to_string(), "3".to_string())]);
    assert!(err.payload.contains("injected fault"), "{err}");
    for (i, r) in reports.iter().enumerate() {
        if i != 3 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

/// A worker killed mid-point (abrupt exit) poisons exactly that point;
/// its remaining points are redistributed and complete.
#[test]
fn killed_worker_poisons_only_its_in_flight_point() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::exit_at(2).env_value()),
    );
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[2].result.as_ref().unwrap_err();
    assert_eq!(err.tags, vec![("i".to_string(), "2".to_string())]);
    assert!(err.payload.contains("exited"), "{err}");
    for (i, r) in reports.iter().enumerate() {
        if i != 2 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

/// A truncated/garbage frame poisons the point and discards the worker;
/// siblings complete on a replacement.
#[test]
fn garbage_frame_poisons_the_point_and_names_it() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::garbage_at(4).env_value()),
    );
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[4].result.as_ref().unwrap_err();
    assert_eq!(err.tags, vec![("i".to_string(), "4".to_string())]);
    assert!(err.payload.contains("malformed frame"), "{err}");
    for (i, r) in reports.iter().enumerate() {
        if i != 4 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

/// A wedged worker trips the per-point deadline: killed, point poisoned,
/// siblings complete.
#[test]
fn hanging_worker_trips_the_deadline() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::hang_at(1).env_value()),
    )
    .deadline(Duration::from_secs(5));
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[1].result.as_ref().unwrap_err();
    assert_eq!(err.tags, vec![("i".to_string(), "1".to_string())]);
    assert!(err.payload.contains("deadline"), "{err}");
    for (i, r) in reports.iter().enumerate() {
        if i != 1 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

/// The infallible `run` surface is the only one that panics on a fault —
/// and it names the poisoned point's tags when it does.
#[test]
fn infallible_run_panics_naming_the_faulted_point() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::exit_at(5).env_value()),
    );
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _: Vec<SweepReport<u64>> = runner.run(&set);
    }));
    let payload = outcome.expect_err("a faulted sweep must fail the infallible surface");
    let text = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(text.contains("i=5"), "panic must name the tags: {text}");
    // The checked path reports the same sweep without panicking.
    let checked: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&checked), 1);
}

/// Regression (PR-5 satellite): the streamed completion count equals the
/// point count even when a worker death forces redistribution — each
/// point's final outcome is observed exactly once, and `ProgressObserver`
/// resets correctly when reused for a second sweep.
#[test]
fn progress_observer_counts_each_point_exactly_once_under_redistribution() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::exit_at(1).env_value()),
    );
    let progress = ProgressObserver::new();
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.run_streaming(&set, &progress);
    assert_eq!(reports.len(), fx::SQUARE_POINTS);
    assert_eq!(
        progress.completed(),
        fx::SQUARE_POINTS,
        "every point's final outcome is observed exactly once"
    );
    assert_eq!(failed_points(&reports), 1);
    // Reusing the observer for a fresh sweep must not double-count.
    let clean = DistRunner::new(2, worker("square"));
    let reports: Vec<SweepReport<PointResult<u64>>> = clean.run_streaming(&set, &progress);
    assert_eq!(progress.completed(), fx::SQUARE_POINTS);
    assert_eq!(failed_points(&reports), 0);
}

/// A parent/worker configuration skew (the worker built a different
/// sweep) is refused at the handshake: every point carries a structured
/// mismatch error instead of silently computing the wrong scenarios.
#[test]
fn configuration_mismatch_is_refused_at_the_handshake() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(2, worker("square5"));
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), fx::SQUARE_POINTS);
    for r in &reports {
        let err = r.result.as_ref().unwrap_err();
        assert!(err.payload.contains("configuration mismatch"), "{err}");
    }
}

/// Regression (handshake-deadline satellite): a stdio worker wedged
/// *before* its hello no longer stalls its supervisor slot forever — the
/// always-on handshake deadline cuts it loose, and after three strikes
/// the slot goes fatal with a memoized payload instead of respawning
/// forever.
#[test]
fn pre_hello_hang_trips_the_handshake_deadline() {
    let set = fx::square_set(4);
    let runner =
        DistRunner::new(1, worker("hang-hello")).hello_deadline(Duration::from_millis(300));
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 4);
    let first = reports[0].result.as_ref().unwrap_err();
    assert!(first.payload.contains("handshake"), "{first}");
    let last = reports[3].result.as_ref().unwrap_err();
    assert!(last.payload.contains("giving up"), "{last}");
}

// ---------------------------------------------------------------------------
// Loopback-TCP golden suite: the `tcp_` prefix is how CI selects this group.
// ---------------------------------------------------------------------------

#[test]
fn tcp_table1_is_byte_identical_to_in_process() {
    let cfg = fx::table1_cfg();
    let listener = Listener::spawn("table1");
    let serial = table1::run_reports(&cfg, &SweepRunner::serial(), &NullObserver);
    let exec = SweepExec::Distributed(DistRunner::over_hosts(&listener.hosts(2)));
    let dist = table1::exec_reports(&cfg, &exec, &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(report::render_table1(&serial), report::render_table1(&dist));
}

#[test]
fn tcp_table2_is_byte_identical_to_in_process() {
    let cfg = fx::table2_cfg();
    let listener = Listener::spawn("table2");
    let serial = table2::run_reports(&cfg, &SweepRunner::serial(), &NullObserver);
    let exec = SweepExec::Distributed(DistRunner::over_hosts(&listener.hosts(3)));
    let dist = table2::exec_reports(&cfg, &exec, &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(report::render_table2(&serial), report::render_table2(&dist));
}

#[test]
fn tcp_table3_seed_replication_is_byte_identical() {
    let cfg = fx::table3_cfg();
    let seeds = fx::table3_seeds(&cfg);
    let listener = Listener::spawn("table3");
    let serial = table3::run_seeds_reports(&cfg, &seeds, &SweepRunner::serial(), &NullObserver);
    let exec = SweepExec::Distributed(DistRunner::over_hosts(&listener.hosts(2)));
    let dist = table3::run_seeds_exec(&cfg, &seeds, &exec, &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(
        report::render_table3_seeds(&serial),
        report::render_table3_seeds(&dist)
    );
}

#[test]
fn tcp_hetmix_is_byte_identical_to_in_process() {
    let cfg = fx::hetmix_cfg();
    let listener = Listener::spawn("hetmix");
    let serial = hetmix::sweep_reports(
        &cfg,
        fx::HETMIX_LEVELS,
        &SweepRunner::serial(),
        &NullObserver,
    );
    let exec = SweepExec::Distributed(DistRunner::over_hosts(&listener.hosts(4)));
    let dist = hetmix::sweep_exec(&cfg, fx::HETMIX_LEVELS, &exec, &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(report::render_hetmix(&serial), report::render_hetmix(&dist));
}

#[test]
fn tcp_mesh_is_byte_identical_to_in_process() {
    let cfg = fx::mesh_cfg();
    let listener = Listener::spawn("mesh");
    let serial = mesh::sweep_reports(&cfg, fx::MESH_LEVELS, &SweepRunner::serial(), &NullObserver);
    let exec = SweepExec::Distributed(DistRunner::over_hosts(&listener.hosts(2)));
    let dist = mesh::sweep_exec(&cfg, fx::MESH_LEVELS, &exec, &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(report::render_mesh(&serial), report::render_mesh(&dist));
}

#[test]
fn tcp_churn_reproduces_the_decision_sequence() {
    let cfg = fx::churn_cfg();
    let listener = Listener::spawn("churn");
    let serial = churn::sweep_reports(
        &cfg,
        fx::CHURN_RATES,
        fx::CHURN_HOLD,
        &SweepRunner::serial(),
        &NullObserver,
    );
    let exec = SweepExec::Distributed(DistRunner::over_hosts(&listener.hosts(2)));
    let dist = churn::sweep_exec(&cfg, fx::CHURN_RATES, fx::CHURN_HOLD, &exec, &NullObserver);
    assert_identical(&serial, &dist);
    for (s, d) in serial.iter().zip(&dist) {
        let s = s.result.as_ref().unwrap();
        let d = d.result.as_ref().unwrap();
        assert_eq!(s.decisions, d.decisions);
        assert!(s.offered > 0, "a silent empty run would prove nothing");
    }
}

/// The full `ScenarioReport` schema crosses TCP losslessly too, and the
/// parent measures a round trip for every point (the socket run's
/// telemetry exposes per-point round-trip overhead; an in-process run has
/// none to report).
#[test]
fn tcp_scenario_json_is_byte_identical_and_measures_round_trips() {
    let set = fx::scenario_set();
    let serial = SweepRunner::serial().run(&set, fx::scenario_point);
    let serial_json = sweep_to_json(&serial);
    let listener = Listener::spawn("scenario");
    let runner = DistRunner::over_hosts(&listener.hosts(2));
    let base = NullObserver;
    let collector = TelemetryCollector::new(&base);
    let reports = runner.run_streaming(&set, &collector);
    assert_eq!(failed_points(&reports), 0);
    assert_eq!(sweep_to_json_checked(&reports), serial_json);
    let summary = collector.summary();
    assert_eq!(
        summary.rtt_points(),
        set.len(),
        "every socket point measures a round trip"
    );
    assert!(summary.total_overhead_s() >= 0.0);
    assert!(
        summary.render().contains("round-trip overhead"),
        "{}",
        summary.render()
    );
}

/// Batched dispatch (protocol revision 3) is byte-identical to unbatched:
/// the same sweep, claimed four points at a time over TCP, produces the
/// serial JSON.
#[test]
fn tcp_batched_sweep_is_byte_identical() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let listener = Listener::spawn("square");
    let runner = DistRunner::over_hosts(&listener.hosts(2)).batch(4);
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 0);
    assert_eq!(reports.len(), fx::SQUARE_POINTS);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.index, i, "point order must match");
        assert_eq!(r.tags, vec![("i".to_string(), i.to_string())]);
        assert_eq!(r.result, Ok((i * i) as u64));
    }
}

/// Batch negotiation: a parent configured to batch falls back to
/// one-request-per-line when the hello says the worker only speaks
/// revision 2 — the sweep still completes byte-identically instead of
/// feeding the old worker a frame it cannot parse.
#[test]
fn batching_parent_falls_back_for_rev2_workers() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(2, worker("square-rev2")).batch(4);
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 0);
    assert_eq!(reports.len(), fx::SQUARE_POINTS);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.index, i, "point order must match");
        assert_eq!(r.tags, vec![("i".to_string(), i.to_string())]);
        assert_eq!(r.result, Ok((i * i) as u64));
    }
}

/// A worker that dies mid-batch poisons only the point it was running;
/// the rest of its claimed batch is re-dispatched and completes.
#[test]
fn batched_claims_survive_a_mid_batch_death() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::exit_at(4).env_value()),
    )
    .batch(4);
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[4].result.as_ref().unwrap_err();
    assert_eq!(err.tags, vec![("i".to_string(), "4".to_string())]);
    for (i, r) in reports.iter().enumerate() {
        if i != 4 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

// ---------------------------------------------------------------------------
// Socket fault injection: the failure modes only a network transport has.
// ---------------------------------------------------------------------------

/// A connection dropped mid-point poisons exactly that point; the slot
/// reconnects (a fresh session on the same listener) and the remaining
/// points complete there.
#[test]
fn tcp_disconnect_poisons_only_the_in_flight_point() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let listener = Listener::spawn_with_fault("square", FaultPlan::disconnect_at(2));
    let runner = DistRunner::over_hosts(&listener.hosts(2));
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[2].result.as_ref().unwrap_err();
    assert_eq!(err.tags, vec![("i".to_string(), "2".to_string())]);
    assert!(err.payload.contains("closed by peer"), "{err}");
    for (i, r) in reports.iter().enumerate() {
        if i != 2 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

/// A session wedged before its hello trips the handshake deadline: the
/// slot's first claimed point is poisoned with a handshake error, and the
/// reconnected session (the listener's next accept) serves the rest.
#[test]
fn tcp_pre_hello_hang_poisons_one_point_then_reconnects() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let listener = Listener::spawn_with_fault("square", FaultPlan::hello_hang_at(0));
    let runner =
        DistRunner::over_hosts(&listener.hosts(1)).hello_deadline(Duration::from_millis(500));
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[0].result.as_ref().unwrap_err();
    assert_eq!(err.tags, vec![("i".to_string(), "0".to_string())]);
    assert!(err.payload.contains("handshake"), "{err}");
    for (i, r) in reports.iter().enumerate().skip(1) {
        assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
    }
}

/// Garbage on the stream poisons the point, the poisoned session is
/// dropped, and siblings survive on a reconnected one.
#[test]
fn tcp_garbage_frame_poisons_the_point_and_reconnects() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let listener = Listener::spawn_with_fault("square", FaultPlan::garbage_at(5));
    let runner = DistRunner::over_hosts(&listener.hosts(2));
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[5].result.as_ref().unwrap_err();
    assert_eq!(err.tags, vec![("i".to_string(), "5".to_string())]);
    assert!(err.payload.contains("malformed frame"), "{err}");
    for (i, r) in reports.iter().enumerate() {
        if i != 5 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

/// A TCP configuration skew is refused exactly like the stdio one: the
/// listener's hello names a different point count, so every point carries
/// the structured mismatch error.
#[test]
fn tcp_configuration_mismatch_is_refused_at_the_handshake() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let listener = Listener::spawn("square5");
    let runner = DistRunner::over_hosts(&listener.hosts(2));
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), fx::SQUARE_POINTS);
    for r in &reports {
        let err = r.result.as_ref().unwrap_err();
        assert!(err.payload.contains("configuration mismatch"), "{err}");
    }
}
