//! Distributed-sweep acceptance harness: byte identity and fault
//! injection for `ispn-scenario::sweep::dist`.
//!
//! The contract under test has two halves:
//!
//! * **Byte identity** — a sweep fanned across worker subprocesses must
//!   produce results byte-identical to `SweepRunner::run` in this
//!   process: same point order, same tags, same wire JSON for every
//!   result, same rendered tables — for all six experiments, for worker
//!   counts 1..=4, including the churn accept/reject decision sequence.
//! * **Supervision** — a worker that panics, exits, emits garbage or
//!   hangs poisons exactly its in-flight point (a structured `SweepError`
//!   naming the point's tags) while every sibling point completes on the
//!   surviving workers; only the checked (`try_run`-style) paths report
//!   the failure, and each point's final outcome is observed exactly once.
//!
//! The workers are the `dist_worker` bin of this package; the suites it
//! serves are pinned in `ispn_integration_tests::dist_fixtures`, which
//! the parent side of every test reuses so both processes build the same
//! `ScenarioSet`.

use std::time::Duration;

use ispn_experiments::{churn, hetmix, mesh, report, table1, table2, table3};
use ispn_integration_tests::dist_fixtures as fx;
use ispn_scenario::{
    failed_points, sweep_to_json, sweep_to_json_checked, DistRunner, FaultPlan, NullObserver,
    PointResult, ProgressObserver, SweepExec, SweepReport, SweepRunner, WireResult, WorkerCommand,
};

/// The worker command serving one fixture suite.
fn worker(suite: &str) -> WorkerCommand {
    WorkerCommand::new(env!("CARGO_BIN_EXE_dist_worker")).arg(suite)
}

/// A distributed runner over one fixture suite.
fn dist(suite: &str, workers: usize) -> DistRunner {
    DistRunner::new(workers, worker(suite))
}

/// A distributed `SweepExec` over one fixture suite.
fn dist_exec(suite: &str, workers: usize) -> SweepExec {
    SweepExec::Distributed(dist(suite, workers))
}

/// Byte identity of two checked report lists: same order, same tags, and
/// the same wire encoding for every result.
fn assert_identical<R: WireResult>(
    serial: &[SweepReport<PointResult<R>>],
    dist: &[SweepReport<PointResult<R>>],
) {
    assert_eq!(serial.len(), dist.len(), "same point count");
    for (s, d) in serial.iter().zip(dist) {
        assert_eq!(s.index, d.index, "point order must match");
        assert_eq!(s.tags, d.tags, "axis tags must match");
        let idx = s.index;
        let s = s.result.as_ref().expect("serial point succeeded");
        let d = d.result.as_ref().expect("distributed point succeeded");
        assert_eq!(
            s.to_wire_json(),
            d.to_wire_json(),
            "point {idx} diverged across the process boundary"
        );
    }
}

#[test]
fn table1_distributed_is_byte_identical_to_in_process() {
    let cfg = fx::table1_cfg();
    let serial = table1::run_reports(&cfg, &SweepRunner::serial(), &NullObserver);
    let dist = table1::exec_reports(&cfg, &dist_exec("table1", 2), &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(report::render_table1(&serial), report::render_table1(&dist));
}

#[test]
fn table2_distributed_is_byte_identical_to_in_process() {
    let cfg = fx::table2_cfg();
    let serial = table2::run_reports(&cfg, &SweepRunner::serial(), &NullObserver);
    let dist = table2::exec_reports(&cfg, &dist_exec("table2", 3), &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(report::render_table2(&serial), report::render_table2(&dist));
}

#[test]
fn table3_seed_replication_distributed_is_byte_identical() {
    let cfg = fx::table3_cfg();
    let seeds = fx::table3_seeds(&cfg);
    let serial = table3::run_seeds_reports(&cfg, &seeds, &SweepRunner::serial(), &NullObserver);
    let dist = table3::run_seeds_exec(&cfg, &seeds, &dist_exec("table3", 2), &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(
        report::render_table3_seeds(&serial),
        report::render_table3_seeds(&dist)
    );
}

#[test]
fn hetmix_distributed_is_byte_identical_to_in_process() {
    let cfg = fx::hetmix_cfg();
    let serial = hetmix::sweep_reports(
        &cfg,
        fx::HETMIX_LEVELS,
        &SweepRunner::serial(),
        &NullObserver,
    );
    let dist = hetmix::sweep_exec(
        &cfg,
        fx::HETMIX_LEVELS,
        &dist_exec("hetmix", 4),
        &NullObserver,
    );
    assert_identical(&serial, &dist);
    assert_eq!(report::render_hetmix(&serial), report::render_hetmix(&dist));
}

#[test]
fn mesh_distributed_is_byte_identical_to_in_process() {
    let cfg = fx::mesh_cfg();
    let serial = mesh::sweep_reports(&cfg, fx::MESH_LEVELS, &SweepRunner::serial(), &NullObserver);
    let dist = mesh::sweep_exec(&cfg, fx::MESH_LEVELS, &dist_exec("mesh", 2), &NullObserver);
    assert_identical(&serial, &dist);
    assert_eq!(report::render_mesh(&serial), report::render_mesh(&dist));
}

#[test]
fn churn_distributed_reproduces_the_decision_sequence() {
    let cfg = fx::churn_cfg();
    let serial = churn::sweep_reports(
        &cfg,
        fx::CHURN_RATES,
        fx::CHURN_HOLD,
        &SweepRunner::serial(),
        &NullObserver,
    );
    let dist = churn::sweep_exec(
        &cfg,
        fx::CHURN_RATES,
        fx::CHURN_HOLD,
        &dist_exec("churn", 2),
        &NullObserver,
    );
    assert_identical(&serial, &dist);
    // The decision sequence — the churn experiment's determinism surface —
    // survives the process boundary decision for decision.
    for (s, d) in serial.iter().zip(&dist) {
        let s = s.result.as_ref().unwrap();
        let d = d.result.as_ref().unwrap();
        assert_eq!(s.decisions, d.decisions);
        assert!(s.offered > 0, "a silent empty run would prove nothing");
    }
}

/// The generic `ScenarioReport` sweep is byte-identical to the serial
/// runner's JSON for every worker count 1..=4 — the full report schema
/// (flows, links, classes, quantiles, histograms, disciplines, signaling)
/// crosses the pipe losslessly.
#[test]
fn scenario_json_is_byte_identical_for_one_through_four_workers() {
    let set = fx::scenario_set();
    let serial = SweepRunner::serial().run(&set, fx::scenario_point);
    let serial_json = sweep_to_json(&serial);
    for workers in 1..=4 {
        let reports = dist("scenario", workers).try_run(&set);
        assert_eq!(
            sweep_to_json_checked(&reports),
            serial_json,
            "{workers} workers diverged from serial"
        );
    }
}

/// A worker panic inside the point's closure is the graceful path: the
/// worker survives, the point carries a structured error naming its tags,
/// and every sibling completes.
#[test]
fn panicking_point_is_isolated_and_named() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::panic_at(3).env_value()),
    );
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[3].result.as_ref().unwrap_err();
    assert_eq!(err.index, 3);
    assert_eq!(err.tags, vec![("i".to_string(), "3".to_string())]);
    assert!(err.payload.contains("injected fault"), "{err}");
    for (i, r) in reports.iter().enumerate() {
        if i != 3 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

/// A worker killed mid-point (abrupt exit) poisons exactly that point;
/// its remaining points are redistributed and complete.
#[test]
fn killed_worker_poisons_only_its_in_flight_point() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::exit_at(2).env_value()),
    );
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[2].result.as_ref().unwrap_err();
    assert_eq!(err.tags, vec![("i".to_string(), "2".to_string())]);
    assert!(err.payload.contains("exited"), "{err}");
    for (i, r) in reports.iter().enumerate() {
        if i != 2 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

/// A truncated/garbage frame poisons the point and discards the worker;
/// siblings complete on a replacement.
#[test]
fn garbage_frame_poisons_the_point_and_names_it() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::garbage_at(4).env_value()),
    );
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[4].result.as_ref().unwrap_err();
    assert_eq!(err.tags, vec![("i".to_string(), "4".to_string())]);
    assert!(err.payload.contains("malformed frame"), "{err}");
    for (i, r) in reports.iter().enumerate() {
        if i != 4 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

/// A wedged worker trips the per-point deadline: killed, point poisoned,
/// siblings complete.
#[test]
fn hanging_worker_trips_the_deadline() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::hang_at(1).env_value()),
    )
    .deadline(Duration::from_secs(5));
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), 1);
    let err = reports[1].result.as_ref().unwrap_err();
    assert_eq!(err.tags, vec![("i".to_string(), "1".to_string())]);
    assert!(err.payload.contains("deadline"), "{err}");
    for (i, r) in reports.iter().enumerate() {
        if i != 1 {
            assert_eq!(r.result, Ok((i * i) as u64), "sibling {i} must survive");
        }
    }
}

/// The infallible `run` surface is the only one that panics on a fault —
/// and it names the poisoned point's tags when it does.
#[test]
fn infallible_run_panics_naming_the_faulted_point() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::exit_at(5).env_value()),
    );
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _: Vec<SweepReport<u64>> = runner.run(&set);
    }));
    let payload = outcome.expect_err("a faulted sweep must fail the infallible surface");
    let text = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(text.contains("i=5"), "panic must name the tags: {text}");
    // The checked path reports the same sweep without panicking.
    let checked: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&checked), 1);
}

/// Regression (PR-5 satellite): the streamed completion count equals the
/// point count even when a worker death forces redistribution — each
/// point's final outcome is observed exactly once, and `ProgressObserver`
/// resets correctly when reused for a second sweep.
#[test]
fn progress_observer_counts_each_point_exactly_once_under_redistribution() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(
        2,
        worker("square").env(FaultPlan::ENV, FaultPlan::exit_at(1).env_value()),
    );
    let progress = ProgressObserver::new();
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.run_streaming(&set, &progress);
    assert_eq!(reports.len(), fx::SQUARE_POINTS);
    assert_eq!(
        progress.completed(),
        fx::SQUARE_POINTS,
        "every point's final outcome is observed exactly once"
    );
    assert_eq!(failed_points(&reports), 1);
    // Reusing the observer for a fresh sweep must not double-count.
    let clean = DistRunner::new(2, worker("square"));
    let reports: Vec<SweepReport<PointResult<u64>>> = clean.run_streaming(&set, &progress);
    assert_eq!(progress.completed(), fx::SQUARE_POINTS);
    assert_eq!(failed_points(&reports), 0);
}

/// A parent/worker configuration skew (the worker built a different
/// sweep) is refused at the handshake: every point carries a structured
/// mismatch error instead of silently computing the wrong scenarios.
#[test]
fn configuration_mismatch_is_refused_at_the_handshake() {
    let set = fx::square_set(fx::SQUARE_POINTS);
    let runner = DistRunner::new(2, worker("square5"));
    let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
    assert_eq!(failed_points(&reports), fx::SQUARE_POINTS);
    for r in &reports {
        let err = r.result.as_ref().unwrap_err();
        assert!(err.payload.contains("configuration mismatch"), "{err}");
    }
}
