//! Integration: the Table-1 situation rebuilt from the low-level crates —
//! ten bursty sources sharing one link under different disciplines.

use ispn_integration_tests::{add_paper_flow, chain, packet_times};
use ispn_net::Network;
use ispn_sched::{Averaging, Discipline, Fifo, FifoPlus, VirtualClock, Wfq};
use ispn_sim::SimTime;

const DURATION: SimTime = SimTime::from_secs(40);

fn run_with(discipline: Discipline) -> (Vec<f64>, Vec<f64>, f64) {
    let (topo, links) = chain(2);
    let mut net = Network::new(topo);
    net.set_discipline(links[0], discipline);
    let flows: Vec<_> = (0..10)
        .map(|i| add_paper_flow(&mut net, vec![links[0]], i))
        .collect();
    net.run_until(DURATION);
    let mut means = Vec::new();
    let mut tails = Vec::new();
    for f in flows {
        let r = net.monitor_mut().flow_report(f);
        means.push(packet_times(r.mean_delay));
        tails.push(packet_times(r.p999_delay));
    }
    let util = net.monitor().link_report(0).utilization;
    (means, tails, util)
}

#[test]
fn ten_flows_load_the_link_to_about_eighty_three_percent() {
    let (_, _, util) = run_with(Fifo::new().into());
    assert!((util - 0.835).abs() < 0.05, "utilization {util}");
}

#[test]
fn every_flow_gets_comparable_mean_delay_under_fifo() {
    let (means, _, _) = run_with(Fifo::new().into());
    let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = means.iter().cloned().fold(0.0f64, f64::max);
    assert!(lo > 0.3, "every flow queues at 83% load ({means:?})");
    assert!(
        hi / lo < 2.5,
        "FIFO shares delay roughly evenly ({means:?})"
    );
}

#[test]
fn fifo_tail_beats_wfq_tail_on_shared_bursty_traffic() {
    // The Table-1 claim: means comparable, FIFO 99.9th percentile smaller.
    let (fifo_means, fifo_tails, _) = run_with(Fifo::new().into());
    let (wfq_means, wfq_tails, _) = run_with(Wfq::equal_share(1_000_000.0, 10).into());
    let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
    let fifo_mean = avg(&fifo_means);
    let wfq_mean = avg(&wfq_means);
    assert!(
        (fifo_mean - wfq_mean).abs() / wfq_mean < 0.35,
        "means comparable: FIFO {fifo_mean:.2} vs WFQ {wfq_mean:.2}"
    );
    let fifo_tail = avg(&fifo_tails);
    let wfq_tail = avg(&wfq_tails);
    assert!(
        fifo_tail < wfq_tail,
        "FIFO tail {fifo_tail:.2} should be below WFQ tail {wfq_tail:.2}"
    );
}

#[test]
fn all_reasonable_disciplines_deliver_everything_without_drops() {
    for disc in [
        Discipline::from(Fifo::new()),
        Wfq::equal_share(1_000_000.0, 10).into(),
        FifoPlus::new(Averaging::RunningMean).into(),
        VirtualClock::new(100_000.0).into(),
    ] {
        let (topo, links) = chain(2);
        let mut net = Network::new(topo);
        net.set_discipline(links[0], disc);
        let flows: Vec<_> = (0..10)
            .map(|i| add_paper_flow(&mut net, vec![links[0]], i))
            .collect();
        net.run_until(DURATION);
        for f in flows {
            let r = net.monitor_mut().flow_report(f);
            assert!(r.generated > 0);
            assert_eq!(r.dropped_buffer, 0, "no loss at 83% load");
            // Packets still queued when the horizon cuts the run off are the
            // only permitted shortfall.
            assert!(r.delivered + 10 >= r.generated, "{r:?}");
        }
    }
}

#[test]
fn identical_seeds_give_bitwise_identical_results() {
    let (a_means, a_tails, a_util) = run_with(Fifo::new().into());
    let (b_means, b_tails, b_util) = run_with(Fifo::new().into());
    assert_eq!(a_means, b_means);
    assert_eq!(a_tails, b_tails);
    assert_eq!(a_util, b_util);
}
