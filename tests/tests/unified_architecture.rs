//! Integration: the complete architecture on the Figure-1 network — the
//! Table-3 scenario built through `ispn-experiments`, checked for the
//! paper's qualitative claims, plus determinism and seed-sensitivity of the
//! whole stack.

use ispn_experiments::config::PaperConfig;
use ispn_experiments::fig1::FlowKind;
use ispn_experiments::{table1, table3, DisciplineKind};
use ispn_sim::SimTime;

fn fast() -> PaperConfig {
    PaperConfig {
        duration: SimTime::from_secs(30),
        ..PaperConfig::paper()
    }
}

#[test]
fn unified_scheduler_honours_every_guaranteed_bound_on_figure_1() {
    let t = table3::run(&fast());
    for row in &t.rows {
        if let Some(bound) = row.pg_bound {
            assert!(
                row.max <= bound,
                "{} over {} hops: max {:.2} exceeds bound {:.2}",
                row.kind.label(),
                row.path_length,
                row.max,
                bound
            );
        }
    }
}

#[test]
fn predicted_high_beats_predicted_low_and_peak_beats_average() {
    let t = table3::run(&fast());
    let mean = |k, h| t.row(k, h).unwrap().mean;
    // Guaranteed-Peak (clocked at the peak rate) sees far less queueing than
    // Guaranteed-Average (clocked at the average rate).
    assert!(mean(FlowKind::GuaranteedPeak, 4) < mean(FlowKind::GuaranteedAverage, 3));
    assert!(mean(FlowKind::GuaranteedPeak, 2) < mean(FlowKind::GuaranteedAverage, 1));
    // High-priority predicted service sees less queueing than low-priority.
    assert!(mean(FlowKind::PredictedHigh, 2) < mean(FlowKind::PredictedLow, 1) + 5.0);
    assert!(
        t.row(FlowKind::PredictedHigh, 4).unwrap().p999
            < t.row(FlowKind::PredictedLow, 3).unwrap().p999
    );
}

#[test]
fn datagram_tcp_fills_the_leftover_capacity_with_small_loss() {
    let t = table3::run(&fast());
    // Real-time traffic alone is ~83.5%; with the TCP connections the links
    // run well above that.
    assert!(t.realtime_utilization > 0.77 && t.realtime_utilization < 0.90);
    assert!(
        t.mean_utilization > t.realtime_utilization + 0.08,
        "TCP should add at least 8% utilization: {} vs {}",
        t.mean_utilization,
        t.realtime_utilization
    );
    assert!(
        t.datagram_drop_rate < 0.05,
        "drop rate {}",
        t.datagram_drop_rate
    );
    assert_eq!(t.tcp_goodput_pps.len(), 2);
    for g in &t.tcp_goodput_pps {
        assert!(*g > 20.0, "TCP goodput {g}");
    }
}

#[test]
fn whole_stack_is_deterministic_for_a_fixed_seed() {
    let a = table3::run(&fast());
    let b = table3::run(&fast());
    for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
        assert_eq!(ra.mean, rb.mean);
        assert_eq!(ra.p999, rb.p999);
        assert_eq!(ra.max, rb.max);
    }
    assert_eq!(a.datagram_drop_rate, b.datagram_drop_rate);
    assert_eq!(a.mean_utilization, b.mean_utilization);
}

#[test]
fn different_seeds_change_the_numbers_but_not_the_shape() {
    let cfg_a = fast();
    let cfg_b = PaperConfig { seed: 7, ..fast() };
    let a = table1::run_single_link(&cfg_a, DisciplineKind::Fifo);
    let b = table1::run_single_link(&cfg_b, DisciplineKind::Fifo);
    assert_ne!(a.mean, b.mean, "different seeds give different samples");
    // But both land in the same regime (83.5% load FIFO queueing).
    for r in [&a, &b] {
        assert!(r.mean > 0.5 && r.mean < 15.0, "{r:?}");
        assert!(r.p999 > r.mean);
    }
}
