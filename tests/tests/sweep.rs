//! Sweep-API integration tests: the determinism contract of
//! `ispn-scenario::sweep` and the migrated experiment sweeps.
//!
//! The acceptance surface: a sweep of ≥ 8 scenario points run with
//! `threads = N > 1` must produce **byte-identical** `SweepReport` JSON to
//! the serial run, and the experiments that migrated onto the sweep API
//! (tables 1–3, hetmix, churn, mesh) must produce the same outputs through
//! a parallel runner as through the serial one — completion order must
//! never leak into results.

use std::sync::Mutex;

use ispn_experiments::{churn, hetmix, table1, table2, table3, DisciplineKind, PaperConfig};
use ispn_net::PoliceAction;
use ispn_scenario::{
    sweep_to_json, sweep_to_json_checked, AdmissionSpec, ChurnClass, ChurnSourceSpec,
    ChurnWorkload, DisciplineSpec, FlowDef, HistogramSpec, MeasurementPlan, PointResult,
    ScenarioBuilder, ScenarioSet, SourceSpec, SweepReport, SweepRunner, TopologySpec, WorkloadSpec,
};
use ispn_sched::Averaging;
use ispn_sim::SimTime;

/// The discipline axis the generic sweep uses.
fn disciplines() -> [DisciplineSpec; 4] {
    [
        DisciplineSpec::Fifo,
        DisciplineSpec::FifoPlus(Averaging::RunningMean),
        DisciplineSpec::Wfq,
        DisciplineSpec::Unified {
            priority_classes: 2,
            averaging: Averaging::RunningMean,
        },
    ]
}

/// Build and run one (discipline, flows-per-class) point: a short
/// heterogeneous mix on a two-switch chain, reported with per-class
/// distributions and a delay histogram.
fn run_point(spec: DisciplineSpec, level: usize) -> ispn_scenario::ScenarioReport {
    let mut builder = ScenarioBuilder::chain(2).discipline(spec);
    for i in 0..level {
        builder = builder
            .flow(FlowDef::guaranteed(0, 1, 120_000.0).source(SourceSpec::cbr(85.0, 1000)))
            .flow(
                FlowDef::best_effort_realtime(0, 1)
                    .source(SourceSpec::onoff_paper(85.0, 40 + i as u64)),
            )
            .flow(FlowDef::datagram(0, 1).source(SourceSpec::poisson(85.0, 1000, 80 + i as u64)));
    }
    let mut sim = builder.build().expect("valid sweep point");
    sim.run_until(SimTime::from_secs(5));
    sim.report(&MeasurementPlan::default().with_histogram(HistogramSpec::up_to(0.2, 16)))
}

#[test]
fn eight_point_parallel_sweep_is_byte_identical_to_serial() {
    // 4 disciplines × 2 load levels = 8 self-contained scenario points.
    let set = ScenarioSet::over("discipline", disciplines()).by("level", [1usize, 3]);
    assert_eq!(set.len(), 8);
    let f = |&(spec, level): &(DisciplineSpec, usize)| run_point(spec, level);
    let serial = SweepRunner::serial().run(&set, f);
    let parallel = SweepRunner::parallel(4).run(&set, f);
    let serial_json = sweep_to_json(&serial);
    let parallel_json = sweep_to_json(&parallel);
    assert!(
        serial_json == parallel_json,
        "parallel sweep JSON diverged from serial"
    );
    // The reports are tagged with both axes, in point order.
    assert_eq!(parallel[0].tag("discipline"), Some("FIFO"));
    assert_eq!(parallel[0].tag("level"), Some("1"));
    assert_eq!(parallel[7].tag("discipline"), Some("Unified"));
    assert_eq!(parallel[7].tag("level"), Some("3"));
    // And the per-class additions are present in every point's JSON.
    assert!(serial_json.contains("\"classes\":[{\"class\":\"guaranteed\""));
    assert!(serial_json.contains("\"histogram\":{\"lo_s\":0.0"));
    assert!(serial_json.contains("\"disciplines\":[{\"discipline\":\"WFQ\""));
}

#[test]
fn oversubscribed_thread_pool_changes_nothing() {
    // More threads than points, and more points than a round number: the
    // work-claiming counter must still map every result to its point.
    let set = ScenarioSet::over("discipline", disciplines()).by("level", [1usize, 2, 4]);
    assert_eq!(set.len(), 12);
    let f = |&(spec, level): &(DisciplineSpec, usize)| run_point(spec, level).to_json();
    let serial = SweepRunner::serial().run(&set, f);
    let wide = SweepRunner::parallel(32).run(&set, f);
    assert_eq!(serial, wide);
}

#[test]
fn table1_and_table2_parallel_runs_match_serial() {
    let cfg = PaperConfig {
        duration: SimTime::from_secs(15),
        ..PaperConfig::paper()
    };
    let s1 = table1::run(&cfg);
    let p1 = table1::run_with(&cfg, &SweepRunner::parallel(2));
    assert_eq!(s1.rows.len(), p1.rows.len());
    for (s, p) in s1.rows.iter().zip(&p1.rows) {
        assert_eq!(s.scheduler, p.scheduler);
        assert_eq!(s.mean, p.mean);
        assert_eq!(s.p999, p.p999);
        assert_eq!(s.utilization, p.utilization);
    }

    let s2 = table2::run(&cfg);
    let p2 = table2::run_with(&cfg, &SweepRunner::parallel(3));
    assert_eq!(s2.cells.len(), p2.cells.len());
    for (s, p) in s2.cells.iter().zip(&p2.cells) {
        assert_eq!((s.scheduler, s.path_length), (p.scheduler, p.path_length));
        assert_eq!(s.mean, p.mean);
        assert_eq!(s.p999, p.p999);
    }
    assert_eq!(s2.utilization, p2.utilization);
}

#[test]
fn table3_seed_axis_replicates_deterministically() {
    let cfg = PaperConfig {
        duration: SimTime::from_secs(10),
        ..PaperConfig::paper()
    };
    let seeds = [cfg.seed, cfg.seed + 1];
    let serial = table3::run_seeds(&cfg, &seeds, &SweepRunner::serial());
    let parallel = table3::run_seeds(&cfg, &seeds, &SweepRunner::parallel(2));
    assert_eq!(serial.len(), 2);
    for ((ss, st), (ps, pt)) in serial.iter().zip(&parallel) {
        assert_eq!(ss, ps);
        assert_eq!(st.rows.len(), pt.rows.len());
        for (a, b) in st.rows.iter().zip(&pt.rows) {
            assert_eq!(a.mean, b.mean);
            assert_eq!(a.p999, b.p999);
            assert_eq!(a.max, b.max);
        }
        assert_eq!(st.mean_utilization, pt.mean_utilization);
    }
    // Distinct seeds genuinely re-randomize the run.
    assert_ne!(serial[0].1.rows[0].mean, serial[1].1.rows[0].mean);
}

#[test]
fn hetmix_parallel_sweep_matches_serial() {
    let cfg = PaperConfig {
        duration: SimTime::from_secs(8),
        ..PaperConfig::paper()
    };
    let levels = [1usize, 2];
    let serial = hetmix::sweep(&cfg, &levels);
    let parallel = hetmix::sweep_with(&cfg, &levels, &SweepRunner::parallel(4));
    assert_eq!(serial.len(), 8, "4 disciplines × 2 levels");
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!((s.scheduler, s.level), (p.scheduler, p.level));
        assert_eq!(s.utilization, p.utilization);
        for (cs, cp) in s.classes.iter().zip(&p.classes) {
            assert_eq!(cs.class, cp.class);
            assert_eq!(cs.mean, cp.mean);
            assert_eq!(cs.jitter, cp.jitter);
        }
    }
}

#[test]
fn churn_parallel_sweep_matches_serial_decisions() {
    let paper = PaperConfig {
        duration: SimTime::from_secs(25),
        ..PaperConfig::fast()
    };
    let rates = [0.6, 1.2, 2.4];
    let serial = churn::sweep(&paper, &rates, 15.0);
    let parallel = churn::sweep_with(&paper, &rates, 15.0, &SweepRunner::parallel(3));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.decisions, p.decisions);
        assert_eq!(s.mean_utilization, p.mean_utilization);
        assert_eq!(s.residual_reserved_bps, 0.0);
        assert_eq!(p.residual_reserved_bps, 0.0);
    }
}

#[test]
fn zipped_axes_drive_paired_parameters() {
    // A load axis zipped with a matching per-point seed: three points, not
    // nine.
    let set = ScenarioSet::over("rate", [50.0f64, 100.0, 200.0]).zip("seed", [1u64, 2, 3]);
    assert_eq!(set.len(), 3);
    let reports = SweepRunner::parallel(2).run(&set, |&(rate, seed)| {
        let mut sim = ScenarioBuilder::chain(2)
            .discipline(DisciplineSpec::Wfq)
            .flow(FlowDef::best_effort_realtime(0, 1).source(SourceSpec::poisson(rate, 1000, seed)))
            .build()
            .expect("valid zipped point");
        sim.run_until(SimTime::from_secs(3));
        sim.report(&MeasurementPlan::flows_only()).flows[0].delivered
    });
    // Faster sources deliver more, and the tags identify each pairing.
    assert!(reports[0].result < reports[2].result);
    assert_eq!(reports[1].tag("rate"), Some("100.0"));
    assert_eq!(reports[1].tag("seed"), Some("2"));
}

/// A churn workload declared straight through the scenario API (no
/// experiment wrapper): the facade drives arrivals, sources and
/// departures, and drains cleanly.
#[test]
fn declarative_churn_workload_runs_and_drains() {
    let pt = SimTime::MILLISECOND;
    let workload = ChurnWorkload {
        arrivals_per_sec: 1.0,
        mean_holding_secs: 10.0,
        seed: 0xDECAF,
        guaranteed_fraction: 0.3,
        guaranteed_rate_bps: 170_000.0,
        classes: vec![
            ChurnClass {
                priority: 0,
                bucket: ispn_core::TokenBucketSpec::per_packets(85.0, 20.0, 1000),
                per_hop_target: pt.mul_f64(30.0),
                loss_rate: 0.001,
                police: PoliceAction::Drop,
            },
            ChurnClass {
                priority: 1,
                bucket: ispn_core::TokenBucketSpec::per_packets(85.0, 50.0, 1000),
                per_hop_target: pt.mul_f64(300.0),
                loss_rate: 0.001,
                police: PoliceAction::Drop,
            },
        ],
        source: ChurnSourceSpec {
            avg_rate_pps: 85.0,
            seed_base: 0x1992,
        },
    };
    let forward: Vec<ispn_net::LinkId> = (0..2).map(ispn_net::LinkId).collect();
    let mut sim = ScenarioBuilder::new(TopologySpec::chain_duplex(3))
        .disciplines(ispn_scenario::DisciplineMatrix::default().with_links(
            &forward,
            DisciplineSpec::Unified {
                priority_classes: 2,
                averaging: Averaging::RunningMean,
            },
        ))
        .admission_on(
            forward.clone(),
            AdmissionSpec {
                realtime_quota: 0.9,
                class_targets: vec![pt.mul_f64(30.0), pt.mul_f64(300.0)],
                measurement_window_secs: 10.0,
                util_safety_factor: Some(1.6),
                sample_interval: SimTime::SECOND,
            },
        )
        .workload(WorkloadSpec::Churn(workload))
        .build()
        .expect("valid churn scenario");
    assert!(sim.has_churn());
    sim.run_until(SimTime::from_secs(40));
    let admitted = sim.churn_admitted();
    assert!(!admitted.is_empty(), "40 s at 1/s must admit something");
    // Records are sorted and carry the request mix.
    assert!(admitted.windows(2).all(|w| w[0].flow < w[1].flow));
    assert!(admitted.iter().all(|r| r.hops >= 1 && r.hops <= 2));
    let report = sim.report(&MeasurementPlan::default());
    assert!(report.signaling.as_ref().unwrap().accepted > 0);
    // Admitted sources really moved packets.
    assert!(report.classes.iter().any(|c| c.delivered > 0));
    // Drain: no reservation survives.
    sim.drain_churn();
    sim.run_until(SimTime::from_secs(41));
    let residual: f64 = forward
        .iter()
        .map(|&l| {
            sim.network()
                .admission(l)
                .expect("admission enabled")
                .reserved_guaranteed_bps()
        })
        .sum();
    assert_eq!(residual, 0.0);
    assert_eq!(sim.signaling().pending(), 0);
}

/// A caller may drive its own setups through `Sim::submit` next to a churn
/// workload: the churn driver must ignore completions it did not request
/// instead of panicking on them.
#[test]
fn user_submitted_flows_coexist_with_the_churn_workload() {
    let pt = SimTime::MILLISECOND;
    let workload = ChurnWorkload {
        arrivals_per_sec: 0.5,
        mean_holding_secs: 10.0,
        seed: 0xFEED,
        guaranteed_fraction: 1.0,
        guaranteed_rate_bps: 100_000.0,
        classes: Vec::new(),
        source: ChurnSourceSpec {
            avg_rate_pps: 85.0,
            seed_base: 0x1992,
        },
    };
    let forward: Vec<ispn_net::LinkId> = (0..2).map(ispn_net::LinkId).collect();
    let mut sim = ScenarioBuilder::new(TopologySpec::chain_duplex(3))
        .disciplines(ispn_scenario::DisciplineMatrix::default().with_links(
            &forward,
            DisciplineSpec::Unified {
                priority_classes: 2,
                averaging: Averaging::RunningMean,
            },
        ))
        .admission_on(
            forward,
            AdmissionSpec {
                realtime_quota: 0.9,
                class_targets: vec![pt.mul_f64(30.0), pt.mul_f64(300.0)],
                measurement_window_secs: 10.0,
                util_safety_factor: Some(1.6),
                sample_interval: SimTime::SECOND,
            },
        )
        .workload(WorkloadSpec::Churn(workload))
        .build()
        .expect("valid churn scenario");
    // A user-submitted guaranteed flow accepted alongside churn arrivals
    // used to hit the driver's "accepted churn flow was requested" panic.
    let route = sim.built().span(0, 2).unwrap();
    let (_req, user_flow) = sim.submit(ispn_net::FlowConfig::guaranteed(route, 50_000.0));
    sim.run_until(SimTime::from_secs(20));
    assert!(sim.network().flow_active(user_flow));
    // The driver never adopted the user's flow.
    assert!(sim.churn_admitted().iter().all(|r| r.flow != user_flow));
}

/// Churn arrivals span contiguous forward links, so non-chain presets are
/// refused at build time instead of panicking mid-run.
#[test]
fn churn_on_non_chain_topologies_is_refused_at_build_time() {
    let workload = ChurnWorkload {
        arrivals_per_sec: 1.0,
        mean_holding_secs: 5.0,
        seed: 1,
        guaranteed_fraction: 1.0,
        guaranteed_rate_bps: 100_000.0,
        classes: Vec::new(),
        source: ChurnSourceSpec {
            avg_rate_pps: 85.0,
            seed_base: 1,
        },
    };
    for builder in [ScenarioBuilder::star(4), ScenarioBuilder::mesh(2, 2)] {
        let err = builder
            .workload(WorkloadSpec::Churn(workload.clone()))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("chain topology"), "{err}");
    }
}

/// Churn workload declarations that cannot work are refused at build time.
#[test]
fn invalid_churn_workloads_are_refused() {
    let valid = ChurnWorkload {
        arrivals_per_sec: 1.0,
        mean_holding_secs: 5.0,
        seed: 1,
        guaranteed_fraction: 1.0,
        guaranteed_rate_bps: 100_000.0,
        classes: Vec::new(),
        source: ChurnSourceSpec {
            avg_rate_pps: 85.0,
            seed_base: 1,
        },
    };
    // All-guaranteed churn with no predicted classes is fine.
    assert!(ScenarioBuilder::chain(3)
        .workload(WorkloadSpec::Churn(valid.clone()))
        .build()
        .is_ok());
    // A zero arrival rate is not.
    let err = ScenarioBuilder::chain(3)
        .workload(WorkloadSpec::Churn(ChurnWorkload {
            arrivals_per_sec: 0.0,
            ..valid.clone()
        }))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("arrival rate"), "{err}");
    // Predicted requests with no classes to draw from are not.
    let err = ScenarioBuilder::chain(3)
        .workload(WorkloadSpec::Churn(ChurnWorkload {
            guaranteed_fraction: 0.5,
            ..valid.clone()
        }))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("predicted class"), "{err}");
    // A NaN guaranteed fraction must not sail through the range checks.
    let err = ScenarioBuilder::chain(3)
        .workload(WorkloadSpec::Churn(ChurnWorkload {
            guaranteed_fraction: f64::NAN,
            ..valid
        }))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("guaranteed fraction"), "{err}");
}

/// The flow definitions of a sweep point must not leak between points:
/// every point builds its own Sim with its own flow-id space.
#[test]
fn sweep_points_are_isolated() {
    let set = ScenarioSet::over("flows", [1usize, 2, 3, 4]);
    let reports = SweepRunner::parallel(4).run(&set, |&(n,)| {
        let mut builder = ScenarioBuilder::chain(2).discipline(DisciplineSpec::Fifo);
        for _ in 0..n {
            builder = builder.flow(FlowDef::datagram(0, 1).source(SourceSpec::cbr(10.0, 1000)));
        }
        let mut sim = builder.build().unwrap();
        sim.run_until(SimTime::from_secs(1));
        sim.network().num_flows()
    });
    let flows: Vec<usize> = reports.into_iter().map(|r| r.result).collect();
    assert_eq!(flows, vec![1, 2, 3, 4]);
}

/// Regression for the double-`expect` abort: a sweep with one poisoned
/// point must still return every sibling point's report and name the
/// failing point's axis tags — under both the serial and the parallel
/// runner.
#[test]
fn poisoned_point_keeps_sibling_reports_and_names_its_tags() {
    let set = ScenarioSet::over("discipline", disciplines()).by("level", [1usize, 2]);
    assert_eq!(set.len(), 8);
    let f = |&(spec, level): &(DisciplineSpec, usize)| {
        // Poison exactly one point: WFQ at level 2.
        assert!(
            !(matches!(spec, DisciplineSpec::Wfq) && level == 2),
            "injected fault: WFQ at level 2 exploded"
        );
        run_point(spec, level)
    };
    for runner in [SweepRunner::serial(), SweepRunner::parallel(4)] {
        let reports = runner.try_run(&set, f);
        assert_eq!(reports.len(), 8, "every point has a slot");
        let failures: Vec<_> = reports
            .iter()
            .filter_map(|r| r.result.as_ref().err())
            .collect();
        assert_eq!(failures.len(), 1, "exactly the poisoned point failed");
        let err = failures[0];
        assert_eq!(err.tags[0], ("discipline".to_string(), "WFQ".to_string()));
        assert_eq!(err.tags[1], ("level".to_string(), "2".to_string()));
        assert!(err.payload.contains("WFQ at level 2 exploded"), "{err}");
        // The seven healthy points all carry real reports.
        assert_eq!(
            reports.iter().filter(|r| r.result.is_ok()).count(),
            7,
            "sibling points ran to completion"
        );
        // The error serializes into the checked JSON stream in place.
        let json = sweep_to_json_checked(&reports);
        assert!(json.contains("\"error\":\""), "{json}");
        assert_eq!(json.matches("\"report\":").count(), 7);
    }
}

/// The tentpole's streaming contract: every point's report reaches the
/// observer before the sweep returns, in completion order, while the
/// returned reports stay in point order with JSON byte-identical to a
/// serial batch run.
#[test]
fn streaming_emits_every_point_and_stays_byte_identical() {
    let set = ScenarioSet::over("discipline", disciplines()).by("level", [1usize, 3]);
    let f = |&(spec, level): &(DisciplineSpec, usize)| run_point(spec, level);
    let serial_batch = SweepRunner::serial().run(&set, f);

    let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let observer = |report: &SweepReport<PointResult<ispn_scenario::ScenarioReport>>| {
        assert!(report.result.is_ok(), "no faults injected here");
        seen.lock().unwrap().push(report.index);
    };
    let streamed = SweepRunner::parallel(4).run_streaming(&set, f, &observer);

    // Every point was emitted exactly once before the sweep returned.
    let mut seen = seen.into_inner().unwrap();
    seen.sort_unstable();
    assert_eq!(seen, (0..8).collect::<Vec<_>>());
    // The final reports are in point order and byte-identical to batch.
    assert_eq!(
        sweep_to_json_checked(&streamed),
        sweep_to_json(&serial_batch),
        "streaming must not change the final JSON"
    );
}

/// Sweep edge shapes: more worker threads than points, an empty set, and
/// a single-point set — all byte-identical to the serial runner.
#[test]
fn edge_shaped_sweeps_match_serial_json() {
    let f = |&(spec, level): &(DisciplineSpec, usize)| run_point(spec, level);

    // More workers (16) than points (3).
    let three = ScenarioSet::over("level", [1usize, 2, 3]).zip(
        "discipline",
        [
            DisciplineSpec::Fifo,
            DisciplineSpec::Wfq,
            DisciplineSpec::Fifo,
        ],
    );
    let g = |&(level, spec): &(usize, DisciplineSpec)| run_point(spec, level);
    assert_eq!(three.len(), 3);
    let serial = SweepRunner::serial().run(&three, g);
    let wide = SweepRunner::parallel(16).run(&three, g);
    assert_eq!(sweep_to_json(&serial), sweep_to_json(&wide));

    // An empty set: no points, no panic, an empty JSON array — from both
    // runners.
    let empty = ScenarioSet::over("level", Vec::<usize>::new());
    assert!(empty.is_empty());
    let serial_empty =
        SweepRunner::serial().run(&empty, |&(level,)| run_point(DisciplineSpec::Fifo, level));
    let parallel_empty =
        SweepRunner::parallel(8).run(&empty, |&(level,)| run_point(DisciplineSpec::Fifo, level));
    assert_eq!(sweep_to_json(&serial_empty), "[]");
    assert_eq!(sweep_to_json(&parallel_empty), "[]");

    // A single-point set through the same machinery.
    let single = ScenarioSet::over("discipline", [DisciplineSpec::Wfq]).by("level", [1usize]);
    let serial_single = SweepRunner::serial().run(&single, f);
    let parallel_single = SweepRunner::parallel(8).run(&single, f);
    assert_eq!(serial_single.len(), 1);
    assert_eq!(
        sweep_to_json(&serial_single),
        sweep_to_json(&parallel_single)
    );
}

#[test]
fn discipline_kind_axis_labels_match_experiment_output() {
    use ispn_scenario::AxisValue;
    assert_eq!(DisciplineKind::Wfq.axis_label(), "WFQ");
    assert_eq!(DisciplineKind::FifoPlus.axis_label(), "FIFO+");
    let set = table1::scenario_set();
    assert_eq!(set.len(), 2);
    assert_eq!(set.points()[0].tags[0].1, "WFQ");
    assert_eq!(set.points()[1].tags[0].1, "FIFO");
}
