//! Integration: the service interface and its enforcement (Section 8) —
//! token-bucket declarations, edge policing (drop and tag), and the
//! interaction between the source's own policer and the network's check.

use ispn_core::{Conformance, FlowSpec, ServiceClass, TokenBucketSpec};
use ispn_integration_tests::{chain, PACKET_BITS};
use ispn_net::{Agent, AgentApi, Delivery, FlowConfig, Network, PoliceAction};
use ispn_sim::SimTime;
use ispn_traffic::{CbrSource, OnOffConfig, OnOffSource, PoissonSource};
use std::cell::RefCell;
use std::rc::Rc;

#[test]
fn self_policed_sources_pass_the_edge_check_untouched() {
    // The paper's sources drop non-conforming packets at the source, so the
    // network's own (identical) edge filter never fires.
    let (topo, links) = chain(2);
    let mut net = Network::new(topo);
    let bucket = TokenBucketSpec::per_packets(85.0, 50.0, PACKET_BITS);
    let flow = net.add_flow(FlowConfig::predicted(
        vec![links[0]],
        0,
        bucket,
        SimTime::from_millis(100),
        0.001,
        PoliceAction::Drop,
    ));
    let source = OnOffSource::new(flow, OnOffConfig::paper(85.0, 9));
    let stats = source.stats();
    net.add_agent(Box::new(source));
    net.run_until(SimTime::from_secs(60));
    let r = net.monitor_mut().flow_report(flow);
    assert!(
        stats.borrow().policer_drops > 0,
        "the source policer does work"
    );
    assert_eq!(r.dropped_at_edge, 0, "the edge never needs to drop");
    assert_eq!(r.delivered, r.generated);
}

#[test]
fn unpoliced_burst_is_cut_down_by_the_edge_filter() {
    // A source that ignores its declaration: a Poisson stream at twice the
    // declared rate.  The edge filter drops the excess, so what the network
    // carries conforms to the declaration.
    let (topo, links) = chain(2);
    let mut net = Network::new(topo);
    let declared = TokenBucketSpec::per_packets(100.0, 10.0, PACKET_BITS);
    let flow = net.add_flow(FlowConfig::predicted(
        vec![links[0]],
        0,
        declared,
        SimTime::from_millis(100),
        0.001,
        PoliceAction::Drop,
    ));
    net.add_agent(Box::new(PoissonSource::new(flow, 200.0, PACKET_BITS, 4)));
    let horizon = SimTime::from_secs(60);
    net.run_until(horizon);
    let r = net.monitor_mut().flow_report(flow);
    assert!(r.dropped_at_edge > 0);
    // The carried rate is within the declared 100 pkt/s (plus bucket slack).
    let carried = r.delivered as f64 / horizon.as_secs_f64();
    assert!(carried < 105.0, "carried {carried} pkt/s");
    assert!(carried > 80.0, "conforming packets still get through");
}

/// Sink recording conformance tags.
#[derive(Default)]
struct TagCounter {
    tagged: Rc<RefCell<(u64, u64)>>,
}

impl Agent for TagCounter {
    fn on_packet(&mut self, delivery: Delivery, _api: &mut AgentApi) {
        let mut c = self.tagged.borrow_mut();
        if delivery.packet.tag == Conformance::Tagged {
            c.1 += 1;
        } else {
            c.0 += 1;
        }
    }
}

#[test]
fn tagging_forwards_excess_traffic_but_marks_it() {
    let (topo, links) = chain(2);
    let mut net = Network::new(topo);
    let counter = TagCounter::default();
    let counts = counter.tagged.clone();
    let sink = net.add_agent(Box::new(counter));
    let declared = TokenBucketSpec::per_packets(100.0, 5.0, PACKET_BITS);
    let mut cfg = FlowConfig::predicted(
        vec![links[0]],
        0,
        declared,
        SimTime::from_millis(100),
        0.001,
        PoliceAction::Tag,
    );
    cfg.sink = Some(sink);
    let flow = net.add_flow(cfg);
    net.add_agent(Box::new(CbrSource::new(flow, 200.0, PACKET_BITS)));
    net.run_until(SimTime::from_secs(30));
    let (conforming, tagged) = *counts.borrow();
    let r = net.monitor_mut().flow_report(flow);
    assert_eq!(r.delivered, conforming + tagged, "tagging never drops");
    assert!(tagged > 0, "excess traffic gets marked");
    assert!(conforming > 0, "conforming traffic stays unmarked");
    // Roughly half the 200 pkt/s stream exceeds the declared 100 pkt/s.
    let ratio = tagged as f64 / (conforming + tagged) as f64;
    assert!((ratio - 0.5).abs() < 0.1, "tagged fraction {ratio}");
}

#[test]
fn flow_spec_accessors_reflect_registration() {
    let (topo, links) = chain(3);
    let mut net = Network::new(topo);
    let bucket = TokenBucketSpec::per_packets(85.0, 50.0, PACKET_BITS);
    let g = net.add_flow(FlowConfig::guaranteed(links.clone(), 170_000.0));
    let p = net.add_flow(FlowConfig::predicted(
        vec![links[0]],
        1,
        bucket,
        SimTime::from_millis(200),
        0.01,
        PoliceAction::Drop,
    ));
    let d = net.add_flow(FlowConfig::datagram(vec![links[1]]));
    assert_eq!(net.num_flows(), 3);
    assert_eq!(
        net.flow_config(g).spec,
        FlowSpec::Guaranteed {
            clock_rate_bps: 170_000.0
        }
    );
    assert_eq!(net.flow_config(g).class, ServiceClass::Guaranteed);
    assert_eq!(net.flow_config(p).spec.bucket(), Some(bucket));
    assert_eq!(
        net.flow_config(p).class,
        ServiceClass::Predicted { priority: 1 }
    );
    assert_eq!(net.flow_config(d).spec, FlowSpec::Datagram);
    // Fixed delay accounts for per-hop serialization along the route.
    assert_eq!(net.fixed_delay(g, PACKET_BITS), SimTime::from_millis(2));
    assert_eq!(net.fixed_delay(p, PACKET_BITS), SimTime::from_millis(1));
}
