//! Integration: the guaranteed-service commitment end to end.
//!
//! The Parekh–Gallager bound must hold "independent of the other flows'
//! characteristics; they can be arbitrarily badly behaved and the bound
//! still applies" (Section 4).  We give one flow a reservation across a
//! multi-hop path, let a deliberately misbehaving source flood every link,
//! and check the measured worst-case delay against the advertised bound.

use ispn_core::bounds::pg_queueing_bound;
use ispn_core::{FlowSpec, ServiceClass, TokenBucketSpec};
use ispn_integration_tests::{chain, LINK_RATE, PACKET_BITS};
use ispn_net::{FlowConfig, Network};
use ispn_sched::{Averaging, Unified};
use ispn_sim::SimTime;
use ispn_traffic::{CbrSource, PoissonSource, TraceSource};

const DURATION: SimTime = SimTime::from_secs(30);

/// A CBR flow reserved at twice its rate, crossing `hops` flooded links,
/// never exceeds its P-G bound.
fn check_isolation_over(hops: usize) {
    let (topo, links) = chain(hops + 1);
    let mut net = Network::new(topo);

    let cbr_rate_pps = 100.0;
    let clock_rate = 2.0 * cbr_rate_pps * PACKET_BITS as f64;
    let route: Vec<_> = links.clone();
    let protected = net.add_flow(FlowConfig::guaranteed(route, clock_rate));

    // Flood every link with an unpoliced Poisson source: together with the
    // protected flow each link is offered ~95 % of its capacity, none of it
    // declared to the network.  (A flood that persistently exceeds the link
    // rate would eventually fill the shared 200-packet drop-tail buffer and
    // hit every class; buffer partitioning is outside the paper's design, so
    // the isolation claim is about scheduling, not about buffer overflow.)
    let mut floods = Vec::new();
    for &l in &links {
        floods.push(net.add_flow(FlowConfig::datagram(vec![l])));
    }
    for &l in &links {
        let mut u = Unified::new(LINK_RATE, 1, Averaging::RunningMean);
        u.add_guaranteed_flow(protected, clock_rate);
        net.set_discipline(l, u);
    }
    net.add_agent(Box::new(CbrSource::new(
        protected,
        cbr_rate_pps,
        PACKET_BITS,
    )));
    for (i, &f) in floods.iter().enumerate() {
        net.add_agent(Box::new(PoissonSource::new(
            f,
            850.0,
            PACKET_BITS,
            99 + i as u64,
        )));
    }

    net.run_until(DURATION);

    // b(r) for a CBR source clocked at twice its rate is one packet.
    let bound = pg_queueing_bound(
        TokenBucketSpec::new(clock_rate, PACKET_BITS as f64),
        clock_rate,
        hops,
        PACKET_BITS,
    );
    let r = net.monitor_mut().flow_report(protected);
    assert!(
        r.delivered > 2000,
        "protected flow delivered {}",
        r.delivered
    );
    assert_eq!(r.dropped_buffer, 0, "a reserved flow must not be dropped");
    assert!(
        r.max_delay <= bound.as_secs_f64() + 1e-6,
        "{hops}-hop max delay {:.4}s exceeds P-G bound {:.4}s",
        r.max_delay,
        bound.as_secs_f64()
    );
    // The flood really did load the links heavily.
    for i in 0..hops {
        let lr = net.monitor().link_report(i);
        assert!(
            lr.utilization > 0.90,
            "link {i} utilization {}",
            lr.utilization
        );
    }
}

#[test]
fn guaranteed_bound_holds_over_one_flooded_hop() {
    check_isolation_over(1);
}

#[test]
fn guaranteed_bound_holds_over_three_flooded_hops() {
    check_isolation_over(3);
}

#[test]
fn without_a_reservation_the_same_flow_suffers() {
    // Control experiment: the identical CBR flow, same flood, but carried as
    // datagram traffic under FIFO — its delay blows far past what the
    // reservation achieved, demonstrating that the bound above is earned by
    // isolation rather than by luck.
    let (topo, links) = chain(2);
    let mut net = Network::new(topo);
    let victim = net.add_flow(FlowConfig::datagram(vec![links[0]]));
    let flood = net.add_flow(FlowConfig::datagram(vec![links[0]]));
    net.add_agent(Box::new(CbrSource::new(victim, 100.0, PACKET_BITS)));
    net.add_agent(Box::new(PoissonSource::new(flood, 950.0, PACKET_BITS, 5)));
    net.run_until(DURATION);
    let r = net.monitor_mut().flow_report(victim);
    // With a reservation the 1-hop bound would be 2 packet times (10 ms at
    // the reserved rate); without one the victim sees queueing one to two
    // orders of magnitude larger.
    assert!(
        r.max_delay > 0.05,
        "expected heavy queueing without isolation, saw {:.4}s",
        r.max_delay
    );
}

#[test]
fn guaranteed_flows_share_between_themselves_by_clock_rate() {
    // Two guaranteed flows with 2:1 clock rates each dump a 90-packet burst
    // at the same instant.  While both are backlogged, WFQ serves them in
    // proportion to their clock rates, so the high-rate flow finishes its
    // burst (and accumulates delay) much earlier than the low-rate flow.
    let (topo, links) = chain(2);
    let mut net = Network::new(topo);
    let fast = net.add_flow(FlowConfig::guaranteed(vec![links[0]], 600_000.0));
    let slow = net.add_flow(FlowConfig::guaranteed(vec![links[0]], 300_000.0));
    let mut u = Unified::new(LINK_RATE, 1, Averaging::RunningMean);
    u.add_guaranteed_flow(fast, 600_000.0);
    u.add_guaranteed_flow(slow, 300_000.0);
    net.set_discipline(links[0], u);
    let schedule: Vec<SimTime> = (0..90u64).map(|i| SimTime::from_nanos(10 * i)).collect();
    net.add_agent(Box::new(TraceSource::uniform(
        fast,
        schedule.clone(),
        PACKET_BITS,
    )));
    net.add_agent(Box::new(TraceSource::uniform(slow, schedule, PACKET_BITS)));
    net.run_until(SimTime::from_secs(5));
    let rf = net.monitor_mut().flow_report(fast);
    let rs = net.monitor_mut().flow_report(slow);
    // No losses: 180 packets fit comfortably in the 200-packet buffer.
    assert_eq!(rf.delivered, 90);
    assert_eq!(rs.delivered, 90);
    // The fast flow's burst drains roughly twice as quickly, so its worst
    // and mean queueing delays are clearly smaller.
    assert!(
        rf.max_delay < 0.75 * rs.max_delay,
        "fast max {:.3}s vs slow max {:.3}s",
        rf.max_delay,
        rs.max_delay
    );
    assert!(rf.mean_delay < rs.mean_delay);
}

#[test]
fn predicted_class_does_not_destroy_guaranteed_service_class_isolation() {
    // Mixing classes: a guaranteed flow, a predicted flow and datagram
    // traffic all on one unified link; every packet of every flow is
    // delivered (no buffer pressure at this load) and classes are ordered
    // by design: guaranteed protected, predicted ahead of datagram.
    let (topo, links) = chain(2);
    let mut net = Network::new(topo);
    let g = net.add_flow(FlowConfig::guaranteed(vec![links[0]], 200_000.0));
    let p = net.add_flow(FlowConfig {
        route: vec![links[0]],
        spec: FlowSpec::Datagram,
        class: ServiceClass::Predicted { priority: 0 },
        edge_policer: None,
        sink: None,
    });
    let d = net.add_flow(FlowConfig::datagram(vec![links[0]]));
    let mut u = Unified::new(LINK_RATE, 1, Averaging::RunningMean);
    u.add_guaranteed_flow(g, 200_000.0);
    net.set_discipline(links[0], u);
    net.add_agent(Box::new(CbrSource::new(g, 150.0, PACKET_BITS)));
    net.add_agent(Box::new(CbrSource::new(p, 300.0, PACKET_BITS)));
    net.add_agent(Box::new(PoissonSource::new(d, 400.0, PACKET_BITS, 3)));
    net.run_until(SimTime::from_secs(20));
    for f in [g, p] {
        let r = net.monitor_mut().flow_report(f);
        assert_eq!(r.dropped_buffer, 0, "flow {f:?} lost packets");
        // A handful of packets may still be queued when the horizon cuts the
        // run off; everything else must have been delivered.
        assert!(r.delivered + 5 >= r.generated, "flow {f:?}: {r:?}");
    }
    let rg = net.monitor_mut().flow_report(g);
    let rp = net.monitor_mut().flow_report(p);
    let rd = net.monitor_mut().flow_report(d);
    // The guaranteed CBR flow (clocked at 200 pkt/s, i.e. above its 150
    // pkt/s rate) keeps its single-hop P-G bound of one packet time at the
    // clock rate (5 ms), whatever the other classes do.
    assert!(
        rg.max_delay <= 0.005 + 1e-9,
        "guaranteed max {}",
        rg.max_delay
    );
    // Within flow 0, the predicted class is served ahead of datagram traffic.
    assert!(rp.mean_delay <= rd.mean_delay);
}
