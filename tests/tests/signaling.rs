//! Integration: dynamic flow signaling over the live data plane.
//!
//! These scenarios assemble the control plane the way a downstream user
//! would — `ispn-net` for the switches, `ispn-signal` for setup/teardown,
//! `ispn-traffic` for sources — and check the properties the churn
//! experiments rely on: reservations follow the signaling messages, a
//! refusal leaves no residue even while competing traffic is in flight,
//! and everything is a pure function of the seed.

use ispn_core::admission::{AdmissionConfig, AdmissionController};
use ispn_core::TokenBucketSpec;
use ispn_experiments::churn::{self, ChurnConfig};
use ispn_experiments::PaperConfig;
use ispn_integration_tests::{chain, LINK_RATE};
use ispn_net::{FlowConfig, Network, PoliceAction};
use ispn_sched::{Averaging, Unified};
use ispn_signal::{LeasedSource, SignalEvent, Signaling};
use ispn_sim::SimTime;
use ispn_traffic::{OnOffConfig, OnOffSource};

fn admission_controlled_chain(switches: usize) -> (Network, Vec<ispn_net::LinkId>) {
    let (topo, links) = chain(switches);
    let mut net = Network::new(topo);
    for &l in &links {
        net.set_discipline(l, Unified::new(LINK_RATE, 2, Averaging::RunningMean));
        net.enable_admission(
            l,
            AdmissionController::new(
                AdmissionConfig::new(
                    LINK_RATE,
                    0.9,
                    vec![SimTime::from_millis(30), SimTime::from_millis(300)],
                ),
                10.0,
            ),
            SimTime::SECOND,
        );
    }
    (net, links)
}

/// A flow admitted by signaling carries traffic; after its teardown the
/// reservation is gone, the source is silent, and the link still serves
/// later arrivals.
#[test]
fn signalled_flow_lives_and_dies_with_its_lease() {
    let (mut net, links) = admission_controlled_chain(3);
    let mut sig = Signaling::default();

    let (_req, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 200_000.0));
    let events = sig.process_until(&mut net, SimTime::from_millis(100));
    assert!(matches!(events[0], SignalEvent::Accepted { .. }));

    let source = OnOffSource::new(flow, OnOffConfig::paper(85.0, 7));
    let (leased, lease) = LeasedSource::new(source);
    net.add_agent(Box::new(leased));
    sig.process_until(&mut net, SimTime::from_secs(20));
    let mid_run = net.monitor_mut().flow_report(flow);
    assert!(mid_run.delivered > 1000, "{mid_run:?}");

    lease.revoke();
    sig.teardown(&mut net, flow);
    let events = sig.process_until(&mut net, SimTime::from_secs(21));
    assert!(events
        .iter()
        .any(|e| matches!(e, SignalEvent::TornDown { .. })));
    for &l in &links {
        assert_eq!(net.admission(l).unwrap().reserved_guaranteed_bps(), 0.0);
    }

    // The source is quiet after teardown: nothing new is generated and at
    // most a handful of in-flight packets drain.
    let after_teardown = net.monitor_mut().flow_report(flow);
    sig.process_until(&mut net, SimTime::from_secs(30));
    let settled = net.monitor_mut().flow_report(flow);
    assert_eq!(settled.generated, after_teardown.generated);
    // A later arrival finds the freed capacity.
    let replacement = net
        .request_flow(FlowConfig::guaranteed(links.clone(), 800_000.0))
        .expect("released capacity is reusable");
    assert!(net.flow_active(replacement));
}

/// A refused setup must leave no reservation state anywhere, even when the
/// refusal happens deep in the path while admitted flows keep sending.
#[test]
fn rejections_under_live_traffic_leave_no_residue() {
    let (mut net, links) = admission_controlled_chain(4);
    let mut sig = Signaling::default();

    // Three admitted guaranteed flows load the middle link to 600 kbit/s.
    let mut admitted = Vec::new();
    for i in 0..3 {
        let (_r, f) = sig.submit(&mut net, FlowConfig::guaranteed(vec![links[1]], 200_000.0));
        admitted.push(f);
        let source = OnOffSource::new(f, OnOffConfig::paper(85.0, 100 + i));
        let (leased, _lease) = LeasedSource::new(source);
        net.add_agent(Box::new(leased));
    }
    sig.process_until(&mut net, SimTime::from_secs(1));

    // A wide flow that fits links 0 and 2 but not link 1 is refused at
    // hop 1 and rolled back.
    let (_req, wide) = sig.submit(
        &mut net,
        FlowConfig::guaranteed(links[..3].to_vec(), 400_000.0),
    );
    let events = sig.process_until(&mut net, SimTime::from_secs(2));
    assert!(
        events
            .iter()
            .any(|e| matches!(e, SignalEvent::Rejected { hop: 1, .. })),
        "{events:?}"
    );
    assert!(!net.flow_active(wide));
    assert!(net.installed_links(wide).is_empty());
    assert_eq!(
        net.admission(links[0]).unwrap().reserved_guaranteed_bps(),
        0.0
    );
    assert!((net.admission(links[1]).unwrap().reserved_guaranteed_bps() - 600_000.0).abs() < 1e-6);
    assert_eq!(
        net.admission(links[2]).unwrap().reserved_guaranteed_bps(),
        0.0
    );

    // The admitted flows were untouched by the failed setup.
    sig.process_until(&mut net, SimTime::from_secs(10));
    for &f in &admitted {
        assert!(net.monitor_mut().flow_report(f).delivered > 100);
    }
}

/// An adaptive predicted source renegotiates its declaration mid-flow; the
/// edge policer follows the agreed bucket.
#[test]
fn renegotiation_switches_the_edge_policer() {
    let (mut net, links) = admission_controlled_chain(2);
    let mut sig = Signaling::default();
    let small = TokenBucketSpec::per_packets(40.0, 10.0, 1000);
    let (_r, flow) = sig.submit(
        &mut net,
        FlowConfig::predicted(
            links.clone(),
            1,
            small,
            SimTime::from_millis(300),
            0.001,
            PoliceAction::Drop,
        ),
    );
    sig.process_until(&mut net, SimTime::from_secs(1));
    assert!(net.flow_active(flow));

    let roomy = TokenBucketSpec::per_packets(85.0, 50.0, 1000);
    sig.renegotiate_bucket(&mut net, flow, roomy);
    let events = sig.process_until(&mut net, SimTime::from_secs(2));
    assert!(
        events
            .iter()
            .any(|e| matches!(e, SignalEvent::Renegotiated { .. })),
        "{events:?}"
    );
    assert_eq!(net.flow_config(flow).spec.bucket(), Some(roomy));
    assert_eq!(net.flow_config(flow).edge_policer.unwrap().0, roomy);

    // With the roomier profile the paper's source now fits through the
    // edge: run it and observe essentially loss-free policing.
    let source = OnOffSource::new(flow, OnOffConfig::paper(85.0, 11));
    let (leased, _lease) = LeasedSource::new(source);
    net.add_agent(Box::new(leased));
    sig.process_until(&mut net, SimTime::from_secs(30));
    let report = net.monitor_mut().flow_report(flow);
    assert!(report.delivered > 1000, "{report:?}");
    assert_eq!(report.dropped_at_edge, 0, "{report:?}");
}

/// Two same-seed churn runs produce the identical accept/reject sequence
/// (the whole stack — arrivals, signaling, measurements, admissions — is a
/// pure function of the seed), and different seeds diverge.
#[test]
fn churn_accept_reject_sequence_is_deterministic_per_seed() {
    let cfg = ChurnConfig::new(PaperConfig::fast(), 1.0, 15.0);
    let a = churn::run(&cfg);
    let b = churn::run(&cfg);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.offered, b.offered);
    assert!((a.mean_utilization - b.mean_utilization).abs() < 1e-12);
    assert_eq!(a.residual_reserved_bps, 0.0);

    let mut other_seed = cfg.clone();
    other_seed.paper.seed ^= 0xDEAD_BEEF;
    let c = churn::run(&other_seed);
    assert_ne!(
        a.decisions, c.decisions,
        "different seeds should explore different churn"
    );
}
