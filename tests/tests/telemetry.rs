//! Integration: end-to-end run telemetry.  The counters are deterministic
//! across same-seed runs, and switching telemetry on changes nothing in a
//! report except the one appended `telemetry` key — the golden tables
//! cannot move.

use ispn_experiments::config::PaperConfig;
use ispn_experiments::{churn, table1, table3};
use ispn_scenario::{
    FlowDef, LinkProfile, MeasurementPlan, RunTelemetry, ScenarioBuilder, Sim, SourceSpec,
};
use ispn_sim::SimTime;

fn assert_deterministic_counters_match(a: &RunTelemetry, b: &RunTelemetry) {
    // Everything except `wall_s` / `events_per_sec`, which are wall-clock.
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.event_queue_high_water, b.event_queue_high_water);
    assert_eq!(a.peak_queue_depth, b.peak_queue_depth);
    assert_eq!(a.admission_accepted, b.admission_accepted);
    assert_eq!(a.admission_rejected, b.admission_rejected);
    assert_eq!(a.flow_table_bytes, b.flow_table_bytes);
    assert_eq!(a.reservation_state_bytes, b.reservation_state_bytes);
}

#[test]
fn same_seed_runs_report_identical_counters() {
    let cfg = PaperConfig::fast();
    let a = table1::telemetry_probe(&cfg);
    let b = table1::telemetry_probe(&cfg);
    assert_deterministic_counters_match(&a, &b);
    assert!(a.events_processed > 0);
    assert!(a.peak_queue_depth > 0);
    assert!(a.flow_table_bytes > 0);
}

#[test]
fn table3_probe_counts_the_full_unified_scenario() {
    let cfg = PaperConfig::fast();
    let a = table3::telemetry_probe(&cfg);
    let b = table3::telemetry_probe(&cfg);
    assert_deterministic_counters_match(&a, &b);
    // 22 classed flows plus TCP: a busier event loop than Table 1.
    assert!(a.events_processed > table1::telemetry_probe(&cfg).events_processed);
}

#[test]
fn churn_probe_sees_admission_verdicts_and_reservation_state() {
    let cfg = PaperConfig::fast();
    let t = churn::telemetry_probe(&cfg);
    // Churn is the one experiment with live signaling: the admission
    // counters and the reservation footprint must be visible.
    assert!(t.admission_accepted > 0, "{t:?}");
    assert_deterministic_counters_match(&t, &churn::telemetry_probe(&cfg));
}

fn small_sim() -> Sim {
    ScenarioBuilder::chain(2)
        .link_profile(LinkProfile {
            rate_bps: 1_000_000.0,
            propagation: SimTime::ZERO,
            buffer_packets: 20,
        })
        .flows((0..4).map(|i| {
            FlowDef::best_effort_realtime(0, 1).source(SourceSpec::onoff_paper(29.4, 7 + i))
        }))
        .build()
        .expect("the scenario is valid")
}

#[test]
fn telemetry_on_appends_one_key_and_changes_nothing_else() {
    let mut off_sim = small_sim();
    off_sim.run_until(SimTime::from_secs(10));
    let off = off_sim.report(&MeasurementPlan::default()).to_json();

    let mut on_sim = small_sim();
    on_sim.run_until(SimTime::from_secs(10));
    let on = on_sim
        .report(&MeasurementPlan::default().with_run_telemetry())
        .to_json();

    // The telemetry-off JSON carries no telemetry key at all…
    assert!(!off.contains("\"telemetry\""));
    // …and the telemetry-on JSON is byte-identical up to the single
    // appended key before the closing brace.
    let prefix = off.strip_suffix('}').expect("a JSON object");
    assert!(on.starts_with(prefix), "non-telemetry fields moved");
    assert!(on[prefix.len()..].starts_with(",\"telemetry\":{"));
    assert!(on.ends_with("}}"));
}
