//! Integration: multi-hop sharing (Section 6) — FIFO+ keeps the jitter of
//! long paths under control, and its header offsets behave sensibly.

use ispn_core::{FlowSpec, ServiceClass};
use ispn_integration_tests::{add_paper_flow, chain, packet_times};
use ispn_net::{Agent, AgentApi, Delivery, FlowConfig, Network};
use ispn_sched::{Averaging, Discipline, Fifo, FifoPlus};
use ispn_sim::SimTime;
use std::cell::RefCell;
use std::rc::Rc;

const DURATION: SimTime = SimTime::from_secs(40);
const HOPS: usize = 4;

/// Build the 4-hop chain with ten flows per link (two end-to-end flows plus
/// one-hop cross traffic), run it, and return (mean, p999) of an end-to-end
/// flow in packet times.
fn run_chain<F>(make: F) -> (f64, f64)
where
    F: Fn() -> Discipline,
{
    let (topo, links) = chain(HOPS + 1);
    let mut net = Network::new(topo);
    for &l in &links {
        net.set_discipline(l, make());
    }
    let mut seed = 0u64;
    let long_a = add_paper_flow(&mut net, links.clone(), seed);
    seed += 1;
    let _long_b = add_paper_flow(&mut net, links.clone(), seed);
    seed += 1;
    for &l in &links {
        for _ in 0..8 {
            add_paper_flow(&mut net, vec![l], seed);
            seed += 1;
        }
    }
    net.run_until(DURATION);
    let r = net.monitor_mut().flow_report(long_a);
    (packet_times(r.mean_delay), packet_times(r.p999_delay))
}

#[test]
fn fifo_plus_controls_the_long_path_tail_at_least_as_well_as_fifo() {
    let (fifo_mean, fifo_p999) = run_chain(|| Fifo::new().into());
    let (plus_mean, plus_p999) = run_chain(|| FifoPlus::new(Averaging::RunningMean).into());
    // Means comparable (the paper: "the mean delays are comparable in all
    // three cases", FIFO+ slightly shifting delay between path lengths).
    assert!(
        (fifo_mean - plus_mean).abs() / fifo_mean < 0.3,
        "means: FIFO {fifo_mean:.2} vs FIFO+ {plus_mean:.2}"
    );
    // The 4-hop tail under FIFO+ is no worse than under FIFO.
    assert!(
        plus_p999 <= fifo_p999 * 1.05,
        "4-hop p999: FIFO+ {plus_p999:.2} vs FIFO {fifo_p999:.2}"
    );
}

/// A sink that records the jitter offsets carried by delivered packets.
#[derive(Default)]
struct OffsetRecorder {
    offsets: Rc<RefCell<Vec<i64>>>,
}

impl Agent for OffsetRecorder {
    fn on_packet(&mut self, delivery: Delivery, _api: &mut AgentApi) {
        self.offsets
            .borrow_mut()
            .push(delivery.packet.jitter_offset_ns);
    }
}

#[test]
fn fifo_plus_offsets_accumulate_and_average_near_zero() {
    let (topo, links) = chain(HOPS + 1);
    let mut net = Network::new(topo);
    for &l in &links {
        net.set_discipline(l, FifoPlus::new(Averaging::RunningMean));
    }
    let recorder = OffsetRecorder::default();
    let offsets = recorder.offsets.clone();
    let sink = net.add_agent(Box::new(recorder));
    // The measured end-to-end flow, with its deliveries recorded.
    let measured = net.add_flow(
        FlowConfig {
            route: links.clone(),
            spec: FlowSpec::Datagram,
            class: ServiceClass::Predicted { priority: 0 },
            edge_policer: None,
            sink: None,
        }
        .with_sink(sink),
    );
    net.add_agent(Box::new(ispn_traffic::OnOffSource::new(
        measured,
        ispn_traffic::OnOffConfig::paper(85.0, 500),
    )));
    let mut seed = 0;
    for &l in &links {
        for _ in 0..9 {
            add_paper_flow(&mut net, vec![l], seed);
            seed += 1;
        }
    }
    net.run_until(DURATION);

    let offsets = offsets.borrow();
    assert!(
        offsets.len() > 1000,
        "need a meaningful sample ({})",
        offsets.len()
    );
    // Offsets are signed: some packets were luckier than average, some
    // unluckier.
    assert!(offsets.iter().any(|&o| o > 0));
    assert!(offsets.iter().any(|&o| o < 0));
    // The average offset (difference from the class average, accumulated
    // over the path) stays small compared to the delays themselves: the
    // mechanism redistributes jitter, it does not add delay.
    let mean_ms = offsets.iter().map(|&o| o as f64).sum::<f64>() / offsets.len() as f64 / 1e6;
    assert!(mean_ms.abs() < 5.0, "mean offset {mean_ms:.2} ms");
}

#[test]
fn jitter_grows_with_hops_under_every_discipline() {
    // Sanity check of the simulator itself: longer paths always see more
    // queueing (this is the premise of Section 6, before FIFO+ fixes the
    // growth *rate*).
    for make in [
        (|| Discipline::from(Fifo::new())) as fn() -> Discipline,
        || FifoPlus::new(Averaging::RunningMean).into(),
    ] {
        let (topo, links) = chain(2);
        let mut net = Network::new(topo);
        net.set_discipline(links[0], make());
        let one_hop = add_paper_flow(&mut net, vec![links[0]], 77);
        for s in 0..9 {
            add_paper_flow(&mut net, vec![links[0]], 100 + s);
        }
        net.run_until(DURATION);
        let one = net.monitor_mut().flow_report(one_hop);

        let (mean4, p9994) = run_chain(make);
        assert!(mean4 > packet_times(one.mean_delay));
        assert!(p9994 > packet_times(one.p999_delay) * 0.9);
    }
}
