//! Integration: adaptive play-back applications riding on predicted service
//! (Sections 2 and 3), driven by live deliveries from the network rather
//! than recorded traces.

use ispn_core::playback::{AdaptivePlayback, PlaybackOutcome, RigidPlayback};
use ispn_core::{FlowSpec, ServiceClass};
use ispn_integration_tests::{add_paper_flow, chain, PACKET_BITS};
use ispn_net::{Agent, AgentApi, Delivery, FlowConfig, Network};
use ispn_sched::{Averaging, FifoPlus};
use ispn_sim::SimTime;
use ispn_traffic::CbrSource;
use std::cell::RefCell;
use std::rc::Rc;

/// A sink driving both a rigid and an adaptive client from the same packets,
/// so they are compared under identical conditions.
struct DualPlaybackSink {
    state: Rc<RefCell<(RigidPlayback, AdaptivePlayback, u64)>>,
}

impl Agent for DualPlaybackSink {
    fn on_packet(&mut self, delivery: Delivery, _api: &mut AgentApi) {
        let mut s = self.state.borrow_mut();
        let d = delivery.total_delay;
        s.0.on_packet(d);
        if s.1.on_packet(d) == PlaybackOutcome::Late {
            s.2 += 1;
        }
    }
}

#[test]
fn adaptive_client_on_a_real_network_beats_the_rigid_one() {
    let (topo, links) = chain(2);
    let mut net = Network::new(topo);
    net.set_discipline(links[0], FifoPlus::new(Averaging::RunningMean));

    let advertised = SimTime::from_millis(80);
    let state = Rc::new(RefCell::new((
        RigidPlayback::new(advertised),
        AdaptivePlayback::new(advertised, 100, 0.99, 1.25),
        0u64,
    )));
    let sink = net.add_agent(Box::new(DualPlaybackSink {
        state: state.clone(),
    }));

    // The voice flow whose receiver adapts.
    let voice = net.add_flow(
        FlowConfig {
            route: vec![links[0]],
            spec: FlowSpec::Datagram,
            class: ServiceClass::Predicted { priority: 0 },
            edge_policer: None,
            sink: None,
        }
        .with_sink(sink),
    );
    net.add_agent(Box::new(CbrSource::new(voice, 64.0, PACKET_BITS)));
    // Nine bursty competitors.
    for i in 0..9 {
        add_paper_flow(&mut net, vec![links[0]], 300 + i);
    }
    net.run_until(SimTime::from_secs(60));

    let s = state.borrow();
    let rigid = s.0.stats();
    let adaptive = s.1.stats();
    assert!(
        rigid.played() + rigid.late() > 3000,
        "enough packets flowed"
    );
    // The rigid client at the a-priori bound loses essentially nothing…
    assert!(
        rigid.loss_rate() < 0.001,
        "rigid loss {}",
        rigid.loss_rate()
    );
    // …and the adaptive one stays close to its ~1% design target…
    assert!(
        adaptive.loss_rate() < 0.02,
        "adaptive loss {}",
        adaptive.loss_rate()
    );
    // …but the adaptive client's effective latency is far lower.
    assert!(
        adaptive.playback_point().mean() < 0.5 * rigid.playback_point().mean(),
        "adaptive {:.4}s vs rigid {:.4}s",
        adaptive.playback_point().mean(),
        rigid.playback_point().mean()
    );
}

#[test]
fn adaptive_client_rides_out_a_load_change_with_transient_loss_only() {
    // Start with a lightly loaded link, then add heavy competition halfway
    // through: the adaptive client must absorb the change (some transient
    // late packets, then recover) without the delivered loss rate exploding.
    let (topo, links) = chain(2);
    let mut net = Network::new(topo);
    net.set_discipline(links[0], FifoPlus::new(Averaging::RunningMean));

    let state = Rc::new(RefCell::new((
        RigidPlayback::new(SimTime::from_millis(80)),
        AdaptivePlayback::new(SimTime::from_millis(80), 100, 0.99, 1.25),
        0u64,
    )));
    let sink = net.add_agent(Box::new(DualPlaybackSink {
        state: state.clone(),
    }));
    let voice = net.add_flow(
        FlowConfig {
            route: vec![links[0]],
            spec: FlowSpec::Datagram,
            class: ServiceClass::Predicted { priority: 0 },
            edge_policer: None,
            sink: None,
        }
        .with_sink(sink),
    );
    net.add_agent(Box::new(CbrSource::new(voice, 64.0, PACKET_BITS)));
    // Two competitors at the start.
    for i in 0..2 {
        add_paper_flow(&mut net, vec![links[0]], 400 + i);
    }
    net.run_until(SimTime::from_secs(30));
    let point_before = state.borrow().1.playback_point();

    // Conditions change: seven more bursty sources join.
    for i in 0..7 {
        add_paper_flow(&mut net, vec![links[0]], 500 + i);
    }
    net.run_until(SimTime::from_secs(90));

    let s = state.borrow();
    let adaptive = &s.1;
    assert!(
        adaptive.playback_point() > point_before,
        "the play-back point must move out when load rises"
    );
    assert!(
        adaptive.stats().loss_rate() < 0.02,
        "overall adaptive loss stays small: {}",
        adaptive.stats().loss_rate()
    );
    assert!(adaptive.readjustments() > 10);
}
