//! Scenario-API integration tests.
//!
//! Two families:
//!
//! 1. **Bit-identity goldens.**  The experiment modules were migrated from
//!    hand-wired `Network` setup onto `ispn-scenario`'s declarative
//!    builder; the golden values below were captured from the
//!    pre-migration code at the fast configuration (same seeds) and must
//!    reproduce *exactly* — the scenario API is a redescription, not a
//!    re-simulation.  The churn experiment's accept/reject sequence is
//!    pinned the same way (its utilization floats moved by < 0.1 % when
//!    the facade started attaching admitted sources at their exact accept
//!    instants instead of the old 10 ms polling slices — that timing fix
//!    is the point, and the decision log proves the physics survived).
//!
//! 2. **Event-order regressions.**  The `Sim` facade must deliver
//!    control-plane and data-plane events in global event-time order, and
//!    outcomes must be independent of how coarsely the driver steps
//!    `run_until` — the property the old manual interleave violated.

use ispn_experiments::{churn, fig1, table1, table2, table3, PaperConfig};
use ispn_net::FlowConfig;
use ispn_scenario::{AdmissionSpec, DisciplineSpec, ScenarioBuilder, Sim};
use ispn_sched::Averaging;
use ispn_signal::SignalEvent;
use ispn_sim::SimTime;

// ---------------------------------------------------------------------------
// 1. Bit-identity goldens (captured pre-migration, PaperConfig::fast()).
// ---------------------------------------------------------------------------

#[test]
fn table1_reproduces_pre_migration_outputs_bit_identically() {
    let t = table1::run(&PaperConfig::fast());
    // (scheduler, mean, p999, all_flows_mean, worst_p999, utilization)
    let golden = [
        (
            "WFQ",
            3.3355440597150543,
            47.47733819399906,
            3.2938106047793743,
            85.96171830199998,
            0.824838748725185,
        ),
        (
            "FIFO",
            3.463461610488011,
            33.67439565799994,
            3.291794575860543,
            35.35185521000003,
            0.824838748725185,
        ),
    ];
    assert_eq!(t.rows.len(), golden.len());
    for (row, g) in t.rows.iter().zip(golden) {
        assert_eq!(row.scheduler, g.0);
        assert_eq!(row.mean, g.1, "{} mean", g.0);
        assert_eq!(row.p999, g.2, "{} p999", g.0);
        assert_eq!(row.all_flows_mean, g.3, "{} all-flows mean", g.0);
        assert_eq!(row.all_flows_worst_p999, g.4, "{} worst p999", g.0);
        assert_eq!(row.utilization, g.5, "{} utilization", g.0);
    }
}

#[test]
fn table2_reproduces_pre_migration_outputs_bit_identically() {
    let t = table2::run(&PaperConfig::fast());
    // (scheduler, path, mean, p999)
    let golden = [
        ("WFQ", 1, 3.0057837605462834, 35.6406106580001),
        ("WFQ", 2, 4.606674167312848, 47.91391325600015),
        ("WFQ", 3, 7.117294106713581, 68.90921641000027),
        ("WFQ", 4, 8.989058547741752, 63.05348119399974),
        ("FIFO", 1, 3.086512136874048, 27.941521218000116),
        ("FIFO", 2, 4.943311991348443, 37.285791158999714),
        ("FIFO", 3, 7.226810473175021, 57.35817955000014),
        ("FIFO", 4, 9.739795615641112, 60.04022941799985),
        ("FIFO+", 1, 3.086512136874048, 27.941521218000116),
        ("FIFO+", 2, 4.855304831443902, 33.75570668999967),
        ("FIFO+", 3, 6.998426910023445, 41.585382132999925),
        ("FIFO+", 4, 9.7269636483783, 46.323052805999794),
    ];
    assert_eq!(t.cells.len(), golden.len());
    for (scheduler, path, mean, p999) in golden {
        let c = t.cell(scheduler, path).expect("cell exists");
        assert_eq!(c.mean, mean, "{scheduler}/{path} mean");
        assert_eq!(c.p999, p999, "{scheduler}/{path} p999");
    }
    let golden_util = [
        ("WFQ", 0.8297932212273876),
        ("FIFO", 0.8297943850492079),
        ("FIFO+", 0.8297943850492079),
    ];
    for ((name, util), (gname, gutil)) in t.utilization.iter().zip(golden_util) {
        assert_eq!(*name, gname);
        assert_eq!(*util, gutil, "{gname} utilization");
    }
}

#[test]
fn table3_reproduces_pre_migration_outputs_bit_identically() {
    use fig1::FlowKind::*;
    let t = table3::run(&PaperConfig::fast());
    // (kind, path, mean, p999, max)
    let golden = [
        (
            GuaranteedPeak,
            4,
            12.128604819587656,
            16.102953207999995,
            16.521425999999998,
        ),
        (
            GuaranteedPeak,
            2,
            5.98437728839846,
            8.543608400000004,
            8.812675,
        ),
        (
            GuaranteedAverage,
            3,
            60.93809094426528,
            229.54825702400026,
            240.173198,
        ),
        (
            GuaranteedAverage,
            1,
            30.41427521532407,
            191.47930649400027,
            195.37718900000002,
        ),
        (PredictedHigh, 4, 3.195745239634141, 7.332719756, 8.1641),
        (
            PredictedHigh,
            2,
            1.5602691327543443,
            5.566761754000004,
            7.071768,
        ),
        (
            PredictedLow,
            3,
            18.073950812388794,
            95.95861688199977,
            122.827635,
        ),
        (
            PredictedLow,
            1,
            6.72494887969231,
            56.72035609700011,
            61.057106999999995,
        ),
    ];
    assert_eq!(t.rows.len(), golden.len());
    for (kind, path, mean, p999, max) in golden {
        let r = t.row(kind, path).expect("row exists");
        assert_eq!(r.mean, mean, "{kind:?}/{path} mean");
        assert_eq!(r.p999, p999, "{kind:?}/{path} p999");
        assert_eq!(r.max, max, "{kind:?}/{path} max");
    }
    assert_eq!(t.datagram_drop_rate, 0.0);
    assert_eq!(t.mean_utilization, 0.98811779774631);
    assert_eq!(t.realtime_utilization, 0.8296959565471256);
    assert_eq!(t.tcp_goodput_pps, vec![160.7, 155.4]);
}

#[test]
fn churn_reproduces_the_pre_migration_decision_sequence() {
    let out = churn::run(&churn::ChurnConfig::new(PaperConfig::fast(), 1.0, 15.0));
    // Captured from the pre-migration slice-stepped driver: same seed,
    // same 40 offered setups, same accept/reject sequence — the exact
    // event-time facade changes *when* admitted sources come alive (by up
    // to one old polling slice), not what the controllers decide.
    let golden: String = "AAAAAAAAAAARRARRAAAARAAAARARAARARAARARAA".into();
    let got: String = out
        .decisions
        .iter()
        .map(|&a| if a { 'A' } else { 'R' })
        .collect();
    assert_eq!(got, golden);
    assert_eq!(out.offered, 40);
    assert_eq!(out.accepted, 29);
    assert_eq!(out.rejected, 11);
    assert_eq!(out.violations, 0);
    assert_eq!(out.residual_reserved_bps, 0.0);
}

/// The flow-slot reclamation regression: under sustained churn the flow
/// table (slots × per-flow state, scheduler lane state included) must track
/// the **concurrent** population, not the total number of requests ever
/// made — departed and rejected flows hand their id slots back through
/// `take_drained_flows`/`recycle_flow_slot`, and the driver reuses them.
#[test]
fn churn_flow_table_is_bounded_by_concurrent_flows_not_total_requests() {
    use ispn_scenario::{
        ChurnSourceSpec, ChurnWorkload, DisciplineMatrix, TopologySpec, WorkloadSpec,
    };
    let pt = SimTime::MILLISECOND;
    let forward: Vec<ispn_net::LinkId> = (0..4).map(ispn_net::LinkId).collect();
    let workload = ChurnWorkload {
        arrivals_per_sec: 2.0,
        mean_holding_secs: 4.0,
        seed: 0xB10C,
        guaranteed_fraction: 1.0,
        guaranteed_rate_bps: 150_000.0,
        classes: Vec::new(),
        source: ChurnSourceSpec {
            avg_rate_pps: 85.0,
            seed_base: 0x1992,
        },
    };
    let mut sim = ScenarioBuilder::new(TopologySpec::chain_duplex(5))
        .disciplines(DisciplineMatrix::default().with_links(
            &forward,
            DisciplineSpec::Unified {
                priority_classes: 2,
                averaging: Averaging::RunningMean,
            },
        ))
        .admission_on(
            forward,
            AdmissionSpec {
                realtime_quota: 0.9,
                class_targets: vec![pt.mul_f64(30.0), pt.mul_f64(300.0)],
                measurement_window_secs: 10.0,
                util_safety_factor: Some(1.6),
                sample_interval: SimTime::SECOND,
            },
        )
        .workload(WorkloadSpec::Churn(workload))
        .build()
        .expect("valid churn scenario");
    let mut peak_concurrent = 0usize;
    for s in 1..=90u64 {
        sim.run_until(SimTime::from_secs(s));
        peak_concurrent = peak_concurrent.max(sim.churn_admitted().len());
    }
    let decisions = sim.signaling().decision_log().len();
    let accepted = sim
        .signaling()
        .decision_log()
        .iter()
        .filter(|&&(_, a)| a)
        .count();
    let slots = sim.network().num_flows();
    assert!(
        decisions >= 100,
        "90 s at 2/s must offer plenty: {decisions}"
    );
    assert!(peak_concurrent >= 2, "{peak_concurrent}");
    // Reclamation is what keeps slots << requests: without it, every one
    // of the ~180 requests would hold a slot forever.
    assert!(
        slots < decisions / 2,
        "flow table grew with total requests: {slots} slots for {decisions} requests"
    );
    assert!(
        slots <= 4 * peak_concurrent + 8,
        "slots ({slots}) not bounded by the concurrent population ({peak_concurrent})"
    );
    // The admission history survives reclamation: one measurement record
    // per accepted request, even though ids were reused.
    let reports = sim.churn_flow_reports();
    assert_eq!(reports.len(), accepted);
    assert!(reports.iter().all(|r| r.hops >= 1 && r.hops <= 4));
}

#[test]
fn fig1_topology_built_by_the_preset_matches_the_hand_wired_shape() {
    let cfg = PaperConfig::paper();
    let net = fig1::Fig1Network::build(&cfg);
    assert_eq!(net.nodes.len(), 5);
    assert_eq!(net.links.len(), 4);
    assert_eq!(net.reverse_links.len(), 4);
    for i in 0..4 {
        let f = net.topology.link(net.links[i]);
        assert_eq!((f.from, f.to), (net.nodes[i], net.nodes[i + 1]));
        assert_eq!(f.rate_bps, cfg.link_rate_bps);
        assert_eq!(f.buffer_packets, cfg.buffer_packets);
        let r = net.topology.link(net.reverse_links[i]);
        assert_eq!((r.from, r.to), (net.nodes[i + 1], net.nodes[i]));
    }
}

// ---------------------------------------------------------------------------
// 2. Event-order regressions for the Sim facade.
// ---------------------------------------------------------------------------

/// A miniature churn driver over the facade: three staggered setups racing
/// for one link's quota, teardown of the winner, then a retry — enough to
/// interleave control messages, data traffic and scheduled actions.
fn mini_churn(step: Option<SimTime>) -> (Vec<(SimTime, bool)>, String, u64, f64) {
    let mut sim = ScenarioBuilder::chain(3)
        .discipline(DisciplineSpec::Unified {
            priority_classes: 2,
            averaging: Averaging::RunningMean,
        })
        .admission(AdmissionSpec::paper(vec![
            SimTime::from_millis(30),
            SimTime::from_millis(300),
        ]))
        .build()
        .expect("valid scenario");
    let links = sim.built().forward.clone();

    let log: std::rc::Rc<std::cell::RefCell<Vec<(SimTime, bool)>>> = Default::default();
    let log2 = log.clone();
    sim.on_signal(move |event, sim| match event {
        SignalEvent::Accepted { flow, at, .. } => {
            log2.borrow_mut().push((*at, true));
            // An admitted flow starts sending the instant it is confirmed.
            let source = ispn_traffic::CbrSource::new(*flow, 200.0, 1000);
            sim.network_mut().add_agent(Box::new(source));
        }
        SignalEvent::Rejected { at, .. } => log2.borrow_mut().push((*at, false)),
        _ => {}
    });

    for (t, rate) in [(5u64, 500_000.0), (8, 300_000.0), (11, 400_000.0)] {
        let route = links.clone();
        sim.schedule_at(SimTime::from_millis(t), move |sim: &mut Sim| {
            sim.submit(FlowConfig::guaranteed(route, rate));
        });
    }
    // Tear the first winner down at 50 ms, retry the refused rate at 60 ms.
    sim.schedule_at(SimTime::from_millis(50), |sim: &mut Sim| {
        sim.teardown(ispn_core::FlowId(0));
    });
    let route = links.clone();
    sim.schedule_at(SimTime::from_millis(60), move |sim: &mut Sim| {
        sim.submit(FlowConfig::guaranteed(route, 400_000.0));
    });

    let end = SimTime::from_millis(200);
    match step {
        None => {
            sim.run_until(end);
        }
        Some(dt) => {
            let mut t = SimTime::ZERO;
            while t < end {
                t = (t + dt).min(end);
                sim.run_until(t);
            }
        }
    }
    let decisions: String = sim
        .signaling()
        .decision_log()
        .iter()
        .map(|&(_, a)| if a { 'A' } else { 'R' })
        .collect();
    // The second admitted flow's traffic: delivered count and mean delay
    // must also be step-width independent.
    let r = sim
        .network_mut()
        .monitor_mut()
        .flow_report(ispn_core::FlowId(1));
    let log = log.borrow().clone();
    (log, decisions, r.delivered, r.mean_delay)
}

#[test]
fn facade_delivers_control_events_in_global_event_time_order() {
    let (log, decisions, delivered, _) = mini_churn(None);
    assert!(delivered > 20, "the admitted CBR flow moved traffic");
    assert_eq!(log.len(), 4, "{log:?}");
    // Completions arrive in nondecreasing event time.
    for w in log.windows(2) {
        assert!(w[0].0 <= w[1].0, "out of order: {log:?}");
    }
    // The quota (900 kbit/s) admits 500 k and 300 k, refuses the 400 k
    // while both are up, and admits the 60 ms retry after the teardown.
    assert_eq!(decisions, "AARA");
    // Each setup crosses two 1 Mbit/s links: confirmation exactly 2 ms
    // after submission; the refusal happens at the first hop, instantly.
    assert_eq!(log[0], (SimTime::from_millis(7), true));
    assert_eq!(log[1], (SimTime::from_millis(10), true));
    assert_eq!(log[2], (SimTime::from_millis(11), false));
    assert_eq!(log[3], (SimTime::from_millis(62), true));
}

#[test]
fn outcomes_are_independent_of_stepping_granularity() {
    // The regression the old manual interleave fails: stepping the same
    // same-seed churn run with different slice widths must change nothing,
    // because events are processed at their own times, not at slice
    // boundaries.
    let whole = mini_churn(None);
    let fine = mini_churn(Some(SimTime::from_micros(700)));
    let coarse = mini_churn(Some(SimTime::from_millis(13)));
    assert_eq!(whole, fine);
    assert_eq!(whole, coarse);
}

#[test]
fn full_churn_run_is_deterministic_through_the_facade() {
    // Same-seed churn through the migrated driver: byte-for-byte equal
    // outcomes, including the utilization floats.
    let cfg = churn::ChurnConfig::new(PaperConfig::fast(), 0.8, 15.0);
    let a = churn::run(&cfg);
    let b = churn::run(&cfg);
    assert_eq!(a.decisions, b.decisions);
    assert_eq!(a.mean_utilization, b.mean_utilization);
    assert_eq!(a.worst_bound_fraction, b.worst_bound_fraction);
}
