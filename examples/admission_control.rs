//! Measurement-based admission control (Section 9).
//!
//! First walks the Section-9 criterion through a hand-made sequence of
//! reservation requests against a single 1 Mbit/s link, printing each
//! decision and the measurements it was based on; then runs the dynamic
//! experiment from `ispn-experiments` comparing the criterion against an
//! accept-everything policy.
//!
//! Run with: `cargo run --release -p ispn-examples --bin admission_control`

use ispn_core::admission::{AdmissionConfig, AdmissionController};
use ispn_core::TokenBucketSpec;
use ispn_experiments::config::PaperConfig;
use ispn_experiments::extensions::admission;
use ispn_experiments::report;
use ispn_sim::SimTime;

fn main() {
    println!("== Static walk-through of the Section-9 criterion ==\n");
    let link = 1_000_000.0;
    let targets = vec![SimTime::from_millis(30), SimTime::from_millis(300)];
    let mut controller = AdmissionController::new(AdmissionConfig::new(link, 0.9, targets), 30.0);

    // Guaranteed reservations first: they are a pure worst-case rate check.
    for rate in [170_000.0, 170_000.0, 85_000.0] {
        let d = controller.request_guaranteed(rate);
        println!("guaranteed request for {:>7.0} bit/s -> {:?}", rate, d);
    }

    // Predicted requests arrive while the link is already measured as busy.
    let bucket = TokenBucketSpec::per_packets(85.0, 50.0, 1000);
    let mut now = SimTime::from_secs(1);
    for step in 0..6 {
        // Simulated measurement feed: utilization creeping up, low class
        // delay approaching its target.
        controller.observe_utilization(now, 400_000.0 + 80_000.0 * step as f64);
        controller.observe_class_delay(now, 1, SimTime::from_millis(40 * step));
        let d = controller.request_predicted(now, bucket, 1);
        let m = controller.measurement(now);
        println!(
            "t={:>2}s  ν̂={:>7.0} bit/s  d̂_low={:>6.1} ms  predicted (A,50) request -> {:?}",
            now.as_secs_f64(),
            m.realtime_util_bps,
            m.class_delay[1].as_millis_f64(),
            d
        );
        now += SimTime::from_secs(1);
    }
    println!(
        "\naccepted {} requests, rejected {}\n",
        controller.accepted(),
        controller.rejected()
    );

    println!("== Dynamic experiment: Section-9 criterion vs accept-everything ==\n");
    let cfg = if std::env::args().any(|a| a == "--fast") {
        PaperConfig::fast()
    } else {
        PaperConfig::medium()
    };
    let (controlled, uncontrolled) = admission::run_comparison(&cfg, 20);
    println!("{}", report::render_admission(&controlled, &uncontrolled));
}
