//! Dynamic flows: set up, renegotiate and tear down reservations while the
//! network runs — the Sections 8–9 service interface end to end.
//!
//! A three-switch chain runs the unified scheduler with measurement-based
//! admission control on both links.  Flows then arrive *during* the run:
//! each setup message walks its route hop by hop through `ispn-signal`,
//! every switch consults its live measurements, and the last request is
//! refused — demonstrating the rollback of partial reservations.
//!
//! The whole scenario is declared through `ispn-scenario`: the builder
//! assembles topology, disciplines and admission control, and the [`Sim`]
//! facade steps control and data plane in global event-time order — the
//! mid-run actions below are scheduled at their exact simulated instants
//! instead of being wedged between manual `process_until` calls.
//!
//! Run with: `cargo run -p ispn-examples --example dynamic_flows`

use ispn_core::TokenBucketSpec;
use ispn_net::{FlowConfig, PoliceAction};
use ispn_scenario::{AdmissionSpec, DisciplineSpec, ScenarioBuilder, Sim};
use ispn_sched::Averaging;
use ispn_signal::{LeasedSource, SignalEvent};
use ispn_sim::SimTime;
use ispn_traffic::{OnOffConfig, OnOffSource};

fn main() {
    // A chain of three switches: two 1 Mbit/s links, unified scheduling,
    // Section-9 admission control fed live by the network's monitor.
    let mut sim = ScenarioBuilder::chain(3)
        .discipline(DisciplineSpec::Unified {
            priority_classes: 2,
            averaging: Averaging::RunningMean,
        })
        .admission(AdmissionSpec::paper(vec![
            SimTime::from_millis(30),
            SimTime::from_millis(300),
        ]))
        .build()
        .expect("valid scenario");
    let links = sim.built().forward.clone();

    // Completed transactions are announced the instant they happen.
    sim.on_signal(|event, _| announce(event));

    // t = 0 s: a guaranteed "video" flow asks for 500 kbit/s end to end.
    let (_r1, video) = sim.submit(FlowConfig::guaranteed(links.clone(), 500_000.0));
    // t = 0 s: an adaptive predicted "voice" flow declares a small bucket.
    let small = TokenBucketSpec::per_packets(40.0, 10.0, 1000);
    let (_r2, voice) = sim.submit(FlowConfig::predicted(
        links.clone(),
        1,
        small,
        SimTime::from_millis(600),
        0.001,
        PoliceAction::Drop,
    ));

    // t = 100 ms: both setups have confirmed; attach the leased sources.
    sim.schedule_at(SimTime::from_millis(100), move |sim: &mut Sim| {
        for (flow, seed, rate) in [(video, 1u64, 170.0), (voice, 2, 40.0)] {
            let (source, _lease) =
                LeasedSource::new(OnOffSource::new(flow, OnOffConfig::paper(rate, seed)));
            sim.network_mut().add_agent(Box::new(source));
        }
    });

    // t = 5 s: the adaptive voice client widens its declaration to the
    // paper's (85 pkt/s, 50 pkt) — every hop re-runs the criterion.
    sim.schedule_at(SimTime::from_secs(5), move |sim: &mut Sim| {
        let roomy = TokenBucketSpec::per_packets(85.0, 50.0, 1000);
        sim.renegotiate_bucket(voice, roomy);
    });

    // t = 10 s: a greedy 600 kbit/s guaranteed request must be refused —
    // 500 k (video) + 600 k exceeds the 900 k real-time quota — and its
    // partial reservation on the first link rolls back.
    let greedy_route = links.clone();
    sim.schedule_at(SimTime::from_secs(10), move |sim: &mut Sim| {
        let (_r3, _greedy) = sim.submit(FlowConfig::guaranteed(greedy_route, 600_000.0));
    });

    // t = 20 s: the video flow hangs up; its capacity is free again.
    sim.schedule_at(SimTime::from_secs(20), move |sim: &mut Sim| {
        sim.teardown(video);
    });

    sim.run_until(SimTime::from_secs(30));

    println!("\nafter 30 simulated seconds:");
    for (name, flow) in [("video", video), ("voice", voice)] {
        let r = sim.network_mut().monitor_mut().flow_report(flow);
        println!(
            "  {name:>5}: {} delivered, mean queueing delay {:.2} ms, max {:.2} ms",
            r.delivered,
            r.mean_delay * 1e3,
            r.max_delay * 1e3
        );
    }
    for &l in &links {
        println!(
            "  {:?}: {:.0} bps still reserved",
            l,
            sim.network()
                .admission(l)
                .expect("admission enabled")
                .reserved_guaranteed_bps()
        );
    }
}

fn announce(event: &SignalEvent) {
    match event {
        SignalEvent::Accepted { flow, at, .. } => println!("[{at}] {flow} admitted"),
        SignalEvent::Rejected {
            flow,
            hop,
            reason,
            at,
            ..
        } => println!("[{at}] {flow} refused at hop {hop}: {reason}"),
        SignalEvent::TornDown { flow, at } => println!("[{at}] {flow} torn down"),
        SignalEvent::Renegotiated { flow, at, .. } => {
            println!("[{at}] {flow} renegotiated its traffic declaration")
        }
        SignalEvent::RenegotiationRejected {
            flow, reason, at, ..
        } => println!("[{at}] {flow} renegotiation refused: {reason}"),
    }
}
