//! Dynamic flows: set up, renegotiate and tear down reservations while the
//! network runs — the Sections 8–9 service interface end to end.
//!
//! A three-switch chain runs the unified scheduler with measurement-based
//! admission control on both links.  Flows then arrive *during* the run:
//! each setup message walks its route hop by hop through `ispn-signal`,
//! every switch consults its live measurements, and the last request is
//! refused — demonstrating the rollback of partial reservations.
//!
//! Run with: `cargo run -p ispn-examples --example dynamic_flows`

use ispn_core::admission::{AdmissionConfig, AdmissionController};
use ispn_core::TokenBucketSpec;
use ispn_net::{FlowConfig, Network, PoliceAction, Topology};
use ispn_sched::{Averaging, Unified};
use ispn_signal::{LeasedSource, SignalEvent, Signaling};
use ispn_sim::SimTime;
use ispn_traffic::{OnOffConfig, OnOffSource};

const MBIT: f64 = 1_000_000.0;

fn main() {
    // A chain of three switches: two 1 Mbit/s links, unified scheduling,
    // Section-9 admission control fed live by the network's monitor.
    let (topo, _nodes, links) = Topology::chain(3, MBIT, SimTime::ZERO, 200);
    let mut net = Network::new(topo);
    for &l in &links {
        net.set_discipline(l, Box::new(Unified::new(MBIT, 2, Averaging::RunningMean)));
        net.enable_admission(
            l,
            AdmissionController::new(
                AdmissionConfig::new(
                    MBIT,
                    0.9,
                    vec![SimTime::from_millis(30), SimTime::from_millis(300)],
                ),
                10.0,
            ),
            SimTime::SECOND,
        );
    }
    let mut sig = Signaling::default();

    // t = 0 s: a guaranteed "video" flow asks for 500 kbit/s end to end.
    let (_r1, video) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 500_000.0));
    // t = 0 s: an adaptive predicted "voice" flow declares a small bucket.
    let small = TokenBucketSpec::per_packets(40.0, 10.0, 1000);
    let (_r2, voice) = sig.submit(
        &mut net,
        FlowConfig::predicted(
            links.clone(),
            1,
            small,
            SimTime::from_millis(600),
            0.001,
            PoliceAction::Drop,
        ),
    );
    for e in sig.process_until(&mut net, SimTime::from_millis(100)) {
        announce(&e);
    }
    for (flow, seed, rate) in [(video, 1u64, 170.0), (voice, 2, 40.0)] {
        let (source, _lease) =
            LeasedSource::new(OnOffSource::new(flow, OnOffConfig::paper(rate, seed)));
        net.add_agent(Box::new(source));
    }

    // t = 5 s: the adaptive voice client widens its declaration to the
    // paper's (85 pkt/s, 50 pkt) — every hop re-runs the criterion.
    sig.process_until(&mut net, SimTime::from_secs(5));
    let roomy = TokenBucketSpec::per_packets(85.0, 50.0, 1000);
    sig.renegotiate_bucket(&mut net, voice, roomy);

    // t = 10 s: a greedy 600 kbit/s guaranteed request must be refused —
    // 500 k (video) + 600 k exceeds the 900 k real-time quota — and its
    // partial reservation on the first link rolls back.
    for e in sig.process_until(&mut net, SimTime::from_secs(10)) {
        announce(&e);
    }
    let (_r3, _greedy) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 600_000.0));

    // t = 20 s: the video flow hangs up; its capacity is free again.
    for e in sig.process_until(&mut net, SimTime::from_secs(20)) {
        announce(&e);
    }
    sig.teardown(&mut net, video);
    for e in sig.process_until(&mut net, SimTime::from_secs(30)) {
        announce(&e);
    }

    println!("\nafter 30 simulated seconds:");
    for (name, flow) in [("video", video), ("voice", voice)] {
        let r = net.monitor_mut().flow_report(flow);
        println!(
            "  {name:>5}: {} delivered, mean queueing delay {:.2} ms, max {:.2} ms",
            r.delivered,
            r.mean_delay * 1e3,
            r.max_delay * 1e3
        );
    }
    for &l in &links {
        println!(
            "  {:?}: {:.0} bps still reserved",
            l,
            net.admission(l)
                .expect("admission enabled")
                .reserved_guaranteed_bps()
        );
    }
}

fn announce(event: &SignalEvent) {
    match event {
        SignalEvent::Accepted { flow, at, .. } => println!("[{at}] {flow} admitted"),
        SignalEvent::Rejected {
            flow,
            hop,
            reason,
            at,
            ..
        } => println!("[{at}] {flow} refused at hop {hop}: {reason}"),
        SignalEvent::TornDown { flow, at } => println!("[{at}] {flow} torn down"),
        SignalEvent::Renegotiated { flow, at, .. } => {
            println!("[{at}] {flow} renegotiated its traffic declaration")
        }
        SignalEvent::RenegotiationRejected {
            flow, reason, at, ..
        } => println!("[{at}] {flow} renegotiation refused: {reason}"),
    }
}
