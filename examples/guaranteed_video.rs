//! Guaranteed service for a bursty video source (Section 4).
//!
//! The example walks through the guaranteed-service workflow:
//!
//! 1. characterize the source's traffic with its `b(r)` curve (the minimal
//!    token-bucket depth at each candidate clock rate),
//! 2. pick a clock rate from the resulting delay/bandwidth trade-off
//!    (the Parekh–Gallager bound is `b(r)/r` + per-hop terms),
//! 3. reserve that rate across a three-hop path under the unified scheduler,
//! 4. verify that the measured worst-case delay honours the bound even while
//!    an unpoliced, misbehaving source floods the same links.
//!
//! Run with: `cargo run -p ispn-examples --bin guaranteed_video`

use ispn_core::bounds::pg_queueing_bound;
use ispn_core::token_bucket::minimal_depth_for_rate;
use ispn_core::TokenBucketSpec;
use ispn_net::{FlowConfig, Network, Topology};
use ispn_sched::{Averaging, Unified};
use ispn_sim::{Pcg64, SimTime};
use ispn_traffic::{OnOffConfig, OnOffSource, PoissonSource};

const PKT: u64 = 1000;
const LINK: f64 = 1_000_000.0;

fn main() {
    // --- 1. Record a sample of the video source and characterize it. ------
    let trace = record_video_trace(120.0, 42);
    println!(
        "recorded {} packets of the video source (120 pkt/s average, bursty)",
        trace.len()
    );
    println!("\n   clock rate r      b(r)            3-hop P-G bound");
    let mut chosen = None;
    for rate_pps in [150.0, 200.0, 240.0, 300.0] {
        let rate_bps = rate_pps * PKT as f64;
        let depth = minimal_depth_for_rate(&trace, rate_bps);
        let bound = pg_queueing_bound(
            TokenBucketSpec::new(rate_bps, depth.max(1.0)),
            rate_bps,
            3,
            PKT,
        );
        println!(
            "   {rate_pps:6.0} pkt/s   {:6.1} packets   {:8.2} ms",
            depth / PKT as f64,
            bound.as_millis_f64()
        );
        if rate_pps == 240.0 {
            chosen = Some((rate_bps, depth.max(1.0)));
        }
    }
    let (clock_rate, depth) = chosen.expect("240 pkt/s is in the sweep");
    let bound = pg_queueing_bound(TokenBucketSpec::new(clock_rate, depth), clock_rate, 3, PKT);
    println!(
        "\nreserving r = 240 pkt/s; advertised queueing bound {:.2} ms\n",
        bound.as_millis_f64()
    );

    // --- 2. Build a 3-hop path and reserve the rate at every switch. -------
    let (topo, _nodes, links) = Topology::chain(4, LINK, SimTime::ZERO, 200);
    let mut net = Network::new(topo);
    let video = net.add_flow(FlowConfig::guaranteed(links.clone(), clock_rate));
    // A well-behaved background flow plus a misbehaving flood on every link.
    let mut background = Vec::new();
    for &l in &links {
        background.push(net.add_flow(FlowConfig::datagram(vec![l])));
        background.push(net.add_flow(FlowConfig::datagram(vec![l])));
    }
    for &l in &links {
        let mut u = Unified::new(LINK, 2, Averaging::RunningMean);
        u.add_guaranteed_flow(video, clock_rate);
        net.set_discipline(l, u);
    }

    // --- 3. Traffic: the video source plus the background. ----------------
    net.add_agent(Box::new(OnOffSource::new(video, video_config(42))));
    for (i, &f) in background.iter().enumerate() {
        if i % 2 == 0 {
            // A polite on/off source…
            net.add_agent(Box::new(OnOffSource::new(
                f,
                OnOffConfig::paper(85.0, 1000 + i as u64),
            )));
        } else {
            // …and a misbehaving unpoliced flood at 85% of the link rate.
            net.add_agent(Box::new(PoissonSource::new(f, 850.0, PKT, 2000 + i as u64)));
        }
    }

    net.run_until(SimTime::from_secs(300));

    // --- 4. Check the commitment. ------------------------------------------
    let r = net.monitor_mut().flow_report(video);
    println!("video flow over 3 congested hops (each flooded by a misbehaving source):");
    println!(
        "   delivered {:6} packets; mean {:.2} ms, 99.9th {:.2} ms, max {:.2} ms",
        r.delivered,
        r.mean_delay * 1e3,
        r.p999_delay * 1e3,
        r.max_delay * 1e3
    );
    println!(
        "   Parekh-Gallager bound {:.2} ms — {}",
        bound.as_millis_f64(),
        if r.max_delay <= bound.as_secs_f64() {
            "honoured despite the flood (isolation works)"
        } else {
            "VIOLATED (this should not happen)"
        }
    );
    for (i, _) in links.iter().enumerate() {
        let lr = net.monitor().link_report(i);
        println!(
            "   link {}: utilization {:5.1}%, {} drops",
            i + 1,
            lr.utilization * 100.0,
            lr.drops
        );
    }
}

/// The "video" source: 120 pkt/s on average, bursts of ~12 frames at 480 pkt/s.
fn video_config(seed: u64) -> OnOffConfig {
    OnOffConfig {
        avg_rate_pps: 120.0,
        peak_rate_pps: 480.0,
        mean_burst_pkts: 12.0,
        packet_bits: PKT,
        policer: None,
        start_offset: SimTime::ZERO,
        seed,
    }
}

/// Record the generation times of the video source (without a network) so
/// its `b(r)` curve can be computed.
fn record_video_trace(seconds: f64, seed: u64) -> Vec<(SimTime, u64)> {
    let cfg = video_config(seed);
    let mut rng = Pcg64::new(seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    while t < seconds {
        let burst = rng.geometric(cfg.mean_burst_pkts);
        for _ in 0..burst {
            if t >= seconds {
                break;
            }
            out.push((SimTime::from_secs_f64(t), PKT));
            t += 1.0 / cfg.peak_rate_pps;
        }
        t += rng.exponential(cfg.mean_idle_secs());
    }
    out
}
