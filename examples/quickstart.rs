//! Quickstart: build a two-switch network, give one flow a guaranteed-service
//! reservation under the unified scheduler, let a bursty best-effort flow
//! compete with it, and look at the delays each one receives.
//!
//! Run with: `cargo run -p ispn-examples --bin quickstart`

use ispn_core::bounds::pg_queueing_bound;
use ispn_core::{FlowId, TokenBucketSpec};
use ispn_net::{FlowConfig, Network, Topology};
use ispn_sched::{Averaging, Unified};
use ispn_sim::SimTime;
use ispn_traffic::{CbrSource, OnOffConfig, OnOffSource};

fn main() {
    // 1. A topology: two switches joined by a 1 Mbit/s link with a
    //    200-packet output buffer.
    let mut topo = Topology::new();
    let a = topo.add_node();
    let b = topo.add_node();
    let link = topo.add_link(a, b, 1_000_000.0, SimTime::ZERO, 200);
    let mut net = Network::new(topo);

    // 2. Flows: a 100-packet/s constant-rate "voice" flow asking for
    //    guaranteed service with a 150 kbit/s clock rate, and a bursty
    //    best-effort flow with an average rate of 600 packets/s.
    let voice = net.add_flow(FlowConfig::guaranteed(vec![link], 150_000.0));
    let noise = net.add_flow(FlowConfig::datagram(vec![link]));

    // 3. The switch runs the unified scheduler: WFQ isolation for the
    //    guaranteed flow, FIFO+/priority sharing for everything else.
    let mut unified = Unified::new(1_000_000.0, 2, Averaging::RunningMean);
    unified.add_guaranteed_flow(voice, 150_000.0);
    net.set_discipline(link, unified);

    // 4. Traffic sources.
    net.add_agent(Box::new(CbrSource::new(voice, 100.0, 1000)));
    net.add_agent(Box::new(OnOffSource::new(
        noise,
        OnOffConfig {
            avg_rate_pps: 600.0,
            peak_rate_pps: 1200.0,
            mean_burst_pkts: 20.0,
            packet_bits: 1000,
            policer: None,
            start_offset: SimTime::ZERO,
            seed: 7,
        },
    )));

    // 5. Run ten simulated minutes.
    net.run_until(SimTime::from_secs(600));

    // 6. Reports.
    let pg = pg_queueing_bound(
        TokenBucketSpec::per_packets(100.0, 2.0, 1000),
        150_000.0,
        1,
        1000,
    );
    println!("guaranteed voice flow (clock rate 150 kbit/s):");
    print_flow(&mut net, voice);
    println!(
        "  Parekh-Gallager queueing bound: {:.2} ms",
        pg.as_millis_f64()
    );
    println!("\nbursty best-effort flow (no commitment):");
    print_flow(&mut net, noise);
    let lr = net.monitor().link_report(link.index());
    println!(
        "\nlink utilization {:.1}% ({} packets, {} drops)",
        lr.utilization * 100.0,
        lr.packets_sent,
        lr.drops
    );
}

fn print_flow(net: &mut Network, flow: FlowId) {
    let r = net.monitor_mut().flow_report(flow);
    println!(
        "  delivered {} packets; queueing delay mean {:.2} ms, 99.9th percentile {:.2} ms, max {:.2} ms",
        r.delivered,
        r.mean_delay * 1e3,
        r.p999_delay * 1e3,
        r.max_delay * 1e3
    );
}
