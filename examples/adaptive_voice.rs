//! Adaptive packet voice over predicted service — the motivating workload of
//! Section 2 (VT/VAT-style conferencing tools).
//!
//! A 64 kbit/s voice flow shares a 1 Mbit/s link with nine bursty on/off
//! sources under FIFO+.  Two receivers watch the same packet stream: a rigid
//! one that fixes its play-back point at the a-priori bound the network
//! advertises, and an adaptive one that tracks the delays actually being
//! delivered.  The adaptive receiver ends up with a much earlier play-back
//! point (lower conversational latency) at a tiny loss rate — exactly the
//! trade the paper argues tolerant, adaptive clients will make.
//!
//! Run with: `cargo run -p ispn-examples --bin adaptive_voice`

use ispn_core::FlowSpec;
use ispn_core::ServiceClass;
use ispn_examples::{PlaybackKind, PlaybackSink};
use ispn_net::{FlowConfig, Network, Topology};
use ispn_sched::{Averaging, FifoPlus};
use ispn_sim::SimTime;
use ispn_traffic::{CbrSource, OnOffConfig, OnOffSource};

fn main() {
    let mut topo = Topology::new();
    let a = topo.add_node();
    let b = topo.add_node();
    let link = topo.add_link(a, b, 1_000_000.0, SimTime::ZERO, 200);
    let mut net = Network::new(topo);
    net.set_discipline(link, FifoPlus::new(Averaging::RunningMean));

    // The a-priori bound the network would advertise for this predicted
    // class at this switch: 60 packet times.
    let advertised = SimTime::from_millis(60);

    // Two copies of the same 64 kbit/s voice source (64 packets/s of
    // 1000-bit packets), one feeding each receiver, so both see the same
    // network conditions.
    let rigid_sink = PlaybackSink::rigid(advertised);
    let rigid_handle = rigid_sink.handle();
    let rigid_sink = net.add_agent(Box::new(rigid_sink));
    let adaptive_sink = PlaybackSink::adaptive(advertised);
    let adaptive_handle = adaptive_sink.handle();
    let adaptive_sink = net.add_agent(Box::new(adaptive_sink));

    for (sink, offset) in [(rigid_sink, 0u64), (adaptive_sink, 7)] {
        let flow = net.add_flow(
            FlowConfig {
                route: vec![link],
                spec: FlowSpec::Datagram,
                class: ServiceClass::Predicted { priority: 0 },
                edge_policer: None,
                sink: None,
            }
            .with_sink(sink),
        );
        net.add_agent(Box::new(
            CbrSource::new(flow, 64.0, 1000).with_start_offset(SimTime::from_millis(offset)),
        ));
    }

    // Nine bursty on/off sources provide the competing load (~75 %).
    for i in 0..9 {
        let f = net.add_flow(FlowConfig {
            route: vec![link],
            spec: FlowSpec::Datagram,
            class: ServiceClass::Predicted { priority: 0 },
            edge_policer: None,
            sink: None,
        });
        net.add_agent(Box::new(OnOffSource::new(
            f,
            OnOffConfig::paper(85.0, 100 + i),
        )));
    }

    net.run_until(SimTime::from_secs(300));

    println!(
        "advertised a-priori bound: {:.1} ms\n",
        advertised.as_millis_f64()
    );
    report("rigid receiver   ", &rigid_handle.borrow());
    report("adaptive receiver", &adaptive_handle.borrow());
    let saving = 1.0
        - adaptive_handle.borrow().stats().playback_point().mean()
            / rigid_handle.borrow().stats().playback_point().mean();
    println!(
        "\nadaptation cut the effective latency by {:.0}%",
        saving * 100.0
    );
}

fn report(name: &str, app: &PlaybackKind) {
    let s = app.stats();
    println!(
        "{name}: effective latency {:6.2} ms, loss {:.3}%, final play-back point {:.2} ms ({} packets)",
        s.playback_point().mean() * 1e3,
        s.loss_rate() * 100.0,
        app.playback_point().as_millis_f64(),
        s.played() + s.late()
    );
}
