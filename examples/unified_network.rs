//! The full architecture in one run: the Table-3 scenario of the paper —
//! guaranteed, predicted and datagram traffic sharing the Figure-1 chain
//! under the unified scheduler — at a reduced duration so it finishes in a
//! few seconds.
//!
//! Run with: `cargo run --release -p ispn-examples --bin unified_network`
//! (pass `--full` for the paper's complete ten simulated minutes).

use ispn_experiments::config::PaperConfig;
use ispn_experiments::{report, table3};
use ispn_sim::SimTime;

fn main() {
    let cfg = if std::env::args().any(|a| a == "--full") {
        PaperConfig::paper()
    } else {
        PaperConfig {
            duration: SimTime::from_secs(120),
            ..PaperConfig::paper()
        }
    };
    eprintln!(
        "simulating the Figure-1 network for {} seconds: 3 Guaranteed-Peak, 2 Guaranteed-Average,\n\
         7 Predicted-High, 10 Predicted-Low on/off flows and 2 greedy TCP connections...\n",
        cfg.duration.as_secs_f64()
    );
    let t = table3::run(&cfg);
    println!("{}", report::render_table3(&t));
    println!(
        "Reading the result: guaranteed flows stay under their Parekh-Gallager bounds,\n\
         Predicted-High sees less jitter than Predicted-Low, and the datagram TCP traffic\n\
         fills the remaining capacity with only a small drop rate — the same qualitative\n\
         picture as the paper's Table 3."
    );
}
