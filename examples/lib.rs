//! Shared helpers for the runnable examples.
//!
//! The examples exercise the public API of the ISPN crates the way a
//! downstream application would; the only piece they share is a sink agent
//! that feeds delivered packets into a play-back application
//! ([`PlaybackSink`]), which is also a useful template for integrating your
//! own receivers.

use std::cell::RefCell;
use std::rc::Rc;

use ispn_core::playback::{AdaptivePlayback, PlaybackStats, RigidPlayback};
use ispn_net::{Agent, AgentApi, Delivery};
use ispn_sim::SimTime;

/// Which play-back strategy a [`PlaybackSink`] uses.
pub enum PlaybackKind {
    /// Fixed play-back point at the advertised bound.
    Rigid(RigidPlayback),
    /// Play-back point adapting to measured delays.
    Adaptive(AdaptivePlayback),
}

/// A network sink agent that drives a play-back application from delivered
/// packets' end-to-end delays.
pub struct PlaybackSink {
    app: Rc<RefCell<PlaybackKind>>,
}

impl PlaybackSink {
    /// A rigid sink with the given play-back point.
    pub fn rigid(playback_point: SimTime) -> Self {
        PlaybackSink {
            app: Rc::new(RefCell::new(PlaybackKind::Rigid(RigidPlayback::new(
                playback_point,
            )))),
        }
    }

    /// An adaptive sink starting from the given play-back point.
    pub fn adaptive(initial_point: SimTime) -> Self {
        PlaybackSink {
            app: Rc::new(RefCell::new(PlaybackKind::Adaptive(AdaptivePlayback::new(
                initial_point,
                200,
                0.99,
                1.2,
            )))),
        }
    }

    /// A shared handle to the underlying application (keep a clone before
    /// registering the sink with the network).
    pub fn handle(&self) -> Rc<RefCell<PlaybackKind>> {
        self.app.clone()
    }
}

impl PlaybackKind {
    /// The accumulated play-back statistics.
    pub fn stats(&self) -> &PlaybackStats {
        match self {
            PlaybackKind::Rigid(r) => r.stats(),
            PlaybackKind::Adaptive(a) => a.stats(),
        }
    }

    /// The play-back point currently in force.
    pub fn playback_point(&self) -> SimTime {
        match self {
            PlaybackKind::Rigid(r) => r.playback_point(),
            PlaybackKind::Adaptive(a) => a.playback_point(),
        }
    }
}

impl Agent for PlaybackSink {
    fn on_packet(&mut self, delivery: Delivery, _api: &mut AgentApi) {
        // Play-back applications care about the total delivery delay (the
        // signal must be reconstructed relative to generation time).
        let delay = delivery.total_delay;
        match &mut *self.app.borrow_mut() {
            PlaybackKind::Rigid(r) => {
                r.on_packet(delay);
            }
            PlaybackKind::Adaptive(a) => {
                a.on_packet(delay);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::{FlowId, Packet};

    fn delivery(delay_ms: u64) -> Delivery {
        Delivery {
            packet: Packet::data(FlowId(0), 0, 1000, SimTime::ZERO),
            queueing_delay: SimTime::from_millis(delay_ms.saturating_sub(1)),
            total_delay: SimTime::from_millis(delay_ms),
        }
    }

    #[test]
    fn rigid_sink_counts_late_packets() {
        let mut sink = PlaybackSink::rigid(SimTime::from_millis(10));
        let handle = sink.handle();
        let mut api = AgentApi::new(SimTime::ZERO);
        sink.on_packet(delivery(5), &mut api);
        sink.on_packet(delivery(50), &mut api);
        let app = handle.borrow();
        assert_eq!(app.stats().played(), 1);
        assert_eq!(app.stats().late(), 1);
        assert_eq!(app.playback_point(), SimTime::from_millis(10));
    }

    #[test]
    fn adaptive_sink_moves_its_point() {
        let mut sink = PlaybackSink::adaptive(SimTime::from_millis(500));
        let handle = sink.handle();
        let mut api = AgentApi::new(SimTime::ZERO);
        for _ in 0..300 {
            sink.on_packet(delivery(8), &mut api);
        }
        let app = handle.borrow();
        assert!(app.playback_point() < SimTime::from_millis(20));
        assert_eq!(app.stats().late(), 0);
    }
}
