//! # ispn-telemetry — engine instrumentation primitives
//!
//! Allocation-free counters, gauges and high-water marks the simulation
//! engine updates on its hot paths (`ispn-sim`'s event queue, `ispn-sched`'s
//! probed disciplines, `ispn-net`'s forwarding and admission code), plus a
//! tiny named-metric [`Registry`] for turning a snapshot of those values
//! into human- or JSON-readable output.
//!
//! Two properties are load-bearing:
//!
//! * **Determinism.**  Every value in this crate is a pure function of the
//!   simulated event sequence — no wall-clock time, no addresses, no
//!   capacities.  Two same-seed runs produce bit-identical telemetry, which
//!   the determinism tests in `ispn-experiments` pin.  Wall-clock-derived
//!   rates (events/sec) are computed *outside* the sim, by the reporting
//!   layer, and never feed back into it.
//! * **Hot-path cost.**  The mutating operations are single integer
//!   updates on plain fields (`#[inline]`, no atomics — the engine is
//!   single-threaded per simulation); allocation happens only at snapshot
//!   time, never per event.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// An instantaneous level (queue depth, reserved rate, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge(u64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(0)
    }

    /// Set the current level.
    #[inline]
    pub fn set(&mut self, v: u64) {
        self.0 = v;
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// The largest level ever observed (peak queue depth, …).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HighWater(u64);

impl HighWater {
    /// A high-water mark at zero.
    pub const fn new() -> Self {
        HighWater(0)
    }

    /// Observe one level; the mark keeps the maximum.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        if v > self.0 {
            self.0 = v;
        }
    }

    /// The peak level observed so far.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Number of service-class buckets tracked by [`PerClass`]: guaranteed,
/// predicted (all priorities pooled) and datagram.
pub const NUM_CLASS_BUCKETS: usize = 3;

/// Bucket index for guaranteed-service traffic.
pub const CLASS_GUARANTEED: usize = 0;
/// Bucket index for predicted-service traffic (all priorities pooled).
pub const CLASS_PREDICTED: usize = 1;
/// Bucket index for datagram (best-effort) traffic.
pub const CLASS_DATAGRAM: usize = 2;

/// Short labels for the class buckets, indexed like [`PerClass`].
pub const CLASS_LABELS: [&str; NUM_CLASS_BUCKETS] = ["guaranteed", "predicted", "datagram"];

/// One metric per service-class bucket, fixed-size so per-class counting
/// costs one array index and no hashing or allocation.
///
/// The mapping from a concrete service-class type to a bucket index lives
/// with the consumer (this crate stays dependency-free); by convention it
/// is [`CLASS_GUARANTEED`] / [`CLASS_PREDICTED`] / [`CLASS_DATAGRAM`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerClass<T> {
    buckets: [T; NUM_CLASS_BUCKETS],
}

impl<T> PerClass<T> {
    /// The metric for one class bucket.
    #[inline]
    pub fn bucket(&self, idx: usize) -> &T {
        &self.buckets[idx]
    }

    /// Mutable access to one class bucket.
    #[inline]
    pub fn bucket_mut(&mut self, idx: usize) -> &mut T {
        &mut self.buckets[idx]
    }

    /// All buckets, in [`CLASS_LABELS`] order.
    pub fn buckets(&self) -> &[T; NUM_CLASS_BUCKETS] {
        &self.buckets
    }
}

impl PerClass<Counter> {
    /// Sum across every class bucket.
    pub fn total(&self) -> u64 {
        self.buckets.iter().map(Counter::get).sum()
    }
}

/// An ordered snapshot of named metric values, built by the engine's
/// `snapshot()` methods at reporting time (never on the hot path).
///
/// Names use a `dotted.path` convention (`"queue.depth_high_water"`,
/// `"link.3.drops.datagram"`); iteration and rendering preserve insertion
/// order, so snapshots of the same engine are diffable line by line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Registry {
    entries: Vec<(String, u64)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Record one named value.
    pub fn record(&mut self, name: impl Into<String>, value: u64) {
        self.entries.push((name.into(), value));
    }

    /// The recorded `(name, value)` pairs in insertion order.
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Look up one value by exact name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Render as a JSON object (insertion order preserved; names are
    /// escaped, values are plain integers).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            for c in name.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_level() {
        let mut g = Gauge::new();
        g.set(7);
        assert_eq!(g.get(), 7);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn high_water_keeps_the_peak() {
        let mut hw = HighWater::new();
        hw.observe(3);
        hw.observe(9);
        hw.observe(5);
        assert_eq!(hw.get(), 9);
    }

    #[test]
    fn per_class_buckets_are_independent() {
        let mut pc: PerClass<Counter> = PerClass::default();
        pc.bucket_mut(CLASS_GUARANTEED).add(2);
        pc.bucket_mut(CLASS_DATAGRAM).incr();
        assert_eq!(pc.bucket(CLASS_GUARANTEED).get(), 2);
        assert_eq!(pc.bucket(CLASS_PREDICTED).get(), 0);
        assert_eq!(pc.bucket(CLASS_DATAGRAM).get(), 1);
        assert_eq!(pc.total(), 3);
    }

    #[test]
    fn registry_preserves_order_and_escapes() {
        let mut r = Registry::new();
        r.record("b.first", 1);
        r.record("a.second", 2);
        r.record("odd\"name", 3);
        assert_eq!(r.get("a.second"), Some(2));
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.to_json(), r#"{"b.first":1,"a.second":2,"odd\"name":3}"#);
    }

    #[test]
    fn class_labels_match_bucket_indices() {
        assert_eq!(CLASS_LABELS[CLASS_GUARANTEED], "guaranteed");
        assert_eq!(CLASS_LABELS[CLASS_PREDICTED], "predicted");
        assert_eq!(CLASS_LABELS[CLASS_DATAGRAM], "datagram");
    }
}
