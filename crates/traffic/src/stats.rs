//! Shared source-side accounting.
//!
//! Agents are moved into the network when registered, so experiments keep a
//! cheap shared handle to each source's counters instead (single-threaded
//! `Rc<RefCell<…>>` — the simulator is deliberately sequential).

use std::cell::RefCell;
use std::rc::Rc;

/// Counters a source updates as it runs.
#[derive(Debug, Default, Clone)]
pub struct SourceStats {
    /// Packets the generation process produced.
    pub generated: u64,
    /// Packets actually submitted to the network (after source policing).
    pub submitted: u64,
    /// Packets dropped by the source's own token-bucket policer.
    pub policer_drops: u64,
    /// Total bits submitted.
    pub bits_submitted: u64,
    /// Number of bursts started (on/off sources only).
    pub bursts: u64,
}

impl SourceStats {
    /// Fraction of generated packets dropped by the source policer.
    pub fn drop_rate(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.policer_drops as f64 / self.generated as f64
        }
    }

    /// Mean burst length in packets (generated packets per burst).
    pub fn mean_burst(&self) -> f64 {
        if self.bursts == 0 {
            0.0
        } else {
            self.generated as f64 / self.bursts as f64
        }
    }
}

/// A shared, clonable handle to a source's counters.
pub type SharedSourceStats = Rc<RefCell<SourceStats>>;

/// Create a fresh shared counter handle.
pub fn shared() -> SharedSourceStats {
    Rc::new(RefCell::new(SourceStats::default()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut s = SourceStats::default();
        assert_eq!(s.drop_rate(), 0.0);
        assert_eq!(s.mean_burst(), 0.0);
        s.generated = 100;
        s.policer_drops = 2;
        s.bursts = 20;
        assert!((s.drop_rate() - 0.02).abs() < 1e-12);
        assert!((s.mean_burst() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn shared_handle_is_shared() {
        let h = shared();
        let h2 = h.clone();
        h.borrow_mut().generated = 7;
        assert_eq!(h2.borrow().generated, 7);
    }
}
