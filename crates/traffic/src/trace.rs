//! Trace replay: a source that emits packets at an explicit list of times.
//!
//! Useful for regression tests (exact arrival patterns), for replaying a
//! recorded generation process through different disciplines, and for the
//! `b(r)` traffic-characterization examples.

use ispn_core::{FlowId, Packet};
use ispn_net::{Agent, AgentApi};
use ispn_sim::SimTime;

use crate::stats::{shared, SharedSourceStats};

/// A source that replays a fixed schedule of `(time, size_bits)` packets.
pub struct TraceSource {
    flow: FlowId,
    schedule: Vec<(SimTime, u64)>,
    next: usize,
    seq: u64,
    stats: SharedSourceStats,
}

impl TraceSource {
    /// Create a trace source.  The schedule must be sorted by time.
    pub fn new(flow: FlowId, schedule: Vec<(SimTime, u64)>) -> Self {
        assert!(
            schedule.windows(2).all(|w| w[0].0 <= w[1].0),
            "trace must be sorted by time"
        );
        TraceSource {
            flow,
            schedule,
            next: 0,
            seq: 0,
            stats: shared(),
        }
    }

    /// Convenience: a schedule of uniformly sized packets at given times.
    pub fn uniform(flow: FlowId, times: Vec<SimTime>, packet_bits: u64) -> Self {
        TraceSource::new(flow, times.into_iter().map(|t| (t, packet_bits)).collect())
    }

    /// Shared counter handle.
    pub fn stats(&self) -> SharedSourceStats {
        self.stats.clone()
    }

    fn arm(&self, api: &mut AgentApi) {
        if let Some(&(t, _)) = self.schedule.get(self.next) {
            api.set_timer(t.saturating_sub(api.now()), 0);
        }
    }
}

impl Agent for TraceSource {
    fn start(&mut self, api: &mut AgentApi) {
        self.arm(api);
    }

    fn on_timer(&mut self, _token: u64, api: &mut AgentApi) {
        // Emit every packet scheduled at (or before) the current time.
        let now = api.now();
        while let Some(&(t, bits)) = self.schedule.get(self.next) {
            if t > now {
                break;
            }
            api.send(Packet::data(self.flow, self.seq, bits, now));
            self.seq += 1;
            self.next += 1;
            let mut st = self.stats.borrow_mut();
            st.generated += 1;
            st.submitted += 1;
            st.bits_submitted += bits;
        }
        self.arm(api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_net::{FlowConfig, Network, Topology};

    #[test]
    fn replays_exact_schedule() {
        let (topo, _nodes, links) = Topology::chain(2, 1_000_000.0, SimTime::ZERO, 200);
        let mut net = Network::new(topo);
        let flow = net.add_flow(FlowConfig::datagram(vec![links[0]]));
        let times = vec![
            SimTime::from_millis(1),
            SimTime::from_millis(1),
            SimTime::from_millis(50),
        ];
        let src = TraceSource::uniform(flow, times, 1000);
        let stats = src.stats();
        net.add_agent(Box::new(src));
        net.run_until(SimTime::from_secs(1));
        assert_eq!(stats.borrow().submitted, 3);
        let r = net.monitor_mut().flow_report(flow);
        assert_eq!(r.delivered, 3);
        // Two simultaneous packets: the second one waits one packet time.
        assert!((r.max_delay - 0.001).abs() < 1e-9);
    }

    #[test]
    fn mixed_sizes_supported() {
        let (topo, _nodes, links) = Topology::chain(2, 1_000_000.0, SimTime::ZERO, 200);
        let mut net = Network::new(topo);
        let flow = net.add_flow(FlowConfig::datagram(vec![links[0]]));
        let src = TraceSource::new(
            flow,
            vec![(SimTime::ZERO, 500), (SimTime::from_millis(10), 2000)],
        );
        let stats = src.stats();
        net.add_agent(Box::new(src));
        net.run_until(SimTime::from_secs(1));
        assert_eq!(stats.borrow().bits_submitted, 2500);
    }

    #[test]
    #[should_panic]
    fn unsorted_trace_rejected() {
        let _ = TraceSource::uniform(
            FlowId(0),
            vec![SimTime::from_millis(5), SimTime::from_millis(1)],
            1000,
        );
    }
}
