//! Poisson source: exponentially distributed inter-packet gaps.
//!
//! Used by the extension experiments and as the classic "smooth but random"
//! contrast to the Appendix's bursty on/off process.

use ispn_core::{FlowId, Packet};
use ispn_net::{Agent, AgentApi};
use ispn_sim::{Pcg64, SimTime};

use crate::stats::{shared, SharedSourceStats};

/// A source whose packet inter-arrival times are i.i.d. exponential.
pub struct PoissonSource {
    flow: FlowId,
    packet_bits: u64,
    mean_gap_secs: f64,
    rng: Pcg64,
    seq: u64,
    stats: SharedSourceStats,
}

impl PoissonSource {
    /// Create a Poisson source with the given average rate.
    pub fn new(flow: FlowId, rate_pps: f64, packet_bits: u64, seed: u64) -> Self {
        assert!(rate_pps > 0.0);
        assert!(packet_bits > 0);
        PoissonSource {
            flow,
            packet_bits,
            mean_gap_secs: 1.0 / rate_pps,
            rng: Pcg64::new(seed),
            seq: 0,
            stats: shared(),
        }
    }

    /// Shared counter handle.
    pub fn stats(&self) -> SharedSourceStats {
        self.stats.clone()
    }
}

impl Agent for PoissonSource {
    fn start(&mut self, api: &mut AgentApi) {
        let gap = self.rng.exponential(self.mean_gap_secs);
        api.set_timer(SimTime::from_secs_f64(gap), 0);
    }

    fn on_timer(&mut self, _token: u64, api: &mut AgentApi) {
        let now = api.now();
        api.send(Packet::data(self.flow, self.seq, self.packet_bits, now));
        self.seq += 1;
        {
            let mut st = self.stats.borrow_mut();
            st.generated += 1;
            st.submitted += 1;
            st.bits_submitted += self.packet_bits;
        }
        let gap = self.rng.exponential(self.mean_gap_secs);
        api.set_timer(SimTime::from_secs_f64(gap), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_net::{FlowConfig, Network, Topology};

    #[test]
    fn long_run_rate_matches_configuration() {
        let (topo, _nodes, links) = Topology::chain(2, 10_000_000.0, SimTime::ZERO, 1000);
        let mut net = Network::new(topo);
        let flow = net.add_flow(FlowConfig::datagram(vec![links[0]]));
        let src = PoissonSource::new(flow, 200.0, 1000, 11);
        let stats = src.stats();
        net.add_agent(Box::new(src));
        net.run_until(SimTime::from_secs(100));
        let rate = stats.borrow().submitted as f64 / 100.0;
        assert!((rate - 200.0).abs() / 200.0 < 0.05, "rate {rate}");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let (topo, _nodes, links) = Topology::chain(2, 10_000_000.0, SimTime::ZERO, 1000);
            let mut net = Network::new(topo);
            let flow = net.add_flow(FlowConfig::datagram(vec![links[0]]));
            let src = PoissonSource::new(flow, 50.0, 1000, seed);
            let stats = src.stats();
            net.add_agent(Box::new(src));
            net.run_until(SimTime::from_secs(20));
            let submitted = stats.borrow().submitted;
            submitted
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }
}
