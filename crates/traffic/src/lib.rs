//! # ispn-traffic — traffic sources
//!
//! The Appendix of CSZ'92 drives every real-time flow from the same source
//! model: a two-state Markov process that emits geometrically distributed
//! bursts (mean `B = 5` packets) at a peak rate `P`, separated by
//! exponentially distributed idle periods, with the average rate `A` given
//! by `1/A = I/B + 1/P` and `P = 2A`; each source is then policed by an
//! `(A, 50-packet)` token bucket that drops ≈2 % of its packets.
//! [`OnOffSource`] implements exactly that model as a network
//! [`Agent`](ispn_net::Agent).
//!
//! The crate also provides the simpler sources used by examples, extension
//! experiments and tests: constant-bit-rate ([`CbrSource`]), Poisson
//! ([`PoissonSource`]) and trace-replay ([`TraceSource`]) sources, all
//! sharing the same [`SourceStats`] accounting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cbr;
pub mod onoff;
pub mod poisson;
pub mod stats;
pub mod trace;

pub use cbr::CbrSource;
pub use onoff::{OnOffConfig, OnOffSource};
pub use poisson::PoissonSource;
pub use stats::{SharedSourceStats, SourceStats};
pub use trace::TraceSource;
