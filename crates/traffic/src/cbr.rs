//! Constant-bit-rate source.
//!
//! The archetypal "rigid" real-time source (Section 2.2 notes the common
//! misconception that real-time sources *must* look like this); used by the
//! guaranteed-service examples and as a well-behaved control in tests.

use ispn_core::{FlowId, Packet};
use ispn_net::{Agent, AgentApi};
use ispn_sim::SimTime;

use crate::stats::{shared, SharedSourceStats};

/// A source that emits one fixed-size packet every `interval`.
pub struct CbrSource {
    flow: FlowId,
    packet_bits: u64,
    interval: SimTime,
    start_offset: SimTime,
    seq: u64,
    stats: SharedSourceStats,
}

impl CbrSource {
    /// Create a CBR source emitting `rate_pps` packets per second.
    pub fn new(flow: FlowId, rate_pps: f64, packet_bits: u64) -> Self {
        assert!(rate_pps > 0.0);
        assert!(packet_bits > 0);
        CbrSource {
            flow,
            packet_bits,
            interval: SimTime::from_secs_f64(1.0 / rate_pps),
            start_offset: SimTime::ZERO,
            seq: 0,
            stats: shared(),
        }
    }

    /// Delay the first packet by `offset` (to de-synchronize several CBR
    /// sources).
    pub fn with_start_offset(mut self, offset: SimTime) -> Self {
        self.start_offset = offset;
        self
    }

    /// Shared counter handle.
    pub fn stats(&self) -> SharedSourceStats {
        self.stats.clone()
    }
}

impl Agent for CbrSource {
    fn start(&mut self, api: &mut AgentApi) {
        api.set_timer(self.start_offset, 0);
    }

    fn on_timer(&mut self, _token: u64, api: &mut AgentApi) {
        let now = api.now();
        api.send(Packet::data(self.flow, self.seq, self.packet_bits, now));
        self.seq += 1;
        {
            let mut st = self.stats.borrow_mut();
            st.generated += 1;
            st.submitted += 1;
            st.bits_submitted += self.packet_bits;
        }
        api.set_timer(self.interval, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_net::{FlowConfig, Network, Topology};

    #[test]
    fn emits_at_the_configured_rate() {
        let (topo, _nodes, links) = Topology::chain(2, 1_000_000.0, SimTime::ZERO, 200);
        let mut net = Network::new(topo);
        let flow = net.add_flow(FlowConfig::datagram(vec![links[0]]));
        let src = CbrSource::new(flow, 100.0, 1000);
        let stats = src.stats();
        net.add_agent(Box::new(src));
        net.run_until(SimTime::from_secs(10));
        // 100 pps for 10 s = roughly 1000 packets (first at t=0).
        let n = stats.borrow().submitted;
        assert!((990..=1001).contains(&n), "submitted {n}");
        let report = net.monitor_mut().flow_report(flow);
        assert_eq!(report.delivered, n);
        // A lone CBR source sees no queueing at all.
        assert!(report.max_delay < 1e-9);
    }

    #[test]
    fn start_offset_shifts_the_first_packet() {
        let (topo, _nodes, links) = Topology::chain(2, 1_000_000.0, SimTime::ZERO, 200);
        let mut net = Network::new(topo);
        let flow = net.add_flow(FlowConfig::datagram(vec![links[0]]));
        let src = CbrSource::new(flow, 10.0, 1000).with_start_offset(SimTime::from_millis(950));
        let stats = src.stats();
        net.add_agent(Box::new(src));
        net.run_until(SimTime::from_secs(1));
        assert_eq!(stats.borrow().submitted, 1);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        let _ = CbrSource::new(FlowId(0), 0.0, 1000);
    }
}
