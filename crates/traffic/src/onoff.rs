//! The two-state Markov on/off source of the paper's Appendix.
//!
//! "The sources of real-time traffic are two-state Markov processes.  In
//! each burst period, a geometrically distributed random number of packets
//! are generated at some peak rate P; B is the average size of this burst.
//! After the burst has been generated, the source remains idle for some
//! exponentially distributed random time period; I denotes the average
//! length of an idle period.  The average rate of packet generation A is
//! given by A⁻¹ = I/B + 1/P. … we chose B = 5 and set P = 2A … Each traffic
//! source was then subjected to an (A, 50) token bucket filter … and any
//! nonconforming packets were dropped at the source; in our simulations
//! about 2% of the packets were dropped, so the true average rate was
//! around 0.98·A."

use ispn_core::{FlowId, Packet, TokenBucket, TokenBucketSpec};
use ispn_net::{Agent, AgentApi};
use ispn_sim::{Pcg64, SimTime};

use crate::stats::{shared, SharedSourceStats};

/// Parameters of an on/off source.
#[derive(Debug, Clone)]
pub struct OnOffConfig {
    /// Average packet generation rate A in packets per second.
    pub avg_rate_pps: f64,
    /// Peak rate P in packets per second (the paper uses P = 2A).
    pub peak_rate_pps: f64,
    /// Mean burst length B in packets (the paper uses 5).
    pub mean_burst_pkts: f64,
    /// Packet size in bits (the paper uses 1000).
    pub packet_bits: u64,
    /// Source-side policer; `None` disables policing.
    pub policer: Option<TokenBucketSpec>,
    /// Offset of the first burst from simulation start (used to
    /// de-synchronize sources; the paper's flows are statistically
    /// independent).
    pub start_offset: SimTime,
    /// Seed for this source's private random stream.
    pub seed: u64,
}

impl OnOffConfig {
    /// The exact source of the paper's Appendix: peak rate `2A`, mean burst
    /// 5 packets, 1000-bit packets, an `(A, 50-packet)` drop policer, and a
    /// start offset drawn uniformly from one average inter-burst cycle.
    pub fn paper(avg_rate_pps: f64, seed: u64) -> Self {
        let packet_bits = 1000;
        let mut rng = Pcg64::new(seed ^ 0x5EED_0FF5E7);
        // One full burst+idle cycle lasts B/A seconds on average.
        let cycle = 5.0 / avg_rate_pps;
        let start_offset = SimTime::from_secs_f64(rng.next_f64() * cycle);
        OnOffConfig {
            avg_rate_pps,
            peak_rate_pps: 2.0 * avg_rate_pps,
            mean_burst_pkts: 5.0,
            packet_bits,
            policer: Some(TokenBucketSpec::per_packets(
                avg_rate_pps,
                50.0,
                packet_bits,
            )),
            start_offset,
            seed,
        }
    }

    /// Mean idle period I implied by the configuration: `I = B(1/A − 1/P)`.
    pub fn mean_idle_secs(&self) -> f64 {
        self.mean_burst_pkts * (1.0 / self.avg_rate_pps - 1.0 / self.peak_rate_pps)
    }

    fn validate(&self) {
        assert!(self.avg_rate_pps > 0.0);
        assert!(
            self.peak_rate_pps >= self.avg_rate_pps,
            "peak rate must be at least the average rate"
        );
        assert!(self.mean_burst_pkts >= 1.0);
        assert!(self.packet_bits > 0);
    }
}

/// The on/off source agent.
pub struct OnOffSource {
    flow: FlowId,
    config: OnOffConfig,
    rng: Pcg64,
    policer: Option<TokenBucket>,
    /// Packets remaining in the current burst (0 = idle).
    remaining_in_burst: u64,
    seq: u64,
    stats: SharedSourceStats,
}

impl OnOffSource {
    /// Create a source feeding `flow`.
    pub fn new(flow: FlowId, config: OnOffConfig) -> Self {
        config.validate();
        let policer = config.policer.map(TokenBucket::new);
        OnOffSource {
            flow,
            rng: Pcg64::new(config.seed),
            policer,
            config,
            remaining_in_burst: 0,
            seq: 0,
            stats: shared(),
        }
    }

    /// A shared handle to this source's counters (keep a clone before
    /// handing the source to the network).
    pub fn stats(&self) -> SharedSourceStats {
        self.stats.clone()
    }

    /// The flow this source feeds.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    fn emit_one(&mut self, api: &mut AgentApi) {
        let now = api.now();
        let mut st = self.stats.borrow_mut();
        st.generated += 1;
        let conforms = match self.policer.as_mut() {
            Some(tb) => tb.offer(now, self.config.packet_bits),
            None => true,
        };
        if conforms {
            st.submitted += 1;
            st.bits_submitted += self.config.packet_bits;
            drop(st);
            api.send(Packet::data(
                self.flow,
                self.seq,
                self.config.packet_bits,
                now,
            ));
        } else {
            st.policer_drops += 1;
        }
        self.seq += 1;
    }
}

impl Agent for OnOffSource {
    fn start(&mut self, api: &mut AgentApi) {
        api.set_timer(self.config.start_offset, 0);
    }

    fn on_timer(&mut self, _token: u64, api: &mut AgentApi) {
        if self.remaining_in_burst == 0 {
            // A new burst begins now.
            self.remaining_in_burst = self.rng.geometric(self.config.mean_burst_pkts);
            self.stats.borrow_mut().bursts += 1;
        }
        self.emit_one(api);
        self.remaining_in_burst -= 1;
        let peak_gap = SimTime::from_secs_f64(1.0 / self.config.peak_rate_pps);
        let next = if self.remaining_in_burst > 0 {
            peak_gap
        } else {
            // The burst is over: idle for an exponential period (measured
            // after the last packet's peak-rate slot).
            peak_gap + SimTime::from_secs_f64(self.rng.exponential(self.config.mean_idle_secs()))
        };
        api.set_timer(next, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_net::{FlowConfig, Network, Topology};

    const PKT: u64 = 1000;

    /// Run one on/off source alone over a fast link for `secs` seconds and
    /// return (its shared stats, the delivered-packet count).
    fn run_alone(config: OnOffConfig, secs: u64) -> (SharedSourceStats, u64) {
        // A 10 Mbit/s link so the source is never the bottleneck.
        let (topo, _nodes, links) = Topology::chain(2, 10_000_000.0, SimTime::ZERO, 1000);
        let mut net = Network::new(topo);
        let flow = net.add_flow(FlowConfig::datagram(vec![links[0]]));
        let src = OnOffSource::new(flow, config);
        let stats = src.stats();
        net.add_agent(Box::new(src));
        net.run_until(SimTime::from_secs(secs));
        let delivered = net.monitor_mut().flow_report(flow).delivered;
        (stats, delivered)
    }

    #[test]
    fn paper_config_derived_quantities() {
        let c = OnOffConfig::paper(85.0, 1);
        assert_eq!(c.peak_rate_pps, 170.0);
        assert_eq!(c.mean_burst_pkts, 5.0);
        assert_eq!(c.packet_bits, 1000);
        // I = B/(2A) for P = 2A.
        assert!((c.mean_idle_secs() - 5.0 / 170.0).abs() < 1e-12);
        let p = c.policer.unwrap();
        assert_eq!(p.rate_bps, 85_000.0);
        assert_eq!(p.depth_bits, 50_000.0);
        // The start offset is within one mean cycle.
        assert!(c.start_offset.as_secs_f64() <= 5.0 / 85.0 + 1e-9);
    }

    #[test]
    fn average_rate_close_to_configured_a() {
        // 300 simulated seconds of the paper's A = 85 source: the carried
        // rate should be around 0.98·A (the policer removes ≈2 %).
        let (stats, delivered) = run_alone(OnOffConfig::paper(85.0, 42), 300);
        let st = stats.borrow();
        let gen_rate = st.generated as f64 / 300.0;
        let sub_rate = st.submitted as f64 / 300.0;
        assert!(
            (gen_rate - 85.0).abs() / 85.0 < 0.05,
            "generated rate {gen_rate}"
        );
        assert!(
            sub_rate > 0.90 * 85.0 && sub_rate < 85.0,
            "submitted rate {sub_rate}"
        );
        // Policer drop rate in the low single-digit percent.
        assert!(st.drop_rate() < 0.08, "drop rate {}", st.drop_rate());
        assert!(
            st.drop_rate() > 0.0,
            "the (A,50) policer should drop something"
        );
        assert_eq!(delivered, st.submitted);
    }

    #[test]
    fn burst_lengths_have_mean_about_five() {
        let (stats, _) = run_alone(OnOffConfig::paper(85.0, 7), 300);
        let st = stats.borrow();
        assert!(
            (st.mean_burst() - 5.0).abs() < 0.5,
            "mean burst {}",
            st.mean_burst()
        );
    }

    #[test]
    fn unpoliced_source_submits_everything() {
        let mut c = OnOffConfig::paper(85.0, 3);
        c.policer = None;
        let (stats, _) = run_alone(c, 100);
        let st = stats.borrow();
        assert_eq!(st.policer_drops, 0);
        assert_eq!(st.generated, st.submitted);
    }

    #[test]
    fn different_seeds_give_different_processes() {
        let (a, _) = run_alone(OnOffConfig::paper(85.0, 1), 50);
        let (b, _) = run_alone(OnOffConfig::paper(85.0, 2), 50);
        assert_ne!(a.borrow().generated, b.borrow().generated);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let (a, _) = run_alone(OnOffConfig::paper(85.0, 9), 50);
        let (b, _) = run_alone(OnOffConfig::paper(85.0, 9), 50);
        assert_eq!(a.borrow().generated, b.borrow().generated);
        assert_eq!(a.borrow().submitted, b.borrow().submitted);
    }

    #[test]
    fn sequence_numbers_count_generated_packets() {
        let c = OnOffConfig {
            avg_rate_pps: 100.0,
            peak_rate_pps: 200.0,
            mean_burst_pkts: 1.0,
            packet_bits: PKT,
            policer: None,
            start_offset: SimTime::ZERO,
            seed: 5,
        };
        let (stats, delivered) = run_alone(c, 10);
        assert_eq!(stats.borrow().generated, delivered);
    }

    #[test]
    #[should_panic]
    fn peak_below_average_rejected() {
        let c = OnOffConfig {
            avg_rate_pps: 100.0,
            peak_rate_pps: 50.0,
            mean_burst_pkts: 5.0,
            packet_bits: PKT,
            policer: None,
            start_offset: SimTime::ZERO,
            seed: 0,
        };
        let _ = OnOffSource::new(FlowId(0), c);
    }
}
