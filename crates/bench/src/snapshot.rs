//! The recorded performance trajectory: measure the micro-benchmark
//! workloads and the six experiments' engine counters, and serialize the
//! lot as a structured `BENCH_<pr>.json` snapshot committed at the repo
//! root.
//!
//! Unlike the Criterion benches (interactive, statistical), this harness
//! produces one machine-readable file per PR so the sequence of
//! `BENCH_*.json` files records how per-packet cost, events-per-second
//! throughput and memory footprint move as the codebase grows.  Wall-clock
//! numbers never feed back into simulation output — determinism is
//! untouched.

use std::hint::black_box;
use std::time::{Duration, Instant};

use ispn_scenario::{json_escape, JsonValue, RunTelemetry};

/// One measured micro-benchmark workload.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Workload label (`sched/…` or `engine/…`).
    pub name: &'static str,
    /// Mean wall-clock nanoseconds per operation (packet, event or draw).
    pub ns_per_op: f64,
    /// Total operations executed inside the measurement window.
    pub ops: u64,
}

/// One experiment's engine-counter snapshot (from its `telemetry_probe`).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment name (`table1` … `churn`).
    pub name: &'static str,
    /// The probe's run telemetry: events processed, events/sec, peak
    /// queue depth, memory footprint.
    pub telemetry: RunTelemetry,
}

/// Measure one workload: one warm-up call, then repeated calls of
/// `ops_per_call` operations across the measurement window, reporting
/// the fastest of eight sub-window repetitions (robust to transient
/// load on shared hardware).  The fast window (50 ms) is for CI smoke
/// runs; the full window is 500 ms.
pub fn measure_micro(
    name: &'static str,
    work: fn(u64) -> u64,
    ops_per_call: u64,
    fast: bool,
) -> MicroResult {
    let window = if fast {
        Duration::from_millis(50)
    } else {
        Duration::from_millis(500)
    };
    // Split the window into repetitions and record the *fastest* one: a
    // mean over the whole window absorbs every scheduler stall and
    // noisy-neighbour transient on shared hardware, while the minimum
    // estimates the undisturbed cost — which is what a point-to-point
    // trajectory diff needs to be meaningful.
    const REPS: u32 = 8;
    let rep_window = window / REPS;
    black_box(work(ops_per_call));
    let mut best_ns_per_op = f64::INFINITY;
    let mut ops = 0u64;
    for _ in 0..REPS {
        // The snapshot harness measures wall time by design (clippy.toml
        // disallows Instant::now for sim-visible code only).
        #[allow(clippy::disallowed_methods)]
        let started = Instant::now();
        let mut calls = 0u64;
        while calls == 0 || started.elapsed() < rep_window {
            black_box(work(ops_per_call));
            calls += 1;
        }
        let rep_ops = calls * ops_per_call;
        let ns_per_op = started.elapsed().as_nanos() as f64 / rep_ops as f64;
        ops += rep_ops;
        if ns_per_op < best_ns_per_op {
            best_ns_per_op = ns_per_op;
        }
    }
    MicroResult {
        name,
        ns_per_op: best_ns_per_op,
        ops,
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Serialize a full snapshot as the `BENCH_*.json` document.
pub fn render(
    config_label: &str,
    micro: &[MicroResult],
    experiments: &[ExperimentResult],
    peak_rss: Option<u64>,
) -> String {
    let micro_json: Vec<String> = micro
        .iter()
        .map(|m| {
            format!(
                "    {{\"name\":\"{}\",\"ns_per_op\":{},\"ops\":{}}}",
                json_escape(m.name),
                json_f64(m.ns_per_op),
                m.ops
            )
        })
        .collect();
    let exp_json: Vec<String> = experiments
        .iter()
        .map(|e| {
            format!(
                "    {{\"name\":\"{}\",\"telemetry\":{}}}",
                json_escape(e.name),
                e.telemetry.to_json()
            )
        })
        .collect();
    let rss = match peak_rss {
        Some(b) => b.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\n  \"schema\": \"ispn-bench-snapshot/1\",\n  \"config\": \"{}\",\n  \
         \"micro\": [\n{}\n  ],\n  \"experiments\": [\n{}\n  ],\n  \
         \"peak_rss_bytes\": {}\n}}\n",
        json_escape(config_label),
        micro_json.join(",\n"),
        exp_json.join(",\n"),
        rss
    )
}

/// The experiment names a snapshot must cover, in rendering order.
pub const EXPERIMENTS: [&str; 6] = ["table1", "table2", "table3", "hetmix", "mesh", "churn"];

/// Validate a `BENCH_*.json` document against the snapshot schema: the
/// schema tag, at least one `sched/` and one `engine/` micro entry with a
/// positive ns/op, and a telemetry block (events/sec + peak queue depth)
/// for every one of the six experiments.
pub fn validate(text: &str) -> Result<(), String> {
    let v = JsonValue::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let err = |m: String| -> Result<(), String> { Err(m) };
    let schema = v
        .field("schema")
        .and_then(|s| s.as_str())
        .map_err(|e| format!("schema tag: {e:?}"))?;
    if schema != "ispn-bench-snapshot/1" {
        return err(format!("unknown schema tag {schema:?}"));
    }
    v.field("config")
        .and_then(|s| s.as_str())
        .map_err(|e| format!("config label: {e:?}"))?;
    let micro = v
        .field("micro")
        .and_then(|m| m.as_array())
        .map_err(|e| format!("micro list: {e:?}"))?;
    let mut has_sched = false;
    let mut has_engine = false;
    for m in micro {
        let name = m
            .field("name")
            .and_then(|n| n.as_str())
            .map_err(|e| format!("micro entry name: {e:?}"))?;
        let ns = m
            .field("ns_per_op")
            .and_then(|n| n.as_f64_or_nan())
            .map_err(|e| format!("micro {name:?} ns_per_op: {e:?}"))?;
        if ns.is_nan() || ns <= 0.0 {
            return err(format!("micro {name:?} has non-positive ns_per_op {ns}"));
        }
        has_sched |= name.starts_with("sched/");
        has_engine |= name.starts_with("engine/");
    }
    if !has_sched || !has_engine {
        return err("micro list must cover both sched/ and engine/ workloads".to_string());
    }
    let experiments = v
        .field("experiments")
        .and_then(|m| m.as_array())
        .map_err(|e| format!("experiments list: {e:?}"))?;
    for wanted in EXPERIMENTS {
        let entry = experiments
            .iter()
            .find(|e| {
                e.field("name")
                    .and_then(|n| n.as_str())
                    .map(|n| n == wanted)
                    .unwrap_or(false)
            })
            .ok_or_else(|| format!("experiment {wanted:?} missing from snapshot"))?;
        let t = entry
            .field("telemetry")
            .map_err(|e| format!("experiment {wanted:?} telemetry: {e:?}"))?;
        for key in ["events_processed", "events_per_sec", "peak_queue_depth"] {
            t.field(key)
                .map_err(|e| format!("experiment {wanted:?} telemetry {key}: {e:?}"))?;
        }
    }
    match v.field("peak_rss_bytes") {
        Ok(_) => Ok(()),
        Err(e) => err(format!("peak_rss_bytes: {e:?}")),
    }
}

/// Pull `(name, ns_per_op)` for every micro workload out of a parsed
/// snapshot.
fn micro_costs(v: &JsonValue) -> Result<Vec<(String, f64)>, String> {
    let micro = v
        .field("micro")
        .and_then(|m| m.as_array())
        .map_err(|e| format!("micro list: {e:?}"))?;
    let mut out = Vec::new();
    for m in micro {
        let name = m
            .field("name")
            .and_then(|n| n.as_str())
            .map_err(|e| format!("micro entry name: {e:?}"))?;
        let ns = m
            .field("ns_per_op")
            .and_then(|n| n.as_f64_or_nan())
            .map_err(|e| format!("micro {name:?} ns_per_op: {e:?}"))?;
        out.push((name.to_string(), ns));
    }
    Ok(out)
}

/// Render a human-readable per-workload ns/op comparison of two
/// snapshots (`old` → `new`).  Workloads present in only one snapshot
/// are listed as added/removed rather than failing: the trajectory
/// gains and loses workloads as the codebase grows.  Purely
/// informational — wall-clock deltas depend on the machine, so callers
/// (the CI bench job) must not gate on the output.
pub fn diff_report(old_text: &str, new_text: &str) -> Result<String, String> {
    let old = JsonValue::parse(old_text).map_err(|e| format!("old snapshot: {e:?}"))?;
    let new = JsonValue::parse(new_text).map_err(|e| format!("new snapshot: {e:?}"))?;
    let old_label = old
        .field("config")
        .and_then(|s| s.as_str())
        .unwrap_or("?")
        .to_string();
    let new_label = new
        .field("config")
        .and_then(|s| s.as_str())
        .unwrap_or("?")
        .to_string();
    let old_micro = micro_costs(&old)?;
    let new_micro = micro_costs(&new)?;
    let mut lines = vec![format!(
        "micro ns/op: old ({old_label} config) -> new ({new_label} config)"
    )];
    for (name, new_ns) in &new_micro {
        match old_micro.iter().find(|(n, _)| n == name) {
            Some((_, old_ns)) if *old_ns > 0.0 => {
                let pct = (new_ns - old_ns) / old_ns * 100.0;
                lines.push(format!(
                    "  {name:<40} {old_ns:>10.1} -> {new_ns:>10.1}  ({pct:+.1}%)"
                ));
            }
            _ => lines.push(format!("  {name:<40} {:>10} -> {new_ns:>10.1}", "new")),
        }
    }
    for (name, old_ns) in &old_micro {
        if !new_micro.iter().any(|(n, _)| n == name) {
            lines.push(format!("  {name:<40} {old_ns:>10.1} -> {:>10}", "gone"));
        }
    }
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_telemetry() -> RunTelemetry {
        RunTelemetry {
            events_processed: 1000,
            event_queue_high_water: 20,
            peak_queue_depth: 9,
            admission_accepted: 3,
            admission_rejected: 1,
            flow_table_bytes: 2048,
            reservation_state_bytes: 512,
            sched_pool_grow_events: 7,
            sched_pool_segments_high_water: 5,
            wall_s: 0.5,
            events_per_sec: 2000.0,
        }
    }

    #[test]
    fn rendered_snapshot_validates() {
        let micro: Vec<MicroResult> = [("sched/fifo", 12.5), ("engine/event_queue_push_pop", 3.0)]
            .iter()
            .map(|&(name, ns_per_op)| MicroResult {
                name,
                ns_per_op,
                ops: 10_000,
            })
            .collect();
        let experiments: Vec<ExperimentResult> = EXPERIMENTS
            .iter()
            .map(|&name| ExperimentResult {
                name,
                telemetry: sample_telemetry(),
            })
            .collect();
        let text = render("fast", &micro, &experiments, Some(1 << 24));
        validate(&text).expect("a rendered snapshot matches its own schema");
        // And the RSS-unavailable shape is valid too.
        validate(&render("paper", &micro, &experiments, None)).unwrap();
    }

    #[test]
    fn validation_rejects_incomplete_snapshots() {
        assert!(validate("{}").is_err());
        assert!(validate("not json at all").is_err());
        let micro = [MicroResult {
            name: "sched/fifo",
            ns_per_op: 12.5,
            ops: 10_000,
        }];
        // Engine workload missing.
        let text = render("fast", &micro, &[], None);
        assert!(validate(&text).is_err());
        // One experiment missing.
        let micro2 = [
            MicroResult {
                name: "sched/fifo",
                ns_per_op: 12.5,
                ops: 10_000,
            },
            MicroResult {
                name: "engine/pcg64_exponential",
                ns_per_op: 3.0,
                ops: 10_000,
            },
        ];
        let five: Vec<ExperimentResult> = EXPERIMENTS[..5]
            .iter()
            .map(|&name| ExperimentResult {
                name,
                telemetry: sample_telemetry(),
            })
            .collect();
        let text = render("fast", &micro2, &five, None);
        let msg = validate(&text).unwrap_err();
        assert!(msg.contains("churn"), "{msg}");
    }

    #[test]
    fn measure_reports_positive_cost() {
        let m = measure_micro("engine/sum", |n| (0..n).sum(), 1_000, true);
        assert!(m.ns_per_op > 0.0);
        assert!(m.ops >= 1_000);
    }

    #[test]
    fn diff_report_compares_shared_and_flags_changed_workloads() {
        let mk = |pairs: &[(&'static str, f64)]| {
            let micro: Vec<MicroResult> = pairs
                .iter()
                .map(|&(name, ns_per_op)| MicroResult {
                    name,
                    ns_per_op,
                    ops: 1_000,
                })
                .collect();
            render("fast", &micro, &[], None)
        };
        let old = mk(&[("sched/fifo", 10.0), ("engine/old_only", 5.0)]);
        let new = mk(&[("sched/fifo", 8.0), ("engine/new_only", 3.0)]);
        let report = diff_report(&old, &new).unwrap();
        assert!(report.contains("sched/fifo"), "{report}");
        assert!(report.contains("-20.0%"), "{report}");
        assert!(report.contains("engine/new_only"), "{report}");
        assert!(report.contains("engine/old_only"), "{report}");
        assert!(report.contains("gone"), "{report}");
        assert!(diff_report("not json", &new).is_err());
    }

    #[test]
    fn peak_rss_parses_on_linux() {
        // On Linux procfs is present and the value is sane (> 1 MiB for a
        // test binary); elsewhere the probe degrades to None.
        if let Some(b) = peak_rss_bytes() {
            assert!(b > 1 << 20, "implausible VmHWM {b}");
        }
    }
}
