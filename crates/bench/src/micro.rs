//! Micro-benchmark workload cores, shared by the Criterion benches under
//! `benches/` and the [`crate::snapshot`] harness.
//!
//! Section 3 of the paper: the packet scheduling behaviour "must be
//! executed for every packet [so] it must not be so complex as to effect
//! overall network performance".  The workloads here exercise exactly the
//! per-packet and per-event hot paths that claim rests on, so both the
//! interactive Criterion runs and the recorded `BENCH_*.json` trajectory
//! measure the same code.

use ispn_core::{FlowId, Packet, ServiceClass};
use ispn_sched::{
    Averaging, Fifo, FifoPlus, QueueDiscipline, SchedContext, StrictPriority, Unified,
    VirtualClock, Wfq,
};
use ispn_sim::{EventQueue, Pcg64, SimTime};

const MBIT: f64 = 1_000_000.0;
const FLOWS: u32 = 10;

/// One micro-workload: runs `n` operations and returns a checksum the
/// optimizer cannot elide.
pub type Workload = fn(u64) -> u64;

/// Enqueue and dequeue `n` packets, alternating flows, with the queue kept
/// around 20 packets deep.  Returns a checksum over the served sequence
/// numbers so the optimizer cannot elide the work.
pub fn churn<D: QueueDiscipline>(disc: &mut D, n: u64) -> u64 {
    let mut served = 0;
    let mut now = SimTime::ZERO;
    for i in 0..n {
        now += SimTime::from_micros(100);
        let flow = FlowId((i % FLOWS as u64) as u32);
        let class = match i % 4 {
            0 => ServiceClass::Guaranteed,
            1 => ServiceClass::Predicted { priority: 0 },
            2 => ServiceClass::Predicted { priority: 1 },
            _ => ServiceClass::Datagram,
        };
        let pkt = Packet::data(flow, i, 1000, now);
        disc.enqueue(now, pkt, SchedContext::new(class, now));
        if disc.len() > 20 {
            if let Some(d) = disc.dequeue(now) {
                served += d.packet.seq;
            }
        }
    }
    while let Some(d) = disc.dequeue(now) {
        served += d.packet.seq;
    }
    served
}

/// The per-packet scheduling workloads: one `(label, workload)` pair per
/// discipline, each running `n` packets through a fresh queue.
pub fn sched_workloads() -> Vec<(&'static str, Workload)> {
    vec![
        ("sched/fifo", |n| churn(&mut Fifo::new(), n)),
        ("sched/wfq", |n| {
            churn(&mut Wfq::equal_share(MBIT, FLOWS as usize), n)
        }),
        ("sched/virtual_clock", |n| {
            churn(&mut VirtualClock::new(MBIT / FLOWS as f64), n)
        }),
        ("sched/fifo_plus_running_mean", |n| {
            churn(&mut FifoPlus::new(Averaging::RunningMean), n)
        }),
        ("sched/fifo_plus_ewma", |n| {
            churn(&mut FifoPlus::new(Averaging::Ewma(1.0 / 16.0)), n)
        }),
        ("sched/priority_over_fifo", |n| {
            let mut d: StrictPriority<Fifo> = StrictPriority::new(2);
            churn(&mut d, n)
        }),
        ("sched/unified", |n| {
            let mut d = Unified::new(MBIT, 2, Averaging::RunningMean);
            for f in 0..3u32 {
                d.add_guaranteed_flow(FlowId(f), 100_000.0);
            }
            churn(&mut d, n)
        }),
    ]
}

/// Push `n` randomly timestamped events through the event queue, popping
/// every other push and then draining; returns a checksum of the popped
/// payloads.
pub fn event_queue_push_pop(n: u64) -> u64 {
    let mut q = EventQueue::with_capacity(1024);
    let mut rng = Pcg64::new(1);
    let mut sink = 0u64;
    for i in 0..n {
        q.push(SimTime::from_nanos(rng.next_below(1_000_000_000)), i);
        if i % 2 == 0 {
            if let Some((_, e)) = q.pop() {
                sink = sink.wrapping_add(e);
            }
        }
    }
    while let Some((_, e)) = q.pop() {
        sink = sink.wrapping_add(e);
    }
    sink
}

/// Draw `n` exponential inter-arrival samples from the PCG generator and
/// return the bit pattern of their sum as a checksum.
pub fn pcg_exponential(n: u64) -> u64 {
    let mut rng = Pcg64::new(7);
    let mut acc = 0.0;
    for _ in 0..n {
        acc += rng.exponential(0.0294);
    }
    acc.to_bits()
}

/// The simulation-substrate workloads: event-queue throughput and the
/// random-number generator.
pub fn engine_workloads() -> Vec<(&'static str, Workload)> {
    vec![
        ("engine/event_queue_push_pop", event_queue_push_pop),
        ("engine/pcg64_exponential", pcg_exponential),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_serves_all_packets_deterministically() {
        for (name, work) in sched_workloads() {
            // Same checksum on repeat runs: the workload is deterministic.
            assert_eq!(work(2_000), work(2_000), "{name}");
        }
        for (name, work) in engine_workloads() {
            assert_eq!(work(2_000), work(2_000), "{name}");
        }
    }

    #[test]
    fn sched_churn_serves_every_sequence_number() {
        // The checksum equals the sum 0 + 1 + … + (n-1) exactly when every
        // enqueued packet was eventually dequeued once.
        let n = 1_000u64;
        let served = churn(&mut Fifo::new(), n);
        assert_eq!(served, n * (n - 1) / 2);
    }
}
