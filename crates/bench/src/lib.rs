//! # ispn-bench — benchmark harness
//!
//! Two kinds of bench targets live under `benches/`:
//!
//! * **table reproductions** (`table1`, `table2`, `table3`, `extensions`) —
//!   plain `harness = false` binaries that run the corresponding
//!   `ispn-experiments` scenario at the paper's full ten-minute simulated
//!   duration and print the regenerated table next to the published values.
//!   `cargo bench --workspace` therefore regenerates every table and figure
//!   of the paper in one go.
//! * **micro-benchmarks** (`sched_micro`, `engine_micro`) — Criterion
//!   benchmarks of the per-packet cost of each scheduling discipline and of
//!   the event queue, supporting the paper's Section-3 requirement that the
//!   per-packet work "must not be so complex as to effect overall network
//!   performance".
//!
//! The workload cores behind the micro-benchmarks live in [`micro`] so the
//! [`snapshot`] harness (the `snapshot` bin, which records the
//! `BENCH_*.json` performance trajectory at the repo root) measures exactly
//! the same code.  This library also holds small shared helpers for the
//! bench targets; every environment-reading helper has a `*_from` twin
//! taking the environment value as a parameter, so unit tests stay hermetic
//! under any ambient `ISPN_BENCH_*` setting.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod micro;
pub mod snapshot;

use ispn_experiments::config::PaperConfig;

/// [`bench_config`] with the environment injected: `fast` is the value of
/// `ISPN_BENCH_FAST`, if set.
pub fn bench_config_from(fast: Option<&str>) -> PaperConfig {
    if fast == Some("1") {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    }
}

/// Choose the experiment configuration from the environment: set
/// `ISPN_BENCH_FAST=1` to run shortened scenarios (used in CI smoke runs).
pub fn bench_config() -> PaperConfig {
    bench_config_from(std::env::var("ISPN_BENCH_FAST").ok().as_deref())
}

/// [`extensions_config`] with the environment injected.
pub fn extensions_config_from(fast: Option<&str>) -> PaperConfig {
    if fast == Some("1") {
        PaperConfig::fast()
    } else {
        PaperConfig::medium()
    }
}

/// A medium-length configuration for the multi-run extension sweeps.
pub fn extensions_config() -> PaperConfig {
    extensions_config_from(std::env::var("ISPN_BENCH_FAST").ok().as_deref())
}

/// `true` when this bench invocation is a `--sweep-worker` child of a
/// distributed table regeneration (check **before** printing anything to
/// stdout — it belongs to the frame stream in that mode).  Same detection
/// as the experiment bins, via [`ispn_experiments::cli`].
pub fn is_sweep_worker() -> bool {
    let args: Vec<String> = std::env::args().collect();
    ispn_experiments::cli::is_sweep_worker(&args)
}

/// [`bench_exec`] with the environment injected: `workers` is the value of
/// `ISPN_BENCH_WORKERS`, if set.
pub fn bench_exec_from(workers: Option<&str>) -> ispn_scenario::SweepExec {
    match workers {
        None => ispn_scenario::SweepExec::InProcess(ispn_scenario::SweepRunner::serial()),
        Some(v) => match v.parse::<usize>() {
            // A malformed or zero value fails loudly (like the bins'
            // `--workers`): a typo must not silently benchmark the wrong
            // execution level.
            Ok(n) if n >= 1 => {
                ispn_scenario::SweepExec::Distributed(ispn_scenario::DistRunner::new(
                    n,
                    ispn_scenario::WorkerCommand::current_exe().arg(ispn_scenario::WORKER_FLAG),
                ))
            }
            _ => panic!("ISPN_BENCH_WORKERS needs a positive integer, got {v:?}"),
        },
    }
}

/// Choose the sweep execution level for a table-regeneration bench from
/// the environment: `ISPN_BENCH_WORKERS=N` fans the sweep across `N`
/// worker subprocesses (the bench binary re-invoked with
/// `--sweep-worker`, inheriting `ISPN_BENCH_FAST`); otherwise the sweep
/// runs serially in-process, as the harness always has.
pub fn bench_exec() -> ispn_scenario::SweepExec {
    bench_exec_from(std::env::var("ISPN_BENCH_WORKERS").ok().as_deref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_exec_defaults_to_serial_in_process() {
        // The unset-environment shape, independent of the ambient
        // `ISPN_BENCH_WORKERS` value.
        match bench_exec_from(None) {
            ispn_scenario::SweepExec::InProcess(runner) => assert_eq!(runner.threads(), 1),
            other => panic!("expected in-process exec, got {other:?}"),
        }
    }

    #[test]
    fn worker_count_fans_the_bench_out() {
        match bench_exec_from(Some("3")) {
            ispn_scenario::SweepExec::Distributed(_) => {}
            other => panic!("expected distributed exec, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "ISPN_BENCH_WORKERS")]
    fn malformed_worker_count_fails_loudly() {
        let _ = bench_exec_from(Some("zero"));
    }

    #[test]
    fn default_config_is_the_papers() {
        // The unset-environment shape, independent of the ambient
        // `ISPN_BENCH_FAST` value.
        let c = bench_config_from(None);
        assert!(c.duration.as_secs_f64() >= 40.0);
        let e = extensions_config_from(None);
        assert!(e.duration <= c.duration);
    }

    #[test]
    fn fast_flag_shortens_both_configs() {
        let c = bench_config_from(Some("1"));
        assert_eq!(c.duration, PaperConfig::fast().duration);
        assert_eq!(
            extensions_config_from(Some("1")).duration,
            PaperConfig::fast().duration
        );
        // Any value other than "1" leaves the full-length configuration.
        assert_eq!(
            bench_config_from(Some("0")).duration,
            PaperConfig::paper().duration
        );
    }
}
