//! # ispn-bench — benchmark harness
//!
//! Two kinds of bench targets live under `benches/`:
//!
//! * **table reproductions** (`table1`, `table2`, `table3`, `extensions`) —
//!   plain `harness = false` binaries that run the corresponding
//!   `ispn-experiments` scenario at the paper's full ten-minute simulated
//!   duration and print the regenerated table next to the published values.
//!   `cargo bench --workspace` therefore regenerates every table and figure
//!   of the paper in one go.
//! * **micro-benchmarks** (`sched_micro`, `engine_micro`) — Criterion
//!   benchmarks of the per-packet cost of each scheduling discipline and of
//!   the event queue, supporting the paper's Section-3 requirement that the
//!   per-packet work "must not be so complex as to effect overall network
//!   performance".
//!
//! This library crate only holds small shared helpers for those targets.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ispn_experiments::config::PaperConfig;

/// Choose the experiment configuration from the environment: set
/// `ISPN_BENCH_FAST=1` to run shortened scenarios (used in CI smoke runs).
pub fn bench_config() -> PaperConfig {
    if std::env::var("ISPN_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    }
}

/// A medium-length configuration for the multi-run extension sweeps.
pub fn extensions_config() -> PaperConfig {
    if std::env::var("ISPN_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        PaperConfig::fast()
    } else {
        PaperConfig::medium()
    }
}

/// `true` when this bench invocation is a `--sweep-worker` child of a
/// distributed table regeneration (check **before** printing anything to
/// stdout — it belongs to the frame stream in that mode).  Same detection
/// as the experiment bins, via [`ispn_experiments::cli`].
pub fn is_sweep_worker() -> bool {
    let args: Vec<String> = std::env::args().collect();
    ispn_experiments::cli::is_sweep_worker(&args)
}

/// Choose the sweep execution level for a table-regeneration bench from
/// the environment: `ISPN_BENCH_WORKERS=N` fans the sweep across `N`
/// worker subprocesses (the bench binary re-invoked with
/// `--sweep-worker`, inheriting `ISPN_BENCH_FAST`); otherwise the sweep
/// runs serially in-process, as the harness always has.
pub fn bench_exec() -> ispn_scenario::SweepExec {
    match std::env::var("ISPN_BENCH_WORKERS") {
        Err(_) => ispn_scenario::SweepExec::InProcess(ispn_scenario::SweepRunner::serial()),
        Ok(v) => match v.parse::<usize>() {
            // A malformed or zero value fails loudly (like the bins'
            // `--workers`): a typo must not silently benchmark the wrong
            // execution level.
            Ok(n) if n >= 1 => {
                ispn_scenario::SweepExec::Distributed(ispn_scenario::DistRunner::new(
                    n,
                    ispn_scenario::WorkerCommand::current_exe().arg(ispn_scenario::WORKER_FLAG),
                ))
            }
            _ => panic!("ISPN_BENCH_WORKERS needs a positive integer, got {v:?}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_exec_defaults_to_serial_in_process() {
        match bench_exec() {
            ispn_scenario::SweepExec::InProcess(runner) => assert_eq!(runner.threads(), 1),
            other => panic!("expected in-process exec, got {other:?}"),
        }
        assert!(!is_sweep_worker());
    }

    #[test]
    fn default_config_is_the_papers() {
        // The environment variable is not set in unit tests.
        let c = bench_config();
        assert!(c.duration.as_secs_f64() >= 40.0);
        let e = extensions_config();
        assert!(e.duration <= c.duration);
    }
}
