//! # ispn-bench — benchmark harness
//!
//! Two kinds of bench targets live under `benches/`:
//!
//! * **table reproductions** (`table1`, `table2`, `table3`, `extensions`) —
//!   plain `harness = false` binaries that run the corresponding
//!   `ispn-experiments` scenario at the paper's full ten-minute simulated
//!   duration and print the regenerated table next to the published values.
//!   `cargo bench --workspace` therefore regenerates every table and figure
//!   of the paper in one go.
//! * **micro-benchmarks** (`sched_micro`, `engine_micro`) — Criterion
//!   benchmarks of the per-packet cost of each scheduling discipline and of
//!   the event queue, supporting the paper's Section-3 requirement that the
//!   per-packet work "must not be so complex as to effect overall network
//!   performance".
//!
//! This library crate only holds small shared helpers for those targets.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ispn_experiments::config::PaperConfig;

/// Choose the experiment configuration from the environment: set
/// `ISPN_BENCH_FAST=1` to run shortened scenarios (used in CI smoke runs).
pub fn bench_config() -> PaperConfig {
    if std::env::var("ISPN_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    }
}

/// A medium-length configuration for the multi-run extension sweeps.
pub fn extensions_config() -> PaperConfig {
    if std::env::var("ISPN_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        PaperConfig::fast()
    } else {
        PaperConfig::medium()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_the_papers() {
        // The environment variable is not set in unit tests.
        let c = bench_config();
        assert!(c.duration.as_secs_f64() >= 40.0);
        let e = extensions_config();
        assert!(e.duration <= c.duration);
    }
}
