//! Record one point of the repo's performance trajectory.
//!
//! Usage (from the workspace root, the single documented command):
//!
//! ```text
//! ISPN_BENCH_FAST=1 cargo run --release -p ispn-bench --bin snapshot
//! ```
//!
//! Measures the per-packet scheduling and engine micro-workloads
//! (ns/op), runs one representative scenario per experiment with run
//! telemetry enabled (events/sec, peak queue depth, memory footprint),
//! and writes the structured snapshot to `BENCH_10.json` — override with
//! `--out FILE`.  `--check FILE` validates an existing snapshot against
//! the schema instead (the CI smoke job), and `--diff OLD [NEW]`
//! prints the per-workload ns/op movement between two recorded
//! snapshots (`NEW` defaults to the current default output file).
//! The diff always exits 0: wall-clock deltas are machine-dependent
//! and must never gate a build.

use ispn_bench::{bench_config, micro, snapshot};

const DEFAULT_OUT: &str = "BENCH_10.json";

/// Packets per call for the scheduling workloads.
const SCHED_OPS: u64 = 10_000;
/// Events per call for the event-queue workload, draws for the RNG.
const ENGINE_OPS: u64 = 10_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--check") {
        let Some(path) = args.get(i + 1) else {
            eprintln!("--check needs a file, e.g. `snapshot --check BENCH_7.json`");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        match snapshot::validate(&text) {
            Ok(()) => println!("{path}: snapshot schema OK"),
            Err(msg) => {
                eprintln!("{path}: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--diff") {
        let Some(old_path) = args.get(i + 1) else {
            eprintln!("--diff needs a file, e.g. `snapshot --diff BENCH_7.json [BENCH_9.json]`");
            std::process::exit(2);
        };
        let new_path = args
            .get(i + 2)
            .filter(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or(DEFAULT_OUT);
        let read = |path: &str| {
            std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            })
        };
        let (old_text, new_text) = (read(old_path), read(new_path));
        match snapshot::diff_report(&old_text, &new_text) {
            Ok(report) => println!("{old_path} -> {new_path}\n{report}"),
            // Still exit 0: an unreadable old snapshot (schema drift across
            // PRs) downgrades the diff to a note, it never fails the job.
            Err(msg) => println!("snapshot diff unavailable: {msg}"),
        }
        return;
    }
    let out = match args.iter().position(|a| a == "--out") {
        None => DEFAULT_OUT.to_string(),
        Some(i) => args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--out needs a file, e.g. `snapshot --out BENCH_7.json`");
            std::process::exit(2);
        }),
    };

    let fast = std::env::var("ISPN_BENCH_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let cfg = bench_config();
    let label = if fast { "fast" } else { "paper" };

    let mut micro_results = Vec::new();
    for (name, work) in micro::sched_workloads() {
        eprintln!("measuring {name} …");
        micro_results.push(snapshot::measure_micro(name, work, SCHED_OPS, fast));
    }
    for (name, work) in micro::engine_workloads() {
        eprintln!("measuring {name} …");
        micro_results.push(snapshot::measure_micro(name, work, ENGINE_OPS, fast));
    }

    type Probe = fn(&ispn_experiments::config::PaperConfig) -> ispn_scenario::RunTelemetry;
    let probes: [(&str, Probe); 6] = [
        ("table1", ispn_experiments::table1::telemetry_probe),
        ("table2", ispn_experiments::table2::telemetry_probe),
        ("table3", ispn_experiments::table3::telemetry_probe),
        ("hetmix", ispn_experiments::hetmix::telemetry_probe),
        ("mesh", ispn_experiments::mesh::telemetry_probe),
        ("churn", ispn_experiments::churn::telemetry_probe),
    ];
    let mut experiments = Vec::new();
    for (name, probe) in probes {
        eprintln!(
            "probing {name} ({} simulated seconds) …",
            cfg.duration.as_secs_f64()
        );
        let telemetry = probe(&cfg);
        eprintln!(
            "  {} events, {:.0} events/s, peak queue depth {}, \
             flow table {} B, pool {} grows / {} segs peak",
            telemetry.events_processed,
            telemetry.events_per_sec,
            telemetry.peak_queue_depth,
            telemetry.flow_table_bytes,
            telemetry.sched_pool_grow_events,
            telemetry.sched_pool_segments_high_water
        );
        experiments.push(snapshot::ExperimentResult { name, telemetry });
    }

    let text = snapshot::render(
        label,
        &micro_results,
        &experiments,
        snapshot::peak_rss_bytes(),
    );
    snapshot::validate(&text).expect("a freshly rendered snapshot matches the schema");
    if let Err(e) = std::fs::write(&out, &text) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out} ({label} config)");
}
