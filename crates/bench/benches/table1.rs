//! Regenerates Table 1 of CSZ'92 at full length (harness = false).
//!
//! `ISPN_BENCH_WORKERS=N` fans the regeneration across N worker
//! subprocesses (this binary re-invoked with `--sweep-worker`); the
//! rendered table is byte-identical to the serial run.

use ispn_bench::{bench_config, bench_exec, is_sweep_worker};
use ispn_experiments::{report, table1};
use ispn_scenario::NullObserver;

fn main() {
    let cfg = bench_config();
    if is_sweep_worker() {
        table1::serve_worker(&cfg).expect("sweep worker I/O");
        return;
    }
    let exec = bench_exec();
    // Bench harness wall-clock (clippy.toml disallows it for sim-visible
    // code only).
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();
    let reports = table1::exec_reports(&cfg, &exec, &NullObserver);
    println!("{}", report::render_table1(&reports));
    println!(
        "[table1 bench] simulated {}s per discipline in {:.1}s wall-clock ({})",
        cfg.duration.as_secs_f64(),
        start.elapsed().as_secs_f64(),
        exec.description(),
    );
}
