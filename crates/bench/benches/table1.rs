//! Regenerates Table 1 of CSZ'92 at full length (harness = false).

use ispn_bench::bench_config;
use ispn_experiments::{report, table1};
use ispn_scenario::{NullObserver, SweepRunner};

fn main() {
    let cfg = bench_config();
    let start = std::time::Instant::now();
    let reports = table1::run_reports(&cfg, &SweepRunner::serial(), &NullObserver);
    println!("{}", report::render_table1(&reports));
    println!(
        "[table1 bench] simulated {}s per discipline in {:.1}s wall-clock",
        cfg.duration.as_secs_f64(),
        start.elapsed().as_secs_f64()
    );
}
