//! Runs the extension experiments (harness = false): hop-count sweep,
//! adaptive-vs-rigid playback, measurement-based admission control and the
//! utilization sweep.

use ispn_bench::extensions_config;
use ispn_experiments::extensions::{admission, hops, playback, utilization};
use ispn_experiments::report;

fn main() {
    let cfg = extensions_config();
    // Bench harness wall-clock (clippy.toml disallows it for sim-visible
    // code only).
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();

    let points = hops::run_sweep(&cfg, &[1, 2, 3, 4, 5, 6]);
    println!("{}", report::render_hops(&points));

    let pb = playback::run(&cfg);
    println!("{}", report::render_playback(&pb));

    let (controlled, uncontrolled) = admission::run_comparison(&cfg, 20);
    println!("{}", report::render_admission(&controlled, &uncontrolled));

    let util = utilization::run_sweep(&cfg, &[6, 8, 9, 10, 11]);
    println!("{}", report::render_utilization(&util));

    println!(
        "[extensions bench] simulated {}s per run in {:.1}s wall-clock",
        cfg.duration.as_secs_f64(),
        start.elapsed().as_secs_f64()
    );
}
