//! Regenerates Table 2 of CSZ'92 at full length (harness = false).

use ispn_bench::bench_config;
use ispn_experiments::{report, table2};

fn main() {
    let cfg = bench_config();
    let start = std::time::Instant::now();
    let t = table2::run(&cfg);
    println!("{}", report::render_table2(&t));
    println!(
        "[table2 bench] simulated {}s per discipline in {:.1}s wall-clock",
        cfg.duration.as_secs_f64(),
        start.elapsed().as_secs_f64()
    );
}
