//! Criterion micro-benchmarks of the per-packet scheduling cost.
//!
//! Section 3 of the paper: the packet scheduling behaviour "must be executed
//! for every packet [so] it must not be so complex as to effect overall
//! network performance".  These benchmarks measure the enqueue+dequeue cost
//! of every discipline under a steady backlog of ten competing flows, plus
//! the FIFO+ averaging-method ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ispn_core::{FlowId, Packet, ServiceClass};
use ispn_sched::{
    Averaging, Fifo, FifoPlus, QueueDiscipline, SchedContext, StrictPriority, Unified,
    VirtualClock, Wfq,
};
use ispn_sim::SimTime;

const MBIT: f64 = 1_000_000.0;
const FLOWS: u32 = 10;

/// Enqueue and dequeue `n` packets, alternating flows, with the queue kept
/// around 20 packets deep.
fn churn<D: QueueDiscipline>(disc: &mut D, n: u64) -> u64 {
    let mut served = 0;
    let mut now = SimTime::ZERO;
    for i in 0..n {
        now += SimTime::from_micros(100);
        let flow = FlowId((i % FLOWS as u64) as u32);
        let class = match i % 4 {
            0 => ServiceClass::Guaranteed,
            1 => ServiceClass::Predicted { priority: 0 },
            2 => ServiceClass::Predicted { priority: 1 },
            _ => ServiceClass::Datagram,
        };
        let pkt = Packet::data(flow, i, 1000, now);
        disc.enqueue(now, pkt, SchedContext::new(class, now));
        if disc.len() > 20 {
            if let Some(d) = disc.dequeue(now) {
                served += d.packet.seq;
            }
        }
    }
    while let Some(d) = disc.dequeue(now) {
        served += d.packet.seq;
    }
    served
}

fn bench_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_packet_scheduling");
    const N: u64 = 10_000;

    group.bench_function("fifo", |b| {
        b.iter(|| {
            let mut d = Fifo::new();
            black_box(churn(&mut d, N))
        })
    });
    group.bench_function("wfq", |b| {
        b.iter(|| {
            let mut d = Wfq::equal_share(MBIT, FLOWS as usize);
            black_box(churn(&mut d, N))
        })
    });
    group.bench_function("virtual_clock", |b| {
        b.iter(|| {
            let mut d = VirtualClock::new(MBIT / FLOWS as f64);
            black_box(churn(&mut d, N))
        })
    });
    group.bench_function("fifo_plus_running_mean", |b| {
        b.iter(|| {
            let mut d = FifoPlus::new(Averaging::RunningMean);
            black_box(churn(&mut d, N))
        })
    });
    group.bench_function("fifo_plus_ewma", |b| {
        b.iter(|| {
            let mut d = FifoPlus::new(Averaging::Ewma(1.0 / 16.0));
            black_box(churn(&mut d, N))
        })
    });
    group.bench_function("priority_over_fifo", |b| {
        b.iter(|| {
            let mut d: StrictPriority<Fifo> = StrictPriority::new(2);
            black_box(churn(&mut d, N))
        })
    });
    group.bench_function("unified", |b| {
        b.iter(|| {
            let mut d = Unified::new(MBIT, 2, Averaging::RunningMean);
            for f in 0..3u32 {
                d.add_guaranteed_flow(FlowId(f), 100_000.0);
            }
            black_box(churn(&mut d, N))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_disciplines);
criterion_main!(benches);
