//! Criterion micro-benchmarks of the per-packet scheduling cost.
//!
//! Section 3 of the paper: the packet scheduling behaviour "must be executed
//! for every packet [so] it must not be so complex as to effect overall
//! network performance".  These benchmarks measure the enqueue+dequeue cost
//! of every discipline under a steady backlog of ten competing flows, plus
//! the FIFO+ averaging-method ablation.  The workload cores live in
//! `ispn_bench::micro` so the `snapshot` harness measures the same code.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ispn_bench::micro;

fn bench_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_packet_scheduling");
    const N: u64 = 10_000;

    for (name, work) in micro::sched_workloads() {
        // "sched/fifo" → Criterion id "fifo" (the group supplies the prefix).
        let id = name.strip_prefix("sched/").unwrap_or(name);
        group.bench_function(id, |b| b.iter(|| black_box(work(N))));
    }
    group.finish();
}

criterion_group!(benches, bench_disciplines);
criterion_main!(benches);
