//! Criterion micro-benchmarks of the simulation substrate: event-queue
//! throughput, the PCG generator, and an end-to-end events-per-second figure
//! for the Table-1 scenario (how much simulated traffic the simulator pushes
//! per wall-clock second).  The queue and RNG workload cores live in
//! `ispn_bench::micro` so the `snapshot` harness measures the same code.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ispn_bench::micro;
use ispn_experiments::{config::PaperConfig, support::DisciplineKind, table1};
use ispn_sim::SimTime;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| black_box(micro::event_queue_push_pop(10_000)))
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("pcg64_exponential_100k", |b| {
        b.iter(|| black_box(micro::pcg_exponential(100_000)))
    });
}

fn bench_table1_scenario(c: &mut Criterion) {
    // Short simulated duration so one iteration stays around tens of
    // milliseconds; the interesting number is simulated-seconds per
    // wall-clock second.
    let cfg = PaperConfig {
        duration: SimTime::from_secs(5),
        ..PaperConfig::paper()
    };
    let mut group = c.benchmark_group("table1_scenario_5s");
    group.sample_size(10);
    group.bench_function("fifo", |b| {
        b.iter(|| black_box(table1::run_single_link(&cfg, DisciplineKind::Fifo)))
    });
    group.bench_function("wfq", |b| {
        b.iter(|| black_box(table1::run_single_link(&cfg, DisciplineKind::Wfq)))
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_table1_scenario);
criterion_main!(benches);
