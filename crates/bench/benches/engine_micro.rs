//! Criterion micro-benchmarks of the simulation substrate: event-queue
//! throughput, the PCG generator, and an end-to-end events-per-second figure
//! for the Table-1 scenario (how much simulated traffic the simulator pushes
//! per wall-clock second).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ispn_experiments::{config::PaperConfig, support::DisciplineKind, table1};
use ispn_sim::{EventQueue, Pcg64, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            let mut rng = Pcg64::new(1);
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos(rng.next_below(1_000_000_000)), i);
                if i % 2 == 0 {
                    black_box(q.pop());
                }
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("pcg64_exponential_100k", |b| {
        b.iter(|| {
            let mut rng = Pcg64::new(7);
            let mut acc = 0.0;
            for _ in 0..100_000 {
                acc += rng.exponential(0.0294);
            }
            black_box(acc)
        })
    });
}

fn bench_table1_scenario(c: &mut Criterion) {
    // Short simulated duration so one iteration stays around tens of
    // milliseconds; the interesting number is simulated-seconds per
    // wall-clock second.
    let cfg = PaperConfig {
        duration: SimTime::from_secs(5),
        ..PaperConfig::paper()
    };
    let mut group = c.benchmark_group("table1_scenario_5s");
    group.sample_size(10);
    group.bench_function("fifo", |b| {
        b.iter(|| black_box(table1::run_single_link(&cfg, DisciplineKind::Fifo)))
    });
    group.bench_function("wfq", |b| {
        b.iter(|| black_box(table1::run_single_link(&cfg, DisciplineKind::Wfq)))
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_table1_scenario);
criterion_main!(benches);
