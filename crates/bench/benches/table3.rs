//! Regenerates Table 3 of CSZ'92 at full length (harness = false).

use ispn_bench::bench_config;
use ispn_experiments::{report, table3};

fn main() {
    let cfg = bench_config();
    // Bench harness wall-clock (clippy.toml disallows it for sim-visible
    // code only).
    #[allow(clippy::disallowed_methods)]
    let start = std::time::Instant::now();
    let t = table3::run(&cfg);
    println!("{}", report::render_table3(&t));
    println!(
        "[table3 bench] simulated {}s in {:.1}s wall-clock",
        cfg.duration.as_secs_f64(),
        start.elapsed().as_secs_f64()
    );
}
