//! Measurement plans and the structured scenario report.
//!
//! A [`MeasurementPlan`] selects what to collect; [`ScenarioReport`] is the
//! structured result, serializable to JSON (hand-rolled — this workspace
//! builds offline, so no serde) and renderable as text for quick reading.
//!
//! Beyond the original per-flow and per-link summaries, a plan can select
//! **per-class aggregation** ([`ClassSummary`]): every flow registered in
//! the network — declared, TCP-installed or dynamically admitted — is
//! grouped by its [`ServiceClass`](ispn_core::ServiceClass), and the
//! class's pooled delay samples yield a real distribution (selected
//! quantiles via [`MeasurementPlan::class_quantiles`], optionally a fixed-
//! bin delay histogram via [`MeasurementPlan::delay_histogram`]) instead of
//! just per-flow means.  Links can likewise be grouped by the queueing
//! discipline they run ([`DisciplineSummary`]), which is what discipline-
//! axis sweeps read out.

use ispn_core::{FlowId, ServiceClass};
use ispn_net::Network;
use ispn_signal::Signaling;
use ispn_stats::{Histogram, SampleSet, TextTable};

/// A fixed-bin histogram selection for per-class delay distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSpec {
    /// Lower edge of the histogram range, in seconds of queueing delay.
    pub lo_s: f64,
    /// Upper edge (exclusive), in seconds.
    pub hi_s: f64,
    /// Number of uniform bins.
    pub bins: usize,
}

impl HistogramSpec {
    /// A histogram over `[0, hi_s)` seconds with `bins` uniform bins.
    ///
    /// # Panics
    /// Panics if `hi_s <= 0` or `bins == 0` — better now than after the
    /// simulation has run.
    pub fn up_to(hi_s: f64, bins: usize) -> Self {
        let spec = HistogramSpec {
            lo_s: 0.0,
            hi_s,
            bins,
        };
        assert!(spec.is_valid(), "histogram needs hi_s > lo_s and bins > 0");
        spec
    }

    /// Whether the selection can actually be recorded (`hi_s > lo_s` and at
    /// least one bin).  Invalid specs are skipped at collection time — the
    /// report carries no histogram rather than panicking after the run.
    pub fn is_valid(&self) -> bool {
        self.hi_s > self.lo_s && self.bins > 0
    }
}

/// What a scenario run should collect into its report.
#[derive(Debug, Clone)]
pub struct MeasurementPlan {
    /// Collect per-flow delay and loss statistics.
    pub flow_stats: bool,
    /// Collect per-link utilization and drop statistics.
    pub link_stats: bool,
    /// Collect the signaling decision record (accepted/rejected setups).
    pub signaling_stats: bool,
    /// Aggregate every registered flow by service class into
    /// [`ClassSummary`] rows (pooled delay distributions).
    pub class_stats: bool,
    /// Group links by the queueing discipline they run into
    /// [`DisciplineSummary`] rows.
    pub discipline_stats: bool,
    /// The delay quantiles each [`ClassSummary`] reports (values in
    /// `[0, 1]`, reported in the order given).
    pub class_quantiles: Vec<f64>,
    /// Optional per-class delay histogram selection.
    pub delay_histogram: Option<HistogramSpec>,
    /// Attach a [`RunTelemetry`] block (engine counters + wall-clock rate +
    /// memory footprint) to the report.  **Default-off**: when disabled the
    /// report JSON carries no `telemetry` key at all, so every
    /// pre-telemetry golden stays byte-identical.
    pub run_telemetry: bool,
}

impl Default for MeasurementPlan {
    /// Everything on (histograms stay opt-in) with the workhorse quantile
    /// set: median, 90th, 99th and the paper's headline 99.9th percentile.
    fn default() -> Self {
        MeasurementPlan {
            flow_stats: true,
            link_stats: true,
            signaling_stats: true,
            class_stats: true,
            discipline_stats: true,
            class_quantiles: vec![0.5, 0.9, 0.99, 0.999],
            delay_histogram: None,
            run_telemetry: false,
        }
    }
}

impl MeasurementPlan {
    /// Only per-flow statistics.
    pub fn flows_only() -> Self {
        MeasurementPlan {
            flow_stats: true,
            link_stats: false,
            signaling_stats: false,
            class_stats: false,
            discipline_stats: false,
            class_quantiles: Vec::new(),
            delay_histogram: None,
            run_telemetry: false,
        }
    }

    /// Select a per-class delay histogram (builder style).
    ///
    /// # Panics
    /// Panics on an invalid selection (`hi_s <= lo_s` or `bins == 0`) —
    /// better when the plan is built than after the simulation has run.
    pub fn with_histogram(mut self, spec: HistogramSpec) -> Self {
        assert!(spec.is_valid(), "histogram needs hi_s > lo_s and bins > 0");
        self.delay_histogram = Some(spec);
        self
    }

    /// Replace the per-class quantile selection (builder style).
    pub fn with_quantiles(mut self, quantiles: impl Into<Vec<f64>>) -> Self {
        self.class_quantiles = quantiles.into();
        self
    }

    /// Attach run telemetry to the report (builder style).
    pub fn with_run_telemetry(mut self) -> Self {
        self.run_telemetry = true;
        self
    }
}

/// Per-flow summary (delays in seconds).
#[derive(Debug, Clone)]
pub struct FlowSummary {
    /// Numeric flow id.
    pub flow: u32,
    /// Packets the source submitted.
    pub generated: u64,
    /// Packets delivered end to end.
    pub delivered: u64,
    /// Packets dropped to full buffers.
    pub dropped_buffer: u64,
    /// Packets dropped by edge policing.
    pub dropped_at_edge: u64,
    /// Packets discarded while the flow held no reservation.
    pub dropped_inactive: u64,
    /// Mean queueing delay.
    pub mean_delay_s: f64,
    /// 99.9th-percentile queueing delay.
    pub p999_delay_s: f64,
    /// Maximum queueing delay.
    pub max_delay_s: f64,
    /// Delay jitter: the standard deviation of the queueing delay.
    pub jitter_s: f64,
}

/// Per-link summary.
#[derive(Debug, Clone)]
pub struct LinkSummary {
    /// Numeric link id.
    pub link: usize,
    /// Fraction of the run the link was transmitting.
    pub utilization: f64,
    /// Fraction of the run spent on real-time traffic.
    pub realtime_utilization: f64,
    /// Packets dropped at this link's buffer.
    pub drops: u64,
    /// Packets transmitted.
    pub packets_sent: u64,
}

/// A recorded per-class delay histogram (bin edges are uniform over
/// `[lo_s, hi_s)`).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Lower edge of the range, seconds.
    pub lo_s: f64,
    /// Upper edge of the range (exclusive), seconds.
    pub hi_s: f64,
    /// Per-bin sample counts.
    pub counts: Vec<u64>,
    /// Samples below `lo_s`.
    pub underflow: u64,
    /// Samples at or above `hi_s`.
    pub overflow: u64,
}

/// Aggregate statistics of one service class, pooled over every registered
/// flow of that class (delays in seconds).
#[derive(Debug, Clone)]
pub struct ClassSummary {
    /// Class label: `guaranteed`, `predicted-<priority>` or `datagram`.
    pub class: String,
    /// Number of flows in the class.
    pub flows: usize,
    /// Packets the class's sources submitted.
    pub generated: u64,
    /// Packets delivered end to end.
    pub delivered: u64,
    /// Packets dropped to full buffers.
    pub dropped_buffer: u64,
    /// Packets dropped by edge policing.
    pub dropped_at_edge: u64,
    /// Mean queueing delay over the pooled samples.
    pub mean_delay_s: f64,
    /// Maximum queueing delay over the pooled samples.
    pub max_delay_s: f64,
    /// Standard deviation of the pooled queueing delays (the class's
    /// jitter).
    pub jitter_s: f64,
    /// The selected quantiles of the pooled delay distribution, as
    /// `(q, delay_s)` pairs in plan order.
    pub quantiles: Vec<(f64, f64)>,
    /// The selected delay histogram, if the plan asked for one.
    pub histogram: Option<HistogramSummary>,
}

/// Aggregate statistics of every link running one queueing discipline.
#[derive(Debug, Clone)]
pub struct DisciplineSummary {
    /// The discipline's name as the link reports it (e.g. `WFQ`,
    /// `Unified`).
    pub discipline: String,
    /// Number of links running it.
    pub links: usize,
    /// Mean utilization over those links.
    pub mean_utilization: f64,
    /// Mean real-time utilization over those links.
    pub mean_realtime_utilization: f64,
    /// Total buffer drops on those links.
    pub drops: u64,
    /// Total packets transmitted on those links.
    pub packets_sent: u64,
}

/// Signaling summary: the decision record of completed setups.
#[derive(Debug, Clone)]
pub struct SignalingSummary {
    /// Setups admitted on every hop.
    pub accepted: usize,
    /// Setups refused by some hop.
    pub rejected: usize,
    /// Chronological accept/reject sequence.
    pub decisions: Vec<bool>,
    /// Transactions still in flight when the report was taken.
    pub pending: usize,
}

/// Engine telemetry of one scenario run: what the event loop, ports and
/// admission machinery actually did, plus the run's memory footprint and
/// wall-clock throughput.
///
/// Every field except `wall_s` and `events_per_sec` is a deterministic
/// function of the simulated event sequence — two same-seed runs agree
/// exactly (pinned by the determinism tests in `ispn-experiments`).  The
/// two wall-clock fields are measured *outside* the sim by
/// [`Sim::report`](crate::Sim::report) and never influence it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    /// Events dispatched by the network event loop.
    pub events_processed: u64,
    /// Peak size of the pending-event set.
    pub event_queue_high_water: u64,
    /// Peak depth of any output-port packet queue.
    pub peak_queue_depth: u64,
    /// Per-link admission verdicts accepted.
    pub admission_accepted: u64,
    /// Per-link admission verdicts rejected.
    pub admission_rejected: u64,
    /// Structural size of the flow table, in bytes.
    pub flow_table_bytes: u64,
    /// Structural size of the per-link reservation state, in bytes.
    pub reservation_state_bytes: u64,
    /// Segment allocations made by the schedulers' packet-queue pools,
    /// summed over every port.  Grows only while some queue reaches a new
    /// depth — flat after warm-up is the zero-steady-state-allocation
    /// property.
    pub sched_pool_grow_events: u64,
    /// Peak pooled-segment count, summed over every port's scheduler.
    pub sched_pool_segments_high_water: u64,
    /// Wall-clock seconds spent inside `run_until` (not simulated time).
    pub wall_s: f64,
    /// `events_processed / wall_s` (0 when no wall time was recorded).
    pub events_per_sec: f64,
}

impl RunTelemetry {
    /// Snapshot the deterministic counters from a run network; the caller
    /// (the `Sim` facade) supplies the wall-clock seconds it accumulated
    /// around its stepping loop.
    pub fn collect(net: &Network, wall_s: f64) -> RunTelemetry {
        let events_processed = net.events_processed();
        let events_per_sec = if wall_s > 0.0 {
            events_processed as f64 / wall_s
        } else {
            0.0
        };
        RunTelemetry {
            events_processed,
            event_queue_high_water: net.event_queue_high_water(),
            peak_queue_depth: net.peak_port_depth(),
            admission_accepted: net.net_telemetry().admission_accepted(),
            admission_rejected: net.net_telemetry().admission_rejected(),
            flow_table_bytes: net.flow_table_bytes(),
            reservation_state_bytes: net.reservation_state_bytes(),
            sched_pool_grow_events: net.sched_pool_grow_events(),
            sched_pool_segments_high_water: net.sched_pool_segments_high_water(),
            wall_s,
            events_per_sec,
        }
    }

    /// Serialize as a JSON object (the `telemetry` value in a report).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"events_processed\":{},\"event_queue_high_water\":{},\
             \"peak_queue_depth\":{},\"admission_accepted\":{},\
             \"admission_rejected\":{},\"flow_table_bytes\":{},\
             \"reservation_state_bytes\":{},\"sched_pool_grow_events\":{},\
             \"sched_pool_segments_high_water\":{},\"wall_s\":{},\
             \"events_per_sec\":{}}}",
            self.events_processed,
            self.event_queue_high_water,
            self.peak_queue_depth,
            self.admission_accepted,
            self.admission_rejected,
            self.flow_table_bytes,
            self.reservation_state_bytes,
            self.sched_pool_grow_events,
            self.sched_pool_segments_high_water,
            json_f64(self.wall_s),
            json_f64(self.events_per_sec),
        )
    }
}

/// The structured result of a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// End of the measured interval, in seconds of simulated time.
    pub horizon_s: f64,
    /// Per-flow summaries, for the flows the builder declared (in
    /// declaration order) — empty if the plan skipped flow stats.
    pub flows: Vec<FlowSummary>,
    /// Per-link summaries for every link — empty if skipped.
    pub links: Vec<LinkSummary>,
    /// Per-service-class summaries over every registered flow (guaranteed
    /// first, then predicted by rising priority, then datagram; classes
    /// with no flows are omitted) — empty if skipped.
    pub classes: Vec<ClassSummary>,
    /// Per-discipline link groups, ordered by first link id — empty if
    /// skipped.
    pub disciplines: Vec<DisciplineSummary>,
    /// Signaling summary, if the plan asked for one.
    pub signaling: Option<SignalingSummary>,
    /// Run telemetry, if the plan opted in
    /// ([`MeasurementPlan::run_telemetry`]).  When `None` the report JSON
    /// carries **no** `telemetry` key, keeping pre-telemetry goldens
    /// byte-identical.
    pub telemetry: Option<RunTelemetry>,
}

/// Escape a string for embedding inside a JSON string literal: `"`, `\`
/// and every control character below U+0020 are escaped, so hostile or
/// merely unlucky labels (a discipline name with a quote, a class label
/// with a newline) can never produce malformed JSON.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The canonical report label of a service class.
fn class_label(class: ServiceClass) -> String {
    match class {
        ServiceClass::Guaranteed => "guaranteed".to_string(),
        ServiceClass::Predicted { priority } => format!("predicted-{priority}"),
        ServiceClass::Datagram => "datagram".to_string(),
    }
}

/// Deterministic report order of service classes: guaranteed, predicted by
/// rising priority, datagram.
fn class_order(class: ServiceClass) -> (u8, u8) {
    match class {
        ServiceClass::Guaranteed => (0, 0),
        ServiceClass::Predicted { priority } => (1, priority),
        ServiceClass::Datagram => (2, 0),
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

impl ScenarioReport {
    /// Collect a report from a run network (the facade's
    /// [`Sim::report`](crate::Sim::report) calls this).
    pub fn collect(
        plan: &MeasurementPlan,
        net: &mut Network,
        sig: &Signaling,
        flows: &[FlowId],
    ) -> ScenarioReport {
        let horizon_s = net.monitor().horizon().as_secs_f64();
        let flow_summaries = if plan.flow_stats {
            flows
                .iter()
                .map(|&f| {
                    // Jitter = sample standard deviation of the flow's
                    // delay samples (the shared Welford implementation in
                    // `ispn-stats`).
                    let jitter_s = net.monitor().flow_delays(f).sample_std_dev();
                    let r = net.monitor_mut().flow_report(f);
                    FlowSummary {
                        flow: f.0,
                        generated: r.generated,
                        delivered: r.delivered,
                        dropped_buffer: r.dropped_buffer,
                        dropped_at_edge: r.dropped_at_edge,
                        dropped_inactive: r.dropped_inactive,
                        mean_delay_s: r.mean_delay,
                        p999_delay_s: r.p999_delay,
                        max_delay_s: r.max_delay,
                        jitter_s,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let link_summaries = if plan.link_stats {
            (0..net.monitor().num_links())
                .map(|i| {
                    let r = net.monitor().link_report(i);
                    LinkSummary {
                        link: i,
                        utilization: r.utilization,
                        realtime_utilization: r.realtime_utilization,
                        drops: r.drops,
                        packets_sent: r.packets_sent,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let class_summaries = if plan.class_stats {
            Self::collect_classes(plan, net)
        } else {
            Vec::new()
        };
        let discipline_summaries = if plan.discipline_stats {
            Self::collect_disciplines(net)
        } else {
            Vec::new()
        };
        let signaling = plan.signaling_stats.then(|| {
            let decisions: Vec<bool> = sig.decision_log().iter().map(|&(_, a)| a).collect();
            let accepted = decisions.iter().filter(|&&a| a).count();
            SignalingSummary {
                accepted,
                rejected: decisions.len() - accepted,
                decisions,
                pending: sig.pending(),
            }
        });
        ScenarioReport {
            horizon_s,
            flows: flow_summaries,
            links: link_summaries,
            classes: class_summaries,
            disciplines: discipline_summaries,
            signaling,
            // Filled by `Sim::report` when the plan opts in — only the
            // facade knows the run's wall-clock time.
            telemetry: None,
        }
    }

    /// Pool every registered flow's delay samples by service class.
    fn collect_classes(plan: &MeasurementPlan, net: &mut Network) -> Vec<ClassSummary> {
        // Group flow ids by class, in deterministic class order.
        let mut groups: Vec<(ServiceClass, Vec<FlowId>)> = Vec::new();
        for i in 0..net.num_flows() {
            let flow = FlowId(i as u32);
            let class = net.flow_config(flow).class;
            match groups.iter_mut().find(|(c, _)| *c == class) {
                Some((_, flows)) => flows.push(flow),
                None => groups.push((class, vec![flow])),
            }
        }
        groups.sort_by_key(|(c, _)| class_order(*c));

        groups
            .into_iter()
            .map(|(class, flows)| {
                let mut pooled = SampleSet::new();
                let mut histogram = plan
                    .delay_histogram
                    .filter(HistogramSpec::is_valid)
                    .map(|spec| (spec, Histogram::new(spec.lo_s, spec.hi_s, spec.bins)));
                let mut generated = 0u64;
                let mut delivered = 0u64;
                let mut dropped_buffer = 0u64;
                let mut dropped_at_edge = 0u64;
                for &flow in &flows {
                    for &d in net.monitor().flow_delays(flow).samples() {
                        pooled.record(d);
                        if let Some((_, h)) = histogram.as_mut() {
                            h.record(d);
                        }
                    }
                    let r = net.monitor_mut().flow_report(flow);
                    generated += r.generated;
                    delivered += r.delivered;
                    dropped_buffer += r.dropped_buffer;
                    dropped_at_edge += r.dropped_at_edge;
                }
                let jitter_s = pooled.sample_std_dev();
                let quantiles = plan
                    .class_quantiles
                    .iter()
                    .map(|&q| (q, pooled.quantile(q)))
                    .collect();
                ClassSummary {
                    class: class_label(class),
                    flows: flows.len(),
                    generated,
                    delivered,
                    dropped_buffer,
                    dropped_at_edge,
                    mean_delay_s: pooled.mean(),
                    max_delay_s: pooled.max(),
                    jitter_s,
                    quantiles,
                    histogram: histogram.map(|(spec, h)| HistogramSummary {
                        lo_s: spec.lo_s,
                        hi_s: spec.hi_s,
                        counts: h.bins().to_vec(),
                        underflow: h.underflow(),
                        overflow: h.overflow(),
                    }),
                }
            })
            .collect()
    }

    /// Group links by the discipline they run, ordered by first link id.
    fn collect_disciplines(net: &Network) -> Vec<DisciplineSummary> {
        let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
        for link in 0..net.monitor().num_links() {
            let name = net.discipline_name(ispn_net::LinkId(link)).to_string();
            match groups.iter_mut().find(|(n, _)| *n == name) {
                Some((_, links)) => links.push(link),
                None => groups.push((name, vec![link])),
            }
        }
        groups
            .into_iter()
            .map(|(discipline, links)| {
                let mut util = 0.0;
                let mut rt_util = 0.0;
                let mut drops = 0u64;
                let mut packets_sent = 0u64;
                for &l in &links {
                    let r = net.monitor().link_report(l);
                    util += r.utilization;
                    rt_util += r.realtime_utilization;
                    drops += r.drops;
                    packets_sent += r.packets_sent;
                }
                let n = links.len() as f64;
                DisciplineSummary {
                    discipline,
                    links: links.len(),
                    mean_utilization: util / n,
                    mean_realtime_utilization: rt_util / n,
                    drops,
                    packets_sent,
                }
            })
            .collect()
    }

    /// Serialize the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("{{\"horizon_s\":{},", json_f64(self.horizon_s)));
        out.push_str("\"flows\":[");
        for (i, f) in self.flows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"flow\":{},\"generated\":{},\"delivered\":{},\
                 \"dropped_buffer\":{},\"dropped_at_edge\":{},\"dropped_inactive\":{},\
                 \"mean_delay_s\":{},\"p999_delay_s\":{},\"max_delay_s\":{},\"jitter_s\":{}}}",
                f.flow,
                f.generated,
                f.delivered,
                f.dropped_buffer,
                f.dropped_at_edge,
                f.dropped_inactive,
                json_f64(f.mean_delay_s),
                json_f64(f.p999_delay_s),
                json_f64(f.max_delay_s),
                json_f64(f.jitter_s),
            ));
        }
        out.push_str("],\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"link\":{},\"utilization\":{},\"realtime_utilization\":{},\
                 \"drops\":{},\"packets_sent\":{}}}",
                l.link,
                json_f64(l.utilization),
                json_f64(l.realtime_utilization),
                l.drops,
                l.packets_sent,
            ));
        }
        out.push_str("],\"classes\":[");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let quantiles: String = c
                .quantiles
                .iter()
                .map(|&(q, v)| format!("[{},{}]", json_f64(q), json_f64(v)))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"class\":\"{}\",\"flows\":{},\"generated\":{},\"delivered\":{},\
                 \"dropped_buffer\":{},\"dropped_at_edge\":{},\
                 \"mean_delay_s\":{},\"max_delay_s\":{},\"jitter_s\":{},\
                 \"quantiles\":[{quantiles}]",
                json_escape(&c.class),
                c.flows,
                c.generated,
                c.delivered,
                c.dropped_buffer,
                c.dropped_at_edge,
                json_f64(c.mean_delay_s),
                json_f64(c.max_delay_s),
                json_f64(c.jitter_s),
            ));
            match &c.histogram {
                Some(h) => {
                    let counts: String = h
                        .counts
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(",");
                    out.push_str(&format!(
                        ",\"histogram\":{{\"lo_s\":{},\"hi_s\":{},\"counts\":[{counts}],\
                         \"underflow\":{},\"overflow\":{}}}}}",
                        json_f64(h.lo_s),
                        json_f64(h.hi_s),
                        h.underflow,
                        h.overflow,
                    ));
                }
                None => out.push_str(",\"histogram\":null}"),
            }
        }
        out.push_str("],\"disciplines\":[");
        for (i, d) in self.disciplines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"discipline\":\"{}\",\"links\":{},\"mean_utilization\":{},\
                 \"mean_realtime_utilization\":{},\"drops\":{},\"packets_sent\":{}}}",
                json_escape(&d.discipline),
                d.links,
                json_f64(d.mean_utilization),
                json_f64(d.mean_realtime_utilization),
                d.drops,
                d.packets_sent,
            ));
        }
        out.push(']');
        match &self.signaling {
            Some(s) => {
                let decisions: String = s
                    .decisions
                    .iter()
                    .map(|&a| if a { "true" } else { "false" })
                    .collect::<Vec<_>>()
                    .join(",");
                out.push_str(&format!(
                    ",\"signaling\":{{\"accepted\":{},\"rejected\":{},\
                     \"pending\":{},\"decisions\":[{decisions}]}}",
                    s.accepted, s.rejected, s.pending,
                ));
            }
            None => out.push_str(",\"signaling\":null"),
        }
        // Emitted only when present: a telemetry-off report's JSON is
        // byte-identical to the pre-telemetry format.
        if let Some(t) = &self.telemetry {
            out.push_str(",\"telemetry\":");
            out.push_str(&t.to_json());
        }
        out.push('}');
        out
    }

    /// Render the report as a text table (for bins and quick inspection).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.flows.is_empty() {
            let mut table = TextTable::new(format!(
                "Scenario flows ({:.0} s measured; delays in ms)",
                self.horizon_s
            ))
            .header([
                "flow",
                "generated",
                "delivered",
                "lost",
                "mean",
                "99.9 %ile",
                "max",
                "jitter",
            ]);
            for f in &self.flows {
                table.row([
                    format!("{}", f.flow),
                    f.generated.to_string(),
                    f.delivered.to_string(),
                    (f.dropped_buffer + f.dropped_at_edge).to_string(),
                    format!("{:.3}", f.mean_delay_s * 1e3),
                    format!("{:.3}", f.p999_delay_s * 1e3),
                    format!("{:.3}", f.max_delay_s * 1e3),
                    format!("{:.3}", f.jitter_s * 1e3),
                ]);
            }
            out.push_str(&table.render());
        }
        if !self.links.is_empty() {
            let mut table = TextTable::new("Scenario links").header([
                "link",
                "utilization",
                "real-time",
                "drops",
                "packets",
            ]);
            for l in &self.links {
                table.row([
                    format!("L{}", l.link),
                    format!("{:.1}%", l.utilization * 100.0),
                    format!("{:.1}%", l.realtime_utilization * 100.0),
                    l.drops.to_string(),
                    l.packets_sent.to_string(),
                ]);
            }
            out.push('\n');
            out.push_str(&table.render());
        }
        if !self.classes.is_empty() {
            let mut header = vec![
                "class".to_string(),
                "flows".to_string(),
                "delivered".to_string(),
                "mean".to_string(),
            ];
            for &(q, _) in &self.classes[0].quantiles {
                header.push(format!("{} %ile", q * 100.0));
            }
            header.push("max".to_string());
            header.push("jitter".to_string());
            let mut table = TextTable::new("Scenario classes (pooled delays in ms)").header(header);
            for c in &self.classes {
                let mut row = vec![
                    c.class.clone(),
                    c.flows.to_string(),
                    c.delivered.to_string(),
                    format!("{:.3}", c.mean_delay_s * 1e3),
                ];
                for &(_, v) in &c.quantiles {
                    row.push(format!("{:.3}", v * 1e3));
                }
                row.push(format!("{:.3}", c.max_delay_s * 1e3));
                row.push(format!("{:.3}", c.jitter_s * 1e3));
                table.row(row);
            }
            out.push('\n');
            out.push_str(&table.render());
        }
        if !self.disciplines.is_empty() {
            let mut table = TextTable::new("Scenario disciplines").header([
                "discipline",
                "links",
                "utilization",
                "real-time",
                "drops",
                "packets",
            ]);
            for d in &self.disciplines {
                table.row([
                    d.discipline.clone(),
                    d.links.to_string(),
                    format!("{:.1}%", d.mean_utilization * 100.0),
                    format!("{:.1}%", d.mean_realtime_utilization * 100.0),
                    d.drops.to_string(),
                    d.packets_sent.to_string(),
                ]);
            }
            out.push('\n');
            out.push_str(&table.render());
        }
        if let Some(s) = &self.signaling {
            out.push_str(&format!(
                "\nsignaling: {} accepted, {} rejected, {} pending\n",
                s.accepted, s.rejected, s.pending
            ));
        }
        if let Some(t) = &self.telemetry {
            out.push_str(&format!(
                "\ntelemetry: {} events ({:.0}/s wall), event-queue peak {}, \
                 port peak {} pkts, admission {}/{} accept/reject, \
                 flow table {} B, reservations {} B, \
                 queue pools {} grows / {} segs peak\n",
                t.events_processed,
                t.events_per_sec,
                t.event_queue_high_water,
                t.peak_queue_depth,
                t.admission_accepted,
                t.admission_rejected,
                t.flow_table_bytes,
                t.reservation_state_bytes,
                t.sched_pool_grow_events,
                t.sched_pool_segments_high_water,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ScenarioReport {
        ScenarioReport {
            horizon_s: 40.0,
            flows: vec![FlowSummary {
                flow: 0,
                generated: 100,
                delivered: 98,
                dropped_buffer: 2,
                dropped_at_edge: 0,
                dropped_inactive: 0,
                mean_delay_s: 0.003,
                p999_delay_s: 0.05,
                max_delay_s: 0.06,
                jitter_s: 0.004,
            }],
            links: vec![LinkSummary {
                link: 0,
                utilization: 0.83,
                realtime_utilization: 0.8,
                drops: 2,
                packets_sent: 98,
            }],
            classes: vec![ClassSummary {
                class: "predicted-0".to_string(),
                flows: 1,
                generated: 100,
                delivered: 98,
                dropped_buffer: 2,
                dropped_at_edge: 0,
                mean_delay_s: 0.003,
                max_delay_s: 0.06,
                jitter_s: 0.004,
                quantiles: vec![(0.5, 0.002), (0.999, 0.05)],
                histogram: Some(HistogramSummary {
                    lo_s: 0.0,
                    hi_s: 0.1,
                    counts: vec![90, 8],
                    underflow: 0,
                    overflow: 0,
                }),
            }],
            disciplines: vec![DisciplineSummary {
                discipline: "WFQ".to_string(),
                links: 1,
                mean_utilization: 0.83,
                mean_realtime_utilization: 0.8,
                drops: 2,
                packets_sent: 98,
            }],
            signaling: Some(SignalingSummary {
                accepted: 3,
                rejected: 1,
                decisions: vec![true, true, false, true],
                pending: 0,
            }),
            telemetry: None,
        }
    }

    fn sample_telemetry() -> RunTelemetry {
        RunTelemetry {
            events_processed: 1234,
            event_queue_high_water: 17,
            peak_queue_depth: 9,
            admission_accepted: 3,
            admission_rejected: 1,
            flow_table_bytes: 2048,
            reservation_state_bytes: 512,
            sched_pool_grow_events: 7,
            sched_pool_segments_high_water: 5,
            wall_s: 0.25,
            events_per_sec: 4936.0,
        }
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"horizon_s\":40.0",
            "\"flows\":[{\"flow\":0",
            "\"delivered\":98",
            "\"mean_delay_s\":0.003",
            "\"links\":[{\"link\":0",
            "\"utilization\":0.83",
            "\"classes\":[{\"class\":\"predicted-0\"",
            "\"quantiles\":[[0.5,0.002],[0.999,0.05]]",
            "\"histogram\":{\"lo_s\":0.0,\"hi_s\":0.1,\"counts\":[90,8]",
            "\"disciplines\":[{\"discipline\":\"WFQ\"",
            "\"signaling\":{\"accepted\":3",
            "\"decisions\":[true,true,false,true]",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn telemetry_off_emits_no_key_telemetry_on_appends_one() {
        let off = sample_report().to_json();
        assert!(
            !off.contains("\"telemetry\""),
            "default-off reports must not mention telemetry: {off}"
        );
        let mut with = sample_report();
        with.telemetry = Some(sample_telemetry());
        let json = with.to_json();
        // The telemetry block is appended just before the closing brace, so
        // a telemetry-on report is the telemetry-off bytes plus one key.
        assert!(json.starts_with(&off[..off.len() - 1]), "{json}");
        assert!(json.contains(
            "\"telemetry\":{\"events_processed\":1234,\"event_queue_high_water\":17,\
             \"peak_queue_depth\":9,\"admission_accepted\":3,\"admission_rejected\":1,\
             \"flow_table_bytes\":2048,\"reservation_state_bytes\":512,\
             \"sched_pool_grow_events\":7,\"sched_pool_segments_high_water\":5,\
             \"wall_s\":0.25,\"events_per_sec\":4936.0}"
        ));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn telemetry_renders_one_line() {
        let mut r = sample_report();
        r.telemetry = Some(sample_telemetry());
        let text = r.render();
        assert!(text.contains("telemetry: 1234 events"));
        assert!(text.contains("admission 3/1 accept/reject"));
    }

    #[test]
    fn run_telemetry_plan_flag_defaults_off() {
        assert!(!MeasurementPlan::default().run_telemetry);
        assert!(!MeasurementPlan::flows_only().run_telemetry);
        assert!(
            MeasurementPlan::default()
                .with_run_telemetry()
                .run_telemetry
        );
    }

    #[test]
    fn nonfinite_values_serialize_as_null() {
        let mut r = sample_report();
        r.flows[0].p999_delay_s = f64::NAN;
        assert!(r.to_json().contains("\"p999_delay_s\":null"));
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample_report().render();
        assert!(text.contains("Scenario flows"));
        assert!(text.contains("Scenario links"));
        assert!(text.contains("Scenario classes"));
        assert!(text.contains("predicted-0"));
        assert!(text.contains("Scenario disciplines"));
        assert!(text.contains("WFQ"));
        assert!(text.contains("3 accepted, 1 rejected"));
    }

    #[test]
    fn hostile_labels_are_escaped_in_json() {
        // A label with a quote, a backslash, a newline and a raw control
        // character: the emitter used to splice strings verbatim, which
        // would have produced malformed JSON here.
        let mut r = sample_report();
        r.disciplines[0].discipline = "WFQ\" \\evil\n\u{1}".to_string();
        r.classes[0].class = "class\"with\\quotes".to_string();
        let json = r.to_json();
        assert!(
            json.contains("\"discipline\":\"WFQ\\\" \\\\evil\\n\\u0001\""),
            "{json}"
        );
        assert!(
            json.contains("\"class\":\"class\\\"with\\\\quotes\""),
            "{json}"
        );
        // Still balanced after escaping (the cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No raw control characters or unescaped quotes survive inside the
        // emitted text.
        assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != ' '));
    }

    #[test]
    fn invalid_histogram_specs_fail_fast_or_are_skipped() {
        // The builder paths refuse invalid selections up front…
        assert!(std::panic::catch_unwind(|| HistogramSpec::up_to(0.0, 4)).is_err());
        assert!(std::panic::catch_unwind(|| {
            MeasurementPlan::default().with_histogram(HistogramSpec {
                lo_s: 0.0,
                hi_s: 0.1,
                bins: 0,
            })
        })
        .is_err());
        // …and a hand-constructed invalid spec is simply not recordable.
        assert!(!HistogramSpec {
            lo_s: 0.2,
            hi_s: 0.1,
            bins: 4,
        }
        .is_valid());
        assert!(HistogramSpec::up_to(0.1, 4).is_valid());
    }

    #[test]
    fn json_escape_passes_clean_strings_through() {
        assert_eq!(json_escape("FIFO+"), "FIFO+");
        assert_eq!(json_escape("predicted-1"), "predicted-1");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\tb"), "a\\tb");
        assert_eq!(json_escape("\u{7}"), "\\u0007");
    }
}
