//! Measurement plans and the structured scenario report.
//!
//! A [`MeasurementPlan`] selects what to collect; [`ScenarioReport`] is the
//! structured result, serializable to JSON (hand-rolled — this workspace
//! builds offline, so no serde) and renderable as text for quick reading.

use ispn_core::FlowId;
use ispn_net::Network;
use ispn_signal::Signaling;
use ispn_stats::TextTable;

/// What a scenario run should collect into its report.
#[derive(Debug, Clone)]
pub struct MeasurementPlan {
    /// Collect per-flow delay and loss statistics.
    pub flow_stats: bool,
    /// Collect per-link utilization and drop statistics.
    pub link_stats: bool,
    /// Collect the signaling decision record (accepted/rejected setups).
    pub signaling_stats: bool,
}

impl Default for MeasurementPlan {
    /// Everything on.
    fn default() -> Self {
        MeasurementPlan {
            flow_stats: true,
            link_stats: true,
            signaling_stats: true,
        }
    }
}

impl MeasurementPlan {
    /// Only per-flow statistics.
    pub fn flows_only() -> Self {
        MeasurementPlan {
            flow_stats: true,
            link_stats: false,
            signaling_stats: false,
        }
    }
}

/// Per-flow summary (delays in seconds).
#[derive(Debug, Clone)]
pub struct FlowSummary {
    /// Numeric flow id.
    pub flow: u32,
    /// Packets the source submitted.
    pub generated: u64,
    /// Packets delivered end to end.
    pub delivered: u64,
    /// Packets dropped to full buffers.
    pub dropped_buffer: u64,
    /// Packets dropped by edge policing.
    pub dropped_at_edge: u64,
    /// Packets discarded while the flow held no reservation.
    pub dropped_inactive: u64,
    /// Mean queueing delay.
    pub mean_delay_s: f64,
    /// 99.9th-percentile queueing delay.
    pub p999_delay_s: f64,
    /// Maximum queueing delay.
    pub max_delay_s: f64,
    /// Delay jitter: the standard deviation of the queueing delay.
    pub jitter_s: f64,
}

/// Per-link summary.
#[derive(Debug, Clone)]
pub struct LinkSummary {
    /// Numeric link id.
    pub link: usize,
    /// Fraction of the run the link was transmitting.
    pub utilization: f64,
    /// Fraction of the run spent on real-time traffic.
    pub realtime_utilization: f64,
    /// Packets dropped at this link's buffer.
    pub drops: u64,
    /// Packets transmitted.
    pub packets_sent: u64,
}

/// Signaling summary: the decision record of completed setups.
#[derive(Debug, Clone)]
pub struct SignalingSummary {
    /// Setups admitted on every hop.
    pub accepted: usize,
    /// Setups refused by some hop.
    pub rejected: usize,
    /// Chronological accept/reject sequence.
    pub decisions: Vec<bool>,
    /// Transactions still in flight when the report was taken.
    pub pending: usize,
}

/// The structured result of a scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// End of the measured interval, in seconds of simulated time.
    pub horizon_s: f64,
    /// Per-flow summaries, for the flows the builder declared (in
    /// declaration order) — empty if the plan skipped flow stats.
    pub flows: Vec<FlowSummary>,
    /// Per-link summaries for every link — empty if skipped.
    pub links: Vec<LinkSummary>,
    /// Signaling summary, if the plan asked for one.
    pub signaling: Option<SignalingSummary>,
}

fn stddev(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return 0.0;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    var.sqrt()
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

impl ScenarioReport {
    /// Collect a report from a run network (the facade's
    /// [`Sim::report`](crate::Sim::report) calls this).
    pub fn collect(
        plan: &MeasurementPlan,
        net: &mut Network,
        sig: &Signaling,
        flows: &[FlowId],
    ) -> ScenarioReport {
        let horizon_s = net.monitor().horizon().as_secs_f64();
        let flow_summaries = if plan.flow_stats {
            flows
                .iter()
                .map(|&f| {
                    let jitter_s = stddev(net.monitor().flow_delays(f).samples());
                    let r = net.monitor_mut().flow_report(f);
                    FlowSummary {
                        flow: f.0,
                        generated: r.generated,
                        delivered: r.delivered,
                        dropped_buffer: r.dropped_buffer,
                        dropped_at_edge: r.dropped_at_edge,
                        dropped_inactive: r.dropped_inactive,
                        mean_delay_s: r.mean_delay,
                        p999_delay_s: r.p999_delay,
                        max_delay_s: r.max_delay,
                        jitter_s,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let link_summaries = if plan.link_stats {
            (0..net.monitor().num_links())
                .map(|i| {
                    let r = net.monitor().link_report(i);
                    LinkSummary {
                        link: i,
                        utilization: r.utilization,
                        realtime_utilization: r.realtime_utilization,
                        drops: r.drops,
                        packets_sent: r.packets_sent,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        let signaling = plan.signaling_stats.then(|| {
            let decisions: Vec<bool> = sig.decision_log().iter().map(|&(_, a)| a).collect();
            let accepted = decisions.iter().filter(|&&a| a).count();
            SignalingSummary {
                accepted,
                rejected: decisions.len() - accepted,
                decisions,
                pending: sig.pending(),
            }
        });
        ScenarioReport {
            horizon_s,
            flows: flow_summaries,
            links: link_summaries,
            signaling,
        }
    }

    /// Serialize the report as JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("{{\"horizon_s\":{},", json_f64(self.horizon_s)));
        out.push_str("\"flows\":[");
        for (i, f) in self.flows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"flow\":{},\"generated\":{},\"delivered\":{},\
                 \"dropped_buffer\":{},\"dropped_at_edge\":{},\"dropped_inactive\":{},\
                 \"mean_delay_s\":{},\"p999_delay_s\":{},\"max_delay_s\":{},\"jitter_s\":{}}}",
                f.flow,
                f.generated,
                f.delivered,
                f.dropped_buffer,
                f.dropped_at_edge,
                f.dropped_inactive,
                json_f64(f.mean_delay_s),
                json_f64(f.p999_delay_s),
                json_f64(f.max_delay_s),
                json_f64(f.jitter_s),
            ));
        }
        out.push_str("],\"links\":[");
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"link\":{},\"utilization\":{},\"realtime_utilization\":{},\
                 \"drops\":{},\"packets_sent\":{}}}",
                l.link,
                json_f64(l.utilization),
                json_f64(l.realtime_utilization),
                l.drops,
                l.packets_sent,
            ));
        }
        out.push(']');
        match &self.signaling {
            Some(s) => {
                let decisions: String = s
                    .decisions
                    .iter()
                    .map(|&a| if a { "true" } else { "false" })
                    .collect::<Vec<_>>()
                    .join(",");
                out.push_str(&format!(
                    ",\"signaling\":{{\"accepted\":{},\"rejected\":{},\
                     \"pending\":{},\"decisions\":[{decisions}]}}",
                    s.accepted, s.rejected, s.pending,
                ));
            }
            None => out.push_str(",\"signaling\":null"),
        }
        out.push('}');
        out
    }

    /// Render the report as a text table (for bins and quick inspection).
    pub fn render(&self) -> String {
        let mut out = String::new();
        if !self.flows.is_empty() {
            let mut table = TextTable::new(format!(
                "Scenario flows ({:.0} s measured; delays in ms)",
                self.horizon_s
            ))
            .header([
                "flow",
                "generated",
                "delivered",
                "lost",
                "mean",
                "99.9 %ile",
                "max",
                "jitter",
            ]);
            for f in &self.flows {
                table.row([
                    format!("{}", f.flow),
                    f.generated.to_string(),
                    f.delivered.to_string(),
                    (f.dropped_buffer + f.dropped_at_edge).to_string(),
                    format!("{:.3}", f.mean_delay_s * 1e3),
                    format!("{:.3}", f.p999_delay_s * 1e3),
                    format!("{:.3}", f.max_delay_s * 1e3),
                    format!("{:.3}", f.jitter_s * 1e3),
                ]);
            }
            out.push_str(&table.render());
        }
        if !self.links.is_empty() {
            let mut table = TextTable::new("Scenario links").header([
                "link",
                "utilization",
                "real-time",
                "drops",
                "packets",
            ]);
            for l in &self.links {
                table.row([
                    format!("L{}", l.link),
                    format!("{:.1}%", l.utilization * 100.0),
                    format!("{:.1}%", l.realtime_utilization * 100.0),
                    l.drops.to_string(),
                    l.packets_sent.to_string(),
                ]);
            }
            out.push('\n');
            out.push_str(&table.render());
        }
        if let Some(s) = &self.signaling {
            out.push_str(&format!(
                "\nsignaling: {} accepted, {} rejected, {} pending\n",
                s.accepted, s.rejected, s.pending
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ScenarioReport {
        ScenarioReport {
            horizon_s: 40.0,
            flows: vec![FlowSummary {
                flow: 0,
                generated: 100,
                delivered: 98,
                dropped_buffer: 2,
                dropped_at_edge: 0,
                dropped_inactive: 0,
                mean_delay_s: 0.003,
                p999_delay_s: 0.05,
                max_delay_s: 0.06,
                jitter_s: 0.004,
            }],
            links: vec![LinkSummary {
                link: 0,
                utilization: 0.83,
                realtime_utilization: 0.8,
                drops: 2,
                packets_sent: 98,
            }],
            signaling: Some(SignalingSummary {
                accepted: 3,
                rejected: 1,
                decisions: vec![true, true, false, true],
                pending: 0,
            }),
        }
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"horizon_s\":40.0",
            "\"flows\":[{\"flow\":0",
            "\"delivered\":98",
            "\"mean_delay_s\":0.003",
            "\"links\":[{\"link\":0",
            "\"utilization\":0.83",
            "\"signaling\":{\"accepted\":3",
            "\"decisions\":[true,true,false,true]",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn nonfinite_values_serialize_as_null() {
        let mut r = sample_report();
        r.flows[0].p999_delay_s = f64::NAN;
        assert!(r.to_json().contains("\"p999_delay_s\":null"));
    }

    #[test]
    fn render_mentions_every_section() {
        let text = sample_report().render();
        assert!(text.contains("Scenario flows"));
        assert!(text.contains("Scenario links"));
        assert!(text.contains("3 accepted, 1 rejected"));
    }

    #[test]
    fn stddev_of_degenerate_inputs_is_zero() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[1.0, 3.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
