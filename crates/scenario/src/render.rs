//! Axis-aware rendering of sweep results.
//!
//! Every experiment used to carry its own formatting glue: a hand-built
//! [`TextTable`] whose leading columns restated the sweep's axes (the
//! scheduler, the load level, the cross-traffic knob…) from fields the
//! experiment had copied out of its own loop variables.  The sweep API
//! already knows those axes — every [`SweepReport`] carries its point's
//! `(axis name, value label)` tags — so [`SweepTable`] renders them
//! directly: one leading column per axis, taken from the tags, followed by
//! whatever value columns the caller declares.  A point may expand into
//! several table rows (e.g. one row per traffic class); each row repeats
//! the point's axis labels.  Panicked points ([`SweepError`]) render as a
//! single row carrying the panic payload, so a partially failed sweep
//! still prints everything it measured.
//!
//! The JSON side of the same idea lives in
//! [`sweep_to_json_checked`](crate::sweep::sweep_to_json_checked) and
//! [`SweepReport::to_json_checked_with`]: arrays of points keyed by their
//! axis tags, with `"report"` bodies for results and `"error"` bodies for
//! panics.
//!
//! ```
//! use ispn_scenario::{ScenarioSet, SweepRunner, SweepTable};
//!
//! let set = ScenarioSet::over("load", [1usize, 2]).by("flows", [10usize]);
//! let reports = SweepRunner::serial().try_run(&set, |&(load, flows)| load * flows);
//! let text = SweepTable::new("delivered packets")
//!     .columns(["delivered"])
//!     .render(&reports, |&total| vec![vec![total.to_string()]]);
//! assert!(text.contains("load"));
//! assert!(text.contains("flows"));
//! assert!(text.contains("20"));
//! ```

use ispn_stats::TextTable;

use crate::sweep::{PointResult, SweepReport};

#[cfg(doc)]
use crate::sweep::SweepError;

/// The axis names spanning `reports`, in first-appearance order — the
/// leading columns of an axis-aware table.
pub fn axis_names<R>(reports: &[SweepReport<R>]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for report in reports {
        for (name, _) in &report.tags {
            if !names.iter().any(|n| n == name) {
                names.push(name.clone());
            }
        }
    }
    names
}

/// A declarative axis-keyed table over checked sweep reports: axis columns
/// come from the reports' tags, value columns from a caller-supplied row
/// expansion.  See the [module docs](self) for the shape.
#[derive(Debug, Clone)]
pub struct SweepTable {
    title: String,
    value_columns: Vec<String>,
}

impl SweepTable {
    /// A table with a title (printed above the grid) and no value columns
    /// yet.
    pub fn new(title: impl Into<String>) -> Self {
        SweepTable {
            title: title.into(),
            value_columns: Vec::new(),
        }
    }

    /// Declare the value columns (builder style), rendered after the axis
    /// columns in the order given.
    pub fn columns<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.value_columns = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Render the reports: one leading column per axis (from the tags, in
    /// first-appearance order), then the declared value columns.  `rows`
    /// expands one successful point into its table rows (each a `Vec` of
    /// value cells, one per declared column); every row repeats the
    /// point's axis labels.  A panicked point becomes a single row whose
    /// first value cell carries `panicked: <payload>`.
    pub fn render<R, F>(&self, reports: &[SweepReport<PointResult<R>>], rows: F) -> String
    where
        F: Fn(&R) -> Vec<Vec<String>>,
    {
        let axes = axis_names(reports);
        let mut header: Vec<String> = axes.clone();
        header.extend(self.value_columns.iter().cloned());
        let mut table = TextTable::new(self.title.clone()).header(header);
        for report in reports {
            let axis_cells: Vec<String> = axes
                .iter()
                .map(|axis| report.tag(axis).unwrap_or("").to_string())
                .collect();
            match &report.result {
                Ok(result) => {
                    for row in rows(result) {
                        let mut cells = axis_cells.clone();
                        cells.extend(row);
                        table.row(cells);
                    }
                }
                Err(e) => {
                    let mut cells = axis_cells.clone();
                    cells.push(format!("panicked: {}", e.payload));
                    table.row(cells);
                }
            }
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{ScenarioSet, SweepError, SweepRunner};

    fn checked(reports: Vec<SweepReport<usize>>) -> Vec<SweepReport<PointResult<usize>>> {
        reports
            .into_iter()
            .map(|r| SweepReport {
                index: r.index,
                tags: r.tags,
                result: Ok(r.result),
            })
            .collect()
    }

    #[test]
    fn axis_columns_come_from_tags_in_declaration_order() {
        let set = ScenarioSet::over("discipline", ["WFQ", "FIFO"]).by("level", [1usize, 2]);
        let reports = SweepRunner::serial().try_run(&set, |&(_, level)| level * 7);
        assert_eq!(axis_names(&reports), vec!["discipline", "level"]);
        let text = SweepTable::new("demo")
            .columns(["value"])
            .render(&reports, |&v| vec![vec![v.to_string()]]);
        let header = text.lines().nth(1).expect("header line");
        assert!(header.starts_with("discipline"), "{text}");
        assert!(header.contains("level"), "{text}");
        assert!(header.contains("value"), "{text}");
        // Every point renders with its own axis labels.
        assert!(text.contains("WFQ"), "{text}");
        assert!(text.contains("FIFO"), "{text}");
        assert!(text.contains("14"), "{text}");
    }

    #[test]
    fn points_may_expand_to_multiple_rows() {
        let reports = checked(vec![SweepReport {
            index: 0,
            tags: vec![("load".to_string(), "2".to_string())],
            result: 3,
        }]);
        let text = SweepTable::new("multi")
            .columns(["class", "n"])
            .render(&reports, |&n| {
                (0..n)
                    .map(|i| vec![format!("class-{i}"), n.to_string()])
                    .collect()
            });
        // Three rows, each repeating the axis label.
        assert_eq!(text.matches("class-").count(), 3, "{text}");
        let data_rows: Vec<&str> = text.lines().filter(|l| l.contains("class-")).collect();
        assert!(data_rows.iter().all(|l| l.starts_with('2')), "{text}");
    }

    #[test]
    fn panicked_points_render_their_payload() {
        let mut reports = checked(vec![SweepReport {
            index: 0,
            tags: vec![("load".to_string(), "1".to_string())],
            result: 10,
        }]);
        reports.push(SweepReport {
            index: 1,
            tags: vec![("load".to_string(), "2".to_string())],
            result: Err(SweepError {
                index: 1,
                tags: vec![("load".to_string(), "2".to_string())],
                payload: "buffer exploded".to_string(),
            }),
        });
        let text = SweepTable::new("faults")
            .columns(["value"])
            .render(&reports, |&v| vec![vec![v.to_string()]]);
        assert!(text.contains("10"), "{text}");
        assert!(text.contains("panicked: buffer exploded"), "{text}");
    }

    #[test]
    fn empty_sweeps_render_headers_only() {
        let reports: Vec<SweepReport<PointResult<usize>>> = Vec::new();
        let text = SweepTable::new("empty")
            .columns(["value"])
            .render(&reports, |&v| vec![vec![v.to_string()]]);
        assert!(text.contains("empty"));
        assert!(text.contains("value"));
    }
}
