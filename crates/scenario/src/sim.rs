//! The `Sim` facade: one object owning data plane, control plane and
//! scheduled driver actions, stepped in global event-time order.
//!
//! Before this facade existed, every dynamic caller interleaved
//! [`Signaling::process_until`] with [`Network::run_until`] by hand —
//! typically in fixed-size slices, which meant completed signaling
//! transactions were only *observed* at slice boundaries: a source admitted
//! at `t` came alive at the next multiple of the slice, and the results
//! depended on the slice width.  `Sim` removes that wart: control messages,
//! data-plane events and user-scheduled actions are merged into one global
//! timeline, handlers run at the exact simulated instant their event
//! completes, and stepping granularity (`run_until` called once or a
//! thousand times) cannot change any outcome.
//!
//! Ordering at equal timestamps is deterministic and documented:
//! **data ≺ control ≺ action**.  Data-plane events settle first (so
//! admission decisions and observers at `t` see every packet that arrived
//! at `t`), control messages due at that instant complete next, and
//! user-scheduled actions run last — an action observing the simulation at
//! its own instant sees a fully settled network.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use ispn_core::{FlowId, TokenBucketSpec};
use ispn_net::{FlowConfig, FlowReport, Network};
use ispn_signal::{Lease, LeasedSource, RequestId, SignalEvent, Signaling};
use ispn_sim::{EventQueue, Pcg64, SimTime};
use ispn_traffic::{OnOffConfig, OnOffSource};
use ispn_transport::TcpHandles;

use crate::report::{MeasurementPlan, RunTelemetry, ScenarioReport};
use crate::topology::BuiltTopology;
use crate::workload::ChurnWorkload;

/// A deferred driver action, run with exclusive access to the simulation at
/// its scheduled instant.
type Action = Box<dyn FnOnce(&mut Sim)>;

/// A callback observing completed signaling transactions at their exact
/// event time.
type SignalHandler = Box<dyn FnMut(&SignalEvent, &mut Sim)>;

/// One flow the churn workload has admitted and not yet reclaimed (still
/// holding, or departed with the teardown wave still in flight).  Flows
/// whose id slot was already recycled live on as measurement snapshots in
/// [`Sim::churn_flow_reports`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnFlowRecord {
    /// The admitted flow.
    pub flow: FlowId,
    /// `Some(priority)` for predicted requests, `None` for guaranteed.
    pub priority: Option<u8>,
    /// Path length of the request in links.
    pub hops: usize,
}

/// The full measurement record of one admitted churn flow: live for flows
/// still holding, a snapshot taken at reclamation time for flows whose id
/// slot has since been recycled (and possibly reused by a later arrival).
#[derive(Debug, Clone)]
pub struct ChurnFlowReport {
    /// The flow id the request was admitted under.  **Not unique** across a
    /// churn run once slots recycle — order in the returned list (admission
    /// order) is the stable identity.
    pub flow: FlowId,
    /// `Some(priority)` for predicted requests, `None` for guaranteed.
    pub priority: Option<u8>,
    /// Path length of the request in links.
    pub hops: usize,
    /// The flow's end-to-end measurements over its whole lifetime.
    pub report: FlowReport,
}

/// Per-flow churn bookkeeping (the lease silences the source on departure).
struct ChurnEntry {
    /// Admission index (0, 1, 2, …) — the stable identity of this admission
    /// even after its flow id is recycled and reused.
    order: u32,
    priority: Option<u8>,
    hops: usize,
    lease: Option<Lease>,
}

/// A departed churn flow's measurement snapshot, taken the instant its id
/// slot was reclaimed (the monitor row is reset on recycle).
struct CompletedChurnFlow {
    order: u32,
    priority: Option<u8>,
    hops: usize,
    report: FlowReport,
}

/// The facade-owned churn driver: one private RNG stream drives arrivals,
/// mixes, gaps and holding times; completions are observed through the same
/// dispatch path as user handlers (driver first).
struct ChurnDriver {
    spec: ChurnWorkload,
    rng: Pcg64,
    admitted: BTreeMap<FlowId, ChurnEntry>,
    requested: BTreeMap<FlowId, (Option<u8>, usize)>,
    source_seq: u32,
    /// Snapshots of flows whose id slots were reclaimed, in no particular
    /// order (sorted by admission index on read-out).
    completed: Vec<CompletedChurnFlow>,
    /// Set by [`Sim::drain_churn`]: in-flight completions must no longer
    /// spawn sources or departures.
    draining: bool,
}

type ChurnHandle = Rc<RefCell<ChurnDriver>>;

impl ChurnDriver {
    /// The self-rescheduling arrival: pick a uniformly random forward span,
    /// draw the service mix, submit, schedule the next arrival.  The RNG
    /// draw order (span, span length, mix, inter-arrival gap) is part of
    /// the workload's reproducibility contract — do not reorder.
    fn arrival(handle: ChurnHandle, sim: &mut Sim) {
        if handle.borrow().draining {
            return;
        }
        // Before admitting more work, reclaim the id slots of flows that
        // finished since the last arrival — this is what keeps the flow
        // table bounded by the *concurrent* population instead of growing
        // with every request ever made.
        Self::reclaim_finished(&handle, sim);
        let (config, priority, hops, gap) = {
            let mut d = handle.borrow_mut();
            let nlinks = sim.built().forward.len() as u64;
            let first = d.rng.next_below(nlinks) as usize;
            let hops = 1 + d.rng.next_below(nlinks - first as u64) as usize;
            let route = sim
                .built()
                .span(first, hops)
                .expect("arrival spans stay inside the preset");
            let guaranteed_fraction = d.spec.guaranteed_fraction;
            let guaranteed_rate_bps = d.spec.guaranteed_rate_bps;
            let nclasses = d.spec.classes.len();
            let (config, priority) = if d.rng.bernoulli(guaranteed_fraction) {
                (FlowConfig::guaranteed(route, guaranteed_rate_bps), None)
            } else {
                // A fair coin for the two-class mix (the dominant case,
                // and the draw the pre-promotion churn driver made — kept
                // so migrated runs reproduce bit-exactly); a uniform index
                // for any other class count.
                let idx = if nclasses == 2 {
                    usize::from(d.rng.bernoulli(0.5))
                } else {
                    d.rng.next_below(nclasses as u64) as usize
                };
                let class = d.spec.classes[idx].clone();
                let bound = class.per_hop_target.mul_f64(hops as f64);
                (
                    FlowConfig::predicted(
                        route,
                        class.priority,
                        class.bucket,
                        bound,
                        class.loss_rate,
                        class.police,
                    ),
                    Some(class.priority),
                )
            };
            let arrivals_per_sec = d.spec.arrivals_per_sec;
            let gap = SimTime::from_secs_f64(d.rng.exponential(1.0 / arrivals_per_sec));
            (config, priority, hops, gap)
        };
        let (_req, flow) = sim.submit(config);
        handle.borrow_mut().requested.insert(flow, (priority, hops));
        let next = sim.now() + gap;
        let h = handle.clone();
        sim.schedule_at(next, move |sim| ChurnDriver::arrival(h, sim));
    }

    /// Reclaim the id slots of flows the network reports drained: rejected
    /// setups and departed flows whose teardown wave finished and whose
    /// last in-flight packet left the network.  An admitted flow's
    /// measurement snapshot is taken here, *before* the recycle resets its
    /// monitor row, so bound-compliance checks keep the full history even
    /// after the id is reused by a later arrival.  Recycling changes no RNG
    /// draw and no packet timing, so the decision sequence is unaffected.
    fn reclaim_finished(handle: &ChurnHandle, sim: &mut Sim) {
        for flow in sim.network_mut().take_drained_flows() {
            let entry = handle.borrow_mut().admitted.remove(&flow);
            if let Some(entry) = entry {
                let report = sim.network_mut().monitor_mut().flow_report(flow);
                handle.borrow_mut().completed.push(CompletedChurnFlow {
                    order: entry.order,
                    priority: entry.priority,
                    hops: entry.hops,
                    report,
                });
            }
            sim.network_mut().recycle_flow_slot(flow);
        }
    }

    /// The departure of one admitted flow: revoke its source's lease and
    /// begin the hop-by-hop teardown.
    fn departure(handle: ChurnHandle, flow: FlowId, sim: &mut Sim) {
        let lease = handle
            .borrow_mut()
            .admitted
            .get_mut(&flow)
            .and_then(|entry| entry.lease.take());
        if let Some(lease) = lease {
            lease.revoke();
            sim.teardown(flow);
        }
    }

    /// Observe a completed signaling transaction: an accepted setup gets
    /// its leased source the instant the confirmation lands, plus a
    /// scheduled departure.
    fn on_signal(handle: &ChurnHandle, event: &SignalEvent, sim: &mut Sim) {
        if handle.borrow().draining {
            return;
        }
        match event {
            SignalEvent::Accepted { flow, at, .. } => {
                let (leased, hold) = {
                    let mut d = handle.borrow_mut();
                    // Completions for flows the driver did not submit (a
                    // caller using `Sim::submit` next to the churn
                    // workload) are not the driver's business.
                    let Some((priority, hops)) = d.requested.remove(flow) else {
                        return;
                    };
                    // The source-seed index counts admissions, so it doubles
                    // as the admission index — the stable identity of this
                    // admission once flow ids start being reused.
                    let order = d.source_seq;
                    let seed = d.spec.source.seed_for(d.source_seq);
                    let source = OnOffSource::new(
                        *flow,
                        OnOffConfig::paper(d.spec.source.avg_rate_pps, seed),
                    );
                    d.source_seq += 1;
                    let (leased, lease) = LeasedSource::new(source);
                    let mean_holding_secs = d.spec.mean_holding_secs;
                    let hold = SimTime::from_secs_f64(d.rng.exponential(mean_holding_secs));
                    d.admitted.insert(
                        *flow,
                        ChurnEntry {
                            order,
                            priority,
                            hops,
                            lease: Some(lease),
                        },
                    );
                    (leased, hold)
                };
                sim.network_mut().add_agent(Box::new(leased));
                let h = handle.clone();
                let flow = *flow;
                sim.schedule_at(*at + hold, move |sim| ChurnDriver::departure(h, flow, sim));
            }
            SignalEvent::Rejected { flow, .. } => {
                handle.borrow_mut().requested.remove(flow);
            }
            _ => {}
        }
    }
}

/// The scenario simulation: network, signaling engine, scheduled actions
/// and the signal-event handler, advanced together.
pub struct Sim {
    net: Network,
    sig: Signaling,
    actions: EventQueue<Action>,
    handler: Option<SignalHandler>,
    /// Set by [`clear_signal_handler`](Sim::clear_signal_handler) so a
    /// clear issued *from inside* the handler (whose box is temporarily
    /// taken out of `handler` during dispatch) is not undone by the
    /// restore.
    handler_cleared: bool,
    /// Reentrancy guard: [`run_until`](Sim::run_until) must not be called
    /// from inside a scheduled action or signal handler.
    running: bool,
    collected: Vec<SignalEvent>,
    flows: Vec<FlowId>,
    tcp: Vec<TcpHandles>,
    built: BuiltTopology,
    /// The churn workload driver, when the builder declared one.
    churn: Option<ChurnHandle>,
    /// Wall-clock time spent inside [`run_until`](Sim::run_until), summed
    /// over calls.  Feeds only the opt-in [`RunTelemetry`] block — it never
    /// enters the default report, so measured output stays byte-identical
    /// across machines.
    wall: std::time::Duration,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.net.now())
            .field("flows", &self.flows.len())
            .field("tcp", &self.tcp.len())
            .field("pending_actions", &self.actions.len())
            .field("pending_signaling", &self.sig.pending())
            .finish_non_exhaustive()
    }
}

impl Sim {
    /// Assemble a simulation from already-wired parts (the builder's job;
    /// prefer [`ScenarioBuilder`](crate::ScenarioBuilder)).
    pub fn from_parts(
        net: Network,
        sig: Signaling,
        flows: Vec<FlowId>,
        tcp: Vec<TcpHandles>,
        built: BuiltTopology,
    ) -> Self {
        Sim {
            net,
            sig,
            actions: EventQueue::new(),
            handler: None,
            handler_cleared: false,
            running: false,
            collected: Vec::new(),
            flows,
            tcp,
            built,
            churn: None,
            wall: std::time::Duration::ZERO,
        }
    }

    /// Install a churn workload (the builder's job when the scenario
    /// declares [`WorkloadSpec::Churn`](crate::workload::WorkloadSpec)):
    /// seeds the driver's private RNG and schedules the first arrival.
    pub(crate) fn install_churn(&mut self, spec: ChurnWorkload) {
        let mut rng = Pcg64::new(spec.seed);
        let gap = SimTime::from_secs_f64(rng.exponential(1.0 / spec.arrivals_per_sec));
        let driver = Rc::new(RefCell::new(ChurnDriver {
            spec,
            rng,
            admitted: BTreeMap::new(),
            requested: BTreeMap::new(),
            source_seq: 0,
            completed: Vec::new(),
            draining: false,
        }));
        self.churn = Some(driver.clone());
        self.schedule_at(gap, move |sim| ChurnDriver::arrival(driver, sim));
    }

    /// Whether this simulation carries a churn workload.
    pub fn has_churn(&self) -> bool {
        self.churn.is_some()
    }

    /// Every churn-admitted flow not yet reclaimed (still holding, or
    /// departed with its teardown wave still in flight), sorted by flow
    /// id.  Empty without a churn workload.  For the full admission
    /// history — departed-and-recycled flows included — use
    /// [`churn_flow_reports`](Sim::churn_flow_reports).
    pub fn churn_admitted(&self) -> Vec<ChurnFlowRecord> {
        let Some(churn) = &self.churn else {
            return Vec::new();
        };
        let d = churn.borrow();
        // `admitted` is a `BTreeMap`, so iteration is already in flow-id
        // order — sorted by construction, no post-sort needed.
        d.admitted
            .iter()
            .map(|(&flow, entry)| ChurnFlowRecord {
                flow,
                priority: entry.priority,
                hops: entry.hops,
            })
            .collect()
    }

    /// The measurement record of **every** flow the churn workload ever
    /// admitted, in admission order: flows whose id slot was reclaimed
    /// report the snapshot taken at reclamation time (their measurements
    /// were final — the slot is only recycled once the last in-flight
    /// packet left the network), flows still live are queried from the
    /// monitor now.  Empty without a churn workload.
    pub fn churn_flow_reports(&mut self) -> Vec<ChurnFlowReport> {
        let Some(churn) = self.churn.clone() else {
            return Vec::new();
        };
        let mut rows: Vec<(u32, ChurnFlowReport)> = Vec::new();
        let live: Vec<(u32, FlowId, Option<u8>, usize)> = {
            let d = churn.borrow();
            for c in &d.completed {
                rows.push((
                    c.order,
                    ChurnFlowReport {
                        flow: c.report.flow,
                        priority: c.priority,
                        hops: c.hops,
                        report: c.report.clone(),
                    },
                ));
            }
            d.admitted
                .iter()
                .map(|(&flow, e)| (e.order, flow, e.priority, e.hops))
                .collect()
        };
        for (order, flow, priority, hops) in live {
            let report = self.net.monitor_mut().flow_report(flow);
            rows.push((
                order,
                ChurnFlowReport {
                    flow,
                    priority,
                    hops,
                    report,
                },
            ));
        }
        rows.sort_by_key(|&(order, _)| order);
        rows.into_iter().map(|(_, r)| r).collect()
    }

    /// Drain the churn workload: stop the arrival process (this cancels
    /// **every** scheduled action, like
    /// [`cancel_scheduled`](Sim::cancel_scheduled)), silence each admitted
    /// flow's source and begin its teardown, in flow-id order.  Run the
    /// simulation a little longer afterwards to let the release waves
    /// finish; no reservation state survives a drained run.
    pub fn drain_churn(&mut self) {
        let Some(churn) = self.churn.clone() else {
            return;
        };
        churn.borrow_mut().draining = true;
        self.cancel_scheduled();
        let to_tear: Vec<(FlowId, Lease)> = {
            let mut d = churn.borrow_mut();
            // Teardown order does not affect the outcome, but `admitted`
            // being a `BTreeMap` makes the drain flow-id-ordered — and so
            // reproducible — by construction.
            d.admitted
                .iter_mut()
                .filter_map(|(&flow, entry)| entry.lease.take().map(|l| (flow, l)))
                .collect::<Vec<(FlowId, Lease)>>()
        };
        for (flow, lease) in to_tear {
            lease.revoke();
            self.teardown(flow);
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The data plane.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the data plane (attach agents, pull reports).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The control plane.
    pub fn signaling(&self) -> &Signaling {
        &self.sig
    }

    /// The flows declared through the builder, in declaration order.
    pub fn flows(&self) -> &[FlowId] {
        &self.flows
    }

    /// The TCP connections declared through the builder, in declaration
    /// order.
    pub fn tcp(&self) -> &[TcpHandles] {
        &self.tcp
    }

    /// The built topology (preset link bookkeeping included).
    pub fn built(&self) -> &BuiltTopology {
        &self.built
    }

    /// Install the signal-event handler.  The handler runs at the exact
    /// simulated instant each transaction completes, with full mutable
    /// access to the simulation (add agents, schedule actions, submit or
    /// tear down flows) — except [`run_until`](Sim::run_until), which must
    /// not be re-entered.  Installing a handler replaces the previous one.
    pub fn on_signal(&mut self, handler: impl FnMut(&SignalEvent, &mut Sim) + 'static) {
        self.handler = Some(Box::new(handler));
        self.handler_cleared = false;
    }

    /// Remove the signal-event handler (completed transactions are then
    /// only collected and returned by [`run_until`](Sim::run_until)).
    /// Also effective when called from inside the handler itself — a
    /// one-shot handler may deregister on its first event.
    pub fn clear_signal_handler(&mut self) {
        self.handler = None;
        self.handler_cleared = true;
    }

    /// Schedule an action at absolute simulated time `at` (clamped to the
    /// current time if already past).
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim) + 'static) {
        let at = at.max(self.now());
        self.actions.push(at, Box::new(action));
    }

    /// Schedule an action `delay` from now.
    pub fn schedule_in(&mut self, delay: SimTime, action: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now() + delay, action);
    }

    /// Drop every scheduled action that has not yet run (e.g. to stop an
    /// arrival process before draining a churn scenario).
    pub fn cancel_scheduled(&mut self) {
        self.actions.clear();
    }

    /// Begin a hop-by-hop flow setup (see [`Signaling::submit`]).
    pub fn submit(&mut self, config: FlowConfig) -> (RequestId, FlowId) {
        self.sig.submit(&mut self.net, config)
    }

    /// Begin a teardown (see [`Signaling::teardown`]).
    pub fn teardown(&mut self, flow: FlowId) {
        self.sig.teardown(&mut self.net, flow);
    }

    /// Begin renegotiating a predicted flow's `(r, b)` declaration.
    pub fn renegotiate_bucket(&mut self, flow: FlowId, new_bucket: TokenBucketSpec) -> RequestId {
        self.sig.renegotiate_bucket(&mut self.net, flow, new_bucket)
    }

    /// Begin renegotiating a guaranteed flow's clock rate.
    pub fn renegotiate_clock_rate(&mut self, flow: FlowId, new_rate_bps: f64) -> RequestId {
        self.sig
            .renegotiate_clock_rate(&mut self.net, flow, new_rate_bps)
    }

    fn dispatch(&mut self, events: Vec<SignalEvent>) {
        for event in events {
            // The churn driver observes completions before any user
            // handler: sources come alive at their exact accept instants
            // whether or not the caller also watches events.
            if let Some(churn) = self.churn.clone() {
                ChurnDriver::on_signal(&churn, &event, self);
            }
            if let Some(mut handler) = self.handler.take() {
                self.handler_cleared = false;
                handler(&event, self);
                // Keep the handler unless the callback installed a new one
                // or explicitly deregistered.
                if self.handler.is_none() && !self.handler_cleared {
                    self.handler = Some(handler);
                }
            }
            self.collected.push(event);
        }
    }

    /// Advance the simulation to `horizon`, stepping data-plane events,
    /// control messages and scheduled actions in global event-time order.
    /// Returns every signaling transaction that completed in the window,
    /// in completion order (they were also delivered to the handler at
    /// their exact times).  May be called repeatedly with increasing
    /// horizons; the stepping granularity does not affect any outcome.
    ///
    /// Events due at exactly `horizon` wait for the next call — except at
    /// the end of time itself: `run_until(SimTime::MAX)` also runs actions
    /// scheduled at `SimTime::MAX`, so "at the end of the run" is a
    /// schedulable instant rather than a silently dropped one.  An
    /// end-of-time drain runs every pending control message and scheduled
    /// action but does **not** try to exhaust the data plane's own event
    /// stream — a self-rescheduling source or periodic admission sampler
    /// has no last event, so data settles only through the last control or
    /// action instant.  Drive the simulation to a finite horizon first
    /// when measurements must cover a specific window.
    ///
    /// Ties at the same instant resolve **data ≺ control ≺ action**: the
    /// data plane settles first (so a handler or action observing the
    /// network at `t` sees every packet that arrived at `t`), then control
    /// messages complete, then scheduled actions run.
    ///
    /// # Panics
    /// Panics if called from inside a scheduled action or signal handler:
    /// those run *within* a `run_until` step, and a nested call would
    /// steal the outer call's collected events and bypass the handler.
    /// The simulation keeps advancing after the callback returns — there
    /// is never a reason to pump it from inside one.
    pub fn run_until(&mut self, horizon: SimTime) -> Vec<SignalEvent> {
        assert!(
            !self.running,
            "Sim::run_until must not be re-entered from a scheduled action \
             or signal handler"
        );
        self.running = true;
        // ispn-lint: allow(wall-clock) -- events/sec telemetry: measures the
        // host's wall time around the run; reported only when RunTelemetry
        // is opted in, never part of a golden report body.
        #[allow(clippy::disallowed_methods)]
        let started = std::time::Instant::now();
        let draining = horizon == SimTime::MAX;
        let due = |t: SimTime| t < horizon || (t == horizon && draining);
        loop {
            let next_control = self.sig.peek_time().filter(|&t| due(t));
            let next_action = self.actions.peek_time().filter(|&t| due(t));
            // Control wins a tie against an action (control ≺ action).
            let control_first = match (next_control, next_action) {
                (None, None) => break,
                (Some(tc), Some(ta)) => tc <= ta,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };
            if control_first {
                // `process_next` first settles the data plane through the
                // control instant (data ≺ control).
                let events = self.sig.process_next(&mut self.net);
                self.dispatch(events);
            } else {
                let ta = next_action.expect("action branch has an action");
                if !draining || ta < SimTime::MAX {
                    // No control message due at or before the action's
                    // instant: bring both planes through it — data events
                    // at exactly `ta` included (data ≺ action) — then run
                    // the action.
                    let events = self.sig.process_until(&mut self.net, ta);
                    self.dispatch(events);
                    self.net.run_through(ta);
                }
                // An end-of-time action runs without driving the planes to
                // t = SimTime::MAX: an unbounded event stream (periodic
                // sources, admission samplers) has no end to reach.
                let (_, action) = self.actions.pop().expect("peeked action exists");
                action(self);
            }
        }
        if !draining {
            let events = self.sig.process_until(&mut self.net, horizon);
            self.dispatch(events);
        }
        self.running = false;
        self.wall += started.elapsed();
        std::mem::take(&mut self.collected)
    }

    /// Collect a structured report of the statistics the plan selects.
    /// When the plan opts in with
    /// [`with_run_telemetry`](MeasurementPlan::with_run_telemetry), the
    /// report carries a [`RunTelemetry`] block built from the engine
    /// counters and the wall-clock time accumulated across `run_until`
    /// calls; otherwise the report is byte-identical to a plan without the
    /// flag.
    pub fn report(&mut self, plan: &MeasurementPlan) -> ScenarioReport {
        let mut report = ScenarioReport::collect(plan, &mut self.net, &self.sig, &self.flows);
        if plan.run_telemetry {
            report.telemetry = Some(RunTelemetry::collect(&self.net, self.wall.as_secs_f64()));
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::admission::{AdmissionConfig, AdmissionController};
    use ispn_net::Topology;
    use ispn_sched::{Averaging, Unified};
    use ispn_signal::SignalConfig;
    use std::cell::RefCell;
    use std::rc::Rc;

    const MBIT: f64 = 1_000_000.0;

    fn simple_sim() -> Sim {
        let (topo, _nodes, links) = Topology::chain(3, MBIT, SimTime::MILLISECOND, 200);
        let built = crate::topology::TopologySpec::custom(topo.clone())
            .build(&crate::topology::LinkProfile::default())
            .unwrap();
        let mut net = Network::new(topo);
        for &l in &links {
            net.set_discipline(l, Unified::new(MBIT, 1, Averaging::RunningMean));
            net.enable_admission(
                l,
                AdmissionController::new(
                    AdmissionConfig::new(MBIT, 0.9, vec![SimTime::from_millis(100)]),
                    10.0,
                ),
                SimTime::SECOND,
            );
        }
        Sim::from_parts(
            net,
            Signaling::new(SignalConfig::default()),
            Vec::new(),
            Vec::new(),
            built,
        )
    }

    #[test]
    fn handler_runs_at_the_exact_completion_instant() {
        let mut sim = simple_sim();
        let links = sim.built().forward.clone();
        let seen: Rc<RefCell<Vec<(SimTime, SimTime)>>> = Rc::default();
        let seen2 = seen.clone();
        sim.on_signal(move |e, sim| {
            seen2.borrow_mut().push((e.at(), sim.now()));
        });
        sim.submit(FlowConfig::guaranteed(links, 300_000.0));
        sim.run_until(SimTime::from_secs(1));
        let seen = seen.borrow();
        assert_eq!(seen.len(), 1);
        // Two 1 Mbit/s links with 1 ms propagation: the confirmation lands
        // at exactly 4 ms, and the handler observed the network *at* 4 ms,
        // not at some later polling boundary.
        assert_eq!(seen[0].0, SimTime::from_millis(4));
        assert_eq!(seen[0].1, SimTime::from_millis(4));
    }

    #[test]
    fn control_events_run_before_actions_due_at_the_same_instant() {
        let mut sim = simple_sim();
        let links = sim.built().forward.clone();
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let o1 = order.clone();
        sim.on_signal(move |_, _| o1.borrow_mut().push("control"));
        sim.submit(FlowConfig::guaranteed(links, 300_000.0));
        // The confirmation completes at exactly 4 ms; the control message
        // runs first, the 4 ms action after it (the documented
        // data ≺ control ≺ action tie-break).
        let o2 = order.clone();
        sim.schedule_at(SimTime::from_millis(4), move |_| {
            o2.borrow_mut().push("action")
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*order.borrow(), vec!["control", "action"]);
    }

    #[test]
    fn data_events_settle_before_control_and_actions_at_the_same_instant() {
        // One packet traced to leave the source at 2 ms: 1 ms transmission
        // plus 1 ms propagation lands it at the destination at exactly
        // 4 ms — the same instant the setup confirmation completes and an
        // action is scheduled.  Both must observe the delivery.
        let mut sim = simple_sim();
        let links = sim.built().forward.clone();
        let flow = sim
            .network_mut()
            .add_flow(FlowConfig::datagram(vec![links[0]]));
        sim.network_mut()
            .add_agent(Box::new(ispn_traffic::TraceSource::new(
                flow,
                vec![(SimTime::from_millis(2), 1000)],
            )));
        let seen_by_handler: Rc<RefCell<Option<u64>>> = Rc::default();
        let s1 = seen_by_handler.clone();
        sim.on_signal(move |event, sim| {
            assert_eq!(event.at(), SimTime::from_millis(4));
            let r = sim.network_mut().monitor_mut().flow_report(flow);
            *s1.borrow_mut() = Some(r.delivered);
        });
        sim.submit(FlowConfig::guaranteed(links, 300_000.0));
        let seen_by_action: Rc<RefCell<Option<u64>>> = Rc::default();
        let s2 = seen_by_action.clone();
        sim.schedule_at(SimTime::from_millis(4), move |sim: &mut Sim| {
            let r = sim.network_mut().monitor_mut().flow_report(flow);
            *s2.borrow_mut() = Some(r.delivered);
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(
            *seen_by_handler.borrow(),
            Some(1),
            "the 4 ms delivery must be visible to the 4 ms completion"
        );
        assert_eq!(
            *seen_by_action.borrow(),
            Some(1),
            "the 4 ms delivery must be visible to the 4 ms action"
        );
    }

    #[test]
    fn actions_scheduled_at_the_end_of_time_still_run() {
        // simple_sim has periodic admission sampling — an unbounded data
        // event stream.  The end-of-time drain must run the action without
        // trying to exhaust that stream (it has no last event).
        let mut sim = simple_sim();
        let ran: Rc<RefCell<bool>> = Rc::default();
        let r = ran.clone();
        sim.schedule_at(SimTime::MAX, move |_| *r.borrow_mut() = true);
        // Any finite horizon leaves it pending…
        sim.run_until(SimTime::from_secs(1000));
        assert!(!*ran.borrow());
        // …but draining to the end of time runs it instead of silently
        // dropping it.
        sim.run_until(SimTime::MAX);
        assert!(*ran.borrow());
    }

    #[test]
    fn scheduled_actions_fire_in_order_and_can_reschedule() {
        let mut sim = simple_sim();
        let ticks: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        fn tick(ticks: Rc<RefCell<Vec<SimTime>>>, left: u32) -> impl FnOnce(&mut Sim) + 'static {
            move |sim: &mut Sim| {
                ticks.borrow_mut().push(sim.now());
                if left > 0 {
                    let t = ticks.clone();
                    sim.schedule_in(SimTime::from_millis(10), tick(t, left - 1));
                }
            }
        }
        sim.schedule_at(SimTime::from_millis(5), tick(ticks.clone(), 3));
        sim.run_until(SimTime::from_millis(26));
        assert_eq!(
            *ticks.borrow(),
            vec![
                SimTime::from_millis(5),
                SimTime::from_millis(15),
                SimTime::from_millis(25)
            ]
        );
        // The last rescheduled tick (t = 35 ms) is beyond the horizon and
        // still pending; cancel_scheduled drops it.
        sim.cancel_scheduled();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(ticks.borrow().len(), 3);
    }

    #[test]
    fn handler_can_deregister_itself_from_inside_the_callback() {
        let mut sim = simple_sim();
        let links = sim.built().forward.clone();
        let calls: Rc<RefCell<u32>> = Rc::default();
        let calls2 = calls.clone();
        sim.on_signal(move |_, sim| {
            *calls2.borrow_mut() += 1;
            sim.clear_signal_handler();
        });
        // Two setups, two completions: a one-shot handler must only see
        // the first.
        sim.submit(FlowConfig::guaranteed(vec![links[0]], 200_000.0));
        sim.submit(FlowConfig::guaranteed(vec![links[1]], 200_000.0));
        let events = sim.run_until(SimTime::from_secs(1));
        assert_eq!(events.len(), 2, "both completions are still returned");
        assert_eq!(
            *calls.borrow(),
            1,
            "the cleared handler must not fire again"
        );
    }

    #[test]
    #[should_panic(expected = "must not be re-entered")]
    fn run_until_rejects_reentrant_calls_from_actions() {
        let mut sim = simple_sim();
        sim.schedule_at(SimTime::from_millis(5), |sim: &mut Sim| {
            sim.run_until(SimTime::from_secs(1));
        });
        sim.run_until(SimTime::from_secs(1));
    }

    #[test]
    fn run_until_returns_the_events_the_handler_saw() {
        let mut sim = simple_sim();
        let links = sim.built().forward.clone();
        let (req, flow) = sim.submit(FlowConfig::guaranteed(links, 300_000.0));
        let events = sim.run_until(SimTime::from_secs(1));
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], SignalEvent::Accepted { request, .. } if *request == req));
        assert!(sim.network().flow_active(flow));
    }
}
