//! The `Sim` facade: one object owning data plane, control plane and
//! scheduled driver actions, stepped in global event-time order.
//!
//! Before this facade existed, every dynamic caller interleaved
//! [`Signaling::process_until`] with [`Network::run_until`] by hand —
//! typically in fixed-size slices, which meant completed signaling
//! transactions were only *observed* at slice boundaries: a source admitted
//! at `t` came alive at the next multiple of the slice, and the results
//! depended on the slice width.  `Sim` removes that wart: control messages,
//! data-plane events and user-scheduled actions are merged into one global
//! timeline, handlers run at the exact simulated instant their event
//! completes, and stepping granularity (`run_until` called once or a
//! thousand times) cannot change any outcome.
//!
//! Ordering at equal timestamps is deterministic and documented:
//! user-scheduled actions run before control messages due at the same
//! instant, and control messages run before data-plane events at their
//! instant (the engine's own convention).

use ispn_core::{FlowId, TokenBucketSpec};
use ispn_net::{FlowConfig, Network};
use ispn_signal::{RequestId, SignalEvent, Signaling};
use ispn_sim::{EventQueue, SimTime};
use ispn_transport::TcpHandles;

use crate::report::{MeasurementPlan, ScenarioReport};
use crate::topology::BuiltTopology;

/// A deferred driver action, run with exclusive access to the simulation at
/// its scheduled instant.
type Action = Box<dyn FnOnce(&mut Sim)>;

/// A callback observing completed signaling transactions at their exact
/// event time.
type SignalHandler = Box<dyn FnMut(&SignalEvent, &mut Sim)>;

/// The scenario simulation: network, signaling engine, scheduled actions
/// and the signal-event handler, advanced together.
pub struct Sim {
    net: Network,
    sig: Signaling,
    actions: EventQueue<Action>,
    handler: Option<SignalHandler>,
    /// Set by [`clear_signal_handler`](Sim::clear_signal_handler) so a
    /// clear issued *from inside* the handler (whose box is temporarily
    /// taken out of `handler` during dispatch) is not undone by the
    /// restore.
    handler_cleared: bool,
    /// Reentrancy guard: [`run_until`](Sim::run_until) must not be called
    /// from inside a scheduled action or signal handler.
    running: bool,
    collected: Vec<SignalEvent>,
    flows: Vec<FlowId>,
    tcp: Vec<TcpHandles>,
    built: BuiltTopology,
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.net.now())
            .field("flows", &self.flows.len())
            .field("tcp", &self.tcp.len())
            .field("pending_actions", &self.actions.len())
            .field("pending_signaling", &self.sig.pending())
            .finish_non_exhaustive()
    }
}

impl Sim {
    /// Assemble a simulation from already-wired parts (the builder's job;
    /// prefer [`ScenarioBuilder`](crate::ScenarioBuilder)).
    pub fn from_parts(
        net: Network,
        sig: Signaling,
        flows: Vec<FlowId>,
        tcp: Vec<TcpHandles>,
        built: BuiltTopology,
    ) -> Self {
        Sim {
            net,
            sig,
            actions: EventQueue::new(),
            handler: None,
            handler_cleared: false,
            running: false,
            collected: Vec::new(),
            flows,
            tcp,
            built,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// The data plane.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the data plane (attach agents, pull reports).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The control plane.
    pub fn signaling(&self) -> &Signaling {
        &self.sig
    }

    /// The flows declared through the builder, in declaration order.
    pub fn flows(&self) -> &[FlowId] {
        &self.flows
    }

    /// The TCP connections declared through the builder, in declaration
    /// order.
    pub fn tcp(&self) -> &[TcpHandles] {
        &self.tcp
    }

    /// The built topology (preset link bookkeeping included).
    pub fn built(&self) -> &BuiltTopology {
        &self.built
    }

    /// Install the signal-event handler.  The handler runs at the exact
    /// simulated instant each transaction completes, with full mutable
    /// access to the simulation (add agents, schedule actions, submit or
    /// tear down flows) — except [`run_until`](Sim::run_until), which must
    /// not be re-entered.  Installing a handler replaces the previous one.
    pub fn on_signal(&mut self, handler: impl FnMut(&SignalEvent, &mut Sim) + 'static) {
        self.handler = Some(Box::new(handler));
        self.handler_cleared = false;
    }

    /// Remove the signal-event handler (completed transactions are then
    /// only collected and returned by [`run_until`](Sim::run_until)).
    /// Also effective when called from inside the handler itself — a
    /// one-shot handler may deregister on its first event.
    pub fn clear_signal_handler(&mut self) {
        self.handler = None;
        self.handler_cleared = true;
    }

    /// Schedule an action at absolute simulated time `at` (clamped to the
    /// current time if already past).
    pub fn schedule_at(&mut self, at: SimTime, action: impl FnOnce(&mut Sim) + 'static) {
        let at = at.max(self.now());
        self.actions.push(at, Box::new(action));
    }

    /// Schedule an action `delay` from now.
    pub fn schedule_in(&mut self, delay: SimTime, action: impl FnOnce(&mut Sim) + 'static) {
        self.schedule_at(self.now() + delay, action);
    }

    /// Drop every scheduled action that has not yet run (e.g. to stop an
    /// arrival process before draining a churn scenario).
    pub fn cancel_scheduled(&mut self) {
        self.actions.clear();
    }

    /// Begin a hop-by-hop flow setup (see [`Signaling::submit`]).
    pub fn submit(&mut self, config: FlowConfig) -> (RequestId, FlowId) {
        self.sig.submit(&mut self.net, config)
    }

    /// Begin a teardown (see [`Signaling::teardown`]).
    pub fn teardown(&mut self, flow: FlowId) {
        self.sig.teardown(&mut self.net, flow);
    }

    /// Begin renegotiating a predicted flow's `(r, b)` declaration.
    pub fn renegotiate_bucket(&mut self, flow: FlowId, new_bucket: TokenBucketSpec) -> RequestId {
        self.sig.renegotiate_bucket(&mut self.net, flow, new_bucket)
    }

    /// Begin renegotiating a guaranteed flow's clock rate.
    pub fn renegotiate_clock_rate(&mut self, flow: FlowId, new_rate_bps: f64) -> RequestId {
        self.sig
            .renegotiate_clock_rate(&mut self.net, flow, new_rate_bps)
    }

    fn dispatch(&mut self, events: Vec<SignalEvent>) {
        for event in events {
            if let Some(mut handler) = self.handler.take() {
                self.handler_cleared = false;
                handler(&event, self);
                // Keep the handler unless the callback installed a new one
                // or explicitly deregistered.
                if self.handler.is_none() && !self.handler_cleared {
                    self.handler = Some(handler);
                }
            }
            self.collected.push(event);
        }
    }

    /// Advance the simulation to `horizon`, stepping data-plane events,
    /// control messages and scheduled actions in global event-time order.
    /// Returns every signaling transaction that completed in the window,
    /// in completion order (they were also delivered to the handler at
    /// their exact times).  May be called repeatedly with increasing
    /// horizons; the stepping granularity does not affect any outcome.
    ///
    /// # Panics
    /// Panics if called from inside a scheduled action or signal handler:
    /// those run *within* a `run_until` step, and a nested call would
    /// steal the outer call's collected events and bypass the handler.
    /// The simulation keeps advancing after the callback returns — there
    /// is never a reason to pump it from inside one.
    pub fn run_until(&mut self, horizon: SimTime) -> Vec<SignalEvent> {
        assert!(
            !self.running,
            "Sim::run_until must not be re-entered from a scheduled action \
             or signal handler"
        );
        self.running = true;
        loop {
            let next_control = self.sig.peek_time().unwrap_or(SimTime::MAX);
            let next_action = self.actions.peek_time().unwrap_or(SimTime::MAX);
            if next_control.min(next_action) >= horizon {
                break;
            }
            if next_action <= next_control {
                // Bring both planes exactly to the action's instant (no
                // control message is due before it), then run it.
                let events = self.sig.process_until(&mut self.net, next_action);
                self.dispatch(events);
                let (_, action) = self.actions.pop().expect("peeked action exists");
                action(self);
            } else {
                // Process every control message at the next control
                // instant, delivering completions at that exact time.
                let events = self.sig.process_next(&mut self.net);
                self.dispatch(events);
            }
        }
        let events = self.sig.process_until(&mut self.net, horizon);
        self.dispatch(events);
        self.running = false;
        std::mem::take(&mut self.collected)
    }

    /// Collect a structured report of the statistics the plan selects.
    pub fn report(&mut self, plan: &MeasurementPlan) -> ScenarioReport {
        ScenarioReport::collect(plan, &mut self.net, &self.sig, &self.flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::admission::{AdmissionConfig, AdmissionController};
    use ispn_net::Topology;
    use ispn_sched::{Averaging, Unified};
    use ispn_signal::SignalConfig;
    use std::cell::RefCell;
    use std::rc::Rc;

    const MBIT: f64 = 1_000_000.0;

    fn simple_sim() -> Sim {
        let (topo, _nodes, links) = Topology::chain(3, MBIT, SimTime::MILLISECOND, 200);
        let built = crate::topology::TopologySpec::custom(topo.clone())
            .build(&crate::topology::LinkProfile::default())
            .unwrap();
        let mut net = Network::new(topo);
        for &l in &links {
            net.set_discipline(l, Box::new(Unified::new(MBIT, 1, Averaging::RunningMean)));
            net.enable_admission(
                l,
                AdmissionController::new(
                    AdmissionConfig::new(MBIT, 0.9, vec![SimTime::from_millis(100)]),
                    10.0,
                ),
                SimTime::SECOND,
            );
        }
        Sim::from_parts(
            net,
            Signaling::new(SignalConfig::default()),
            Vec::new(),
            Vec::new(),
            built,
        )
    }

    #[test]
    fn handler_runs_at_the_exact_completion_instant() {
        let mut sim = simple_sim();
        let links = sim.built().forward.clone();
        let seen: Rc<RefCell<Vec<(SimTime, SimTime)>>> = Rc::default();
        let seen2 = seen.clone();
        sim.on_signal(move |e, sim| {
            seen2.borrow_mut().push((e.at(), sim.now()));
        });
        sim.submit(FlowConfig::guaranteed(links, 300_000.0));
        sim.run_until(SimTime::from_secs(1));
        let seen = seen.borrow();
        assert_eq!(seen.len(), 1);
        // Two 1 Mbit/s links with 1 ms propagation: the confirmation lands
        // at exactly 4 ms, and the handler observed the network *at* 4 ms,
        // not at some later polling boundary.
        assert_eq!(seen[0].0, SimTime::from_millis(4));
        assert_eq!(seen[0].1, SimTime::from_millis(4));
    }

    #[test]
    fn actions_run_before_control_events_due_at_the_same_instant() {
        let mut sim = simple_sim();
        let links = sim.built().forward.clone();
        let order: Rc<RefCell<Vec<&'static str>>> = Rc::default();
        let o1 = order.clone();
        sim.on_signal(move |_, _| o1.borrow_mut().push("control"));
        sim.submit(FlowConfig::guaranteed(links, 300_000.0));
        // The confirmation completes at exactly 4 ms; an action at 4 ms
        // must run first (documented tie-break).
        let o2 = order.clone();
        sim.schedule_at(SimTime::from_millis(4), move |_| {
            o2.borrow_mut().push("action")
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(*order.borrow(), vec!["action", "control"]);
    }

    #[test]
    fn scheduled_actions_fire_in_order_and_can_reschedule() {
        let mut sim = simple_sim();
        let ticks: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        fn tick(ticks: Rc<RefCell<Vec<SimTime>>>, left: u32) -> impl FnOnce(&mut Sim) + 'static {
            move |sim: &mut Sim| {
                ticks.borrow_mut().push(sim.now());
                if left > 0 {
                    let t = ticks.clone();
                    sim.schedule_in(SimTime::from_millis(10), tick(t, left - 1));
                }
            }
        }
        sim.schedule_at(SimTime::from_millis(5), tick(ticks.clone(), 3));
        sim.run_until(SimTime::from_millis(26));
        assert_eq!(
            *ticks.borrow(),
            vec![
                SimTime::from_millis(5),
                SimTime::from_millis(15),
                SimTime::from_millis(25)
            ]
        );
        // The last rescheduled tick (t = 35 ms) is beyond the horizon and
        // still pending; cancel_scheduled drops it.
        sim.cancel_scheduled();
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(ticks.borrow().len(), 3);
    }

    #[test]
    fn handler_can_deregister_itself_from_inside_the_callback() {
        let mut sim = simple_sim();
        let links = sim.built().forward.clone();
        let calls: Rc<RefCell<u32>> = Rc::default();
        let calls2 = calls.clone();
        sim.on_signal(move |_, sim| {
            *calls2.borrow_mut() += 1;
            sim.clear_signal_handler();
        });
        // Two setups, two completions: a one-shot handler must only see
        // the first.
        sim.submit(FlowConfig::guaranteed(vec![links[0]], 200_000.0));
        sim.submit(FlowConfig::guaranteed(vec![links[1]], 200_000.0));
        let events = sim.run_until(SimTime::from_secs(1));
        assert_eq!(events.len(), 2, "both completions are still returned");
        assert_eq!(
            *calls.borrow(),
            1,
            "the cleared handler must not fire again"
        );
    }

    #[test]
    #[should_panic(expected = "must not be re-entered")]
    fn run_until_rejects_reentrant_calls_from_actions() {
        let mut sim = simple_sim();
        sim.schedule_at(SimTime::from_millis(5), |sim: &mut Sim| {
            sim.run_until(SimTime::from_secs(1));
        });
        sim.run_until(SimTime::from_secs(1));
    }

    #[test]
    fn run_until_returns_the_events_the_handler_saw() {
        let mut sim = simple_sim();
        let links = sim.built().forward.clone();
        let (req, flow) = sim.submit(FlowConfig::guaranteed(links, 300_000.0));
        let events = sim.run_until(SimTime::from_secs(1));
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], SignalEvent::Accepted { request, .. } if *request == req));
        assert!(sim.network().flow_active(flow));
    }
}
