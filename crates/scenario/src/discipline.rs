//! The discipline matrix: which queueing discipline runs on which link.
//!
//! A [`DisciplineSpec`] is a *recipe*, not an instance: the builder
//! instantiates it per link once it knows the link's rate, how many
//! declared flows cross it (WFQ's equal share and VirtualClock's default
//! rate depend on that) and which guaranteed flows need clock rates
//! installed (the unified scheduler's per-flow state).

use ispn_core::FlowId;
use ispn_net::LinkParams;
use ispn_sched::{
    Averaging, Discipline, Fifo, FifoPlus, StrictPriority, Unified, VirtualClock, Wfq,
};

/// A declarative queueing-discipline choice for one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DisciplineSpec {
    /// Plain FIFO.
    Fifo,
    /// FIFO+ with the given class-averaging method.
    FifoPlus(Averaging),
    /// Weighted Fair Queueing with equal clock rates over the flows that
    /// cross the link.
    Wfq,
    /// VirtualClock with the link's equal-share rate as the default.
    VirtualClock,
    /// Strict priority over `classes` FIFO bands (the ablation discipline).
    StrictPriority {
        /// Number of priority classes.
        classes: usize,
    },
    /// The paper's unified scheduler: WFQ for guaranteed flows, FIFO+
    /// priority classes for predicted traffic, datagram in the background.
    Unified {
        /// Number of predicted priority classes.
        priority_classes: usize,
        /// Class-averaging method for the predicted classes.
        averaging: Averaging,
    },
}

impl DisciplineSpec {
    /// The label experiments print for this discipline.
    pub fn label(&self) -> &'static str {
        match self {
            DisciplineSpec::Fifo => "FIFO",
            DisciplineSpec::FifoPlus(Averaging::RunningMean) => "FIFO+",
            DisciplineSpec::FifoPlus(Averaging::Ewma(_)) => "FIFO+ (EWMA)",
            DisciplineSpec::Wfq => "WFQ",
            DisciplineSpec::VirtualClock => "VirtualClock",
            DisciplineSpec::StrictPriority { .. } => "StrictPriority",
            DisciplineSpec::Unified { .. } => "Unified",
        }
    }

    /// Instantiate the discipline for one link.
    ///
    /// `flows_on_link` is the number of declared flows whose route crosses
    /// the link; `guaranteed` lists the guaranteed flows among them (in
    /// declaration order) with their clock rates, which per-flow
    /// disciplines install up front exactly as a static provisioning run
    /// would.
    pub fn build(
        &self,
        link: &LinkParams,
        flows_on_link: usize,
        guaranteed: &[(FlowId, f64)],
    ) -> Discipline {
        match self {
            DisciplineSpec::Fifo => Fifo::new().into(),
            DisciplineSpec::FifoPlus(avg) => FifoPlus::new(*avg).into(),
            DisciplineSpec::Wfq => {
                let mut wfq = Wfq::equal_share(link.rate_bps, flows_on_link);
                for &(flow, rate) in guaranteed {
                    wfq.set_rate(flow, rate);
                }
                wfq.into()
            }
            DisciplineSpec::VirtualClock => {
                VirtualClock::new(link.rate_bps / flows_on_link.max(1) as f64).into()
            }
            DisciplineSpec::StrictPriority { classes } => {
                StrictPriority::<Fifo>::new(*classes).into()
            }
            DisciplineSpec::Unified {
                priority_classes,
                averaging,
            } => {
                let mut unified = Unified::new(link.rate_bps, *priority_classes, *averaging);
                for &(flow, rate) in guaranteed {
                    unified.add_guaranteed_flow(flow, rate);
                }
                unified.into()
            }
        }
    }
}

/// Per-link discipline assignment: a global default plus overrides.
#[derive(Debug, Clone)]
pub struct DisciplineMatrix {
    default: DisciplineSpec,
    overrides: Vec<(ispn_net::LinkId, DisciplineSpec)>,
}

impl Default for DisciplineMatrix {
    /// FIFO everywhere — the network's own default.
    fn default() -> Self {
        DisciplineMatrix::global(DisciplineSpec::Fifo)
    }
}

impl DisciplineMatrix {
    /// The same discipline on every link.
    pub fn global(spec: DisciplineSpec) -> Self {
        DisciplineMatrix {
            default: spec,
            overrides: Vec::new(),
        }
    }

    /// Override the discipline of one link (builder style; the last
    /// override of a link wins).
    pub fn with_link(mut self, link: ispn_net::LinkId, spec: DisciplineSpec) -> Self {
        self.overrides.push((link, spec));
        self
    }

    /// Override the discipline of several links at once.
    pub fn with_links(mut self, links: &[ispn_net::LinkId], spec: DisciplineSpec) -> Self {
        for &l in links {
            self.overrides.push((l, spec));
        }
        self
    }

    /// The discipline assigned to a link.
    pub fn spec_for(&self, link: ispn_net::LinkId) -> DisciplineSpec {
        self.overrides
            .iter()
            .rev()
            .find(|(l, _)| *l == link)
            .map(|(_, s)| *s)
            .unwrap_or(self.default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_net::{LinkId, NodeId};
    use ispn_sched::QueueDiscipline;
    use ispn_sim::SimTime;

    fn params() -> LinkParams {
        LinkParams {
            from: NodeId(0),
            to: NodeId(1),
            rate_bps: 1_000_000.0,
            propagation: SimTime::ZERO,
            buffer_packets: 200,
        }
    }

    #[test]
    fn matrix_default_and_overrides() {
        let m = DisciplineMatrix::global(DisciplineSpec::Wfq)
            .with_link(LinkId(1), DisciplineSpec::Fifo)
            .with_link(LinkId(1), DisciplineSpec::VirtualClock);
        assert_eq!(m.spec_for(LinkId(0)), DisciplineSpec::Wfq);
        // Last override wins.
        assert_eq!(m.spec_for(LinkId(1)), DisciplineSpec::VirtualClock);
    }

    #[test]
    fn every_spec_builds_and_reports_its_name() {
        let guaranteed = [(FlowId(0), 100_000.0)];
        for (spec, name) in [
            (DisciplineSpec::Fifo, "FIFO"),
            (DisciplineSpec::FifoPlus(Averaging::RunningMean), "FIFO+"),
            (DisciplineSpec::Wfq, "WFQ"),
            (DisciplineSpec::VirtualClock, "VirtualClock"),
            (DisciplineSpec::StrictPriority { classes: 2 }, "Priority"),
            (
                DisciplineSpec::Unified {
                    priority_classes: 2,
                    averaging: Averaging::RunningMean,
                },
                "Unified",
            ),
        ] {
            let d = spec.build(&params(), 4, &guaranteed);
            assert!(d.is_empty());
            assert!(!spec.label().is_empty());
            assert!(!d.name().is_empty());
            let _ = name;
        }
    }

    // The satellite property test lives here: every discipline assignment
    // the matrix can produce must pass the scheduler conformance suite
    // (work-conserving, no loss, no duplication, per-flow FIFO).
    mod matrix_conformance {
        use super::*;
        use ispn_sched::conformance;
        use proptest::prelude::*;

        fn spec_from(choice: u8) -> DisciplineSpec {
            match choice % 6 {
                0 => DisciplineSpec::Fifo,
                1 => DisciplineSpec::FifoPlus(Averaging::RunningMean),
                2 => DisciplineSpec::FifoPlus(Averaging::Ewma(1.0 / 16.0)),
                3 => DisciplineSpec::Wfq,
                4 => DisciplineSpec::VirtualClock,
                _ => DisciplineSpec::Unified {
                    priority_classes: 2,
                    averaging: Averaging::RunningMean,
                },
            }
        }

        proptest! {
            #[test]
            fn every_matrix_assignment_conforms(
                default_choice in 0u8..6,
                overrides in proptest::collection::vec(0u8..6, 1..8),
                seed in any::<u64>(),
            ) {
                let mut matrix = DisciplineMatrix::global(spec_from(default_choice));
                for (i, &c) in overrides.iter().enumerate() {
                    matrix = matrix.with_link(LinkId(i), spec_from(c));
                }
                // One link per override plus one that falls back to the
                // default.
                for i in 0..=overrides.len() {
                    let spec = matrix.spec_for(LinkId(i));
                    // The conformance workload uses six flows; register two
                    // of them as guaranteed, as the builder would.
                    let disc = spec.build(
                        &params(),
                        6,
                        &[(FlowId(0), 120_000.0), (FlowId(1), 80_000.0)],
                    );
                    let workload =
                        conformance::synthetic_workload(seed ^ i as u64, 6, 200);
                    let mut disc = disc;
                    let served = conformance::exercise(&mut disc, &workload);
                    conformance::assert_no_loss_no_duplication(&workload, &served);
                    conformance::assert_per_flow_fifo(&served);
                    prop_assert!(disc.is_empty());
                }
            }
        }
    }
}
