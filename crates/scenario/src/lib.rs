//! # ispn-scenario — the declarative scenario API
//!
//! Every result in CSZ'92 is an instance of one shape: a *topology*, a
//! *discipline assignment*, a *workload mix* and a *measurement window*.
//! This crate turns that shape into a first-class, declarative API so that
//! experiments stop hand-wiring networks and — crucially — stop manually
//! interleaving the control plane ([`Signaling`](ispn_signal::Signaling))
//! with the data plane ([`Network`](ispn_net::Network)):
//!
//! * [`TopologySpec`] — topology presets ([`chain`](TopologySpec::chain),
//!   [`star`](TopologySpec::star), [`mesh`](TopologySpec::mesh)) plus a
//!   custom [`Topology`](ispn_net::Topology) passthrough,
//! * [`DisciplineMatrix`] — assign FIFO / FIFO+ / WFQ / Unified (and the
//!   ablation disciplines) per link or globally,
//! * [`FlowDef`] / [`SourceSpec`] / [`ServiceSpec`] — declarative
//!   workloads: CBR, on/off, Poisson or trace sources over datagram,
//!   predicted or guaranteed service,
//! * [`AdmissionSpec`] — put links under the Section-9 measurement-based
//!   admission controller,
//! * [`MeasurementPlan`] / [`ScenarioReport`] — select the statistics to
//!   collect and get them back as a structured, serializable report,
//! * [`ScenarioBuilder`] — assembles all of the above and returns a
//! * [`Sim`] — a facade owning both `Network` and `Signaling` that steps
//!   data-plane events, control messages and user-scheduled actions in
//!   **global event-time order**, eliminating the coarse
//!   `process_until`/`run_until` interleave every dynamic caller used to
//!   reimplement.
//!
//! ```
//! use ispn_scenario::{DisciplineSpec, FlowDef, ScenarioBuilder, SourceSpec};
//! use ispn_sim::SimTime;
//!
//! let mut sim = ScenarioBuilder::chain(2)
//!     .discipline(DisciplineSpec::Wfq)
//!     .flow(FlowDef::best_effort_realtime(0, 1).source(SourceSpec::cbr(100.0, 1000)))
//!     .build()
//!     .expect("valid scenario");
//! sim.run_until(SimTime::from_secs(10));
//! let report = sim.report(&Default::default());
//! assert!(report.flows[0].delivered > 900);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod discipline;
pub mod error;
pub mod report;
pub mod sim;
pub mod topology;
pub mod workload;

pub use builder::ScenarioBuilder;
pub use discipline::{DisciplineMatrix, DisciplineSpec};
pub use error::BuildError;
pub use report::{FlowSummary, LinkSummary, MeasurementPlan, ScenarioReport, SignalingSummary};
pub use sim::Sim;
pub use topology::{BuiltTopology, LinkProfile, TopologySpec};
pub use workload::{AdmissionSpec, FlowDef, RouteSpec, ServiceSpec, SourceSpec, TcpDef};
