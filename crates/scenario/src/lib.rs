//! # ispn-scenario — the declarative scenario API
//!
//! Every result in CSZ'92 is an instance of one shape: a *topology*, a
//! *discipline assignment*, a *workload mix* and a *measurement window*.
//! This crate turns that shape into a first-class, declarative API so that
//! experiments stop hand-wiring networks and — crucially — stop manually
//! interleaving the control plane ([`Signaling`](ispn_signal::Signaling))
//! with the data plane ([`Network`](ispn_net::Network)):
//!
//! * [`TopologySpec`] — topology presets ([`chain`](TopologySpec::chain),
//!   [`star`](TopologySpec::star), [`mesh`](TopologySpec::mesh)) plus a
//!   custom [`Topology`](ispn_net::Topology) passthrough,
//! * [`DisciplineMatrix`] — assign FIFO / FIFO+ / WFQ / Unified (and the
//!   ablation disciplines) per link or globally,
//! * [`FlowDef`] / [`SourceSpec`] / [`ServiceSpec`] — declarative
//!   workloads: CBR, on/off, Poisson or trace sources over datagram,
//!   predicted or guaranteed service,
//! * [`AdmissionSpec`] — put links under the Section-9 measurement-based
//!   admission controller,
//! * [`WorkloadSpec`] — dynamic workloads on top of the declared flows:
//!   [`WorkloadSpec::Churn`] runs Poisson arrivals with exponential
//!   holding times entirely inside the facade (leased sources attached at
//!   the exact accept instants, teardown on departure,
//!   [`Sim::drain_churn`] at the end),
//! * [`MeasurementPlan`] / [`ScenarioReport`] — select the statistics to
//!   collect and get them back as a structured, serializable report:
//!   per-flow and per-link summaries, plus per-service-class pooled delay
//!   distributions (selected quantiles, optional histograms) and
//!   per-discipline link groups,
//! * [`ScenarioSet`] / [`SweepRunner`] — parameterize any scenario over
//!   named axes (cartesian [`by`](ScenarioSet::by) or element-wise
//!   [`zip`](ScenarioSet::zip)) and fan the points across a thread pool;
//!   results come back axis-tagged **in point order**, byte-identical to a
//!   serial run whatever the thread count.  The streaming core
//!   ([`SweepRunner::run_streaming`] + [`SweepObserver`]) emits every
//!   point's report the moment it completes, and per-point
//!   `catch_unwind` turns a panicking point into a structured
//!   [`SweepError`] instead of aborting its siblings.  [`DistRunner`]
//!   scales the same contract past one process: points fan across
//!   supervised `--sweep-worker` subprocesses — or, via
//!   [`sweep::net`] ([`HostSpec`] lists, [`serve_listener`]), across
//!   TCP-connected worker hosts on other machines — over the line-framed
//!   JSON protocol of [`sweep::wire`], byte-identical to the in-thread
//!   runners, with crashed / wedged / disconnected workers becoming
//!   per-point `SweepError`s while their remaining points are
//!   redistributed ([`SweepExec`] lets callers pick the level per run),
//! * [`SweepTable`] — axis-aware report rendering: tables whose leading
//!   columns come straight from the sweep's axis tags (plus the matching
//!   checked JSON in [`sweep_to_json_checked`]), replacing per-experiment
//!   formatting glue,
//! * [`ScenarioBuilder`] — assembles all of the above and returns a
//! * [`Sim`] — a facade owning both `Network` and `Signaling` that steps
//!   data-plane events, control messages and user-scheduled actions in
//!   **global event-time order** (ties resolve data ≺ control ≺ action),
//!   eliminating the coarse `process_until`/`run_until` interleave every
//!   dynamic caller used to reimplement.
//!
//! ```
//! use ispn_scenario::{DisciplineSpec, FlowDef, ScenarioBuilder, SourceSpec};
//! use ispn_sim::SimTime;
//!
//! let mut sim = ScenarioBuilder::chain(2)
//!     .discipline(DisciplineSpec::Wfq)
//!     .flow(FlowDef::best_effort_realtime(0, 1).source(SourceSpec::cbr(100.0, 1000)))
//!     .build()
//!     .expect("valid scenario");
//! sim.run_until(SimTime::from_secs(10));
//! let report = sim.report(&Default::default());
//! assert!(report.flows[0].delivered > 900);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod discipline;
pub mod error;
pub mod render;
pub mod report;
pub mod sim;
pub mod sweep;
pub mod topology;
pub mod workload;

pub use builder::ScenarioBuilder;
pub use discipline::{DisciplineMatrix, DisciplineSpec};
pub use error::BuildError;
pub use render::{axis_names, SweepTable};
pub use report::{
    json_escape, ClassSummary, DisciplineSummary, FlowSummary, HistogramSpec, HistogramSummary,
    LinkSummary, MeasurementPlan, RunTelemetry, ScenarioReport, SignalingSummary,
};
pub use sim::{ChurnFlowRecord, ChurnFlowReport, Sim};
pub use sweep::dist::{Await, DistRunner, SweepExec, WorkerCommand, WorkerTransport};
pub use sweep::net::{serve_listener, HostSpec, LISTENING_BANNER};
pub use sweep::testing::{FaultMode, FaultPlan};
pub use sweep::wire::{wire_f64, JsonValue, WireError, WireResult};
pub use sweep::worker::{serve_connection, serve_worker, SessionInfo, WORKER_FLAG};
pub use sweep::{
    failed_points, sweep_to_json, sweep_to_json_checked, AxisValue, NullObserver, PointResult,
    PointTelemetry, ProgressObserver, ScenarioSet, SweepChannel, SweepError, SweepObserver,
    SweepPoint, SweepReport, SweepRunner, SweepTelemetry, TelemetryCollector,
};
pub use topology::{BuiltTopology, LinkProfile, TopologySpec};
pub use workload::{
    AdmissionSpec, ChurnClass, ChurnSourceSpec, ChurnWorkload, FlowDef, RouteSpec, ServiceSpec,
    SourceSpec, TcpDef, WorkloadSpec,
};
