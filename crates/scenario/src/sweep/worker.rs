//! The worker side of a distributed sweep: a serve loop compiled into
//! every experiment binary behind its `--sweep-worker` (stdin/stdout) and
//! `--serve ADDR` (TCP listener, see [`net`](super::net)) flags.
//!
//! A worker process rebuilds the **same** [`ScenarioSet`] as its parent
//! (both run the same binary with the same configuration flags), then
//! answers line-framed requests: the parent names a point by index, the
//! worker runs that point's closure and streams the encoded result back.
//! The worker never chooses points itself — scheduling, redistribution and
//! supervision all live in the parent's
//! [`DistRunner`](super::dist::DistRunner).
//!
//! The loop itself is transport-agnostic: [`serve_connection`] speaks the
//! protocol over any buffered reader/writer pair.  [`serve_worker`] is the
//! stdio binding the `--sweep-worker` flag uses; the socket listener in
//! [`net`](super::net) runs the same function once per accepted
//! connection.  A revision-3 parent may batch several requests into one
//! line; the worker answers them in order, frame by frame, exactly as if
//! they had arrived separately.
//!
//! Safety properties mirror the in-process runner:
//!
//! * every point runs under `catch_unwind`, so a panicking scenario
//!   becomes a structured error frame (and the worker keeps serving its
//!   siblings) exactly like [`SweepRunner::try_run`](super::SweepRunner)
//!   would record it;
//! * each request's axis tags are checked against the worker's own sweep
//!   before anything runs — a parent/worker configuration skew yields a
//!   per-point error naming both tag lists instead of silently computing
//!   the wrong scenario;
//! * results are flushed frame by frame, so the parent observes each
//!   completion the moment it happens.
//!
//! The loop exits cleanly when the parent closes its end of the stream.
//! [`FaultPlan`](super::testing::FaultPlan) hooks (consulted per point,
//! plus once per session before the hello) let the test harness make a
//! worker panic, exit, emit garbage, hang, drop the connection or wedge
//! its handshake on demand; production runs simply have no
//! `ISPN_SWEEP_FAULT` in their environment.

use std::io::{self, BufRead, Write};
use std::panic::AssertUnwindSafe;

use super::testing::{FaultMode, FaultPlan, FAULT_EXIT_CODE, HANG_NAP};
use super::wire::{self, WireResult};
use super::{panic_payload_text, ScenarioSet};

/// The command-line flag that switches an experiment binary into worker
/// mode (checked by each bin's `main` before anything prints to stdout —
/// stdout belongs to the frame stream).
pub const WORKER_FLAG: &str = "--sweep-worker";

/// The environment variable carrying the worker's id (assigned by the
/// parent; used for fault-plan filtering and diagnostics).
pub const WORKER_ID_ENV: &str = "ISPN_SWEEP_WORKER_ID";

/// This process's worker id, if the parent assigned one.
pub fn worker_id() -> Option<usize> {
    std::env::var(WORKER_ID_ENV).ok()?.parse().ok()
}

/// One serve session's identity, for fault-plan filtering and
/// diagnostics: which worker this process is (parent-assigned over stdio,
/// self-reported otherwise) and which session of that worker the
/// connection is (a stdio worker serves exactly one session, number 0; a
/// socket listener numbers accepted connections from 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionInfo {
    /// The worker id ([`worker_id`], defaulting to 0).
    pub worker: usize,
    /// The session ordinal within this worker process.
    pub session: usize,
}

/// Serve sweep points over stdin/stdout until the parent closes stdin —
/// the `--sweep-worker` binding of [`serve_connection`].
///
/// `run_point` is the same closure an in-process
/// [`SweepRunner`](super::SweepRunner) would receive; it is called at most
/// once per requested point, and its panics are caught into error frames.
/// Returns when stdin reaches EOF; I/O errors on the pipes (a vanished
/// parent) surface as `Err`.
pub fn serve_worker<P, R, F>(set: &ScenarioSet<P>, run_point: F) -> io::Result<()>
where
    R: WireResult,
    F: Fn(&P) -> R,
{
    let session = SessionInfo {
        worker: worker_id().unwrap_or(0),
        session: 0,
    };
    let stdin = io::stdin().lock();
    let stdout = io::stdout().lock();
    serve_connection(set, &run_point, stdin, stdout, session)
}

/// The transport-agnostic serve loop: hello handshake, then answer
/// line-framed point requests from `input` with telemetry + report/error
/// frames on `output` until `input` reaches EOF.
///
/// This is the single protocol implementation every transport shares —
/// [`serve_worker`] binds it to stdin/stdout, the TCP listener in
/// [`net`](super::net) runs it once per accepted connection.  Requests
/// may be batched (revision 3); the points of a batch are answered in
/// order, each with its own frames, flushed as they complete.
pub fn serve_connection<P, R, F, In, Out>(
    set: &ScenarioSet<P>,
    run_point: &F,
    input: In,
    mut output: Out,
    session: SessionInfo,
) -> io::Result<()>
where
    R: WireResult,
    F: Fn(&P) -> R,
    In: BufRead,
    Out: Write,
{
    let fault = FaultPlan::from_env();
    let me = session.worker;
    if fault
        .filter(|f| f.applies_hello(me, session.session))
        .is_some()
    {
        // Injected half-open session: never say hello.  The parent's
        // handshake deadline is what must rescue its supervisor slot.
        loop {
            std::thread::sleep(HANG_NAP);
        }
    }

    writeln!(output, "{}", wire::encode_hello(set.len()))?;
    output.flush()?;

    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let requests = match wire::parse_requests(&line) {
            Ok(requests) => requests,
            Err(e) => {
                // A parent that cannot frame a request cannot be trusted
                // with anything else either; bail out loudly.
                eprintln!("sweep worker {me}: unreadable request: {e}");
                return Err(io::Error::new(io::ErrorKind::InvalidData, e));
            }
        };
        for request in requests {
            let index = request.index;
            let frame = if index >= set.len() {
                wire::encode_error_frame(
                    index,
                    &format!(
                        "point {index} out of range: this worker's sweep has {} points \
                         (parent/worker configuration mismatch)",
                        set.len()
                    ),
                )
            } else if request.tags != set.points()[index].tags {
                wire::encode_error_frame(
                    index,
                    &format!(
                        "axis tags mismatch at point {index}: parent sent {:?}, worker built {:?} \
                         (parent/worker configuration mismatch)",
                        request.tags,
                        set.points()[index].tags
                    ),
                )
            } else {
                if let Some(fault) = fault.filter(|f| f.applies(me, index)) {
                    match fault.mode {
                        // Panic is injected *inside* the catch_unwind below, so
                        // it exercises the same path a real scenario panic takes.
                        FaultMode::Panic => {}
                        FaultMode::Exit => {
                            output.flush()?;
                            std::process::exit(FAULT_EXIT_CODE);
                        }
                        FaultMode::Garbage => {
                            // A truncated frame: cut mid-key, no closing brace.
                            write!(output, "{{\"point\":{index},\"repo")?;
                            writeln!(output)?;
                            output.flush()?;
                            continue;
                        }
                        FaultMode::Hang => loop {
                            std::thread::sleep(HANG_NAP);
                        },
                        FaultMode::Disconnect => {
                            // End the serve loop mid-point: the transport
                            // closes (connection drop / clean process
                            // exit) and the parent sees EOF.
                            output.flush()?;
                            return Ok(());
                        }
                        // Session faults fired before the hello; `applies`
                        // never selects them per point.
                        FaultMode::HelloHang => {}
                    }
                }
                let point = &set.points()[index];
                // ispn-lint: allow(wall-clock) -- per-point wall-time
                // telemetry frame; out-of-band, never in the result stream.
                #[allow(clippy::disallowed_methods)]
                let started = std::time::Instant::now();
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    if let Some(fault) = fault.filter(|f| f.applies(me, index)) {
                        if fault.mode == FaultMode::Panic {
                            panic!("injected fault: worker {me} panicked at point {index}");
                        }
                    }
                    run_point(&point.params)
                }));
                // Out-of-band stats precede the result so the parent can
                // attribute them before the point completes; panicked points
                // report their wall time too.
                writeln!(
                    output,
                    "{}",
                    wire::encode_telemetry_frame(index, started.elapsed().as_secs_f64())
                )?;
                match result {
                    Ok(r) => wire::encode_report_frame(index, &r.to_wire_json()),
                    Err(payload) => {
                        wire::encode_error_frame(index, &panic_payload_text(payload.as_ref()))
                    }
                }
            };
            writeln!(output, "{frame}")?;
            output.flush()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_flag_and_env_names_are_stable() {
        // Bins and the CI recipes hard-code these strings; a silent rename
        // would strand every caller.
        assert_eq!(WORKER_FLAG, "--sweep-worker");
        assert_eq!(WORKER_ID_ENV, "ISPN_SWEEP_WORKER_ID");
    }

    fn serve_lines(input: &str) -> Vec<String> {
        let set = ScenarioSet::over("i", [10u64, 20, 30]);
        let mut out: Vec<u8> = Vec::new();
        serve_connection(
            &set,
            &|&(i,)| i * i,
            input.as_bytes(),
            &mut out,
            SessionInfo {
                worker: 0,
                session: 0,
            },
        )
        .expect("in-memory serve loop");
        String::from_utf8(out)
            .expect("frames are UTF-8")
            .lines()
            .map(str::to_string)
            .collect()
    }

    /// The serve loop over in-memory streams: hello, then telemetry +
    /// report per point — and a batched request answers its points in
    /// order, exactly like separate lines would.
    #[test]
    fn serve_connection_answers_batches_in_order() {
        let set = ScenarioSet::over("i", [10u64, 20, 30]);
        let separate = serve_lines(&format!(
            "{}\n{}\n",
            wire::encode_request(2, &set.points()[2].tags),
            wire::encode_request(0, &set.points()[0].tags),
        ));
        let batched = serve_lines(&format!(
            "{}\n",
            wire::encode_batch_request(&[
                (2, set.points()[2].tags.as_slice()),
                (0, set.points()[0].tags.as_slice()),
            ])
        ));
        assert_eq!(separate.len(), 5, "hello + 2×(telemetry, result)");
        assert_eq!(batched.len(), 5);
        // Frames match pairwise except the wall-clock fields.
        assert_eq!(batched[0], separate[0], "hello frames match");
        assert_eq!(batched[2], separate[2], "report for point 2");
        assert_eq!(batched[4], separate[4], "report for point 0");
        assert!(batched[2].contains("\"report\":900"), "{}", batched[2]);
        assert!(batched[4].contains("\"report\":100"), "{}", batched[4]);
    }

    /// The framing contract: CRLF-terminated request lines parse cleanly
    /// (`BufRead::lines` strips the `\r\n`, and a stray `\r` inside the
    /// line is insignificant whitespace to the JSON parser).
    #[test]
    fn serve_connection_tolerates_crlf_requests() {
        let set = ScenarioSet::over("i", [10u64, 20, 30]);
        let lines = serve_lines(&format!(
            "{}\r\n",
            wire::encode_request(1, &set.points()[1].tags)
        ));
        assert_eq!(lines.len(), 3, "hello + telemetry + report");
        assert!(lines[2].contains("\"report\":400"), "{}", lines[2]);
    }
}
