//! The worker side of a distributed sweep: a stdin/stdout serve loop
//! compiled into every experiment binary behind its `--sweep-worker` flag.
//!
//! A worker process rebuilds the **same** [`ScenarioSet`] as its parent
//! (both run the same binary with the same configuration flags), then
//! answers line-framed requests: the parent names a point by index, the
//! worker runs that point's closure and streams the encoded result back.
//! The worker never chooses points itself — scheduling, redistribution and
//! supervision all live in the parent's
//! [`DistRunner`](super::dist::DistRunner).
//!
//! Safety properties mirror the in-process runner:
//!
//! * every point runs under `catch_unwind`, so a panicking scenario
//!   becomes a structured error frame (and the worker keeps serving its
//!   siblings) exactly like [`SweepRunner::try_run`](super::SweepRunner)
//!   would record it;
//! * each request's axis tags are checked against the worker's own sweep
//!   before anything runs — a parent/worker configuration skew yields a
//!   per-point error naming both tag lists instead of silently computing
//!   the wrong scenario;
//! * results are flushed frame by frame, so the parent observes each
//!   completion the moment it happens.
//!
//! The loop exits cleanly when the parent closes the worker's stdin.
//! [`FaultPlan`](super::testing::FaultPlan) hooks (consulted per point)
//! let the test harness make a worker panic, exit, emit garbage or hang on
//! demand; production runs simply have no `ISPN_SWEEP_FAULT` in their
//! environment.

use std::io::{self, BufRead, Write};
use std::panic::AssertUnwindSafe;

use super::testing::{FaultMode, FaultPlan, FAULT_EXIT_CODE, HANG_NAP};
use super::wire::{self, WireResult};
use super::{panic_payload_text, ScenarioSet};

/// The command-line flag that switches an experiment binary into worker
/// mode (checked by each bin's `main` before anything prints to stdout —
/// stdout belongs to the frame stream).
pub const WORKER_FLAG: &str = "--sweep-worker";

/// The environment variable carrying the worker's id (assigned by the
/// parent; used for fault-plan filtering and diagnostics).
pub const WORKER_ID_ENV: &str = "ISPN_SWEEP_WORKER_ID";

/// This process's worker id, if the parent assigned one.
pub fn worker_id() -> Option<usize> {
    std::env::var(WORKER_ID_ENV).ok()?.parse().ok()
}

/// Serve sweep points over stdin/stdout until the parent closes stdin.
///
/// `run_point` is the same closure an in-process
/// [`SweepRunner`](super::SweepRunner) would receive; it is called at most
/// once per requested point, and its panics are caught into error frames.
/// Returns when stdin reaches EOF; I/O errors on the pipes (a vanished
/// parent) surface as `Err`.
pub fn serve_worker<P, R, F>(set: &ScenarioSet<P>, run_point: F) -> io::Result<()>
where
    R: WireResult,
    F: Fn(&P) -> R,
{
    let fault = FaultPlan::from_env();
    let me = worker_id().unwrap_or(0);
    let stdin = io::stdin().lock();
    let mut stdout = io::stdout().lock();

    writeln!(stdout, "{}", wire::encode_hello(set.len()))?;
    stdout.flush()?;

    for line in stdin.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let request = match wire::parse_request(&line) {
            Ok(request) => request,
            Err(e) => {
                // A parent that cannot frame a request cannot be trusted
                // with anything else either; bail out loudly.
                eprintln!("sweep worker {me}: unreadable request: {e}");
                return Err(io::Error::new(io::ErrorKind::InvalidData, e));
            }
        };
        let index = request.index;
        let frame = if index >= set.len() {
            wire::encode_error_frame(
                index,
                &format!(
                    "point {index} out of range: this worker's sweep has {} points \
                     (parent/worker configuration mismatch)",
                    set.len()
                ),
            )
        } else if request.tags != set.points()[index].tags {
            wire::encode_error_frame(
                index,
                &format!(
                    "axis tags mismatch at point {index}: parent sent {:?}, worker built {:?} \
                     (parent/worker configuration mismatch)",
                    request.tags,
                    set.points()[index].tags
                ),
            )
        } else {
            if let Some(fault) = fault.filter(|f| f.applies(me, index)) {
                match fault.mode {
                    // Panic is injected *inside* the catch_unwind below, so
                    // it exercises the same path a real scenario panic takes.
                    FaultMode::Panic => {}
                    FaultMode::Exit => {
                        stdout.flush()?;
                        std::process::exit(FAULT_EXIT_CODE);
                    }
                    FaultMode::Garbage => {
                        // A truncated frame: cut mid-key, no closing brace.
                        write!(stdout, "{{\"point\":{index},\"repo")?;
                        writeln!(stdout)?;
                        stdout.flush()?;
                        continue;
                    }
                    FaultMode::Hang => loop {
                        std::thread::sleep(HANG_NAP);
                    },
                }
            }
            let point = &set.points()[index];
            let started = std::time::Instant::now();
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                if let Some(fault) = fault.filter(|f| f.applies(me, index)) {
                    if fault.mode == FaultMode::Panic {
                        panic!("injected fault: worker {me} panicked at point {index}");
                    }
                }
                run_point(&point.params)
            }));
            // Out-of-band stats precede the result so the parent can
            // attribute them before the point completes; panicked points
            // report their wall time too.
            writeln!(
                stdout,
                "{}",
                wire::encode_telemetry_frame(index, started.elapsed().as_secs_f64())
            )?;
            match result {
                Ok(r) => wire::encode_report_frame(index, &r.to_wire_json()),
                Err(payload) => {
                    wire::encode_error_frame(index, &panic_payload_text(payload.as_ref()))
                }
            }
        };
        writeln!(stdout, "{frame}")?;
        stdout.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_flag_and_env_names_are_stable() {
        // Bins and the CI recipes hard-code these strings; a silent rename
        // would strand every caller.
        assert_eq!(WORKER_FLAG, "--sweep-worker");
        assert_eq!(WORKER_ID_ENV, "ISPN_SWEEP_WORKER_ID");
    }
}
