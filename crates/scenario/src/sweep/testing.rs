//! Fault injection for distributed-sweep tests: make a worker process
//! misbehave at a chosen point, on purpose.
//!
//! A [`FaultPlan`] describes one injected fault — *which point* triggers
//! it, *how* the worker misbehaves ([`FaultMode`]), and optionally *which
//! worker* is susceptible.  The plan travels to the worker process through
//! the [`FaultPlan::ENV`] environment variable (set it on the
//! [`WorkerCommand`](super::dist::WorkerCommand) under test), and the
//! worker's serve loop consults [`FaultPlan::from_env`] before running
//! each point:
//!
//! * [`FaultMode::Panic`] — the point's closure panics inside the worker.
//!   This is the *graceful* failure path: the worker catches it, reports a
//!   structured error frame, and keeps serving.
//! * [`FaultMode::Exit`] — the worker process exits abruptly
//!   (status [`FAULT_EXIT_CODE`]) mid-point, as a crash or an external
//!   `kill` would.  The parent sees EOF and poisons the in-flight point.
//! * [`FaultMode::Garbage`] — the worker emits a truncated, non-JSON frame
//!   for the point.  The parent poisons the point and discards the worker
//!   (its stream can no longer be trusted).
//! * [`FaultMode::Hang`] — the worker wedges forever at the point.  The
//!   parent's per-point deadline fires, the worker is killed, and the
//!   point is poisoned.
//!
//! Because the trigger is keyed on the point index and a poisoned point is
//! never re-dispatched, a respawned replacement worker does not re-trigger
//! the fault — each plan fires at most once per matching worker.

use std::time::Duration;

/// How a designated worker misbehaves at the chosen point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic inside the point's closure (caught, reported as an error
    /// frame; the worker survives).
    Panic,
    /// Exit the worker process abruptly, mid-point.
    Exit,
    /// Emit a truncated/garbage frame instead of the point's result.
    Garbage,
    /// Hang forever while the point is in flight.
    Hang,
}

impl FaultMode {
    fn name(self) -> &'static str {
        match self {
            FaultMode::Panic => "panic",
            FaultMode::Exit => "exit",
            FaultMode::Garbage => "garbage",
            FaultMode::Hang => "hang",
        }
    }

    fn parse(s: &str) -> Option<FaultMode> {
        match s {
            "panic" => Some(FaultMode::Panic),
            "exit" => Some(FaultMode::Exit),
            "garbage" => Some(FaultMode::Garbage),
            "hang" => Some(FaultMode::Hang),
            _ => None,
        }
    }
}

/// The exit status a [`FaultMode::Exit`] worker dies with.
pub const FAULT_EXIT_CODE: i32 = 3;

/// How long a [`FaultMode::Hang`] worker sleeps per wedge iteration (it
/// loops forever; the parent's deadline is expected to kill it).
pub const HANG_NAP: Duration = Duration::from_secs(60);

/// One injected worker fault: mode, trigger point, optional worker filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The sweep-order index of the point that triggers the fault.
    pub point: usize,
    /// What the worker does when it reaches that point.
    pub mode: FaultMode,
    /// Restrict the fault to the worker with this id (the
    /// [`DistRunner`](super::dist::DistRunner) numbers its workers from 0
    /// and exports the id as `ISPN_SWEEP_WORKER_ID`); `None` makes any
    /// worker that claims the point susceptible.
    pub worker: Option<usize>,
}

impl FaultPlan {
    /// The environment variable the plan travels through.
    pub const ENV: &'static str = "ISPN_SWEEP_FAULT";

    /// Panic at `point`.
    pub fn panic_at(point: usize) -> Self {
        FaultPlan {
            point,
            mode: FaultMode::Panic,
            worker: None,
        }
    }

    /// Exit abruptly at `point`.
    pub fn exit_at(point: usize) -> Self {
        FaultPlan {
            point,
            mode: FaultMode::Exit,
            worker: None,
        }
    }

    /// Emit a garbage frame at `point`.
    pub fn garbage_at(point: usize) -> Self {
        FaultPlan {
            point,
            mode: FaultMode::Garbage,
            worker: None,
        }
    }

    /// Hang at `point`.
    pub fn hang_at(point: usize) -> Self {
        FaultPlan {
            point,
            mode: FaultMode::Hang,
            worker: None,
        }
    }

    /// Restrict the fault to worker `id`.
    pub fn on_worker(mut self, id: usize) -> Self {
        self.worker = Some(id);
        self
    }

    /// The `ISPN_SWEEP_FAULT` value describing this plan
    /// (`point=3;mode=exit` or `point=3;mode=exit;worker=1`).
    pub fn env_value(&self) -> String {
        match self.worker {
            Some(w) => format!("point={};mode={};worker={w}", self.point, self.mode.name()),
            None => format!("point={};mode={}", self.point, self.mode.name()),
        }
    }

    /// Parse an `ISPN_SWEEP_FAULT` value.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut point = None;
        let mut mode = None;
        let mut worker = None;
        for part in s.split(';').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan field {part:?} is not key=value"))?;
            match key {
                "point" => {
                    point = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| format!("bad fault point {value:?}: {e}"))?,
                    )
                }
                "mode" => {
                    mode = Some(
                        FaultMode::parse(value)
                            .ok_or_else(|| format!("unknown fault mode {value:?}"))?,
                    )
                }
                "worker" => {
                    worker = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| format!("bad fault worker {value:?}: {e}"))?,
                    )
                }
                other => return Err(format!("unknown fault plan field {other:?}")),
            }
        }
        Ok(FaultPlan {
            point: point.ok_or("fault plan needs point=N")?,
            mode: mode.ok_or("fault plan needs mode=panic|exit|garbage|hang")?,
            worker,
        })
    }

    /// The plan in this process's environment, if any.
    ///
    /// # Panics
    /// Panics on an unparsable `ISPN_SWEEP_FAULT` value — a fault-injection
    /// test with a typoed plan must fail loudly, not silently run clean.
    pub fn from_env() -> Option<FaultPlan> {
        let value = std::env::var(Self::ENV).ok()?;
        Some(Self::parse(&value).unwrap_or_else(|e| panic!("bad {}: {e}", Self::ENV)))
    }

    /// Whether the fault fires for `worker` running `point`.
    pub fn applies(&self, worker: usize, point: usize) -> bool {
        self.point == point && self.worker.map(|w| w == worker).unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_round_trip_through_the_env_value() {
        for plan in [
            FaultPlan::panic_at(0),
            FaultPlan::exit_at(3),
            FaultPlan::garbage_at(7).on_worker(2),
            FaultPlan::hang_at(12),
        ] {
            assert_eq!(FaultPlan::parse(&plan.env_value()).unwrap(), plan);
        }
    }

    #[test]
    fn bad_plans_are_rejected() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("point=1").is_err());
        assert!(FaultPlan::parse("mode=exit").is_err());
        assert!(FaultPlan::parse("point=x;mode=exit").is_err());
        assert!(FaultPlan::parse("point=1;mode=sulk").is_err());
        assert!(FaultPlan::parse("point=1;mode=exit;color=red").is_err());
    }

    #[test]
    fn worker_filter_gates_the_trigger() {
        let any = FaultPlan::exit_at(4);
        assert!(any.applies(0, 4));
        assert!(any.applies(9, 4));
        assert!(!any.applies(0, 5));
        let one = FaultPlan::exit_at(4).on_worker(1);
        assert!(one.applies(1, 4));
        assert!(!one.applies(0, 4));
    }
}
