//! Fault injection for distributed-sweep tests: make a worker process
//! misbehave at a chosen point, on purpose.
//!
//! A [`FaultPlan`] describes one injected fault — *which point* triggers
//! it, *how* the worker misbehaves ([`FaultMode`]), and optionally *which
//! worker* is susceptible.  The plan travels to the worker process through
//! the [`FaultPlan::ENV`] environment variable (set it on the
//! [`WorkerCommand`](super::dist::WorkerCommand) under test), and the
//! worker's serve loop consults [`FaultPlan::from_env`] before running
//! each point:
//!
//! * [`FaultMode::Panic`] — the point's closure panics inside the worker.
//!   This is the *graceful* failure path: the worker catches it, reports a
//!   structured error frame, and keeps serving.
//! * [`FaultMode::Exit`] — the worker process exits abruptly
//!   (status [`FAULT_EXIT_CODE`]) mid-point, as a crash or an external
//!   `kill` would.  The parent sees EOF and poisons the in-flight point.
//! * [`FaultMode::Garbage`] — the worker emits a truncated, non-JSON frame
//!   for the point.  The parent poisons the point and discards the worker
//!   (its stream can no longer be trusted).
//! * [`FaultMode::Hang`] — the worker wedges forever at the point.  The
//!   parent's per-point deadline fires, the worker is killed, and the
//!   point is poisoned.
//! * [`FaultMode::Disconnect`] — the serve loop ends cleanly at the point,
//!   before answering it: a socket session closes its connection
//!   mid-point, a stdio worker exits.  The parent sees EOF, poisons the
//!   in-flight point, and reconnects/respawns for its next claim.
//! * [`FaultMode::HelloHang`] — a **session** fault: the serve loop wedges
//!   *before* sending its hello frame, like a half-open TCP accept.  The
//!   plan's `point` field selects the session ordinal instead of a point
//!   index (a stdio worker process is always session 0; a socket listener
//!   numbers accepted connections), so exactly one connection hangs and
//!   the parent's handshake deadline is what must save the sweep.
//!
//! Because the trigger is keyed on the point index (or, for
//! [`FaultMode::HelloHang`], the session ordinal) and a poisoned point is
//! never re-dispatched, a respawned replacement worker does not re-trigger
//! the fault — each plan fires at most once per matching worker.

use std::time::Duration;

/// How a designated worker misbehaves at the chosen point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Panic inside the point's closure (caught, reported as an error
    /// frame; the worker survives).
    Panic,
    /// Exit the worker process abruptly, mid-point.
    Exit,
    /// Emit a truncated/garbage frame instead of the point's result.
    Garbage,
    /// Hang forever while the point is in flight.
    Hang,
    /// End the serve loop cleanly at the point, before answering it
    /// (socket session: drop the connection mid-point; stdio worker:
    /// exit 0 mid-point).
    Disconnect,
    /// Wedge the session forever **before** the hello frame.  The plan's
    /// `point` field names the session ordinal, not a point index.
    HelloHang,
}

impl FaultMode {
    fn name(self) -> &'static str {
        match self {
            FaultMode::Panic => "panic",
            FaultMode::Exit => "exit",
            FaultMode::Garbage => "garbage",
            FaultMode::Hang => "hang",
            FaultMode::Disconnect => "disconnect",
            FaultMode::HelloHang => "hello-hang",
        }
    }

    fn parse(s: &str) -> Option<FaultMode> {
        match s {
            "panic" => Some(FaultMode::Panic),
            "exit" => Some(FaultMode::Exit),
            "garbage" => Some(FaultMode::Garbage),
            "hang" => Some(FaultMode::Hang),
            "disconnect" => Some(FaultMode::Disconnect),
            "hello-hang" => Some(FaultMode::HelloHang),
            _ => None,
        }
    }
}

/// The exit status a [`FaultMode::Exit`] worker dies with.
pub const FAULT_EXIT_CODE: i32 = 3;

/// How long a [`FaultMode::Hang`] worker sleeps per wedge iteration (it
/// loops forever; the parent's deadline is expected to kill it).
pub const HANG_NAP: Duration = Duration::from_secs(60);

/// One injected worker fault: mode, trigger point, optional worker filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The sweep-order index of the point that triggers the fault.
    pub point: usize,
    /// What the worker does when it reaches that point.
    pub mode: FaultMode,
    /// Restrict the fault to the worker with this id (the
    /// [`DistRunner`](super::dist::DistRunner) numbers its workers from 0
    /// and exports the id as `ISPN_SWEEP_WORKER_ID`); `None` makes any
    /// worker that claims the point susceptible.
    pub worker: Option<usize>,
}

impl FaultPlan {
    /// The environment variable the plan travels through.
    pub const ENV: &'static str = "ISPN_SWEEP_FAULT";

    /// Panic at `point`.
    pub fn panic_at(point: usize) -> Self {
        FaultPlan {
            point,
            mode: FaultMode::Panic,
            worker: None,
        }
    }

    /// Exit abruptly at `point`.
    pub fn exit_at(point: usize) -> Self {
        FaultPlan {
            point,
            mode: FaultMode::Exit,
            worker: None,
        }
    }

    /// Emit a garbage frame at `point`.
    pub fn garbage_at(point: usize) -> Self {
        FaultPlan {
            point,
            mode: FaultMode::Garbage,
            worker: None,
        }
    }

    /// Hang at `point`.
    pub fn hang_at(point: usize) -> Self {
        FaultPlan {
            point,
            mode: FaultMode::Hang,
            worker: None,
        }
    }

    /// End the serve loop (drop the connection / exit) at `point`.
    pub fn disconnect_at(point: usize) -> Self {
        FaultPlan {
            point,
            mode: FaultMode::Disconnect,
            worker: None,
        }
    }

    /// Wedge session number `session` before its hello frame.
    pub fn hello_hang_at(session: usize) -> Self {
        FaultPlan {
            point: session,
            mode: FaultMode::HelloHang,
            worker: None,
        }
    }

    /// Restrict the fault to worker `id`.
    pub fn on_worker(mut self, id: usize) -> Self {
        self.worker = Some(id);
        self
    }

    /// The `ISPN_SWEEP_FAULT` value describing this plan
    /// (`point=3;mode=exit` or `point=3;mode=exit;worker=1`).
    pub fn env_value(&self) -> String {
        match self.worker {
            Some(w) => format!("point={};mode={};worker={w}", self.point, self.mode.name()),
            None => format!("point={};mode={}", self.point, self.mode.name()),
        }
    }

    /// Parse an `ISPN_SWEEP_FAULT` value.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let mut point = None;
        let mut mode = None;
        let mut worker = None;
        for part in s.split(';').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan field {part:?} is not key=value"))?;
            match key {
                "point" => {
                    point = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| format!("bad fault point {value:?}: {e}"))?,
                    )
                }
                "mode" => {
                    mode = Some(
                        FaultMode::parse(value)
                            .ok_or_else(|| format!("unknown fault mode {value:?}"))?,
                    )
                }
                "worker" => {
                    worker = Some(
                        value
                            .parse::<usize>()
                            .map_err(|e| format!("bad fault worker {value:?}: {e}"))?,
                    )
                }
                other => return Err(format!("unknown fault plan field {other:?}")),
            }
        }
        Ok(FaultPlan {
            point: point.ok_or("fault plan needs point=N")?,
            mode: mode
                .ok_or("fault plan needs mode=panic|exit|garbage|hang|disconnect|hello-hang")?,
            worker,
        })
    }

    /// The plan in this process's environment, if any.
    ///
    /// # Panics
    /// Panics on an unparsable `ISPN_SWEEP_FAULT` value — a fault-injection
    /// test with a typoed plan must fail loudly, not silently run clean.
    pub fn from_env() -> Option<FaultPlan> {
        let value = std::env::var(Self::ENV).ok()?;
        Some(Self::parse(&value).unwrap_or_else(|e| panic!("bad {}: {e}", Self::ENV)))
    }

    /// Whether the fault fires for `worker` running `point`.  Session
    /// faults ([`FaultMode::HelloHang`]) never fire per point — consult
    /// [`applies_hello`](FaultPlan::applies_hello) for those.
    pub fn applies(&self, worker: usize, point: usize) -> bool {
        self.mode != FaultMode::HelloHang
            && self.point == point
            && self.worker.map(|w| w == worker).unwrap_or(true)
    }

    /// Whether the fault fires for `worker`'s serve session number
    /// `session`, before the hello (only [`FaultMode::HelloHang`] does).
    pub fn applies_hello(&self, worker: usize, session: usize) -> bool {
        self.mode == FaultMode::HelloHang
            && self.point == session
            && self.worker.map(|w| w == worker).unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_round_trip_through_the_env_value() {
        for plan in [
            FaultPlan::panic_at(0),
            FaultPlan::exit_at(3),
            FaultPlan::garbage_at(7).on_worker(2),
            FaultPlan::hang_at(12),
            FaultPlan::disconnect_at(5),
            FaultPlan::hello_hang_at(1).on_worker(0),
        ] {
            assert_eq!(FaultPlan::parse(&plan.env_value()).unwrap(), plan);
        }
    }

    #[test]
    fn bad_plans_are_rejected() {
        assert!(FaultPlan::parse("").is_err());
        assert!(FaultPlan::parse("point=1").is_err());
        assert!(FaultPlan::parse("mode=exit").is_err());
        assert!(FaultPlan::parse("point=x;mode=exit").is_err());
        assert!(FaultPlan::parse("point=1;mode=sulk").is_err());
        assert!(FaultPlan::parse("point=1;mode=exit;color=red").is_err());
    }

    #[test]
    fn worker_filter_gates_the_trigger() {
        let any = FaultPlan::exit_at(4);
        assert!(any.applies(0, 4));
        assert!(any.applies(9, 4));
        assert!(!any.applies(0, 5));
        let one = FaultPlan::exit_at(4).on_worker(1);
        assert!(one.applies(1, 4));
        assert!(!one.applies(0, 4));
    }

    #[test]
    fn hello_faults_key_on_the_session_not_the_point() {
        let hello = FaultPlan::hello_hang_at(2);
        // Never a per-point trigger, whatever index comes up…
        assert!(!hello.applies(0, 2));
        // …only the matching session ordinal, pre-hello.
        assert!(hello.applies_hello(0, 2));
        assert!(hello.applies_hello(7, 2));
        assert!(!hello.applies_hello(0, 1));
        // And point faults never fire at hello time.
        assert!(!FaultPlan::exit_at(2).applies_hello(0, 2));
        let filtered = FaultPlan::hello_hang_at(0).on_worker(1);
        assert!(filtered.applies_hello(1, 0));
        assert!(!filtered.applies_hello(0, 0));
    }
}
