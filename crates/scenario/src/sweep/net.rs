//! `sweep::net` — multi-machine sweeps: the worker protocol over TCP.
//!
//! The line-framed JSON protocol of [`wire`](super::wire) was built
//! transport-agnostic; this module puts it on sockets.  Two pieces:
//!
//! * **Listener mode** ([`serve_listener`]): every experiment bin gains a
//!   `--serve ADDR` flag that binds a TCP listener and runs the same
//!   serve loop as `--sweep-worker` over each accepted connection — one
//!   session per connection, each starting with the hello handshake (and
//!   the same protocol/point-count skew refusal).  Sessions are served
//!   concurrently, so one listener process can back several supervisor
//!   slots.  On startup the listener prints a discovery banner
//!   ([`LISTENING_BANNER`] + the bound address) to stdout — binding port
//!   0 and reading the banner is how tests and scripts obtain the
//!   ephemeral port.
//! * **Client transport** ([`SocketTransport`], selected through
//!   [`DistRunner::over_hosts`](super::dist::DistRunner::over_hosts) with
//!   a [`HostSpec`] list): each supervisor slot connects to its host and
//!   drives the session through the
//!   [`WorkerTransport`](super::dist::WorkerTransport) seam.  Connection
//!   loss maps onto the existing supervision semantics — the in-flight
//!   point is poisoned and the slot *reconnects as its respawn*; a host
//!   that keeps refusing connections trips the same 3-strike fatal-slot
//!   rule as an unspawnable subprocess command.
//!
//! # Security
//!
//! The protocol is **unauthenticated and unencrypted**: anyone who can
//! reach the listener's port can submit point requests (and a malicious
//! "parent" controls which points run, though not what they compute —
//! the scenario set is the listener's own).  Bind listeners to loopback
//! or trusted-network interfaces only; for anything else, tunnel the
//! connection (e.g. ssh port forwarding).

use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Duration;

use super::dist::{recv_channel_line, spawn_line_reader, Await, WorkerTransport};
use super::wire::WireResult;
use super::worker::{self, SessionInfo};
use super::ScenarioSet;

/// The stdout prefix a [`serve_listener`] prints once its socket is
/// bound, followed by the actual local address.  Scripts and tests that
/// start listeners on port 0 parse this line to learn the ephemeral
/// port.
pub const LISTENING_BANNER: &str = "ispn sweep worker listening on ";

/// One worker host a sweep may connect to: an address and how many
/// concurrent connections (= supervisor slots) it contributes.
///
/// The list syntax accepted by [`HostSpec::parse_list`] (and the bins'
/// `--hosts` flag) is comma-separated `host:port=limit` entries, the
/// `=limit` defaulting to 1: `"hostA:7600=4,hostB:7600=8"`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostSpec {
    /// The listener's address, as given (`host:port`; resolved at connect
    /// time).
    pub addr: String,
    /// Maximum concurrent connections to open against this host (≥ 1).
    pub limit: usize,
}

impl HostSpec {
    /// A host contributing up to `limit` connections (clamped to ≥ 1).
    pub fn new(addr: impl Into<String>, limit: usize) -> Self {
        HostSpec {
            addr: addr.into(),
            limit: limit.max(1),
        }
    }

    /// Parse one `host:port[=limit]` entry.
    pub fn parse(spec: &str) -> Result<HostSpec, String> {
        let (addr, limit) = match spec.rsplit_once('=') {
            None => (spec, 1),
            Some((addr, limit)) => (
                addr,
                limit
                    .parse::<usize>()
                    .map_err(|e| format!("bad connection limit {limit:?} in {spec:?}: {e}"))?,
            ),
        };
        if limit == 0 {
            return Err(format!("connection limit in {spec:?} must be at least 1"));
        }
        // A loose shape check only — names resolve at connect time.
        let (host, port) = addr
            .rsplit_once(':')
            .ok_or_else(|| format!("host entry {spec:?} is not host:port[=limit]"))?;
        if host.is_empty() || port.is_empty() {
            return Err(format!("host entry {spec:?} is not host:port[=limit]"));
        }
        Ok(HostSpec {
            addr: addr.to_string(),
            limit,
        })
    }

    /// Parse a comma-separated host list (the `--hosts` flag's value).
    pub fn parse_list(list: &str) -> Result<Vec<HostSpec>, String> {
        let hosts: Vec<HostSpec> = list
            .split(',')
            .filter(|entry| !entry.trim().is_empty())
            .map(|entry| HostSpec::parse(entry.trim()))
            .collect::<Result<_, _>>()?;
        if hosts.is_empty() {
            return Err("host list names no hosts".to_string());
        }
        Ok(hosts)
    }
}

/// Expand a host list into one connection address per supervisor slot,
/// round-robin across hosts (respecting each host's limit) so load
/// spreads evenly instead of saturating the first host before touching
/// the second.
pub fn slot_addrs(hosts: &[HostSpec]) -> Vec<String> {
    let mut out = Vec::new();
    let mut remaining: Vec<usize> = hosts.iter().map(|h| h.limit).collect();
    loop {
        let mut any = false;
        for (host, rem) in hosts.iter().zip(remaining.iter_mut()) {
            if *rem > 0 {
                *rem -= 1;
                out.push(host.addr.clone());
                any = true;
            }
        }
        if !any {
            return out;
        }
    }
}

/// The TCP flavor of [`WorkerTransport`]: a connected stream plus the
/// reader-thread channel over its receive half (so awaits can time out,
/// exactly like the subprocess transport).
pub(crate) struct SocketTransport {
    stream: TcpStream,
    lines: mpsc::Receiver<String>,
    peer: String,
}

impl SocketTransport {
    /// Connect to a listening worker, bounded by `timeout` (a dead host
    /// must cost one bounded connect, not an OS-default multi-minute
    /// stall).
    pub(crate) fn connect(addr: &str, timeout: Duration) -> Result<SocketTransport, String> {
        let resolved: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| format!("could not connect to worker host {addr}: {e}"))?
            .collect();
        let mut last_err = format!("could not connect to worker host {addr}: no addresses");
        for candidate in &resolved {
            match TcpStream::connect_timeout(candidate, timeout) {
                Ok(stream) => {
                    // Frames are small and latency-sensitive; never Nagle
                    // a point request.
                    let _ = stream.set_nodelay(true);
                    let reader = stream
                        .try_clone()
                        .map_err(|e| format!("could not clone stream to {addr}: {e}"))?;
                    return Ok(SocketTransport {
                        stream,
                        lines: spawn_line_reader(reader),
                        peer: addr.to_string(),
                    });
                }
                Err(e) => last_err = format!("could not connect to worker host {addr}: {e}"),
            }
        }
        Err(last_err)
    }
}

impl WorkerTransport for SocketTransport {
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()
    }

    fn recv_line(&mut self, deadline: Option<Duration>) -> Await {
        recv_channel_line(&self.lines, deadline)
    }

    fn terminate(&mut self) -> String {
        let _ = self.stream.shutdown(Shutdown::Both);
        format!("connection to {} dropped", self.peer)
    }

    fn finish(&mut self) -> String {
        format!("connection to {} closed by peer", self.peer)
    }

    fn shutdown(&mut self) {
        // Closing our send half makes the session's request reader see
        // EOF and end the session cleanly; the listener itself keeps
        // serving other parents.
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// Serve sweep points over TCP: bind `addr`, print the
/// [`LISTENING_BANNER`] discovery line, then accept connections forever,
/// running the same serve loop as
/// [`serve_worker`](super::worker::serve_worker) over each one (its own
/// hello handshake included).  Sessions run concurrently on scoped
/// threads; a session's I/O error is logged to stderr and ends only that
/// session.
///
/// This is what an experiment bin's `--serve ADDR` flag calls.  Bind to
/// `host:0` for an ephemeral port (the banner names the actual one).
/// The function only returns on bind failure — a listener serves until
/// killed.
pub fn serve_listener<P, R, F>(addr: &str, set: &ScenarioSet<P>, run_point: F) -> io::Result<()>
where
    P: Sync,
    R: WireResult,
    F: Fn(&P) -> R + Sync,
{
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    // Stdout is not a report surface in listener mode, so the discovery
    // banner can own it (frames travel over the sockets).
    println!("{LISTENING_BANNER}{local}");
    io::stdout().flush()?;
    let me = worker::worker_id().unwrap_or(0);
    let sessions = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        loop {
            let (stream, peer) = match listener.accept() {
                Ok(conn) => conn,
                Err(e) => {
                    eprintln!("sweep listener {local}: accept failed: {e}");
                    continue;
                }
            };
            // Sessions are numbered in accept order — the key FaultPlan's
            // hello faults select on.
            let session = sessions.fetch_add(1, Ordering::SeqCst);
            let run_point = &run_point;
            scope.spawn(move || {
                let _ = stream.set_nodelay(true);
                let reader = match stream.try_clone() {
                    Ok(reader) => reader,
                    Err(e) => {
                        eprintln!("sweep session {session} from {peer}: unusable stream: {e}");
                        return;
                    }
                };
                let info = SessionInfo {
                    worker: me,
                    session,
                };
                if let Err(e) =
                    worker::serve_connection(set, run_point, BufReader::new(reader), stream, info)
                {
                    eprintln!("sweep session {session} from {peer}: {e}");
                }
            });
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_specs_parse_with_and_without_limits() {
        assert_eq!(
            HostSpec::parse("hostA:7600=4").unwrap(),
            HostSpec::new("hostA:7600", 4)
        );
        assert_eq!(
            HostSpec::parse("127.0.0.1:7600").unwrap(),
            HostSpec::new("127.0.0.1:7600", 1)
        );
        let list = HostSpec::parse_list("hostA:7600=2, hostB:7601=1").unwrap();
        assert_eq!(
            list,
            vec![
                HostSpec::new("hostA:7600", 2),
                HostSpec::new("hostB:7601", 1)
            ]
        );
    }

    #[test]
    fn bad_host_specs_are_rejected() {
        for bad in [
            "",
            "hostA",
            "hostA:7600=0",
            "hostA:7600=two",
            ":7600",
            "hostA:",
            "=4",
        ] {
            assert!(HostSpec::parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(HostSpec::parse_list("").is_err());
        assert!(HostSpec::parse_list(",,").is_err());
        assert!(HostSpec::parse_list("hostA:1=1,bogus").is_err());
    }

    #[test]
    fn slots_round_robin_across_hosts_up_to_their_limits() {
        let hosts = [
            HostSpec::new("a:1", 3),
            HostSpec::new("b:1", 1),
            HostSpec::new("c:1", 2),
        ];
        assert_eq!(
            slot_addrs(&hosts),
            vec!["a:1", "b:1", "c:1", "a:1", "c:1", "a:1"]
        );
        assert_eq!(slot_addrs(&[]), Vec::<String>::new());
    }

    #[test]
    fn new_clamps_zero_limits() {
        assert_eq!(HostSpec::new("a:1", 0).limit, 1);
    }
}
