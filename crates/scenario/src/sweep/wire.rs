//! The distributed-sweep wire format: line-framed JSON and the codec that
//! carries point results across the process boundary — any boundary:
//! stdin/stdout pipes ([`dist`](super::dist)) and TCP sockets
//! ([`net`](super::net)) speak the same frames.
//!
//! A [`DistRunner`](super::dist::DistRunner) parent and its
//! `--sweep-worker` children exchange **one JSON document per line**:
//!
//! * parent → worker: a [`PointRequest`] —
//!   `{"point":3,"axes":[["load","1.0"],["discipline","WFQ"]]}`.
//!   The worker rebuilds the same [`ScenarioSet`](super::ScenarioSet) from
//!   its own command line, so the request carries only the point's index;
//!   the axis tags ride along so the worker can *verify* both sides built
//!   the same sweep before running anything.  A revision-3 parent may
//!   batch several requests into one line — `{"batch":[{"point":3,…},
//!   {"point":4,…}]}` — which the worker answers point by point, in
//!   order, exactly as if the requests had arrived on separate lines.
//!   Batching amortizes per-point round-trips on high-latency links; it
//!   is negotiated in the hello (see below) so revision-2 workers only
//!   ever see single-point requests.
//! * worker → parent: a [`WorkerFrame`] — a `{"hello":{"protocol":3,
//!   "points":8}}` handshake on startup, then per point a
//!   `{"point":3,"telemetry":{"wall_s":1.25}}` stats frame followed by
//!   either `{"point":3,"report":<body>}` (the result encoded through
//!   [`WireResult`]) or `{"point":3,"error":"<panic payload>"}` when the
//!   point's closure panicked inside the worker.  Telemetry frames carry
//!   only out-of-band wall-clock data: they never touch the result stream,
//!   so a distributed run's decoded results stay byte-identical to an
//!   in-process run's.
//!
//! # Framing contract
//!
//! A frame is one JSON document followed by a line terminator.  Writers
//! emit `\n`; readers MUST accept both `\n` and `\r\n` (and, equivalently,
//! strip any trailing `\r` from a line before parsing), so a socket peer
//! on a platform that writes CRLF cannot poison points with a
//! trailing-`\r` parse error.  Both sides of this tolerance are already
//! in place end to end: line readers strip `['\n', '\r']` suffixes, and
//! [`JsonValue::parse`] itself treats `\r` as insignificant whitespace.
//! Blank lines (after stripping) are ignored by the worker.  A JSON
//! document never spans lines and never *contains* a raw newline:
//! [`json_escape`](crate::report::json_escape) encodes `\n` and `\r`
//! inside strings as escapes, which the property tests pin.
//!
//! Everything is hand-rolled (this workspace builds offline, no serde):
//! [`json_escape`](crate::report::json_escape) on the way out and the
//! small recursive-descent [`JsonValue`] parser on the way in.  The codec
//! is pinned by property tests: arbitrary axis tags — quotes, newlines,
//! control characters, non-ASCII — and arbitrary error payloads round-trip
//! losslessly.
//!
//! # Float fidelity
//!
//! Byte-identity between an in-process and a distributed run hinges on
//! `f64` round-trips: results are encoded with `{:?}` (Rust's shortest
//! representation that parses back to the same bits) and decoded with
//! `str::parse::<f64>` (correctly rounded), so every finite value crosses
//! the pipe exactly.  Non-finite values follow the report convention and
//! serialize as `null`, decoding to NaN.

use std::fmt;

use crate::report::{
    json_escape, ClassSummary, DisciplineSummary, FlowSummary, HistogramSummary, LinkSummary,
    RunTelemetry, ScenarioReport, SignalingSummary,
};

/// The wire protocol revision announced in the worker's hello frame.
/// Revision 2 added the per-point telemetry frame (and the optional
/// `telemetry` key on report bodies).  Revision 3 added batched
/// `{"batch":[…]}` requests for socket transports.
///
/// Unlike the pre-3 era, where parents and workers always shipped
/// together and any skew failed the handshake, a multi-machine sweep can
/// legitimately pair a newer parent with an older worker binary; the
/// parent therefore accepts any hello in
/// [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] and restricts itself
/// to that worker's dialect (no batching below revision 3).
pub const PROTOCOL_VERSION: u64 = 3;

/// The oldest worker protocol revision a parent still speaks.  Revision 2
/// workers answer single-point requests with telemetry + report/error
/// frames — everything a parent needs except batching.
pub const MIN_PROTOCOL_VERSION: u64 = 2;

/// The first protocol revision that understands batched
/// `{"batch":[…]}` requests.
pub const BATCH_PROTOCOL_VERSION: u64 = 3;

/// A malformed or schema-violating wire document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// What was wrong with the document.
    pub detail: String,
}

impl WireError {
    /// A wire error with the given description.
    pub fn new(detail: impl Into<String>) -> Self {
        WireError {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error: {}", self.detail)
    }
}

impl std::error::Error for WireError {}

/// A parsed JSON document.  Numbers keep their **raw literal text** so
/// integer results (packet counts, drop totals) round-trip exactly even
/// beyond 2^53; accessors parse on demand.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as the raw literal text from the document.
    Number(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parse one JSON document (the whole input must be consumed).
    pub fn parse(text: &str) -> Result<JsonValue, WireError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(WireError::new(format!(
                "trailing bytes after JSON document at offset {}",
                p.pos
            )));
        }
        Ok(value)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member lookup that errors with the missing key's name.
    pub fn field(&self, key: &str) -> Result<&JsonValue, WireError> {
        self.get(key)
            .ok_or_else(|| WireError::new(format!("missing object field {key:?}")))
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// The string value.
    pub fn as_str(&self) -> Result<&str, WireError> {
        match self {
            JsonValue::Str(s) => Ok(s),
            other => Err(WireError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// The boolean value.
    pub fn as_bool(&self) -> Result<bool, WireError> {
        match self {
            JsonValue::Bool(b) => Ok(*b),
            other => Err(WireError::new(format!("expected bool, got {other:?}"))),
        }
    }

    /// The array elements.
    pub fn as_array(&self) -> Result<&[JsonValue], WireError> {
        match self {
            JsonValue::Array(items) => Ok(items),
            other => Err(WireError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// The number as `f64` (finite literals only; see
    /// [`as_f64_or_nan`](JsonValue::as_f64_or_nan) for the report
    /// convention where `null` stands in for non-finite values).
    pub fn as_f64(&self) -> Result<f64, WireError> {
        match self {
            JsonValue::Number(raw) => raw
                .parse::<f64>()
                .map_err(|e| WireError::new(format!("bad number literal {raw:?}: {e}"))),
            other => Err(WireError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// The number as `f64`, with `null` decoding to NaN (the inverse of
    /// the report serializer, which emits `null` for non-finite floats).
    pub fn as_f64_or_nan(&self) -> Result<f64, WireError> {
        match self {
            JsonValue::Null => Ok(f64::NAN),
            other => other.as_f64(),
        }
    }

    /// The number as `u64` (exact: parsed from the raw literal).
    pub fn as_u64(&self) -> Result<u64, WireError> {
        match self {
            JsonValue::Number(raw) => raw
                .parse::<u64>()
                .map_err(|e| WireError::new(format!("bad u64 literal {raw:?}: {e}"))),
            other => Err(WireError::new(format!("expected integer, got {other:?}"))),
        }
    }

    /// The number as `usize`.
    pub fn as_usize(&self) -> Result<usize, WireError> {
        self.as_u64().and_then(|n| {
            usize::try_from(n).map_err(|_| WireError::new(format!("{n} overflows usize")))
        })
    }

    /// The number as `u32`.
    pub fn as_u32(&self) -> Result<u32, WireError> {
        self.as_u64().and_then(|n| {
            u32::try_from(n).map_err(|_| WireError::new(format!("{n} overflows u32")))
        })
    }
}

/// Recursive-descent JSON parser over the document's bytes.  String
/// contents are collected byte-wise (escapes are the only places we split,
/// and they are ASCII), so UTF-8 passes through untouched.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Current container-nesting depth, bounded by [`MAX_DEPTH`] so a
    /// hostile frame of thousands of `[`s errors out instead of blowing
    /// the supervising thread's stack (the parser is recursive).
    depth: usize,
}

/// Maximum container nesting [`JsonValue::parse`] accepts.  Every
/// legitimate wire document nests a handful of levels; a frame deeper
/// than this is garbage and must fail as a parse error, not a stack
/// overflow that would abort the whole parent process.
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(WireError::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, WireError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(WireError::new(format!(
                "expected {word:?} at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<JsonValue, WireError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(WireError::new(format!(
                "unexpected byte {:?} at offset {}",
                b as char, self.pos
            ))),
            None => Err(WireError::new("unexpected end of document")),
        }
    }

    /// Run one container parser with the depth bound enforced.
    fn nested(
        &mut self,
        container: fn(&mut Self) -> Result<JsonValue, WireError>,
    ) -> Result<JsonValue, WireError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(WireError::new(format!(
                "nesting deeper than {MAX_DEPTH} levels at offset {}",
                self.pos
            )));
        }
        let value = container(self)?;
        self.depth -= 1;
        Ok(value)
    }

    fn object(&mut self) -> Result<JsonValue, WireError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => {
                    return Err(WireError::new(format!(
                        "expected ',' or '}}' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => {
                    return Err(WireError::new(format!(
                        "expected ',' or ']' at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, WireError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number literals are ASCII")
            .to_string();
        // Validate the literal now so schema code can trust the raw text.
        raw.parse::<f64>()
            .map_err(|e| WireError::new(format!("bad number literal {raw:?}: {e}")))?;
        Ok(JsonValue::Number(raw))
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        loop {
            match self.peek() {
                None => return Err(WireError::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| WireError::new("string is not valid UTF-8"));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| WireError::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'b' => out.push(0x08),
                        b'f' => out.push(0x0c),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(WireError::new("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(code)
                                        .ok_or_else(|| WireError::new("invalid surrogate pair"))?
                                } else {
                                    return Err(WireError::new("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(WireError::new("lone low surrogate"));
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| WireError::new("invalid \\u escape"))?
                            };
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        }
                        other => {
                            return Err(WireError::new(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                Some(b) => {
                    out.push(b);
                    self.pos += 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(WireError::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| WireError::new("non-ASCII in \\u escape"))?;
        let unit =
            u32::from_str_radix(hex, 16).map_err(|_| WireError::new("bad \\u escape digits"))?;
        self.pos = end;
        Ok(unit)
    }
}

/// Serialize a finite `f64` as its exact shortest literal, and non-finite
/// values as `null` (the same convention the scenario report uses).
pub fn wire_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// A result type that can cross the worker-process boundary: encode to a
/// JSON body and decode back **losslessly**, so a distributed sweep's
/// decoded results render byte-identically to an in-process run's.
///
/// Implementations exist for the primitives, `String`, pairs, `Vec` and
/// [`ScenarioReport`]; each experiment implements it for its own row type.
pub trait WireResult: Sized {
    /// Encode as one JSON value.
    fn to_wire_json(&self) -> String;
    /// Decode from a parsed JSON value.
    fn from_wire_json(value: &JsonValue) -> Result<Self, WireError>;
}

macro_rules! wire_uint {
    ($($t:ty => $as:ident),*) => {$(
        impl WireResult for $t {
            fn to_wire_json(&self) -> String {
                self.to_string()
            }
            fn from_wire_json(value: &JsonValue) -> Result<Self, WireError> {
                value.$as().and_then(|n| {
                    <$t>::try_from(n)
                        .map_err(|_| WireError::new(format!("{n} out of range")))
                })
            }
        }
    )*};
}

wire_uint!(u64 => as_u64, u32 => as_u64, usize => as_u64);

impl WireResult for f64 {
    fn to_wire_json(&self) -> String {
        wire_f64(*self)
    }
    fn from_wire_json(value: &JsonValue) -> Result<Self, WireError> {
        value.as_f64_or_nan()
    }
}

impl WireResult for bool {
    fn to_wire_json(&self) -> String {
        self.to_string()
    }
    fn from_wire_json(value: &JsonValue) -> Result<Self, WireError> {
        value.as_bool()
    }
}

impl WireResult for String {
    fn to_wire_json(&self) -> String {
        format!("\"{}\"", json_escape(self))
    }
    fn from_wire_json(value: &JsonValue) -> Result<Self, WireError> {
        value.as_str().map(str::to_string)
    }
}

impl<A: WireResult, B: WireResult> WireResult for (A, B) {
    fn to_wire_json(&self) -> String {
        format!("[{},{}]", self.0.to_wire_json(), self.1.to_wire_json())
    }
    fn from_wire_json(value: &JsonValue) -> Result<Self, WireError> {
        let items = value.as_array()?;
        if items.len() != 2 {
            return Err(WireError::new(format!(
                "expected a pair, got {} elements",
                items.len()
            )));
        }
        Ok((A::from_wire_json(&items[0])?, B::from_wire_json(&items[1])?))
    }
}

impl<T: WireResult> WireResult for Vec<T> {
    fn to_wire_json(&self) -> String {
        let body: Vec<String> = self.iter().map(WireResult::to_wire_json).collect();
        format!("[{}]", body.join(","))
    }
    fn from_wire_json(value: &JsonValue) -> Result<Self, WireError> {
        value.as_array()?.iter().map(T::from_wire_json).collect()
    }
}

impl WireResult for ScenarioReport {
    /// The report's existing JSON serialization is the wire body.
    fn to_wire_json(&self) -> String {
        self.to_json()
    }

    fn from_wire_json(v: &JsonValue) -> Result<Self, WireError> {
        Ok(ScenarioReport {
            horizon_s: v.field("horizon_s")?.as_f64_or_nan()?,
            flows: v
                .field("flows")?
                .as_array()?
                .iter()
                .map(decode_flow)
                .collect::<Result<_, _>>()?,
            links: v
                .field("links")?
                .as_array()?
                .iter()
                .map(decode_link)
                .collect::<Result<_, _>>()?,
            classes: v
                .field("classes")?
                .as_array()?
                .iter()
                .map(decode_class)
                .collect::<Result<_, _>>()?,
            disciplines: v
                .field("disciplines")?
                .as_array()?
                .iter()
                .map(decode_discipline)
                .collect::<Result<_, _>>()?,
            signaling: {
                let s = v.field("signaling")?;
                if s.is_null() {
                    None
                } else {
                    Some(decode_signaling(s)?)
                }
            },
            // Absent on telemetry-off reports (and every pre-revision-2
            // frame): `get`, not `field`.
            telemetry: v.get("telemetry").map(decode_telemetry).transpose()?,
        })
    }
}

fn decode_flow(v: &JsonValue) -> Result<FlowSummary, WireError> {
    Ok(FlowSummary {
        flow: v.field("flow")?.as_u32()?,
        generated: v.field("generated")?.as_u64()?,
        delivered: v.field("delivered")?.as_u64()?,
        dropped_buffer: v.field("dropped_buffer")?.as_u64()?,
        dropped_at_edge: v.field("dropped_at_edge")?.as_u64()?,
        dropped_inactive: v.field("dropped_inactive")?.as_u64()?,
        mean_delay_s: v.field("mean_delay_s")?.as_f64_or_nan()?,
        p999_delay_s: v.field("p999_delay_s")?.as_f64_or_nan()?,
        max_delay_s: v.field("max_delay_s")?.as_f64_or_nan()?,
        jitter_s: v.field("jitter_s")?.as_f64_or_nan()?,
    })
}

fn decode_link(v: &JsonValue) -> Result<LinkSummary, WireError> {
    Ok(LinkSummary {
        link: v.field("link")?.as_usize()?,
        utilization: v.field("utilization")?.as_f64_or_nan()?,
        realtime_utilization: v.field("realtime_utilization")?.as_f64_or_nan()?,
        drops: v.field("drops")?.as_u64()?,
        packets_sent: v.field("packets_sent")?.as_u64()?,
    })
}

fn decode_class(v: &JsonValue) -> Result<ClassSummary, WireError> {
    let quantiles = v
        .field("quantiles")?
        .as_array()?
        .iter()
        .map(|pair| {
            let items = pair.as_array()?;
            if items.len() != 2 {
                return Err(WireError::new("quantile entries are [q, delay] pairs"));
            }
            Ok((items[0].as_f64_or_nan()?, items[1].as_f64_or_nan()?))
        })
        .collect::<Result<_, _>>()?;
    let histogram = {
        let h = v.field("histogram")?;
        if h.is_null() {
            None
        } else {
            Some(HistogramSummary {
                lo_s: h.field("lo_s")?.as_f64_or_nan()?,
                hi_s: h.field("hi_s")?.as_f64_or_nan()?,
                counts: h
                    .field("counts")?
                    .as_array()?
                    .iter()
                    .map(JsonValue::as_u64)
                    .collect::<Result<_, _>>()?,
                underflow: h.field("underflow")?.as_u64()?,
                overflow: h.field("overflow")?.as_u64()?,
            })
        }
    };
    Ok(ClassSummary {
        class: v.field("class")?.as_str()?.to_string(),
        flows: v.field("flows")?.as_usize()?,
        generated: v.field("generated")?.as_u64()?,
        delivered: v.field("delivered")?.as_u64()?,
        dropped_buffer: v.field("dropped_buffer")?.as_u64()?,
        dropped_at_edge: v.field("dropped_at_edge")?.as_u64()?,
        mean_delay_s: v.field("mean_delay_s")?.as_f64_or_nan()?,
        max_delay_s: v.field("max_delay_s")?.as_f64_or_nan()?,
        jitter_s: v.field("jitter_s")?.as_f64_or_nan()?,
        quantiles,
        histogram,
    })
}

fn decode_discipline(v: &JsonValue) -> Result<DisciplineSummary, WireError> {
    Ok(DisciplineSummary {
        discipline: v.field("discipline")?.as_str()?.to_string(),
        links: v.field("links")?.as_usize()?,
        mean_utilization: v.field("mean_utilization")?.as_f64_or_nan()?,
        mean_realtime_utilization: v.field("mean_realtime_utilization")?.as_f64_or_nan()?,
        drops: v.field("drops")?.as_u64()?,
        packets_sent: v.field("packets_sent")?.as_u64()?,
    })
}

fn decode_telemetry(v: &JsonValue) -> Result<RunTelemetry, WireError> {
    Ok(RunTelemetry {
        events_processed: v.field("events_processed")?.as_u64()?,
        event_queue_high_water: v.field("event_queue_high_water")?.as_u64()?,
        peak_queue_depth: v.field("peak_queue_depth")?.as_u64()?,
        admission_accepted: v.field("admission_accepted")?.as_u64()?,
        admission_rejected: v.field("admission_rejected")?.as_u64()?,
        flow_table_bytes: v.field("flow_table_bytes")?.as_u64()?,
        reservation_state_bytes: v.field("reservation_state_bytes")?.as_u64()?,
        sched_pool_grow_events: v.field("sched_pool_grow_events")?.as_u64()?,
        sched_pool_segments_high_water: v.field("sched_pool_segments_high_water")?.as_u64()?,
        wall_s: v.field("wall_s")?.as_f64_or_nan()?,
        events_per_sec: v.field("events_per_sec")?.as_f64_or_nan()?,
    })
}

fn decode_signaling(v: &JsonValue) -> Result<SignalingSummary, WireError> {
    Ok(SignalingSummary {
        accepted: v.field("accepted")?.as_usize()?,
        rejected: v.field("rejected")?.as_usize()?,
        decisions: v
            .field("decisions")?
            .as_array()?
            .iter()
            .map(JsonValue::as_bool)
            .collect::<Result<_, _>>()?,
        pending: v.field("pending")?.as_usize()?,
    })
}

/// The parent's per-point request: which point to run, plus the axis tags
/// the parent believes the point carries (the worker refuses to run a
/// point whose tags differ — both sides must have built the same sweep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointRequest {
    /// The point's position in sweep order.
    pub index: usize,
    /// The point's `(axis name, value label)` tags.
    pub tags: Vec<(String, String)>,
}

/// Encode a point request as one line-framed JSON document (no newline).
pub fn encode_request(index: usize, tags: &[(String, String)]) -> String {
    let axes: Vec<String> = tags
        .iter()
        .map(|(name, label)| format!("[\"{}\",\"{}\"]", json_escape(name), json_escape(label)))
        .collect();
    format!("{{\"point\":{index},\"axes\":[{}]}}", axes.join(","))
}

/// Encode several point requests as one batched line-framed document
/// (no newline).  Only send this to a worker whose hello announced
/// protocol ≥ [`BATCH_PROTOCOL_VERSION`]; the worker answers the points
/// in order, exactly as if each had arrived on its own line.
pub fn encode_batch_request(items: &[(usize, &[(String, String)])]) -> String {
    let body: Vec<String> = items
        .iter()
        .map(|&(index, tags)| encode_request(index, tags))
        .collect();
    format!("{{\"batch\":[{}]}}", body.join(","))
}

/// Parse a single point request line (revision-2 dialect: no batches).
pub fn parse_request(line: &str) -> Result<PointRequest, WireError> {
    request_from_value(&JsonValue::parse(line)?)
}

/// Parse a request line in the revision-3 dialect: either one
/// [`PointRequest`] or a `{"batch":[…]}` of several.  A single request
/// comes back as a one-element vector; an empty batch is a schema error
/// (a parent with nothing to ask must not send anything).
pub fn parse_requests(line: &str) -> Result<Vec<PointRequest>, WireError> {
    let v = JsonValue::parse(line)?;
    match v.get("batch") {
        None => Ok(vec![request_from_value(&v)?]),
        Some(batch) => {
            let items = batch.as_array()?;
            if items.is_empty() {
                return Err(WireError::new("empty batch request"));
            }
            items.iter().map(request_from_value).collect()
        }
    }
}

/// Decode one request object (the body of a single request line or one
/// element of a batch).
fn request_from_value(v: &JsonValue) -> Result<PointRequest, WireError> {
    let index = v.field("point")?.as_usize()?;
    let tags = v
        .field("axes")?
        .as_array()?
        .iter()
        .map(|pair| {
            let items = pair.as_array()?;
            if items.len() != 2 {
                return Err(WireError::new("axis entries are [name, label] pairs"));
            }
            Ok((
                items[0].as_str()?.to_string(),
                items[1].as_str()?.to_string(),
            ))
        })
        .collect::<Result<_, _>>()?;
    Ok(PointRequest { index, tags })
}

/// One parsed worker → parent frame.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerFrame {
    /// The startup handshake: protocol revision and how many points the
    /// worker's sweep holds (the parent refuses a mismatched worker).
    Hello {
        /// Wire protocol revision.
        protocol: u64,
        /// Number of points in the worker's rebuilt sweep.
        points: usize,
    },
    /// A completed point with its encoded result body.
    Report {
        /// The point's position in sweep order.
        index: usize,
        /// The [`WireResult`]-encoded result.
        body: JsonValue,
    },
    /// A point whose closure panicked inside the worker.
    Error {
        /// The point's position in sweep order.
        index: usize,
        /// The panic payload, rendered as text.
        payload: String,
    },
    /// Out-of-band per-point stats, sent before the point's report or
    /// error frame.  Never part of the result stream — the parent may
    /// aggregate or ignore these freely without affecting byte-identity.
    Telemetry {
        /// The point's position in sweep order.
        index: usize,
        /// Wall-clock seconds the worker spent running the point.
        wall_s: f64,
    },
}

/// Encode the worker's hello frame.
pub fn encode_hello(points: usize) -> String {
    format!("{{\"hello\":{{\"protocol\":{PROTOCOL_VERSION},\"points\":{points}}}}}")
}

/// Encode a completed point's frame (`body` must already be valid JSON —
/// the output of [`WireResult::to_wire_json`]).
pub fn encode_report_frame(index: usize, body: &str) -> String {
    format!("{{\"point\":{index},\"report\":{body}}}")
}

/// Encode a panicked point's frame.
pub fn encode_error_frame(index: usize, payload: &str) -> String {
    format!(
        "{{\"point\":{index},\"error\":\"{}\"}}",
        json_escape(payload)
    )
}

/// Encode a point's out-of-band stats frame.
pub fn encode_telemetry_frame(index: usize, wall_s: f64) -> String {
    format!(
        "{{\"point\":{index},\"telemetry\":{{\"wall_s\":{}}}}}",
        wire_f64(wall_s)
    )
}

/// Parse one worker → parent line.
pub fn parse_worker_frame(line: &str) -> Result<WorkerFrame, WireError> {
    let v = JsonValue::parse(line)?;
    if let Some(hello) = v.get("hello") {
        return Ok(WorkerFrame::Hello {
            protocol: hello.field("protocol")?.as_u64()?,
            points: hello.field("points")?.as_usize()?,
        });
    }
    let index = v.field("point")?.as_usize()?;
    if let Some(payload) = v.get("error") {
        return Ok(WorkerFrame::Error {
            index,
            payload: payload.as_str()?.to_string(),
        });
    }
    if let Some(stats) = v.get("telemetry") {
        return Ok(WorkerFrame::Telemetry {
            index,
            wall_s: stats.field("wall_s")?.as_f64_or_nan()?,
        });
    }
    // Move the report body out of the owned document: this is the hot
    // per-point decode path, and the body can embed a whole report tree.
    match v {
        JsonValue::Object(mut members) => match members.iter().position(|(k, _)| k == "report") {
            Some(i) => Ok(WorkerFrame::Report {
                index,
                body: members.swap_remove(i).1,
            }),
            None => Err(WireError::new("missing object field \"report\"")),
        },
        // Unreachable in practice: reading "point" above required an
        // object, but keep the schema error rather than a panic.
        _ => Err(WireError::new("worker frame is not an object")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(
            JsonValue::parse("-12.5e3").unwrap().as_f64().unwrap(),
            -12.5e3
        );
        let v = JsonValue::parse("{\"a\":[1,2,{\"b\":\"c\"}],\"d\":null}").unwrap();
        assert_eq!(v.field("a").unwrap().as_array().unwrap().len(), 3);
        assert!(v.field("d").unwrap().is_null());
        assert_eq!(
            v.field("a").unwrap().as_array().unwrap()[2]
                .field("b")
                .unwrap()
                .as_str()
                .unwrap(),
            "c"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "{\"a\":1} trailing",
            "\"\\q\"",
            "\"\\ud800\"",
            "01a",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn hostile_nesting_is_a_parse_error_not_a_stack_overflow() {
        // A garbage frame of tens of thousands of '['s must fail cleanly
        // (poisoning one point), never abort the parent via stack
        // exhaustion.
        let deep = "[".repeat(50_000);
        let err = JsonValue::parse(&deep).expect_err("bottomless nesting must not parse");
        assert!(err.detail.contains("nesting deeper"), "{err}");
        let mixed = "{\"a\":".repeat(30_000);
        assert!(JsonValue::parse(&mixed).is_err());
        // Reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn string_escapes_round_trip_through_the_parser() {
        let hostile = "quote\" slash\\ nl\n cr\r tab\t ctl\u{1} é 中 🦀 \u{2028}";
        let doc = format!("\"{}\"", json_escape(hostile));
        assert_eq!(JsonValue::parse(&doc).unwrap().as_str().unwrap(), hostile);
        // Surrogate-pair escapes decode too.
        assert_eq!(
            JsonValue::parse("\"\\ud83e\\udd80\"")
                .unwrap()
                .as_str()
                .unwrap(),
            "🦀"
        );
        assert_eq!(
            JsonValue::parse("\"\\u00e9\\b\\f\\/\"")
                .unwrap()
                .as_str()
                .unwrap(),
            "é\u{8}\u{c}/"
        );
    }

    #[test]
    fn numbers_keep_exact_raw_text() {
        // Integers beyond 2^53 survive because the literal is kept as text.
        let v = JsonValue::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64().unwrap(), u64::MAX);
        // Shortest-f64 literals round-trip to the same bits.
        for x in [0.1, 1.0 / 3.0, 83.5e-9, f64::MIN_POSITIVE, -0.0] {
            let v = JsonValue::parse(&wire_f64(x)).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits());
        }
        assert!(JsonValue::parse(&wire_f64(f64::NAN))
            .unwrap()
            .as_f64_or_nan()
            .unwrap()
            .is_nan());
    }

    #[test]
    fn frames_round_trip() {
        let tags = vec![
            ("load".to_string(), "1.0".to_string()),
            ("disc\"ipline".to_string(), "WFQ\n".to_string()),
        ];
        let req = parse_request(&encode_request(3, &tags)).unwrap();
        assert_eq!(req, PointRequest { index: 3, tags });

        assert_eq!(
            parse_worker_frame(&encode_hello(8)).unwrap(),
            WorkerFrame::Hello {
                protocol: PROTOCOL_VERSION,
                points: 8
            }
        );
        match parse_worker_frame(&encode_report_frame(2, "{\"x\":1}")).unwrap() {
            WorkerFrame::Report { index, body } => {
                assert_eq!(index, 2);
                assert_eq!(body.field("x").unwrap().as_u64().unwrap(), 1);
            }
            other => panic!("unexpected frame {other:?}"),
        }
        match parse_worker_frame(&encode_error_frame(5, "boom \"quoted\"")).unwrap() {
            WorkerFrame::Error { index, payload } => {
                assert_eq!(index, 5);
                assert_eq!(payload, "boom \"quoted\"");
            }
            other => panic!("unexpected frame {other:?}"),
        }
        match parse_worker_frame(&encode_telemetry_frame(4, 1.25)).unwrap() {
            WorkerFrame::Telemetry { index, wall_s } => {
                assert_eq!(index, 4);
                assert_eq!(wall_s, 1.25);
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }

    #[test]
    fn batch_requests_round_trip_and_singletons_stay_rev2_parsable() {
        let tags_a = vec![("load".to_string(), "1.0".to_string())];
        let tags_b = vec![("load".to_string(), "2.0".to_string())];
        let line = encode_batch_request(&[(3, &tags_a), (4, &tags_b)]);
        assert!(!line.contains('\n'));
        let parsed = parse_requests(&line).unwrap();
        assert_eq!(
            parsed,
            vec![
                PointRequest {
                    index: 3,
                    tags: tags_a.clone()
                },
                PointRequest {
                    index: 4,
                    tags: tags_b
                },
            ]
        );
        // The rev-3 parser accepts a plain single request too…
        let single = encode_request(7, &tags_a);
        assert_eq!(parse_requests(&single).unwrap().len(), 1);
        // …while the rev-2 parser refuses batches (a rev-2 worker fed a
        // batch must fail loudly, not run the wrong point).
        assert!(parse_request(&line).is_err());
        // An empty batch is a schema error, not an empty answer.
        assert!(parse_requests("{\"batch\":[]}").is_err());
    }

    /// The framing contract (module docs): a trailing `\r` — a CRLF peer's
    /// leftover after `\n`-splitting — must not poison the document.
    #[test]
    fn frames_tolerate_crlf_terminators() {
        let tags = vec![("load".to_string(), "1.0".to_string())];
        let req = format!("{}\r", encode_request(3, &tags));
        assert_eq!(parse_request(&req).unwrap().index, 3);
        assert_eq!(parse_requests(&req).unwrap()[0].index, 3);
        let hello = format!("{}\r", encode_hello(8));
        assert!(matches!(
            parse_worker_frame(&hello).unwrap(),
            WorkerFrame::Hello { .. }
        ));
        let report = format!("{}\r", encode_report_frame(2, "{\"x\":1}"));
        assert!(matches!(
            parse_worker_frame(&report).unwrap(),
            WorkerFrame::Report { index: 2, .. }
        ));
    }

    #[test]
    fn scenario_reports_round_trip_byte_identically() {
        let report = ScenarioReport {
            horizon_s: 40.0,
            flows: vec![FlowSummary {
                flow: 7,
                generated: 100,
                delivered: 98,
                dropped_buffer: 2,
                dropped_at_edge: 0,
                dropped_inactive: 0,
                mean_delay_s: 0.1 + 0.2, // a classically non-round float
                p999_delay_s: f64::NAN,  // serializes as null
                max_delay_s: 0.06,
                jitter_s: 1.0 / 3.0,
            }],
            links: vec![LinkSummary {
                link: 0,
                utilization: 0.835,
                realtime_utilization: 0.8,
                drops: 2,
                packets_sent: 98,
            }],
            classes: vec![ClassSummary {
                class: "predicted-0".to_string(),
                flows: 1,
                generated: 100,
                delivered: 98,
                dropped_buffer: 2,
                dropped_at_edge: 0,
                mean_delay_s: 0.003,
                max_delay_s: 0.06,
                jitter_s: 0.004,
                quantiles: vec![(0.5, 0.002), (0.999, 0.05)],
                histogram: Some(HistogramSummary {
                    lo_s: 0.0,
                    hi_s: 0.1,
                    counts: vec![90, 8],
                    underflow: 0,
                    overflow: 0,
                }),
            }],
            disciplines: vec![DisciplineSummary {
                discipline: "WFQ\"evil".to_string(),
                links: 1,
                mean_utilization: 0.83,
                mean_realtime_utilization: 0.8,
                drops: 2,
                packets_sent: 98,
            }],
            signaling: Some(SignalingSummary {
                accepted: 3,
                rejected: 1,
                decisions: vec![true, true, false, true],
                pending: 0,
            }),
            telemetry: None,
        };
        let json = report.to_wire_json();
        let decoded = ScenarioReport::from_wire_json(&JsonValue::parse(&json).unwrap()).unwrap();
        // The byte-identity surface: re-encoding the decoded report
        // reproduces the original document exactly (NaN → null → NaN).
        assert_eq!(decoded.to_wire_json(), json);

        // A telemetry-bearing report round-trips the block too.
        let with_telemetry = ScenarioReport {
            telemetry: Some(RunTelemetry {
                events_processed: 1234,
                event_queue_high_water: 17,
                peak_queue_depth: 9,
                admission_accepted: 3,
                admission_rejected: 1,
                flow_table_bytes: 2048,
                reservation_state_bytes: 512,
                sched_pool_grow_events: 7,
                sched_pool_segments_high_water: 5,
                wall_s: 0.25,
                events_per_sec: 4936.0,
            }),
            ..report.clone()
        };
        let json = with_telemetry.to_wire_json();
        let decoded = ScenarioReport::from_wire_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(decoded.to_wire_json(), json);
        assert_eq!(decoded.telemetry, with_telemetry.telemetry);

        // And a signaling-free report keeps its null.
        let bare = ScenarioReport {
            signaling: None,
            classes: Vec::new(),
            ..report
        };
        let json = bare.to_wire_json();
        let decoded = ScenarioReport::from_wire_json(&JsonValue::parse(&json).unwrap()).unwrap();
        assert_eq!(decoded.to_wire_json(), json);
    }

    proptest! {
        /// The point wire codec round-trips arbitrary axis tags — hostile
        /// labels with quotes, newlines, control characters and non-ASCII
        /// included — losslessly.
        #[test]
        fn request_frames_round_trip_hostile_tags(
            tags in proptest::collection::vec((any::<String>(), any::<String>()), 0..6),
            index in 0usize..10_000,
        ) {
            let line = encode_request(index, &tags);
            prop_assert!(!line.contains('\n'), "frames must stay one line: {line:?}");
            let parsed = parse_request(&line).expect("encoded request must parse");
            prop_assert_eq!(parsed.index, index);
            prop_assert_eq!(parsed.tags, tags);
        }

        /// `SweepError` payloads survive the error frame, whatever bytes
        /// the panic message contained.
        #[test]
        fn error_frames_round_trip_hostile_payloads(
            payload in any::<String>(),
            index in 0usize..10_000,
        ) {
            let line = encode_error_frame(index, &payload);
            prop_assert!(!line.contains('\n'));
            match parse_worker_frame(&line).expect("encoded error frame must parse") {
                WorkerFrame::Error { index: i, payload: p } => {
                    prop_assert_eq!(i, index);
                    prop_assert_eq!(p, payload);
                }
                other => panic!("unexpected frame {other:?}"),
            }
        }

        /// Strings of arbitrary content survive the full value codec.
        #[test]
        fn string_values_round_trip(s in any::<String>()) {
            let doc = s.to_wire_json();
            let parsed = JsonValue::parse(&doc).expect("encoded string must parse");
            prop_assert_eq!(String::from_wire_json(&parsed).unwrap(), s);
        }
    }
}
