//! The process-level sweep runner: fan scenario points across supervised
//! worker subprocesses, byte-identical to the in-thread runners.
//!
//! [`DistRunner`] implements the same contract as
//! [`SweepRunner`](super::SweepRunner) — results in point order, each
//! point's slot carrying `Ok(result)` or a structured
//! [`SweepError`](super::SweepError), every completion streamed to the
//! [`SweepObserver`](super::SweepObserver) the moment it happens — but
//! runs each point in a **worker subprocess** speaking the line-framed
//! JSON protocol of [`wire`](super::wire).  The worker is the same
//! experiment binary re-invoked with `--sweep-worker` (see
//! [`worker::serve_worker`](super::worker::serve_worker)); it rebuilds the
//! identical [`ScenarioSet`](super::ScenarioSet) from its own command
//! line, so requests carry only point indices plus the axis tags both
//! sides verify against each other.
//!
//! # Supervision
//!
//! Workers are expendable.  Each of the `N` supervisor threads owns one
//! subprocess at a time and pulls points off a shared work-stealing
//! counter, so a dead worker's **remaining** points are automatically
//! redistributed to whichever workers survive.  Whatever goes wrong while
//! a point is in flight — the worker exits or is killed, emits a
//! malformed frame, overruns the per-point [`deadline`](DistRunner::deadline),
//! or cannot even be spawned — becomes that point's `SweepError` (index,
//! tags, a payload describing the fault); the misbehaving process is
//! killed and reaped, a replacement is spawned for the supervisor's next
//! point, and every sibling point still completes.  A panic *inside* the
//! point's closure is caught by the worker itself and travels back as an
//! error frame, exactly like the in-process runner's `catch_unwind` —
//! the worker keeps serving.
//!
//! Because each fault consumes exactly one point and poisoned points are
//! never re-dispatched, supervision terminates even when every spawn
//! fails: the sweep degrades to one structured error per point rather
//! than hanging or aborting.
//!
//! # Byte identity
//!
//! A scenario point is a pure function of its parameters, so running it
//! in another process changes nothing *if* the result survives the pipe
//! losslessly — which is what [`WireResult`](super::wire::WireResult)
//! guarantees (exact float and integer round-trips).  The
//! `tests/tests/dist_sweep.rs` harness pins this: distributed output is
//! byte-identical to [`SweepRunner::run`](super::SweepRunner::run) for
//! all six experiments, under worker counts 1..=4.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use super::wire::{self, WireResult, WorkerFrame};
use super::worker::WORKER_ID_ENV;
use super::{
    NullObserver, PointResult, PointTelemetry, ScenarioSet, SweepError, SweepObserver, SweepReport,
    SweepRunner,
};

/// How a [`DistRunner`] launches one worker subprocess: program, fixed
/// arguments and extra environment variables.
///
/// The typical command is the experiment binary itself re-invoked with
/// `--sweep-worker` plus whatever configuration flags the parent run
/// received (so both sides build the same sweep):
///
/// ```no_run
/// use ispn_scenario::WorkerCommand;
/// let cmd = WorkerCommand::current_exe().arg("--sweep-worker").arg("--fast");
/// ```
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A command running `program`.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// A command re-invoking the current executable (the standard shape:
    /// every experiment bin doubles as its own worker).
    ///
    /// # Panics
    /// Panics if the current executable's path cannot be determined.
    pub fn current_exe() -> Self {
        WorkerCommand::new(std::env::current_exe().expect("current executable path"))
    }

    /// Append one argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Append several arguments.
    pub fn args<I: IntoIterator<Item = S>, S: Into<String>>(mut self, args: I) -> Self {
        self.args.extend(args.into_iter().map(Into::into));
        self
    }

    /// Set one environment variable for the worker (on top of the parent's
    /// inherited environment).
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// The program path (for diagnostics).
    pub fn program(&self) -> &PathBuf {
        &self.program
    }

    fn spawn(&self, worker_id: usize) -> std::io::Result<Child> {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args)
            .env(WORKER_ID_ENV, worker_id.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in &self.envs {
            cmd.env(k, v);
        }
        cmd.spawn()
    }
}

/// One live worker subprocess: its stdin, and a channel fed by a detached
/// reader thread so responses can be awaited with a timeout.
struct LiveWorker {
    child: Child,
    stdin: Option<ChildStdin>,
    lines: mpsc::Receiver<String>,
}

impl LiveWorker {
    /// Kill the process (ignoring "already dead") and reap it, returning a
    /// human-readable description of how it ended.
    fn kill_and_reap(mut self) -> String {
        let _ = self.child.kill();
        match self.child.wait() {
            Ok(status) => status.to_string(),
            Err(e) => format!("unwaitable ({e})"),
        }
    }

    /// Reap a worker that already reached EOF, describing its exit.
    fn reap(mut self) -> String {
        match self.child.wait() {
            Ok(status) => status.to_string(),
            Err(e) => format!("unwaitable ({e})"),
        }
    }

    /// Close stdin so the serve loop exits, then reap — killing only if
    /// the worker ignores EOF for more than a grace period.
    fn shutdown(mut self) {
        drop(self.stdin.take());
        for _ in 0..40 {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// What awaiting one worker line produced.
enum Await {
    Line(String),
    Eof,
    TimedOut,
}

/// Consecutive spawn/handshake failures after which a supervisor stops
/// respawning and fails its remaining claims with the memoized payload.
const FATAL_SPAWN_FAILURES: u32 = 3;

/// One supervisor thread's state: its current worker subprocess plus the
/// bookkeeping that turns a *deterministic* spawn/handshake failure into a
/// fast structured failure instead of one spawn cycle per remaining point.
struct Supervisor {
    live: Option<LiveWorker>,
    consecutive_spawn_failures: u32,
    fatal: Option<String>,
}

/// Fans the points of a [`ScenarioSet`](super::ScenarioSet) across
/// supervised worker subprocesses.  See the [module docs](self) for the
/// protocol and supervision semantics.
#[derive(Debug, Clone)]
pub struct DistRunner {
    workers: usize,
    command: WorkerCommand,
    deadline: Option<Duration>,
}

impl DistRunner {
    /// Fan points across `workers` subprocesses (at least one) launched
    /// with `command`.
    pub fn new(workers: usize, command: WorkerCommand) -> Self {
        DistRunner {
            workers: workers.max(1),
            command,
            deadline: None,
        }
    }

    /// Set the per-point deadline: a worker that takes longer than this to
    /// answer one request (or to complete the startup handshake) is
    /// declared wedged, killed, and the in-flight point poisoned.  Off by
    /// default — an undistributed sweep has no timeout either, and a
    /// healthy long point must not be mistaken for a hang.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The configured worker-process count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Distributed [`SweepRunner::run`](super::SweepRunner::run): results
    /// in point order, infallible signature.
    ///
    /// # Panics
    /// Panics with the failing point's index, tags and fault description
    /// if any point was poisoned — after the whole sweep finished.  Use
    /// [`try_run`](DistRunner::try_run) (or
    /// [`failed_points`](super::failed_points) on the streaming results)
    /// for checked exits.
    pub fn run<P, R>(&self, set: &ScenarioSet<P>) -> Vec<SweepReport<R>>
    where
        P: Sync,
        R: WireResult + Send,
    {
        self.try_run(set)
            .into_iter()
            .map(SweepReport::expect_ok)
            .collect()
    }

    /// Distributed [`SweepRunner::try_run`](super::SweepRunner::try_run):
    /// every point's slot carries `Ok(result)` or the [`SweepError`]
    /// describing its fault; a dead worker never kills the sweep.
    pub fn try_run<P, R>(&self, set: &ScenarioSet<P>) -> Vec<SweepReport<PointResult<R>>>
    where
        P: Sync,
        R: WireResult + Send,
    {
        self.run_streaming(set, &NullObserver)
    }

    /// The streaming core: run every point in a worker subprocess, handing
    /// each completed point's report to `observer` the moment its frame
    /// arrives (completion order, from the supervising thread), then
    /// return the full checked report list in sweep order.  Each point's
    /// final outcome is reported **exactly once**, even when worker deaths
    /// force redistribution.
    pub fn run_streaming<P, R, O>(
        &self,
        set: &ScenarioSet<P>,
        observer: &O,
    ) -> Vec<SweepReport<PointResult<R>>>
    where
        P: Sync,
        R: WireResult + Send,
        O: SweepObserver<R> + ?Sized,
    {
        let n = set.points().len();
        observer.sweep_started(n);
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        let slots: Vec<Mutex<Option<SweepReport<PointResult<R>>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // Supervisors that have not yet bowed out as fatal: a fatal slot
        // stops claiming points while healthy siblings remain (so it
        // cannot race them to the queue and starve the sweep into
        // errors), and only the last active supervisor drains the
        // remaining queue with its memoized error so every slot is still
        // filled.
        let active = AtomicUsize::new(workers);
        std::thread::scope(|scope| {
            for worker_id in 0..workers {
                let slots = &slots;
                let next = &next;
                let active = &active;
                scope.spawn(move || {
                    let mut sup = Supervisor {
                        live: None,
                        consecutive_spawn_failures: 0,
                        fatal: None,
                    };
                    let mut counted_out = false;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let tags = &set.points()[i].tags;
                        let mut wall_s = None;
                        let result = self.run_point(&mut sup, worker_id, n, i, tags, &mut wall_s);
                        let report = SweepReport {
                            index: i,
                            tags: tags.clone(),
                            result: result.map_err(|payload| SweepError {
                                index: i,
                                tags: tags.clone(),
                                payload,
                            }),
                        };
                        // The worker's out-of-band stats frame, when one
                        // arrived (a worker lost mid-point reports none).
                        if let Some(wall_s) = wall_s {
                            observer.point_telemetry(&PointTelemetry { index: i, wall_s });
                        }
                        observer.point_completed(&report);
                        *slots[i].lock().expect("result slot poisoned") = Some(report);
                        if sup.fatal.is_some() && !counted_out {
                            counted_out = true;
                            if active.fetch_sub(1, Ordering::SeqCst) > 1 {
                                // Healthy siblings remain: leave the rest
                                // of the queue to them.
                                break;
                            }
                            // Last active supervisor: keep claiming so the
                            // remaining slots are filled (with the memoized
                            // error) instead of hanging the collect below.
                        }
                    }
                    if let Some(worker) = sup.live.take() {
                        worker.shutdown();
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every point produced a report (faults are caught per point)")
            })
            .collect()
    }

    /// Run one point on the supervisor's worker, spawning or replacing the
    /// subprocess as needed.  `Err` carries the fault payload; the worker
    /// slot is `None` afterwards iff the worker was lost.
    ///
    /// A worker found dead at *request* time (the write fails before the
    /// point was ever accepted) is replaced and the send retried once:
    /// points are pure, and a point that never started cannot have side
    /// effects, so the retry cannot double-run anything — it only stops an
    /// idle-worker death from poisoning a point that no process touched.
    /// `telemetry` receives the point's out-of-band wall time when the
    /// worker shipped its stats frame before the result (a worker lost
    /// mid-point leaves it `None`).
    fn run_point<R: WireResult>(
        &self,
        sup: &mut Supervisor,
        worker_id: usize,
        total_points: usize,
        index: usize,
        tags: &[(String, String)],
        telemetry: &mut Option<f64>,
    ) -> Result<R, String> {
        let request = wire::encode_request(index, tags);
        for attempt in 0.. {
            if let Some(payload) = &sup.fatal {
                return Err(payload.clone());
            }
            if sup.live.is_none() {
                match self.spawn_worker(worker_id, total_points) {
                    Ok(worker) => {
                        sup.consecutive_spawn_failures = 0;
                        sup.live = Some(worker);
                    }
                    Err(payload) => {
                        // A spawn or handshake failure is usually
                        // deterministic (bad command, configuration skew);
                        // after a few consecutive ones, stop burning a
                        // spawn/handshake cycle per remaining point and
                        // fail the supervisor's future claims with the
                        // memoized payload.
                        sup.consecutive_spawn_failures += 1;
                        if sup.consecutive_spawn_failures >= FATAL_SPAWN_FAILURES {
                            sup.fatal = Some(format!(
                                "{payload} (giving up on this worker slot after \
                                 {FATAL_SPAWN_FAILURES} consecutive spawn/handshake failures)"
                            ));
                        }
                        return Err(payload);
                    }
                }
            }
            let worker = sup.live.as_mut().expect("worker just ensured");

            // Send the request; a write failure means the worker died idle.
            let write = worker
                .stdin
                .as_mut()
                .expect("worker stdin held until shutdown")
                .write_all(format!("{request}\n").as_bytes())
                .and_then(|()| worker.stdin.as_mut().expect("stdin").flush());
            match write {
                Ok(()) => break,
                Err(_) if attempt == 0 => {
                    // Died between points: replace and retry the send.
                    let _ = sup.live.take().expect("worker present").kill_and_reap();
                }
                Err(_) => {
                    let status = sup.live.take().expect("worker present").kill_and_reap();
                    return Err(format!(
                        "worker exited ({status}) before accepting the point"
                    ));
                }
            }
        }
        let live = &mut sup.live;
        // The worker streams an out-of-band telemetry frame before the
        // point's result; consume any number of them (for this index),
        // then a single report or error frame ends the point.
        loop {
            let worker = live.as_mut().expect("request was accepted");
            match self.await_line(worker) {
                Await::TimedOut => {
                    let deadline = self.deadline.expect("timeout implies a deadline");
                    let status = live.take().expect("worker present").kill_and_reap();
                    return Err(format!(
                        "worker exceeded the {:.3}s point deadline (killed: {status})",
                        deadline.as_secs_f64()
                    ));
                }
                Await::Eof => {
                    let status = live.take().expect("worker present").reap();
                    return Err(format!("worker exited ({status}) while running the point"));
                }
                Await::Line(line) => match wire::parse_worker_frame(&line) {
                    Err(e) => {
                        let status = live.take().expect("worker present").kill_and_reap();
                        return Err(format!(
                            "malformed frame from worker ({e}; killed: {status}): {}",
                            truncate_for_log(&line)
                        ));
                    }
                    Ok(WorkerFrame::Telemetry { index: j, wall_s }) if j == index => {
                        *telemetry = Some(wall_s);
                    }
                    Ok(WorkerFrame::Error { index: j, payload }) if j == index => {
                        return Err(payload)
                    }
                    Ok(WorkerFrame::Report { index: j, body }) if j == index => {
                        return match R::from_wire_json(&body) {
                            Ok(result) => Ok(result),
                            Err(e) => {
                                let status = live.take().expect("worker present").kill_and_reap();
                                Err(format!(
                                    "undecodable report body from worker ({e}; killed: {status})"
                                ))
                            }
                        };
                    }
                    Ok(frame) => {
                        let status = live.take().expect("worker present").kill_and_reap();
                        return Err(format!(
                            "protocol violation: worker answered {frame:?} while point {index} \
                             was in flight (killed: {status})"
                        ));
                    }
                },
            }
        }
    }

    /// Spawn one worker and complete the hello handshake.
    fn spawn_worker(&self, worker_id: usize, total_points: usize) -> Result<LiveWorker, String> {
        let mut child = self
            .command
            .spawn(worker_id)
            .map_err(|e| format!("could not spawn worker {:?}: {e}", self.command.program))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        let (tx, rx) = mpsc::channel();
        // Detached reader: forwards worker lines until EOF.  It holds only
        // the pipe and the sender, so it dies with the worker.
        std::thread::spawn(move || {
            let mut reader = BufReader::new(stdout);
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        let trimmed = line.trim_end_matches(['\n', '\r']).to_string();
                        if tx.send(trimmed).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        let mut worker = LiveWorker {
            child,
            stdin: Some(stdin),
            lines: rx,
        };
        match self.await_line(&mut worker) {
            Await::TimedOut => {
                let status = worker.kill_and_reap();
                Err(format!(
                    "worker did not complete the handshake within the deadline (killed: {status})"
                ))
            }
            Await::Eof => {
                let status = worker.reap();
                Err(format!("worker exited ({status}) before the handshake"))
            }
            Await::Line(line) => match wire::parse_worker_frame(&line) {
                Ok(WorkerFrame::Hello { protocol, points })
                    if protocol == wire::PROTOCOL_VERSION && points == total_points =>
                {
                    Ok(worker)
                }
                Ok(WorkerFrame::Hello { protocol, points }) => {
                    let status = worker.kill_and_reap();
                    Err(format!(
                        "worker handshake mismatch: worker speaks protocol {protocol} with \
                         {points} points, parent expects protocol {} with {total_points} points \
                         (parent/worker configuration mismatch; killed: {status})",
                        wire::PROTOCOL_VERSION
                    ))
                }
                Ok(frame) => {
                    let _ = worker.kill_and_reap();
                    Err(format!("worker sent {frame:?} instead of a hello frame"))
                }
                Err(e) => {
                    let _ = worker.kill_and_reap();
                    Err(format!(
                        "malformed hello frame ({e}): {}",
                        truncate_for_log(&line)
                    ))
                }
            },
        }
    }

    /// Wait for the worker's next line, honoring the configured deadline.
    fn await_line(&self, worker: &mut LiveWorker) -> Await {
        match self.deadline {
            Some(deadline) => match worker.lines.recv_timeout(deadline) {
                Ok(line) => Await::Line(line),
                Err(mpsc::RecvTimeoutError::Timeout) => Await::TimedOut,
                Err(mpsc::RecvTimeoutError::Disconnected) => Await::Eof,
            },
            None => match worker.lines.recv() {
                Ok(line) => Await::Line(line),
                Err(_) => Await::Eof,
            },
        }
    }
}

/// Clip a hostile line for inclusion in an error payload.
fn truncate_for_log(line: &str) -> String {
    const MAX: usize = 120;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let mut end = MAX;
        while !line.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}… ({} bytes)", &line[..end], line.len())
    }
}

/// One sweep-execution strategy: in-process threads or worker
/// subprocesses.  Experiment entry points take a `SweepExec` so their
/// callers — bins with a `--workers N` flag, tests, benches — choose the
/// execution level without the experiment code caring.
#[derive(Debug, Clone)]
pub enum SweepExec {
    /// Fan points across OS threads in this process.
    InProcess(SweepRunner),
    /// Fan points across supervised worker subprocesses.
    Distributed(DistRunner),
}

impl SweepExec {
    /// A human-readable description for progress banners
    /// (`"4 threads"` / `"2 worker processes"`).
    pub fn description(&self) -> String {
        match self {
            SweepExec::InProcess(runner) => format!("{} threads", runner.threads()),
            SweepExec::Distributed(runner) => {
                format!("{} worker processes", runner.workers())
            }
        }
    }

    /// Run the sweep, streaming completions to `observer`; results come
    /// back checked, in point order, byte-identical across execution
    /// strategies.  In the distributed case `run_point` is **not called in
    /// this process** — the workers run their own copy of it — but taking
    /// it here keeps the two strategies interchangeable at every call
    /// site.
    pub fn run_streaming<P, R, F, O>(
        &self,
        set: &ScenarioSet<P>,
        run_point: F,
        observer: &O,
    ) -> Vec<SweepReport<PointResult<R>>>
    where
        P: Sync,
        R: WireResult + Send,
        F: Fn(&P) -> R + Sync,
        O: SweepObserver<R> + ?Sized,
    {
        match self {
            SweepExec::InProcess(runner) => runner.run_streaming(set, run_point, observer),
            SweepExec::Distributed(runner) => runner.run_streaming(set, observer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_counts_clamp_to_one() {
        let cmd = WorkerCommand::new("/bin/false");
        assert_eq!(DistRunner::new(0, cmd.clone()).workers(), 1);
        assert_eq!(DistRunner::new(5, cmd).workers(), 5);
    }

    #[test]
    fn exec_descriptions_name_the_level() {
        let threads = SweepExec::InProcess(SweepRunner::parallel(4));
        assert_eq!(threads.description(), "4 threads");
        let procs = SweepExec::Distributed(DistRunner::new(2, WorkerCommand::new("w")));
        assert_eq!(procs.description(), "2 worker processes");
    }

    #[test]
    fn hostile_lines_are_clipped_on_char_boundaries() {
        let long = "é".repeat(200);
        let clipped = truncate_for_log(&long);
        assert!(clipped.contains("… (400 bytes)"));
        assert!(clipped.len() < long.len());
        assert_eq!(truncate_for_log("short"), "short");
    }

    /// An unspawnable worker command degrades to one structured error per
    /// point — never a hang, never an abort.
    #[test]
    fn unspawnable_workers_poison_every_point_structurally() {
        let set = ScenarioSet::over("i", [1usize, 2, 3]);
        let runner = DistRunner::new(2, WorkerCommand::new("/nonexistent/ispn-worker"));
        let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
        assert_eq!(reports.len(), 3);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.index, i);
            let err = report.result.as_ref().expect_err("spawn must fail");
            assert_eq!(err.index, i);
            assert_eq!(err.tags, set.points()[i].tags);
            assert!(err.payload.contains("could not spawn worker"), "{err}");
        }
        assert_eq!(super::super::failed_points(&reports), 3);
    }
}
