//! The process-level sweep runner: fan scenario points across supervised
//! workers — subprocesses or TCP-connected hosts — byte-identical to the
//! in-thread runners.
//!
//! [`DistRunner`] implements the same contract as
//! [`SweepRunner`](super::SweepRunner) — results in point order, each
//! point's slot carrying `Ok(result)` or a structured
//! [`SweepError`](super::SweepError), every completion streamed to the
//! [`SweepObserver`](super::SweepObserver) the moment it happens — but
//! runs each point in a **worker process** speaking the line-framed
//! JSON protocol of [`wire`](super::wire).  The worker is the same
//! experiment binary re-invoked with `--sweep-worker` (see
//! [`worker::serve_worker`](super::worker::serve_worker)) or listening on
//! a socket behind `--serve ADDR` (see [`net`](super::net)); it rebuilds
//! the identical [`ScenarioSet`](super::ScenarioSet) from its own command
//! line, so requests carry only point indices plus the axis tags both
//! sides verify against each other.
//!
//! # Transports
//!
//! Each supervisor slot drives its worker through the [`WorkerTransport`]
//! seam: send a request line, await a frame line (with an optional
//! deadline), tear the worker down, describe how it ended.  Two
//! transports exist — the subprocess pipes this module owns, and the TCP
//! client in [`net`](super::net) — and supervision is identical across
//! them: a lost connection is handled exactly like a dead subprocess
//! (poison the in-flight point, reconnect for the slot's next claim), and
//! a host that keeps refusing connections trips the same
//! [`FATAL_SPAWN_FAILURES`] 3-strike rule as an unspawnable command.
//!
//! # Supervision
//!
//! Workers are expendable.  Each of the `N` supervisor threads owns one
//! worker at a time and pulls claims off a shared work-stealing
//! counter, so a dead worker's **remaining** points are automatically
//! redistributed to whichever workers survive.  Whatever goes wrong while
//! a point is in flight — the worker exits or is killed, the connection
//! drops, it emits a malformed frame, overruns the per-point
//! [`deadline`](DistRunner::deadline), or cannot even be spawned —
//! becomes that point's `SweepError` (index, tags, a payload describing
//! the fault); the misbehaving worker is torn down, a replacement is
//! spawned (or the host reconnected) for the supervisor's next point, and
//! every sibling point still completes.  A panic *inside* the point's
//! closure is caught by the worker itself and travels back as an error
//! frame, exactly like the in-process runner's `catch_unwind` — the
//! worker keeps serving.
//!
//! The hello handshake is **always** bounded by
//! [`hello_deadline`](DistRunner::hello_deadline) (default
//! [`DEFAULT_HELLO_DEADLINE`]), even when no per-point deadline is set: a
//! worker that hangs before saying hello — under TCP, a half-open accept —
//! would otherwise stall its supervisor slot forever, and unlike a long
//! scenario point there is no legitimate reason for a handshake to take
//! minutes.
//!
//! Because each fault consumes exactly one point and poisoned points are
//! never re-dispatched, supervision terminates even when every spawn
//! fails: the sweep degrades to one structured error per point rather
//! than hanging or aborting.
//!
//! # Batching
//!
//! [`batch`](DistRunner::batch) makes each claim a contiguous chunk of
//! points dispatched as one revision-3 `{"batch":[…]}` request,
//! amortizing per-point round-trips on high-latency links.  The dialect
//! is negotiated per worker from its hello: a revision-2 worker is fed
//! single-point requests regardless of the batch setting.  Faults still
//! poison only the in-flight point — the unanswered remainder of a claim
//! is re-dispatched to the slot's replacement worker, which cannot
//! double-run anything because an unanswered point never completed
//! anywhere.
//!
//! # Byte identity
//!
//! A scenario point is a pure function of its parameters, so running it
//! in another process changes nothing *if* the result survives the pipe
//! losslessly — which is what [`WireResult`](super::wire::WireResult)
//! guarantees (exact float and integer round-trips).  The
//! `tests/tests/dist_sweep.rs` harness pins this: distributed output is
//! byte-identical to [`SweepRunner::run`](super::SweepRunner::run) for
//! all six experiments, under worker counts 1..=4, over subprocess pipes
//! and loopback TCP alike.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use super::net::{self, HostSpec};
use super::wire::{self, WireResult, WorkerFrame};
use super::worker::WORKER_ID_ENV;
use super::{
    NullObserver, PointResult, PointTelemetry, ScenarioSet, SweepError, SweepObserver, SweepReport,
    SweepRunner,
};

/// How a [`DistRunner`] launches one worker subprocess: program, fixed
/// arguments and extra environment variables.
///
/// The typical command is the experiment binary itself re-invoked with
/// `--sweep-worker` plus whatever configuration flags the parent run
/// received (so both sides build the same sweep):
///
/// ```no_run
/// use ispn_scenario::WorkerCommand;
/// let cmd = WorkerCommand::current_exe().arg("--sweep-worker").arg("--fast");
/// ```
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
}

impl WorkerCommand {
    /// A command running `program`.
    pub fn new(program: impl Into<PathBuf>) -> Self {
        WorkerCommand {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
        }
    }

    /// A command re-invoking the current executable (the standard shape:
    /// every experiment bin doubles as its own worker).
    ///
    /// # Panics
    /// Panics if the current executable's path cannot be determined.
    pub fn current_exe() -> Self {
        WorkerCommand::new(std::env::current_exe().expect("current executable path"))
    }

    /// Append one argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Append several arguments.
    pub fn args<I: IntoIterator<Item = S>, S: Into<String>>(mut self, args: I) -> Self {
        self.args.extend(args.into_iter().map(Into::into));
        self
    }

    /// Set one environment variable for the worker (on top of the parent's
    /// inherited environment).
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// The program path (for diagnostics).
    pub fn program(&self) -> &PathBuf {
        &self.program
    }

    fn spawn(&self, worker_id: usize) -> std::io::Result<Child> {
        let mut cmd = Command::new(&self.program);
        cmd.args(&self.args)
            .env(WORKER_ID_ENV, worker_id.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        for (k, v) in &self.envs {
            cmd.env(k, v);
        }
        cmd.spawn()
    }
}

/// What awaiting one worker frame line produced.
#[derive(Debug)]
pub enum Await {
    /// A frame line arrived.
    Line(String),
    /// The stream ended: the process exited / the peer closed the
    /// connection.
    Eof,
    /// The deadline elapsed without a line.
    TimedOut,
}

/// The transport seam under one supervisor slot: whatever carries the
/// line-framed worker protocol — a spawned subprocess's stdin/stdout
/// pipes here, a connected TCP socket in
/// [`net::SocketTransport`](super::net) — presents the same operations,
/// so [`DistRunner`] supervision (respawn/reconnect, teardown, deadline
/// awaits, per-point poisoning) is transport-agnostic.
pub trait WorkerTransport: Send {
    /// Send one request line (the implementation appends the terminator)
    /// and flush it to the worker.
    fn send_line(&mut self, line: &str) -> std::io::Result<()>;

    /// Await the worker's next frame line, honoring `deadline` when set.
    fn recv_line(&mut self, deadline: Option<Duration>) -> Await;

    /// Forcibly tear the worker down — kill the process, drop the
    /// connection — returning a human-readable description of how it
    /// ended (for fault payloads).
    fn terminate(&mut self) -> String;

    /// Describe a worker whose stream already reached EOF (reap the
    /// process / name the closed connection) without escalating further.
    fn finish(&mut self) -> String;

    /// Graceful end-of-sweep shutdown: close the request stream so the
    /// serve loop exits cleanly, escalating to a kill only if the worker
    /// ignores EOF past a grace period.
    fn shutdown(&mut self);
}

/// Await a line from a reader-thread channel, honoring an optional
/// deadline — the shared receive path of both transports (each feeds a
/// detached reader thread into an [`mpsc`] channel so awaits can time
/// out).
pub(crate) fn recv_channel_line(
    lines: &mpsc::Receiver<String>,
    deadline: Option<Duration>,
) -> Await {
    match deadline {
        Some(deadline) => match lines.recv_timeout(deadline) {
            Ok(line) => Await::Line(line),
            Err(mpsc::RecvTimeoutError::Timeout) => Await::TimedOut,
            Err(mpsc::RecvTimeoutError::Disconnected) => Await::Eof,
        },
        None => match lines.recv() {
            Ok(line) => Await::Line(line),
            Err(_) => Await::Eof,
        },
    }
}

/// Spawn the detached reader thread both transports use: forwards
/// `\n`/`\r\n`-stripped lines from `reader` into a channel until EOF.  It
/// holds only the stream and the sender, so it dies with the worker.
pub(crate) fn spawn_line_reader<R: std::io::Read + Send + 'static>(
    reader: R,
) -> mpsc::Receiver<String> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(reader);
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    let trimmed = line.trim_end_matches(['\n', '\r']).to_string();
                    if tx.send(trimmed).is_err() {
                        break;
                    }
                }
            }
        }
    });
    rx
}

/// The subprocess transport: a piped child, its stdin, and the reader
/// channel over its stdout.
struct ChildTransport {
    child: Child,
    stdin: Option<ChildStdin>,
    lines: mpsc::Receiver<String>,
}

impl ChildTransport {
    fn spawn(command: &WorkerCommand, worker_id: usize) -> Result<ChildTransport, String> {
        let mut child = command
            .spawn(worker_id)
            .map_err(|e| format!("could not spawn worker {:?}: {e}", command.program))?;
        let stdin = child.stdin.take().expect("stdin was piped");
        let stdout = child.stdout.take().expect("stdout was piped");
        Ok(ChildTransport {
            child,
            stdin: Some(stdin),
            lines: spawn_line_reader(stdout),
        })
    }
}

impl WorkerTransport for ChildTransport {
    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        let stdin = self
            .stdin
            .as_mut()
            .expect("worker stdin held until shutdown");
        stdin.write_all(line.as_bytes())?;
        stdin.write_all(b"\n")?;
        stdin.flush()
    }

    fn recv_line(&mut self, deadline: Option<Duration>) -> Await {
        recv_channel_line(&self.lines, deadline)
    }

    fn terminate(&mut self) -> String {
        let _ = self.child.kill();
        match self.child.wait() {
            Ok(status) => status.to_string(),
            Err(e) => format!("unwaitable ({e})"),
        }
    }

    fn finish(&mut self) -> String {
        match self.child.wait() {
            Ok(status) => status.to_string(),
            Err(e) => format!("unwaitable ({e})"),
        }
    }

    fn shutdown(&mut self) {
        drop(self.stdin.take());
        for _ in 0..40 {
            match self.child.try_wait() {
                Ok(Some(_)) => return,
                Ok(None) => std::thread::sleep(Duration::from_millis(50)),
                Err(_) => break,
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// One live worker behind a supervisor slot: its transport plus the
/// protocol revision it announced in the hello (which gates batching).
struct LiveWorker {
    transport: Box<dyn WorkerTransport>,
    protocol: u64,
}

/// Consecutive spawn/connect/handshake failures after which a supervisor
/// stops retrying and fails its remaining claims with the memoized
/// payload.
const FATAL_SPAWN_FAILURES: u32 = 3;

/// The always-on bound on the hello handshake (see
/// [`DistRunner::hello_deadline`]).
pub const DEFAULT_HELLO_DEADLINE: Duration = Duration::from_secs(30);

/// One supervisor thread's state: its current worker plus the bookkeeping
/// that turns a *deterministic* spawn/handshake failure into a fast
/// structured failure instead of one spawn cycle per remaining point.
struct Supervisor {
    live: Option<LiveWorker>,
    consecutive_spawn_failures: u32,
    fatal: Option<String>,
}

/// How a [`DistRunner`] obtains workers: spawn subprocesses, or connect
/// to listening hosts (one precomputed address per supervisor slot).
#[derive(Debug, Clone)]
enum Launch {
    Spawn(WorkerCommand),
    Connect(Vec<String>),
}

/// Fans the points of a [`ScenarioSet`](super::ScenarioSet) across
/// supervised workers — subprocesses ([`DistRunner::new`]) or TCP hosts
/// ([`DistRunner::over_hosts`]).  See the [module docs](self) for the
/// protocol and supervision semantics.
#[derive(Debug, Clone)]
pub struct DistRunner {
    workers: usize,
    launch: Launch,
    deadline: Option<Duration>,
    hello_deadline: Duration,
    batch: usize,
}

impl DistRunner {
    /// Fan points across `workers` subprocesses (at least one) launched
    /// with `command`.
    pub fn new(workers: usize, command: WorkerCommand) -> Self {
        DistRunner {
            workers: workers.max(1),
            launch: Launch::Spawn(command),
            deadline: None,
            hello_deadline: DEFAULT_HELLO_DEADLINE,
            batch: 1,
        }
    }

    /// Fan points across TCP workers listening on `hosts` (each started
    /// with `--serve ADDR`, see [`net::serve_listener`](super::net::serve_listener)).
    /// One supervisor slot is opened per connection the host list allows
    /// — `host:port=4` contributes four slots — and slots are spread
    /// round-robin across hosts.  Connection loss is handled exactly like
    /// a dead subprocess: the in-flight point is poisoned and the slot
    /// reconnects to the same host for its next claim.
    ///
    /// # Panics
    /// Panics on an empty host list — there is nowhere to run the sweep.
    pub fn over_hosts(hosts: &[HostSpec]) -> Self {
        let slots = net::slot_addrs(hosts);
        assert!(!slots.is_empty(), "host list must name at least one host");
        DistRunner {
            workers: slots.len(),
            launch: Launch::Connect(slots),
            deadline: None,
            hello_deadline: DEFAULT_HELLO_DEADLINE,
            batch: 1,
        }
    }

    /// Set the per-point deadline: a worker that takes longer than this to
    /// answer one request is declared wedged, torn down, and the in-flight
    /// point poisoned.  Off by default — an undistributed sweep has no
    /// timeout either, and a healthy long point must not be mistaken for a
    /// hang.  (The hello handshake is bounded separately and always: see
    /// [`hello_deadline`](DistRunner::hello_deadline).)
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the hello-handshake deadline (default
    /// [`DEFAULT_HELLO_DEADLINE`]).  Unlike the per-point
    /// [`deadline`](DistRunner::deadline) this is never off: a worker that
    /// hangs *before* hello — a half-open TCP accept, a wedged startup —
    /// would otherwise stall its supervisor slot forever, and a handshake
    /// has no legitimate reason to be slow.  When a per-point deadline is
    /// also set, the handshake honors the tighter of the two.
    pub fn hello_deadline(mut self, deadline: Duration) -> Self {
        self.hello_deadline = deadline;
        self
    }

    /// Dispatch claims as batches of up to `points` requests per wire
    /// round-trip (default 1).  Batching amortizes request/response
    /// latency on real networks; it needs a protocol-revision-3 worker and
    /// silently degrades to single-point requests for older workers.
    /// Larger batches also coarsen work stealing — a claim is
    /// redistributed only as a whole — so keep the batch small relative to
    /// `points / workers`.
    pub fn batch(mut self, points: usize) -> Self {
        self.batch = points.max(1);
        self
    }

    /// The configured worker count (subprocesses or socket connections).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured batch size (points per dispatched claim).
    pub fn batch_size(&self) -> usize {
        self.batch
    }

    /// A human-readable description of the execution level for progress
    /// banners.
    pub fn description(&self) -> String {
        match &self.launch {
            Launch::Spawn(_) => format!("{} worker processes", self.workers),
            Launch::Connect(slots) => {
                let hosts: std::collections::BTreeSet<&str> =
                    slots.iter().map(String::as_str).collect();
                format!(
                    "{} socket workers across {} host{}",
                    self.workers,
                    hosts.len(),
                    if hosts.len() == 1 { "" } else { "s" }
                )
            }
        }
    }

    /// Distributed [`SweepRunner::run`](super::SweepRunner::run): results
    /// in point order, infallible signature.
    ///
    /// # Panics
    /// Panics with the failing point's index, tags and fault description
    /// if any point was poisoned — after the whole sweep finished.  Use
    /// [`try_run`](DistRunner::try_run) (or
    /// [`failed_points`](super::failed_points) on the streaming results)
    /// for checked exits.
    pub fn run<P, R>(&self, set: &ScenarioSet<P>) -> Vec<SweepReport<R>>
    where
        P: Sync,
        R: WireResult + Send,
    {
        self.try_run(set)
            .into_iter()
            .map(SweepReport::expect_ok)
            .collect()
    }

    /// Distributed [`SweepRunner::try_run`](super::SweepRunner::try_run):
    /// every point's slot carries `Ok(result)` or the [`SweepError`]
    /// describing its fault; a dead worker never kills the sweep.
    pub fn try_run<P, R>(&self, set: &ScenarioSet<P>) -> Vec<SweepReport<PointResult<R>>>
    where
        P: Sync,
        R: WireResult + Send,
    {
        self.run_streaming(set, &NullObserver)
    }

    /// The streaming core: run every point on a worker, handing each
    /// completed point's report to `observer` the moment its frame
    /// arrives (completion order, from the supervising thread), then
    /// return the full checked report list in sweep order.  Each point's
    /// final outcome is reported **exactly once**, even when worker deaths
    /// force redistribution.
    pub fn run_streaming<P, R, O>(
        &self,
        set: &ScenarioSet<P>,
        observer: &O,
    ) -> Vec<SweepReport<PointResult<R>>>
    where
        P: Sync,
        R: WireResult + Send,
        O: SweepObserver<R> + ?Sized,
    {
        let n = set.points().len();
        observer.sweep_started(n);
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        let slots: Vec<Mutex<Option<SweepReport<PointResult<R>>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // Supervisors that have not yet bowed out as fatal: a fatal slot
        // stops claiming points while healthy siblings remain (so it
        // cannot race them to the queue and starve the sweep into
        // errors), and only the last active supervisor drains the
        // remaining queue with its memoized error so every slot is still
        // filled.
        let active = AtomicUsize::new(workers);
        std::thread::scope(|scope| {
            for worker_id in 0..workers {
                let slots = &slots;
                let next = &next;
                let active = &active;
                scope.spawn(move || {
                    let mut sup = Supervisor {
                        live: None,
                        consecutive_spawn_failures: 0,
                        fatal: None,
                    };
                    let mut counted_out = false;
                    loop {
                        // Claim a contiguous chunk (the batch size; 1 by
                        // default, which preserves per-point stealing).
                        let start = next.fetch_add(self.batch, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let mut claim: VecDeque<usize> =
                            (start..(start + self.batch).min(n)).collect();
                        // The whole claim is drained before checking for a
                        // fatal slot: a claimed point must always get a
                        // report, and the fatal fast path fills the
                        // remainder with the memoized error.
                        self.run_claim(&mut sup, worker_id, set, &mut claim, observer, slots);
                        if sup.fatal.is_some() && !counted_out {
                            counted_out = true;
                            if active.fetch_sub(1, Ordering::SeqCst) > 1 {
                                // Healthy siblings remain: leave the rest
                                // of the queue to them.
                                break;
                            }
                            // Last active supervisor: keep claiming so the
                            // remaining slots are filled (with the memoized
                            // error) instead of hanging the collect below.
                        }
                    }
                    if let Some(mut worker) = sup.live.take() {
                        worker.transport.shutdown();
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every point produced a report (faults are caught per point)")
            })
            .collect()
    }

    /// Run every point of one claim on the supervisor's worker, filling
    /// the result slots and streaming completions as they land.  The
    /// claim is dispatched as a single batched request when the worker's
    /// protocol allows it; a fault poisons only the in-flight point, and
    /// the unanswered remainder is re-dispatched to the slot's
    /// replacement worker (points are pure and an unanswered point never
    /// ran to completion anywhere, so the retry cannot double-run work).
    fn run_claim<P, R, O>(
        &self,
        sup: &mut Supervisor,
        worker_id: usize,
        set: &ScenarioSet<P>,
        claim: &mut VecDeque<usize>,
        observer: &O,
        slots: &[Mutex<Option<SweepReport<PointResult<R>>>>],
    ) where
        P: Sync,
        R: WireResult + Send,
        O: SweepObserver<R> + ?Sized,
    {
        let total = set.points().len();
        // Claim points already covered by requests sent to the live
        // worker (0 = the front point still needs dispatching).
        let mut dispatched = 0usize;
        while let Some(&index) = claim.front() {
            let tags = &set.points()[index].tags;
            let mut wall_s = None;
            // ispn-lint: allow(wall-clock) -- round-trip-overhead telemetry
            // (rtt_s); aggregated behind --telemetry, never in report bytes.
            #[allow(clippy::disallowed_methods)]
            let started = Instant::now();
            let result: Result<R, String> = if let Some(payload) = sup.fatal.clone() {
                Err(payload)
            } else {
                let covered = if dispatched == 0 {
                    self.dispatch(sup, worker_id, total, set, claim)
                } else {
                    Ok(dispatched)
                };
                covered.and_then(|covered| {
                    dispatched = covered;
                    self.await_point(sup, index, &mut wall_s)
                })
            };
            // A surviving worker consumed exactly one dispatched request;
            // a lost one takes every undelivered answer with it.
            dispatched = if sup.live.is_some() {
                dispatched.saturating_sub(1)
            } else {
                0
            };
            let rtt_s = started.elapsed().as_secs_f64();
            claim.pop_front();
            let report = SweepReport {
                index,
                tags: tags.clone(),
                result: result.map_err(|payload| SweepError {
                    index,
                    tags: tags.clone(),
                    payload,
                }),
            };
            // The worker's out-of-band stats frame, when one arrived (a
            // worker lost mid-point reports none).  The round-trip time is
            // measured on this side of the wire, so the overhead over the
            // worker's own wall time is visible to telemetry consumers.
            if let Some(wall_s) = wall_s {
                observer.point_telemetry(&PointTelemetry {
                    index,
                    wall_s,
                    rtt_s: Some(rtt_s),
                });
            }
            observer.point_completed(&report);
            *slots[index].lock().expect("result slot poisoned") = Some(report);
        }
    }

    /// Ensure the supervisor has a live, handshaken worker, launching one
    /// if needed and applying the 3-strike fatal rule to deterministic
    /// launch failures.
    fn ensure_worker(
        &self,
        sup: &mut Supervisor,
        worker_id: usize,
        total_points: usize,
    ) -> Result<(), String> {
        if sup.live.is_some() {
            return Ok(());
        }
        match self.launch_worker(worker_id, total_points) {
            Ok(worker) => {
                sup.consecutive_spawn_failures = 0;
                sup.live = Some(worker);
                Ok(())
            }
            Err(payload) => {
                // A spawn, connect or handshake failure is usually
                // deterministic (bad command, dead host, configuration
                // skew); after a few consecutive ones, stop burning a
                // launch cycle per remaining point and fail the
                // supervisor's future claims with the memoized payload.
                sup.consecutive_spawn_failures += 1;
                if sup.consecutive_spawn_failures >= FATAL_SPAWN_FAILURES {
                    sup.fatal = Some(format!(
                        "{payload} (giving up on this worker slot after \
                         {FATAL_SPAWN_FAILURES} consecutive spawn/handshake failures)"
                    ));
                }
                Err(payload)
            }
        }
    }

    /// Send the claim's request(s) to a live worker, launching or
    /// replacing it as needed.  Returns how many claim points the sent
    /// request covers.
    ///
    /// A worker found dead at *request* time (the write fails before any
    /// point was accepted) is replaced and the send retried once: points
    /// are pure, and a point that never started cannot have side effects,
    /// so the retry cannot double-run anything — it only stops an
    /// idle-worker death from poisoning a point that no process touched.
    fn dispatch<P>(
        &self,
        sup: &mut Supervisor,
        worker_id: usize,
        total_points: usize,
        set: &ScenarioSet<P>,
        claim: &VecDeque<usize>,
    ) -> Result<usize, String> {
        for attempt in 0.. {
            if let Some(payload) = &sup.fatal {
                return Err(payload.clone());
            }
            self.ensure_worker(sup, worker_id, total_points)?;
            let worker = sup.live.as_mut().expect("worker just ensured");
            // Batched dispatch needs a revision-3 worker; older workers
            // get one point per request, exactly as before.
            let (request, covered) =
                if worker.protocol >= wire::BATCH_PROTOCOL_VERSION && claim.len() > 1 {
                    let items: Vec<(usize, &[(String, String)])> = claim
                        .iter()
                        .map(|&i| (i, set.points()[i].tags.as_slice()))
                        .collect();
                    (wire::encode_batch_request(&items), claim.len())
                } else {
                    let &index = claim.front().expect("claim is non-empty");
                    (wire::encode_request(index, &set.points()[index].tags), 1)
                };
            match worker.transport.send_line(&request) {
                Ok(()) => return Ok(covered),
                Err(_) if attempt == 0 => {
                    // Died between points: replace and retry the send.
                    let mut worker = sup.live.take().expect("worker present");
                    let _ = worker.transport.terminate();
                }
                Err(_) => {
                    let mut worker = sup.live.take().expect("worker present");
                    let status = worker.transport.terminate();
                    return Err(format!(
                        "worker exited ({status}) before accepting the point"
                    ));
                }
            }
        }
        unreachable!("the dispatch loop returns")
    }

    /// Await the frames that end `index`: any number of telemetry frames
    /// for it, then a single report or error frame.  `Err` carries the
    /// fault payload; the worker slot is `None` afterwards iff the worker
    /// was lost.
    fn await_point<R: WireResult>(
        &self,
        sup: &mut Supervisor,
        index: usize,
        telemetry: &mut Option<f64>,
    ) -> Result<R, String> {
        let live = &mut sup.live;
        loop {
            let worker = live.as_mut().expect("request was accepted");
            match worker.transport.recv_line(self.deadline) {
                Await::TimedOut => {
                    let deadline = self.deadline.expect("timeout implies a deadline");
                    let status = live.take().expect("worker present").transport.terminate();
                    return Err(format!(
                        // ispn-lint: allow(float-wire) -- human-facing poison payload, not a round-tripped value
                        "worker exceeded the {:.3}s point deadline (killed: {status})",
                        deadline.as_secs_f64()
                    ));
                }
                Await::Eof => {
                    let status = live.take().expect("worker present").transport.finish();
                    return Err(format!("worker exited ({status}) while running the point"));
                }
                Await::Line(line) => match wire::parse_worker_frame(&line) {
                    Err(e) => {
                        let status = live.take().expect("worker present").transport.terminate();
                        return Err(format!(
                            "malformed frame from worker ({e}; killed: {status}): {}",
                            truncate_for_log(&line)
                        ));
                    }
                    Ok(WorkerFrame::Telemetry { index: j, wall_s }) if j == index => {
                        *telemetry = Some(wall_s);
                    }
                    Ok(WorkerFrame::Error { index: j, payload }) if j == index => {
                        return Err(payload)
                    }
                    Ok(WorkerFrame::Report { index: j, body }) if j == index => {
                        return match R::from_wire_json(&body) {
                            Ok(result) => Ok(result),
                            Err(e) => {
                                let status =
                                    live.take().expect("worker present").transport.terminate();
                                Err(format!(
                                    "undecodable report body from worker ({e}; killed: {status})"
                                ))
                            }
                        };
                    }
                    Ok(frame) => {
                        let status = live.take().expect("worker present").transport.terminate();
                        return Err(format!(
                            "protocol violation: worker answered {frame:?} while point {index} \
                             was in flight (killed: {status})"
                        ));
                    }
                },
            }
        }
    }

    /// Launch one worker over the configured transport and complete the
    /// hello handshake — always bounded by the handshake deadline.
    fn launch_worker(&self, worker_id: usize, total_points: usize) -> Result<LiveWorker, String> {
        let hello_wait = self.hello_wait();
        let mut transport: Box<dyn WorkerTransport> = match &self.launch {
            Launch::Spawn(command) => Box::new(ChildTransport::spawn(command, worker_id)?),
            Launch::Connect(slots) => {
                let addr = &slots[worker_id % slots.len()];
                Box::new(net::SocketTransport::connect(addr, hello_wait)?)
            }
        };
        match transport.recv_line(Some(hello_wait)) {
            Await::TimedOut => {
                let status = transport.terminate();
                Err(format!(
                    // ispn-lint: allow(float-wire) -- human-facing handshake failure message, not a round-tripped value
                    "worker did not complete the handshake within {:.3}s (killed: {status})",
                    hello_wait.as_secs_f64()
                ))
            }
            Await::Eof => {
                let status = transport.finish();
                Err(format!("worker exited ({status}) before the handshake"))
            }
            Await::Line(line) => match wire::parse_worker_frame(&line) {
                Ok(WorkerFrame::Hello { protocol, points }) => {
                    match check_hello(protocol, points, total_points) {
                        Ok(()) => Ok(LiveWorker {
                            transport,
                            protocol,
                        }),
                        Err(mismatch) => {
                            let status = transport.terminate();
                            Err(format!("{mismatch}; killed: {status}"))
                        }
                    }
                }
                Ok(frame) => {
                    let _ = transport.terminate();
                    Err(format!("worker sent {frame:?} instead of a hello frame"))
                }
                Err(e) => {
                    let _ = transport.terminate();
                    Err(format!(
                        "malformed hello frame ({e}): {}",
                        truncate_for_log(&line)
                    ))
                }
            },
        }
    }

    /// The handshake wait: the always-on hello deadline, tightened by the
    /// per-point deadline when one is set (a sweep that bounds every point
    /// to 2s should not wait 30s for a hello).
    fn hello_wait(&self) -> Duration {
        match self.deadline {
            Some(deadline) => deadline.min(self.hello_deadline),
            None => self.hello_deadline,
        }
    }
}

/// Validate a hello frame against the parent's expectations: a protocol
/// revision in the parent's supported range and a matching point count.
fn check_hello(protocol: u64, points: usize, total_points: usize) -> Result<(), String> {
    let supported = wire::MIN_PROTOCOL_VERSION..=wire::PROTOCOL_VERSION;
    if supported.contains(&protocol) && points == total_points {
        Ok(())
    } else {
        Err(format!(
            "worker handshake mismatch: worker speaks protocol {protocol} with \
             {points} points, parent expects protocol {}..={} with {total_points} points \
             (parent/worker configuration mismatch)",
            wire::MIN_PROTOCOL_VERSION,
            wire::PROTOCOL_VERSION
        ))
    }
}

/// Clip a hostile line for inclusion in an error payload.
fn truncate_for_log(line: &str) -> String {
    const MAX: usize = 120;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let mut end = MAX;
        while !line.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}… ({} bytes)", &line[..end], line.len())
    }
}

/// One sweep-execution strategy: in-process threads or worker
/// subprocesses.  Experiment entry points take a `SweepExec` so their
/// callers — bins with `--workers N` / `--hosts LIST` flags, tests,
/// benches — choose the execution level without the experiment code
/// caring.
#[derive(Debug, Clone)]
pub enum SweepExec {
    /// Fan points across OS threads in this process.
    InProcess(SweepRunner),
    /// Fan points across supervised worker processes (spawned or
    /// TCP-connected).
    Distributed(DistRunner),
}

impl SweepExec {
    /// A human-readable description for progress banners
    /// (`"4 threads"` / `"2 worker processes"` /
    /// `"4 socket workers across 2 hosts"`).
    pub fn description(&self) -> String {
        match self {
            SweepExec::InProcess(runner) => format!("{} threads", runner.threads()),
            SweepExec::Distributed(runner) => runner.description(),
        }
    }

    /// Run the sweep, streaming completions to `observer`; results come
    /// back checked, in point order, byte-identical across execution
    /// strategies.  In the distributed case `run_point` is **not called in
    /// this process** — the workers run their own copy of it — but taking
    /// it here keeps the two strategies interchangeable at every call
    /// site.
    pub fn run_streaming<P, R, F, O>(
        &self,
        set: &ScenarioSet<P>,
        run_point: F,
        observer: &O,
    ) -> Vec<SweepReport<PointResult<R>>>
    where
        P: Sync,
        R: WireResult + Send,
        F: Fn(&P) -> R + Sync,
        O: SweepObserver<R> + ?Sized,
    {
        match self {
            SweepExec::InProcess(runner) => runner.run_streaming(set, run_point, observer),
            SweepExec::Distributed(runner) => runner.run_streaming(set, observer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_counts_clamp_to_one() {
        let cmd = WorkerCommand::new("/bin/false");
        assert_eq!(DistRunner::new(0, cmd.clone()).workers(), 1);
        assert_eq!(DistRunner::new(5, cmd).workers(), 5);
    }

    #[test]
    fn batch_sizes_clamp_to_one() {
        let runner = DistRunner::new(2, WorkerCommand::new("w"));
        assert_eq!(runner.batch_size(), 1);
        assert_eq!(runner.clone().batch(0).batch_size(), 1);
        assert_eq!(runner.batch(16).batch_size(), 16);
    }

    #[test]
    fn exec_descriptions_name_the_level() {
        let threads = SweepExec::InProcess(SweepRunner::parallel(4));
        assert_eq!(threads.description(), "4 threads");
        let procs = SweepExec::Distributed(DistRunner::new(2, WorkerCommand::new("w")));
        assert_eq!(procs.description(), "2 worker processes");
        let hosts = [HostSpec::new("a:7600", 2), HostSpec::new("b:7600", 1)];
        let sockets = SweepExec::Distributed(DistRunner::over_hosts(&hosts));
        assert_eq!(sockets.description(), "3 socket workers across 2 hosts");
        let single = SweepExec::Distributed(DistRunner::over_hosts(&[HostSpec::new("a:1", 1)]));
        assert_eq!(single.description(), "1 socket workers across 1 host");
    }

    #[test]
    fn hello_acceptance_spans_the_supported_revisions() {
        // The current and the compatibility revision both pass…
        assert!(check_hello(wire::PROTOCOL_VERSION, 8, 8).is_ok());
        assert!(check_hello(wire::MIN_PROTOCOL_VERSION, 8, 8).is_ok());
        // …anything outside the range is refused…
        assert!(check_hello(wire::MIN_PROTOCOL_VERSION - 1, 8, 8).is_err());
        assert!(check_hello(wire::PROTOCOL_VERSION + 1, 8, 8).is_err());
        // …as is a point-count skew, whatever the revision.
        let err = check_hello(wire::PROTOCOL_VERSION, 5, 8).unwrap_err();
        assert!(err.contains("handshake mismatch"), "{err}");
        assert!(err.contains("5 points"), "{err}");
    }

    #[test]
    fn hostile_lines_are_clipped_on_char_boundaries() {
        let long = "é".repeat(200);
        let clipped = truncate_for_log(&long);
        assert!(clipped.contains("… (400 bytes)"));
        assert!(clipped.len() < long.len());
        assert_eq!(truncate_for_log("short"), "short");
    }

    /// An unspawnable worker command degrades to one structured error per
    /// point — never a hang, never an abort.
    #[test]
    fn unspawnable_workers_poison_every_point_structurally() {
        let set = ScenarioSet::over("i", [1usize, 2, 3]);
        let runner = DistRunner::new(2, WorkerCommand::new("/nonexistent/ispn-worker"));
        let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
        assert_eq!(reports.len(), 3);
        for (i, report) in reports.iter().enumerate() {
            assert_eq!(report.index, i);
            let err = report.result.as_ref().expect_err("spawn must fail");
            assert_eq!(err.index, i);
            assert_eq!(err.tags, set.points()[i].tags);
            assert!(err.payload.contains("could not spawn worker"), "{err}");
        }
        assert_eq!(super::super::failed_points(&reports), 3);
    }

    /// An unreachable host degrades the same way: structured per-point
    /// errors, 3-strike memoization, no hang — reusing the subprocess
    /// supervision for refused connections.
    #[test]
    fn unreachable_hosts_poison_every_point_structurally() {
        let set = ScenarioSet::over("i", [1usize, 2, 3, 4]);
        // A port from the TEST-NET-1 documentation range: connects are
        // refused or fail fast, never served.
        let runner = DistRunner::over_hosts(&[HostSpec::new("127.0.0.1:1", 1)])
            .hello_deadline(Duration::from_millis(500));
        let reports: Vec<SweepReport<PointResult<u64>>> = runner.try_run(&set);
        assert_eq!(reports.len(), 4);
        assert_eq!(super::super::failed_points(&reports), 4);
        for report in &reports {
            let err = report.result.as_ref().expect_err("connect must fail");
            assert!(
                err.payload.contains("could not connect"),
                "unexpected payload: {}",
                err.payload
            );
        }
        // The 3-strike rule memoized the failure for the tail points.
        let last = reports[3].result.as_ref().unwrap_err();
        assert!(last.payload.contains("giving up"), "{}", last.payload);
    }
}
