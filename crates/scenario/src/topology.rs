//! Topology presets and the built-topology handle.
//!
//! The paper's own evaluations only ever use a chain (Figure 1), but the
//! scenario API names the shapes larger studies need: chains (optionally
//! duplex, as Figure 1's reverse acknowledgement path requires), stars
//! (access links sharing a hub) and rectangular meshes (cross-traffic over
//! shared interior links).  A custom [`Topology`] passes through untouched
//! for anything else.

use ispn_net::{LinkId, NodeId, Topology};
use ispn_sim::SimTime;

use crate::error::BuildError;

/// Link parameters every preset link is built with (the Appendix defaults:
/// 1 Mbit/s, zero propagation, 200-packet buffers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkProfile {
    /// Transmission rate in bits per second.
    pub rate_bps: f64,
    /// Propagation delay.
    pub propagation: SimTime,
    /// Output buffer limit in packets.
    pub buffer_packets: usize,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile {
            rate_bps: 1_000_000.0,
            propagation: SimTime::ZERO,
            buffer_packets: 200,
        }
    }
}

/// A declarative topology: either a named preset or a custom passthrough.
#[derive(Debug, Clone)]
pub enum TopologySpec {
    /// `nodes` switches in a row.  Forward links (left to right) get ids
    /// `0..nodes-1`; with `duplex`, reverse links follow in the same order
    /// (`reverse[i]` runs from switch `i+1` back to switch `i`), matching
    /// the Figure-1 wiring.
    Chain {
        /// Number of switches (at least two).
        nodes: usize,
        /// Whether to add the reverse direction of every link.
        duplex: bool,
    },
    /// A hub (node 0) with `leaves` access switches.  Leaf-to-hub links
    /// come first (ids `0..leaves`), hub-to-leaf links follow.
    Star {
        /// Number of access switches (at least two).
        leaves: usize,
    },
    /// A `rows × cols` grid; neighbouring switches are connected in both
    /// directions.  Nodes are numbered row-major; links are added per node
    /// in row-major order (east-bound pair, then south-bound pair), so ids
    /// are deterministic.
    Mesh {
        /// Number of rows (at least two).
        rows: usize,
        /// Number of columns (at least two).
        cols: usize,
    },
    /// Use the given topology as-is; the link profile is ignored.
    Custom(Topology),
}

impl TopologySpec {
    /// A simplex chain of `nodes` switches.
    pub fn chain(nodes: usize) -> Self {
        TopologySpec::Chain {
            nodes,
            duplex: false,
        }
    }

    /// A duplex chain of `nodes` switches (the Figure-1 shape).
    pub fn chain_duplex(nodes: usize) -> Self {
        TopologySpec::Chain {
            nodes,
            duplex: true,
        }
    }

    /// A star of `leaves` access switches around a hub.
    pub fn star(leaves: usize) -> Self {
        TopologySpec::Star { leaves }
    }

    /// A `rows × cols` duplex grid mesh.
    pub fn mesh(rows: usize, cols: usize) -> Self {
        TopologySpec::Mesh { rows, cols }
    }

    /// A custom topology passthrough.
    pub fn custom(topology: Topology) -> Self {
        TopologySpec::Custom(topology)
    }

    /// Build the topology with the given link profile.
    pub fn build(&self, profile: &LinkProfile) -> Result<BuiltTopology, BuildError> {
        match self {
            TopologySpec::Chain { nodes, duplex } => {
                if *nodes < 2 {
                    return Err(BuildError::BadTopology {
                        reason: format!("a chain needs at least two switches, got {nodes}"),
                    });
                }
                let mut topology = Topology::new();
                let nodes_v = topology.add_nodes(*nodes);
                let mut forward = Vec::with_capacity(nodes - 1);
                for i in 0..nodes - 1 {
                    forward.push(topology.add_link(
                        nodes_v[i],
                        nodes_v[i + 1],
                        profile.rate_bps,
                        profile.propagation,
                        profile.buffer_packets,
                    ));
                }
                let mut reverse = Vec::new();
                if *duplex {
                    for i in 0..nodes - 1 {
                        reverse.push(topology.add_link(
                            nodes_v[i + 1],
                            nodes_v[i],
                            profile.rate_bps,
                            profile.propagation,
                            profile.buffer_packets,
                        ));
                    }
                }
                Ok(BuiltTopology {
                    topology,
                    nodes: nodes_v,
                    forward,
                    reverse,
                })
            }
            TopologySpec::Star { leaves } => {
                if *leaves < 2 {
                    return Err(BuildError::BadTopology {
                        reason: format!("a star needs at least two leaves, got {leaves}"),
                    });
                }
                let mut topology = Topology::new();
                let hub = topology.add_node();
                let leaf_nodes = topology.add_nodes(*leaves);
                let mut forward = Vec::with_capacity(*leaves);
                let mut reverse = Vec::with_capacity(*leaves);
                for &leaf in &leaf_nodes {
                    forward.push(topology.add_link(
                        leaf,
                        hub,
                        profile.rate_bps,
                        profile.propagation,
                        profile.buffer_packets,
                    ));
                }
                for &leaf in &leaf_nodes {
                    reverse.push(topology.add_link(
                        hub,
                        leaf,
                        profile.rate_bps,
                        profile.propagation,
                        profile.buffer_packets,
                    ));
                }
                let mut nodes = vec![hub];
                nodes.extend(leaf_nodes);
                Ok(BuiltTopology {
                    topology,
                    nodes,
                    forward,
                    reverse,
                })
            }
            TopologySpec::Mesh { rows, cols } => {
                if *rows < 2 || *cols < 2 {
                    return Err(BuildError::BadTopology {
                        reason: format!("a mesh needs at least 2×2 switches, got {rows}×{cols}"),
                    });
                }
                let mut topology = Topology::new();
                let nodes = topology.add_nodes(rows * cols);
                let mut forward = Vec::new();
                let at = |r: usize, c: usize| nodes[r * cols + c];
                for r in 0..*rows {
                    for c in 0..*cols {
                        if c + 1 < *cols {
                            forward.push(topology.add_link(
                                at(r, c),
                                at(r, c + 1),
                                profile.rate_bps,
                                profile.propagation,
                                profile.buffer_packets,
                            ));
                            forward.push(topology.add_link(
                                at(r, c + 1),
                                at(r, c),
                                profile.rate_bps,
                                profile.propagation,
                                profile.buffer_packets,
                            ));
                        }
                        if r + 1 < *rows {
                            forward.push(topology.add_link(
                                at(r, c),
                                at(r + 1, c),
                                profile.rate_bps,
                                profile.propagation,
                                profile.buffer_packets,
                            ));
                            forward.push(topology.add_link(
                                at(r + 1, c),
                                at(r, c),
                                profile.rate_bps,
                                profile.propagation,
                                profile.buffer_packets,
                            ));
                        }
                    }
                }
                Ok(BuiltTopology {
                    topology,
                    nodes,
                    forward,
                    reverse: Vec::new(),
                })
            }
            TopologySpec::Custom(topology) => {
                let nodes = (0..topology.num_nodes()).map(NodeId).collect();
                let forward = (0..topology.num_links()).map(LinkId).collect();
                Ok(BuiltTopology {
                    topology: topology.clone(),
                    nodes,
                    forward,
                    reverse: Vec::new(),
                })
            }
        }
    }
}

/// A built preset: the topology plus the link-id bookkeeping the preset's
/// route helpers need.
#[derive(Debug, Clone)]
pub struct BuiltTopology {
    /// The concrete topology.
    pub topology: Topology,
    /// All switches, in preset order (chain: left to right; star: hub
    /// first; mesh: row-major).
    pub nodes: Vec<NodeId>,
    /// The preset's "forward" links: chain left-to-right, star leaf-to-hub,
    /// mesh/custom all links in id order.
    pub forward: Vec<LinkId>,
    /// The preset's "reverse" links (duplex chain right-to-left, star
    /// hub-to-leaf); empty for meshes and custom topologies.
    pub reverse: Vec<LinkId>,
}

impl BuiltTopology {
    /// The forward-link span `[first, first + hops)` as a route.
    pub fn span(&self, first: usize, hops: usize) -> Option<Vec<LinkId>> {
        if first + hops > self.forward.len() || hops == 0 {
            return None;
        }
        Some(self.forward[first..first + hops].to_vec())
    }

    /// The reverse route matching a forward span (used by acknowledgement
    /// paths): the reverse links of the span, walked right to left.
    pub fn reverse_span(&self, first: usize, hops: usize) -> Option<Vec<LinkId>> {
        if first + hops > self.reverse.len() || hops == 0 {
            return None;
        }
        Some(
            (first..first + hops)
                .rev()
                .map(|i| self.reverse[i])
                .collect(),
        )
    }

    /// Shortest route (fewest hops, deterministic tie-break) between two
    /// switches.
    pub fn route(&self, from: NodeId, to: NodeId) -> Option<Vec<LinkId>> {
        self.topology.shortest_path(from, to)
    }

    /// The switch at grid position `(row, col)` of a mesh preset built with
    /// `cols` columns.
    pub fn mesh_node(&self, row: usize, col: usize, cols: usize) -> NodeId {
        self.nodes[row * cols + col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_matches_topology_chain() {
        let profile = LinkProfile::default();
        let built = TopologySpec::chain(4).build(&profile).unwrap();
        let (reference, nodes, links) = Topology::chain(
            4,
            profile.rate_bps,
            profile.propagation,
            profile.buffer_packets,
        );
        assert_eq!(built.nodes, nodes);
        assert_eq!(built.forward, links);
        assert!(built.reverse.is_empty());
        assert_eq!(built.topology.num_links(), reference.num_links());
        for i in 0..reference.num_links() {
            assert_eq!(built.topology.link(LinkId(i)), reference.link(LinkId(i)));
        }
    }

    #[test]
    fn duplex_chain_matches_figure_1_wiring() {
        let built = TopologySpec::chain_duplex(5)
            .build(&LinkProfile::default())
            .unwrap();
        assert_eq!(built.forward.len(), 4);
        assert_eq!(built.reverse.len(), 4);
        for i in 0..4 {
            let f = built.topology.link(built.forward[i]);
            assert_eq!((f.from, f.to), (built.nodes[i], built.nodes[i + 1]));
            let r = built.topology.link(built.reverse[i]);
            assert_eq!((r.from, r.to), (built.nodes[i + 1], built.nodes[i]));
        }
        // The reverse span walks right to left.
        let rev = built.reverse_span(1, 2).unwrap();
        assert_eq!(rev, vec![built.reverse[2], built.reverse[1]]);
        assert!(built
            .topology
            .validate_route(&built.reverse_span(0, 4).unwrap()));
    }

    #[test]
    fn star_routes_cross_the_hub() {
        let built = TopologySpec::star(4)
            .build(&LinkProfile::default())
            .unwrap();
        assert_eq!(built.nodes.len(), 5);
        assert_eq!(built.forward.len(), 4);
        assert_eq!(built.reverse.len(), 4);
        let route = built.route(built.nodes[1], built.nodes[2]).unwrap();
        assert_eq!(route.len(), 2, "leaf to leaf crosses the hub");
        assert!(built.topology.validate_route(&route));
    }

    #[test]
    fn mesh_has_shared_interior_links() {
        let built = TopologySpec::mesh(3, 3)
            .build(&LinkProfile::default())
            .unwrap();
        assert_eq!(built.nodes.len(), 9);
        // 2 directed links per grid edge: 12 edges in a 3×3 grid.
        assert_eq!(built.topology.num_links(), 24);
        // Row route and diagonal route share the centre's east-bound link.
        let row = built
            .route(built.mesh_node(1, 0, 3), built.mesh_node(1, 2, 3))
            .unwrap();
        assert_eq!(row.len(), 2);
        let diag = built
            .route(built.mesh_node(0, 0, 3), built.mesh_node(2, 2, 3))
            .unwrap();
        assert_eq!(diag.len(), 4);
        assert!(built.topology.validate_route(&row));
        assert!(built.topology.validate_route(&diag));
    }

    #[test]
    fn bad_presets_are_reported_not_panicked() {
        assert!(matches!(
            TopologySpec::chain(1).build(&LinkProfile::default()),
            Err(BuildError::BadTopology { .. })
        ));
        assert!(TopologySpec::star(1)
            .build(&LinkProfile::default())
            .is_err());
        assert!(TopologySpec::mesh(1, 3)
            .build(&LinkProfile::default())
            .is_err());
    }

    #[test]
    fn custom_passthrough_preserves_the_topology() {
        let (topo, _nodes, links) = Topology::chain(3, 2e6, SimTime::MILLISECOND, 50);
        let built = TopologySpec::custom(topo)
            .build(&LinkProfile::default())
            .unwrap();
        assert_eq!(built.forward, links);
        assert_eq!(built.topology.link(links[0]).rate_bps, 2e6);
    }

    #[test]
    fn spans_check_bounds() {
        let built = TopologySpec::chain(5)
            .build(&LinkProfile::default())
            .unwrap();
        assert_eq!(built.span(1, 3).unwrap().len(), 3);
        assert!(built.span(3, 2).is_none());
        assert!(built.span(0, 0).is_none());
        assert!(built.reverse_span(0, 1).is_none(), "simplex chain");
    }
}
