//! Errors a scenario can fail to build with.
//!
//! Everything here implements [`std::error::Error`] and [`Display`], so
//! scenario code composes with `?` and `anyhow`-style reporting instead of
//! ad-hoc matching (the same goes for
//! [`SetupError`](ispn_net::SetupError), which gained its `Error` impl
//! alongside this crate).
//!
//! [`Display`]: std::fmt::Display

use ispn_net::NodeId;

/// Why [`ScenarioBuilder::build`](crate::ScenarioBuilder::build) refused a
/// scenario description.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A topology preset was given a size it cannot build (e.g. a chain of
    /// fewer than two switches).
    BadTopology {
        /// What was wrong with the requested preset.
        reason: String,
    },
    /// A flow declared an empty route.
    EmptyRoute {
        /// Index of the offending flow in declaration order.
        flow: usize,
    },
    /// A flow declared an explicit route that is not a contiguous path in
    /// the built topology.
    InvalidRoute {
        /// Index of the offending flow in declaration order.
        flow: usize,
    },
    /// A flow asked to be routed between two nodes with no path.
    NoPath {
        /// Index of the offending flow in declaration order.
        flow: usize,
        /// Requested entry switch.
        from: NodeId,
        /// Requested exit switch.
        to: NodeId,
    },
    /// A dynamic workload declaration is inconsistent (e.g. a churn process
    /// with a non-positive arrival rate or no service classes to request).
    BadWorkload {
        /// What was wrong with the requested workload.
        reason: String,
    },
    /// A route referenced a forward/reverse span that runs off the preset
    /// (e.g. `span(3, 2)` on a four-link chain).
    SpanOutOfRange {
        /// Index of the offending flow in declaration order (TCP
        /// connections count after the last plain flow).
        flow: usize,
        /// First link index of the requested span.
        first: usize,
        /// Number of links in the requested span.
        hops: usize,
        /// Number of links the preset actually has in that direction.
        available: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::BadTopology { reason } => write!(f, "bad topology: {reason}"),
            BuildError::BadWorkload { reason } => write!(f, "bad workload: {reason}"),
            BuildError::EmptyRoute { flow } => write!(f, "flow #{flow} has an empty route"),
            BuildError::InvalidRoute { flow } => {
                write!(f, "flow #{flow}'s route is not a contiguous path")
            }
            BuildError::NoPath { flow, from, to } => {
                write!(f, "flow #{flow}: no path from {from:?} to {to:?}")
            }
            BuildError::SpanOutOfRange {
                flow,
                first,
                hops,
                available,
            } => write!(
                f,
                "flow #{flow}: span ({first}, {hops}) runs off the {available}-link preset"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_compose_with_question_mark() {
        fn fallible() -> Result<(), Box<dyn std::error::Error>> {
            Err(BuildError::EmptyRoute { flow: 3 })?;
            Ok(())
        }
        let err = fallible().unwrap_err();
        assert_eq!(err.to_string(), "flow #3 has an empty route");

        let e = BuildError::NoPath {
            flow: 0,
            from: NodeId(1),
            to: NodeId(2),
        };
        assert!(e.to_string().contains("no path"));
        let e = BuildError::SpanOutOfRange {
            flow: 1,
            first: 3,
            hops: 2,
            available: 4,
        };
        assert!(e.to_string().contains("runs off"));
    }

    #[test]
    fn setup_error_is_a_std_error_too() {
        // The satellite requirement: ispn-net's SetupError usable behind
        // `Box<dyn Error>`.
        fn takes_error(_: &dyn std::error::Error) {}
        let err = ispn_net::SetupError {
            flow: ispn_core::FlowId(0),
            hop: 1,
            link: ispn_net::LinkId(2),
            reason: "quota".into(),
        };
        takes_error(&err);
        assert!(err.to_string().contains("hop 1"));
    }
}
