//! The scenario builder: topology + disciplines + workload + admission in,
//! a ready-to-run [`Sim`] out.

use ispn_core::admission::{AdmissionConfig, AdmissionController};
use ispn_net::{LinkId, Network};
use ispn_signal::{SignalConfig, Signaling};
use ispn_sim::SimTime;
use ispn_traffic::{CbrSource, OnOffSource, PoissonSource, TraceSource};
use ispn_transport::install_tcp;

use crate::discipline::{DisciplineMatrix, DisciplineSpec};
use crate::error::BuildError;
use crate::sim::Sim;
use crate::topology::{BuiltTopology, LinkProfile, TopologySpec};
use crate::workload::{AdmissionSpec, FlowDef, RouteSpec, SourceSpec, TcpDef, WorkloadSpec};

/// Which links an [`AdmissionSpec`] applies to.
#[derive(Debug, Clone)]
enum AdmissionTarget {
    All,
    Links(Vec<LinkId>),
}

/// Assembles a scenario declaratively.  See the crate docs for a complete
/// example.
pub struct ScenarioBuilder {
    topology: TopologySpec,
    profile: LinkProfile,
    disciplines: DisciplineMatrix,
    flows: Vec<FlowDef>,
    tcps: Vec<TcpDef>,
    admission: Vec<(AdmissionTarget, AdmissionSpec)>,
    warmup: Option<SimTime>,
    signal_config: SignalConfig,
    workload: WorkloadSpec,
}

impl ScenarioBuilder {
    /// Start from a topology spec.
    pub fn new(topology: TopologySpec) -> Self {
        ScenarioBuilder {
            topology,
            profile: LinkProfile::default(),
            disciplines: DisciplineMatrix::default(),
            flows: Vec::new(),
            tcps: Vec::new(),
            admission: Vec::new(),
            warmup: None,
            signal_config: SignalConfig::default(),
            workload: WorkloadSpec::Static,
        }
    }

    /// A simplex chain of `nodes` switches.
    pub fn chain(nodes: usize) -> Self {
        ScenarioBuilder::new(TopologySpec::chain(nodes))
    }

    /// A duplex chain of `nodes` switches (the Figure-1 shape).
    pub fn chain_duplex(nodes: usize) -> Self {
        ScenarioBuilder::new(TopologySpec::chain_duplex(nodes))
    }

    /// A star of `leaves` access switches around a hub.
    pub fn star(leaves: usize) -> Self {
        ScenarioBuilder::new(TopologySpec::star(leaves))
    }

    /// A `rows × cols` duplex grid mesh.
    pub fn mesh(rows: usize, cols: usize) -> Self {
        ScenarioBuilder::new(TopologySpec::mesh(rows, cols))
    }

    /// A custom topology passthrough.
    pub fn custom(topology: ispn_net::Topology) -> Self {
        ScenarioBuilder::new(TopologySpec::custom(topology))
    }

    /// Set the link parameters every preset link is built with.
    pub fn link_profile(mut self, profile: LinkProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Install the same discipline on every link.
    pub fn discipline(mut self, spec: DisciplineSpec) -> Self {
        self.disciplines = DisciplineMatrix::global(spec);
        self
    }

    /// Install a full per-link discipline matrix.
    pub fn disciplines(mut self, matrix: DisciplineMatrix) -> Self {
        self.disciplines = matrix;
        self
    }

    /// Declare a flow.
    pub fn flow(mut self, def: FlowDef) -> Self {
        self.flows.push(def);
        self
    }

    /// Declare several flows at once.
    pub fn flows(mut self, defs: impl IntoIterator<Item = FlowDef>) -> Self {
        self.flows.extend(defs);
        self
    }

    /// Declare a greedy TCP connection.
    pub fn tcp(mut self, def: TcpDef) -> Self {
        self.tcps.push(def);
        self
    }

    /// Put every link under measurement-based admission control.
    pub fn admission(mut self, spec: AdmissionSpec) -> Self {
        self.admission.push((AdmissionTarget::All, spec));
        self
    }

    /// Put specific links under measurement-based admission control.
    pub fn admission_on(mut self, links: Vec<LinkId>, spec: AdmissionSpec) -> Self {
        self.admission.push((AdmissionTarget::Links(links), spec));
        self
    }

    /// Ignore measurements recorded before `warmup`.
    pub fn warmup(mut self, warmup: SimTime) -> Self {
        self.warmup = Some(warmup);
        self
    }

    /// Control-plane timing for dynamic scenarios.
    pub fn signaling(mut self, config: SignalConfig) -> Self {
        self.signal_config = config;
        self
    }

    /// Attach a dynamic workload process (e.g.
    /// [`WorkloadSpec::Churn`]) on top of the declared flows.
    pub fn workload(mut self, spec: WorkloadSpec) -> Self {
        self.workload = spec;
        self
    }

    fn resolve_route(
        built: &BuiltTopology,
        route: &RouteSpec,
        flow: usize,
    ) -> Result<Vec<LinkId>, BuildError> {
        let links = match route {
            RouteSpec::Links(links) => links.clone(),
            RouteSpec::Span { first, hops } => {
                built
                    .span(*first, *hops)
                    .ok_or(BuildError::SpanOutOfRange {
                        flow,
                        first: *first,
                        hops: *hops,
                        available: built.forward.len(),
                    })?
            }
            RouteSpec::ReverseSpan { first, hops } => {
                built
                    .reverse_span(*first, *hops)
                    .ok_or(BuildError::SpanOutOfRange {
                        flow,
                        first: *first,
                        hops: *hops,
                        available: built.reverse.len(),
                    })?
            }
            RouteSpec::Path { from, to } => built.route(*from, *to).ok_or(BuildError::NoPath {
                flow,
                from: *from,
                to: *to,
            })?,
        };
        if links.is_empty() {
            return Err(BuildError::EmptyRoute { flow });
        }
        if !built.topology.validate_route(&links) {
            return Err(BuildError::InvalidRoute { flow });
        }
        Ok(links)
    }

    /// Build the network, wire the workload and return the run-ready
    /// simulation facade.
    ///
    /// Construction order is fixed (flows, then disciplines, then sources,
    /// then transports, then admission) so that identical declarations
    /// always produce identical simulations — flow ids, agent ids and
    /// event-queue seeding included.
    pub fn build(self) -> Result<Sim, BuildError> {
        let built = self.topology.build(&self.profile)?;

        // Resolve every route first so errors surface before any wiring.
        let mut routes = Vec::with_capacity(self.flows.len());
        for (i, def) in self.flows.iter().enumerate() {
            routes.push(Self::resolve_route(&built, &def.route, i)?);
        }
        let mut tcp_routes = Vec::with_capacity(self.tcps.len());
        for (i, def) in self.tcps.iter().enumerate() {
            let idx = self.flows.len() + i;
            tcp_routes.push((
                Self::resolve_route(&built, &def.forward, idx)?,
                Self::resolve_route(&built, &def.reverse, idx)?,
            ));
        }

        let mut net = Network::new(built.topology.clone());

        // 1. Register the declared flows (ids 0..n in declaration order).
        let mut flow_ids = Vec::with_capacity(self.flows.len());
        for (def, route) in self.flows.iter().zip(&routes) {
            flow_ids.push(net.add_flow(def.service.flow_config(route.clone())));
        }

        // 2. Instantiate the discipline matrix, per link, with the workload
        //    context each recipe needs.
        for link_idx in 0..built.topology.num_links() {
            let link = LinkId(link_idx);
            let spec = self.disciplines.spec_for(link);
            let crossing: Vec<usize> = routes
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&link))
                .map(|(i, _)| i)
                .collect();
            let guaranteed: Vec<(ispn_core::FlowId, f64)> = crossing
                .iter()
                .filter_map(|&i| {
                    self.flows[i]
                        .service
                        .clock_rate_bps()
                        .map(|rate| (flow_ids[i], rate))
                })
                .collect();
            let params = *built.topology.link(link);
            net.set_discipline(link, spec.build(&params, crossing.len(), &guaranteed));
        }

        // 3. Attach the traffic sources (agent ids follow flow declaration
        //    order).
        for (def, &flow) in self.flows.iter().zip(&flow_ids) {
            match &def.source {
                SourceSpec::None => {}
                SourceSpec::OnOff(config) => {
                    net.add_agent(Box::new(OnOffSource::new(flow, config.clone())));
                }
                SourceSpec::Cbr {
                    rate_pps,
                    packet_bits,
                } => {
                    net.add_agent(Box::new(CbrSource::new(flow, *rate_pps, *packet_bits)));
                }
                SourceSpec::Poisson {
                    rate_pps,
                    packet_bits,
                    seed,
                } => {
                    net.add_agent(Box::new(PoissonSource::new(
                        flow,
                        *rate_pps,
                        *packet_bits,
                        *seed,
                    )));
                }
                SourceSpec::Trace { schedule } => {
                    net.add_agent(Box::new(TraceSource::new(flow, schedule.clone())));
                }
            }
        }

        // 4. Install the transports.
        let mut tcp = Vec::with_capacity(self.tcps.len());
        for (def, (forward, reverse)) in self.tcps.iter().zip(tcp_routes) {
            tcp.push(install_tcp(&mut net, forward, reverse, def.config.clone()));
        }

        // 5. Enable admission control.
        for (target, spec) in &self.admission {
            let links: Vec<LinkId> = match target {
                AdmissionTarget::All => (0..built.topology.num_links()).map(LinkId).collect(),
                AdmissionTarget::Links(links) => links.clone(),
            };
            for link in links {
                let params = built.topology.link(link);
                let mut controller = AdmissionController::new(
                    AdmissionConfig::new(
                        params.rate_bps,
                        spec.realtime_quota,
                        spec.class_targets.clone(),
                    ),
                    spec.measurement_window_secs,
                );
                if let Some(factor) = spec.util_safety_factor {
                    controller.set_util_safety_factor(factor);
                }
                net.enable_admission(link, controller, spec.sample_interval);
            }
        }

        if let Some(warmup) = self.warmup {
            net.monitor_mut().set_warmup(warmup);
        }

        let mut sim = Sim::from_parts(
            net,
            Signaling::new(self.signal_config),
            flow_ids,
            tcp,
            built,
        );

        // 6. Attach the dynamic workload.
        if let WorkloadSpec::Churn(churn) = self.workload {
            churn
                .validate()
                .map_err(|reason| BuildError::BadWorkload { reason })?;
            // Churn arrivals request uniformly random spans of the
            // preset's forward links, so those links must form one
            // contiguous path (a chain preset, or a custom chain): on a
            // star or mesh the forward set is not a path and a multi-hop
            // request would be invalid.
            if !sim.built().topology.validate_route(&sim.built().forward) {
                return Err(BuildError::BadWorkload {
                    reason: "a churn workload needs a chain topology (its arrivals \
                             span contiguous forward links); this preset's forward \
                             links do not form one path"
                        .to_string(),
                });
            }
            sim.install_churn(churn);
        }

        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::MeasurementPlan;
    use crate::workload::{ServiceSpec, SourceSpec};
    use ispn_net::NodeId;

    #[test]
    fn minimal_scenario_runs_and_reports() {
        let mut sim = ScenarioBuilder::chain(2)
            .discipline(DisciplineSpec::Wfq)
            .flow(FlowDef::best_effort_realtime(0, 1).source(SourceSpec::cbr(100.0, 1000)))
            .build()
            .expect("valid scenario");
        sim.run_until(SimTime::from_secs(5));
        let report = sim.report(&Default::default());
        assert_eq!(report.flows.len(), 1);
        assert!(report.flows[0].delivered > 450);
        assert!(report.links[0].utilization > 0.05);
        assert!(report.signaling.is_some());
    }

    #[test]
    fn route_errors_surface_before_wiring() {
        let err = ScenarioBuilder::chain(3)
            .flow(FlowDef::datagram(1, 5))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::SpanOutOfRange { .. }));

        let err = ScenarioBuilder::chain(3)
            .flow(FlowDef::new(
                RouteSpec::Path {
                    from: NodeId(2),
                    to: NodeId(0),
                },
                ServiceSpec::Datagram,
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::NoPath { .. }), "{err}");

        let err = ScenarioBuilder::chain(3)
            .flow(FlowDef::new(
                RouteSpec::Links(Vec::new()),
                ServiceSpec::Datagram,
            ))
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::EmptyRoute { .. }));
    }

    #[test]
    fn guaranteed_flows_are_installed_into_the_unified_scheduler() {
        let mut sim = ScenarioBuilder::chain(2)
            .discipline(DisciplineSpec::Unified {
                priority_classes: 2,
                averaging: ispn_sched::Averaging::RunningMean,
            })
            .flow(FlowDef::guaranteed(0, 1, 200_000.0).source(SourceSpec::cbr(50.0, 1000)))
            .build()
            .unwrap();
        assert_eq!(sim.network().discipline_name(LinkId(0)), "Unified");
        sim.run_until(SimTime::from_secs(2));
        let r = sim.report(&MeasurementPlan::flows_only());
        assert!(r.flows[0].delivered > 80);
        assert!(r.links.is_empty(), "plan skipped link stats");
    }

    #[test]
    fn per_link_matrix_overrides_apply() {
        let matrix = DisciplineMatrix::global(DisciplineSpec::Fifo)
            .with_link(LinkId(1), DisciplineSpec::Wfq);
        let sim = ScenarioBuilder::chain(3)
            .disciplines(matrix)
            .flow(FlowDef::datagram(0, 2))
            .build()
            .unwrap();
        assert_eq!(sim.network().discipline_name(LinkId(0)), "FIFO");
        assert_eq!(sim.network().discipline_name(LinkId(1)), "WFQ");
    }

    #[test]
    fn per_class_aggregation_pools_flows_and_histograms() {
        use crate::report::HistogramSpec;
        let mut sim = ScenarioBuilder::chain(2)
            .discipline(DisciplineSpec::Unified {
                priority_classes: 2,
                averaging: ispn_sched::Averaging::RunningMean,
            })
            .flow(FlowDef::guaranteed(0, 1, 150_000.0).source(SourceSpec::cbr(50.0, 1000)))
            .flow(FlowDef::guaranteed(0, 1, 150_000.0).source(SourceSpec::cbr(50.0, 1000)))
            .flow(FlowDef::best_effort_realtime(0, 1).source(SourceSpec::poisson(100.0, 1000, 7)))
            .flow(FlowDef::datagram(0, 1).source(SourceSpec::cbr(30.0, 1000)))
            .build()
            .unwrap();
        sim.run_until(SimTime::from_secs(5));
        let plan = MeasurementPlan::default().with_histogram(HistogramSpec::up_to(0.1, 10));
        let r = sim.report(&plan);
        // Deterministic class order: guaranteed, predicted-0, datagram.
        let labels: Vec<&str> = r.classes.iter().map(|c| c.class.as_str()).collect();
        assert_eq!(labels, vec!["guaranteed", "predicted-0", "datagram"]);
        assert_eq!(r.classes[0].flows, 2, "both guaranteed flows pooled");
        // The pooled class counts equal the sum of the per-flow counts.
        let guaranteed_delivered: u64 = r.flows[0].delivered + r.flows[1].delivered;
        assert_eq!(r.classes[0].delivered, guaranteed_delivered);
        // Quantiles come back in plan order and are monotone.
        let qs = &r.classes[0].quantiles;
        assert_eq!(qs.len(), 4);
        assert!(qs.windows(2).all(|w| w[0].1 <= w[1].1 + 1e-12));
        // The histogram accounts for every pooled delivery.
        let h = r.classes[0].histogram.as_ref().unwrap();
        let total = h.underflow + h.overflow + h.counts.iter().sum::<u64>();
        assert_eq!(total, guaranteed_delivered);
        // The discipline group covers the single link.
        assert_eq!(r.disciplines.len(), 1);
        assert_eq!(r.disciplines[0].discipline, "Unified");
        assert_eq!(r.disciplines[0].links, 1);
    }

    #[test]
    fn admission_is_enabled_on_the_selected_links() {
        let spec = AdmissionSpec::paper(vec![SimTime::from_millis(100)]);
        let sim = ScenarioBuilder::chain_duplex(3)
            .admission_on(vec![LinkId(0), LinkId(1)], spec)
            .build()
            .unwrap();
        assert!(sim.network().admission(LinkId(0)).is_some());
        assert!(sim.network().admission(LinkId(1)).is_some());
        assert!(sim.network().admission(LinkId(2)).is_none(), "reverse link");
    }
}
