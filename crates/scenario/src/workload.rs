//! Declarative workloads: routes, service classes, traffic sources, TCP
//! connections and admission control.

use ispn_core::TokenBucketSpec;
use ispn_net::{FlowConfig, LinkId, NodeId, PoliceAction};
use ispn_sim::SimTime;
use ispn_traffic::OnOffConfig;
use ispn_transport::TcpConfig;

/// How a flow's path through the topology is described.
#[derive(Debug, Clone)]
pub enum RouteSpec {
    /// An explicit list of links (must form a contiguous path).
    Links(Vec<LinkId>),
    /// The forward-link span `[first, first + hops)` of a chain preset.
    Span {
        /// Index of the first forward link.
        first: usize,
        /// Number of consecutive forward links.
        hops: usize,
    },
    /// The reverse route matching a forward span (acknowledgement paths on
    /// duplex presets).
    ReverseSpan {
        /// Index of the first forward link of the matching forward span.
        first: usize,
        /// Number of consecutive links.
        hops: usize,
    },
    /// The shortest path between two switches (deterministic tie-break).
    Path {
        /// Entry switch.
        from: NodeId,
        /// Exit switch.
        to: NodeId,
    },
}

/// The service a flow requests from the network (Section 8's interface).
#[derive(Debug, Clone)]
pub enum ServiceSpec {
    /// Best-effort datagram service.
    Datagram,
    /// Datagram-spec packets scheduled in a predicted class — the
    /// undifferentiated "real-time flow" Tables 1 and 2 use (the class only
    /// affects real-time-utilization bookkeeping under FIFO/WFQ/FIFO+).
    RealtimeBestEffort {
        /// Predicted priority class (0 = highest).
        priority: u8,
    },
    /// Predicted service with an `(r, b)` declaration and edge policing.
    Predicted {
        /// Priority class (0 = highest).
        priority: u8,
        /// Declared token bucket.
        bucket: TokenBucketSpec,
        /// Advertised end-to-end delay target.
        target_delay: SimTime,
        /// Acceptable loss rate.
        loss_rate: f64,
        /// What the edge does with nonconforming packets.
        police: PoliceAction,
    },
    /// Guaranteed service with a WFQ clock rate.
    Guaranteed {
        /// Reserved clock rate in bits per second.
        clock_rate_bps: f64,
    },
}

impl ServiceSpec {
    /// The clock rate of a guaranteed service, if this is one.
    pub fn clock_rate_bps(&self) -> Option<f64> {
        match self {
            ServiceSpec::Guaranteed { clock_rate_bps } => Some(*clock_rate_bps),
            _ => None,
        }
    }

    /// Turn the service into a [`FlowConfig`] over a resolved route.
    pub fn flow_config(&self, route: Vec<LinkId>) -> FlowConfig {
        match self {
            ServiceSpec::Datagram => FlowConfig::datagram(route),
            ServiceSpec::RealtimeBestEffort { priority } => {
                let mut config = FlowConfig::datagram(route);
                config.class = ispn_core::ServiceClass::Predicted {
                    priority: *priority,
                };
                config
            }
            ServiceSpec::Predicted {
                priority,
                bucket,
                target_delay,
                loss_rate,
                police,
            } => FlowConfig::predicted(
                route,
                *priority,
                *bucket,
                *target_delay,
                *loss_rate,
                *police,
            ),
            ServiceSpec::Guaranteed { clock_rate_bps } => {
                FlowConfig::guaranteed(route, *clock_rate_bps)
            }
        }
    }
}

/// The traffic source attached to a flow.
#[derive(Debug, Clone)]
pub enum SourceSpec {
    /// No source: the flow is registered but driven externally (tests, or
    /// transports installed separately).
    None,
    /// The Appendix's two-state Markov on/off source.
    OnOff(OnOffConfig),
    /// Constant bit rate.
    Cbr {
        /// Packets per second.
        rate_pps: f64,
        /// Packet size in bits.
        packet_bits: u64,
    },
    /// Poisson arrivals.
    Poisson {
        /// Mean packets per second.
        rate_pps: f64,
        /// Packet size in bits.
        packet_bits: u64,
        /// Seed of the source's private random stream.
        seed: u64,
    },
    /// Replay an explicit `(time, size_bits)` schedule.
    Trace {
        /// The packet schedule.
        schedule: Vec<(SimTime, u64)>,
    },
}

impl SourceSpec {
    /// The paper's on/off source at average rate `avg_rate_pps` (peak `2A`,
    /// burst 5, `(A, 50)` source policer) with the given seed.
    pub fn onoff_paper(avg_rate_pps: f64, seed: u64) -> Self {
        SourceSpec::OnOff(OnOffConfig::paper(avg_rate_pps, seed))
    }

    /// A constant-bit-rate source.
    pub fn cbr(rate_pps: f64, packet_bits: u64) -> Self {
        SourceSpec::Cbr {
            rate_pps,
            packet_bits,
        }
    }

    /// A Poisson source.
    pub fn poisson(rate_pps: f64, packet_bits: u64, seed: u64) -> Self {
        SourceSpec::Poisson {
            rate_pps,
            packet_bits,
            seed,
        }
    }
}

/// One declared flow: a route, the service it asks for and the source that
/// drives it.
#[derive(Debug, Clone)]
pub struct FlowDef {
    /// Where the flow goes.
    pub route: RouteSpec,
    /// What service it receives.
    pub service: ServiceSpec,
    /// What traffic drives it.
    pub source: SourceSpec,
}

impl FlowDef {
    /// A flow with the given route and service and no source yet.
    pub fn new(route: RouteSpec, service: ServiceSpec) -> Self {
        FlowDef {
            route,
            service,
            source: SourceSpec::None,
        }
    }

    /// A datagram flow over a forward span.
    pub fn datagram(first: usize, hops: usize) -> Self {
        FlowDef::new(RouteSpec::Span { first, hops }, ServiceSpec::Datagram)
    }

    /// An undifferentiated real-time flow (Tables 1–2) over a forward span.
    pub fn best_effort_realtime(first: usize, hops: usize) -> Self {
        FlowDef::new(
            RouteSpec::Span { first, hops },
            ServiceSpec::RealtimeBestEffort { priority: 0 },
        )
    }

    /// A guaranteed flow over a forward span.
    pub fn guaranteed(first: usize, hops: usize, clock_rate_bps: f64) -> Self {
        FlowDef::new(
            RouteSpec::Span { first, hops },
            ServiceSpec::Guaranteed { clock_rate_bps },
        )
    }

    /// Attach a source (builder style).
    pub fn source(mut self, source: SourceSpec) -> Self {
        self.source = source;
        self
    }

    /// Replace the route (builder style).
    pub fn route(mut self, route: RouteSpec) -> Self {
        self.route = route;
        self
    }
}

/// A dynamic workload process attached to a scenario, driven through the
/// control plane while the static flows run.
#[derive(Debug, Clone, Default)]
pub enum WorkloadSpec {
    /// Only the statically declared flows (the default).
    #[default]
    Static,
    /// Flow churn: Poisson setup arrivals with exponentially distributed
    /// holding times, each admitted flow sourced and torn down by the
    /// [`Sim`](crate::Sim) facade itself.
    Churn(ChurnWorkload),
}

/// One predicted-service class a churn arrival can request.
#[derive(Debug, Clone)]
pub struct ChurnClass {
    /// Priority class (0 = highest).
    pub priority: u8,
    /// The `(r, b)` token bucket the request declares.
    pub bucket: TokenBucketSpec,
    /// Advertised per-hop delay target; a request over `h` hops is sold the
    /// end-to-end bound `h × per_hop_target`.
    pub per_hop_target: SimTime,
    /// Acceptable loss rate of the request.
    pub loss_rate: f64,
    /// What the edge does with nonconforming packets.
    pub police: PoliceAction,
}

/// How churn sources are shaped and seeded.
#[derive(Debug, Clone)]
pub struct ChurnSourceSpec {
    /// Average rate `A` of the paper's on/off source attached to each
    /// admitted flow (peak `2A`, burst 5, `(A, 50)` source policer).
    pub avg_rate_pps: f64,
    /// Base seed; the `i`-th admitted source draws an independent stream
    /// from [`seed_for(i)`](ChurnSourceSpec::seed_for).
    pub seed_base: u64,
}

impl ChurnSourceSpec {
    /// The derived seed of the `i`-th admitted source (golden-ratio mixing,
    /// the same derivation the static experiments use for per-flow seeds —
    /// this is what lets a migrated churn run reproduce its pre-migration
    /// source streams bit-exactly).
    pub fn seed_for(&self, i: u32) -> u64 {
        self.seed_base
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64 + 1)
    }
}

/// A first-class churn workload: Poisson flow arrivals over uniformly
/// random forward spans, exponential holding times, teardown on departure.
///
/// The whole process is a pure function of [`seed`](ChurnWorkload::seed):
/// one private RNG stream drives, in arrival order, the span choice, the
/// service mix, the inter-arrival gap and (on acceptance) the holding
/// time.  Admitted flows get the Appendix's on/off source attached at the
/// exact instant their confirmation lands, wrapped in a
/// [`LeasedSource`](ispn_signal::LeasedSource) so departure silences it.
#[derive(Debug, Clone)]
pub struct ChurnWorkload {
    /// Poisson flow-arrival rate λ (setup requests per second).
    pub arrivals_per_sec: f64,
    /// Mean exponential holding time 1/μ of an admitted flow, seconds.
    pub mean_holding_secs: f64,
    /// Seed of the churn driver's private random stream.
    pub seed: u64,
    /// Fraction of requests asking for guaranteed service.
    pub guaranteed_fraction: f64,
    /// The clock rate a guaranteed request reserves, bits per second.
    pub guaranteed_rate_bps: f64,
    /// The predicted classes the remaining requests draw from (uniformly).
    pub classes: Vec<ChurnClass>,
    /// Source shape and seeding for admitted flows.
    pub source: ChurnSourceSpec,
}

impl ChurnWorkload {
    /// Offered load in erlangs: the mean number of flows that would be in
    /// the system if none were blocked (λ/μ).
    pub fn offered_erlangs(&self) -> f64 {
        self.arrivals_per_sec * self.mean_holding_secs
    }

    /// Validate the declaration (the builder calls this).
    pub(crate) fn validate(&self) -> Result<(), String> {
        // A NaN rate fails the positivity checks too: `is_positive_finite`
        // style comparisons are written so NaN falls into the error arm.
        if self.arrivals_per_sec <= 0.0 || self.arrivals_per_sec.is_nan() {
            return Err(format!(
                "churn arrival rate must be positive, got {}",
                self.arrivals_per_sec
            ));
        }
        if self.mean_holding_secs <= 0.0 || self.mean_holding_secs.is_nan() {
            return Err(format!(
                "churn mean holding time must be positive, got {}",
                self.mean_holding_secs
            ));
        }
        // NaN fails `contains` and lands here too — without this check a
        // NaN fraction would sail past both class checks below (NaN < 1.0
        // and NaN > 0.0 are both false) and crash at the first arrival.
        if !(0.0..=1.0).contains(&self.guaranteed_fraction) {
            return Err(format!(
                "churn guaranteed fraction must be within [0, 1], got {}",
                self.guaranteed_fraction
            ));
        }
        if self.guaranteed_fraction < 1.0 && self.classes.is_empty() {
            return Err(
                "churn with guaranteed_fraction < 1 needs at least one predicted class".to_string(),
            );
        }
        if self.guaranteed_fraction > 0.0
            && (self.guaranteed_rate_bps <= 0.0 || self.guaranteed_rate_bps.is_nan())
        {
            return Err(format!(
                "churn guaranteed requests need a positive clock rate, got {}",
                self.guaranteed_rate_bps
            ));
        }
        Ok(())
    }
}

/// A greedy TCP connection: a datagram data flow forward and an
/// acknowledgement flow back.
#[derive(Debug, Clone)]
pub struct TcpDef {
    /// Route of the data flow.
    pub forward: RouteSpec,
    /// Route of the acknowledgement flow.
    pub reverse: RouteSpec,
    /// Transport parameters.
    pub config: TcpConfig,
}

impl TcpDef {
    /// A TCP connection over a forward span of a duplex preset, with the
    /// matching reverse span carrying the acknowledgements.
    pub fn over_span(first: usize, hops: usize) -> Self {
        TcpDef {
            forward: RouteSpec::Span { first, hops },
            reverse: RouteSpec::ReverseSpan { first, hops },
            config: TcpConfig::default(),
        }
    }
}

/// Put links under the Section-9 measurement-based admission controller.
#[derive(Debug, Clone)]
pub struct AdmissionSpec {
    /// Fraction of each link real-time traffic may occupy (the paper
    /// suggests 0.9).
    pub realtime_quota: f64,
    /// Per-class delay targets Dᵢ, indexed by priority.
    pub class_targets: Vec<SimTime>,
    /// Length of the measurement window feeding ν̂ and d̂ⱼ, in seconds.
    pub measurement_window_secs: f64,
    /// Override of the utilization safety factor (`None` keeps the
    /// controller's default).
    pub util_safety_factor: Option<f64>,
    /// How often the network samples real-time throughput into ν̂.
    pub sample_interval: SimTime,
}

impl AdmissionSpec {
    /// The controller the paper's Section-9 example suggests: 90 % quota
    /// and a ten-second measurement window, sampled once per second.
    pub fn paper(class_targets: Vec<SimTime>) -> Self {
        AdmissionSpec {
            realtime_quota: 0.9,
            class_targets,
            measurement_window_secs: 10.0,
            util_safety_factor: None,
            sample_interval: SimTime::SECOND,
        }
    }

    /// Override the utilization safety factor (builder style).
    pub fn with_util_safety_factor(mut self, factor: f64) -> Self {
        self.util_safety_factor = Some(factor);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::{FlowSpec, ServiceClass};

    #[test]
    fn service_specs_produce_the_expected_flow_configs() {
        let route = vec![LinkId(0)];
        let c = ServiceSpec::Datagram.flow_config(route.clone());
        assert_eq!(c.class, ServiceClass::Datagram);
        assert!(c.edge_policer.is_none());

        let c = ServiceSpec::RealtimeBestEffort { priority: 1 }.flow_config(route.clone());
        assert!(matches!(c.spec, FlowSpec::Datagram));
        assert_eq!(c.class, ServiceClass::Predicted { priority: 1 });

        let bucket = TokenBucketSpec::per_packets(85.0, 50.0, 1000);
        let c = ServiceSpec::Predicted {
            priority: 0,
            bucket,
            target_delay: SimTime::from_millis(30),
            loss_rate: 0.001,
            police: PoliceAction::Drop,
        }
        .flow_config(route.clone());
        assert!(matches!(c.spec, FlowSpec::Predicted { .. }));
        assert!(c.edge_policer.is_some());

        let c = ServiceSpec::Guaranteed {
            clock_rate_bps: 170_000.0,
        }
        .flow_config(route);
        assert_eq!(c.spec.clock_rate_bps(), Some(170_000.0));
        assert_eq!(
            ServiceSpec::Guaranteed {
                clock_rate_bps: 170_000.0
            }
            .clock_rate_bps(),
            Some(170_000.0)
        );
        assert_eq!(ServiceSpec::Datagram.clock_rate_bps(), None);
    }

    #[test]
    fn flow_def_builders_compose() {
        let def = FlowDef::guaranteed(1, 2, 250_000.0).source(SourceSpec::cbr(100.0, 1000));
        assert!(matches!(def.route, RouteSpec::Span { first: 1, hops: 2 }));
        assert!(matches!(def.source, SourceSpec::Cbr { .. }));
        let def = def.route(RouteSpec::Path {
            from: NodeId(0),
            to: NodeId(2),
        });
        assert!(matches!(def.route, RouteSpec::Path { .. }));
    }

    #[test]
    fn admission_spec_defaults_match_the_paper() {
        let spec = AdmissionSpec::paper(vec![SimTime::from_millis(30)]);
        assert_eq!(spec.realtime_quota, 0.9);
        assert_eq!(spec.sample_interval, SimTime::SECOND);
        assert!(spec.util_safety_factor.is_none());
        assert_eq!(
            spec.with_util_safety_factor(1.6).util_safety_factor,
            Some(1.6)
        );
    }
}
