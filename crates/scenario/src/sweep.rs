//! Parallel scenario sweeps: parameterize one scenario over axes, fan the
//! points across a thread pool, get deterministic axis-tagged reports back.
//!
//! Every result in CSZ'92 is a *sweep* — the same topology re-run across
//! loads, mixes and disciplines.  This module gives that shape a first-class
//! API:
//!
//! * [`ScenarioSet`] — a set of scenario points built from named axes.
//!   [`ScenarioSet::over`] opens the first axis, [`by`](ScenarioSet::by)
//!   cartesian-extends (the new axis becomes the inner loop), and
//!   [`zip`](ScenarioSet::zip) pairs a new axis element-wise with the
//!   existing points.  Point parameters are plain tuples, so the run
//!   closure destructures them without any stringly-typed lookups; each
//!   point also carries `(axis name, value label)` tags for reports.
//! * [`SweepRunner`] — runs every point through a caller-supplied closure,
//!   either serially ([`SweepRunner::serial`]) or fanned across `N`
//!   OS threads ([`SweepRunner::parallel`], [`SweepRunner::max_parallel`];
//!   `std::thread::scope`, no pool retained between runs).  Each point
//!   builds and runs its own self-contained [`Sim`](crate::Sim) inside its
//!   worker thread.
//! * [`SweepReport`] — one point's result, tagged with the point's index
//!   and axis labels, serializable to JSON (strings escaped through
//!   [`json_escape`](crate::report::json_escape)).
//!
//! # Determinism
//!
//! Results come back **indexed by point order**, not completion order: the
//! runner writes each result into the slot of the point that produced it
//! and joins every worker before returning.  Since a scenario point is a
//! pure function of its parameters and seeds (each `Sim` owns its
//! `Network` + `Signaling` and a private RNG stream), a sweep produces
//! byte-identical [`SweepReport`]s whatever the thread count — pinned by
//! `tests/tests/sweep.rs` and the CI `sweep-smoke` job.
//!
//! ```
//! use ispn_scenario::{ScenarioSet, SweepRunner};
//!
//! let set = ScenarioSet::over("load", [0.5f64, 0.8])
//!     .by("flows", [5usize, 10]);
//! assert_eq!(set.len(), 4);
//! let reports = SweepRunner::parallel(2).run(&set, |&(load, flows)| {
//!     // build a ScenarioBuilder from (load, flows), run it, report…
//!     format!("{load}:{flows}")
//! });
//! assert_eq!(reports[3].result, "0.8:10");
//! assert_eq!(reports[3].tag("flows"), Some("10"));
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ispn_sim::SimTime;

use crate::discipline::DisciplineSpec;
use crate::report::{json_escape, ScenarioReport};

/// A value usable on a sweep axis: cloneable across threads and able to
/// label itself for axis tags.
pub trait AxisValue: Clone + Send + Sync {
    /// The tag label of this value (e.g. `0.8`, `WFQ`, `10`).
    fn axis_label(&self) -> String;
}

macro_rules! axis_value_display {
    ($($t:ty),*) => {$(
        impl AxisValue for $t {
            fn axis_label(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

axis_value_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl AxisValue for f64 {
    /// `{:?}` keeps a decimal point (`1.0`, not `1`), so float axes
    /// round-trip unambiguously.
    fn axis_label(&self) -> String {
        format!("{self:?}")
    }
}

impl AxisValue for &'static str {
    fn axis_label(&self) -> String {
        (*self).to_string()
    }
}

impl AxisValue for String {
    fn axis_label(&self) -> String {
        self.clone()
    }
}

impl AxisValue for DisciplineSpec {
    fn axis_label(&self) -> String {
        self.label().to_string()
    }
}

impl AxisValue for SimTime {
    fn axis_label(&self) -> String {
        format!("{}s", self.as_secs_f64())
    }
}

/// Tuple types that can grow by one element — the machinery behind
/// [`ScenarioSet::by`] / [`ScenarioSet::zip`] keeping point parameters as
/// plain destructurable tuples.  Implemented for arities 0–3 (a sweep with
/// more than four axes wants a purpose-built parameter struct anyway).
pub trait TupleAppend<T> {
    /// The tuple with `T` appended.
    type Out;
    /// Append `value`.
    fn append(self, value: T) -> Self::Out;
}

impl<T> TupleAppend<T> for () {
    type Out = (T,);
    fn append(self, value: T) -> (T,) {
        (value,)
    }
}

impl<A, T> TupleAppend<T> for (A,) {
    type Out = (A, T);
    fn append(self, value: T) -> (A, T) {
        (self.0, value)
    }
}

impl<A, B, T> TupleAppend<T> for (A, B) {
    type Out = (A, B, T);
    fn append(self, value: T) -> (A, B, T) {
        (self.0, self.1, value)
    }
}

impl<A, B, C, T> TupleAppend<T> for (A, B, C) {
    type Out = (A, B, C, T);
    fn append(self, value: T) -> (A, B, C, T) {
        (self.0, self.1, self.2, value)
    }
}

/// One scenario point: axis tags plus the typed parameters the run closure
/// receives.
#[derive(Debug, Clone)]
pub struct SweepPoint<P> {
    /// `(axis name, value label)` pairs in axis-declaration order.
    pub tags: Vec<(String, String)>,
    /// The point's parameters (a tuple, one element per axis).
    pub params: P,
}

/// A set of scenario points spanned by named axes.
#[derive(Debug, Clone)]
pub struct ScenarioSet<P> {
    points: Vec<SweepPoint<P>>,
}

impl ScenarioSet<()> {
    /// A set with a single unparameterized point (useful to run one
    /// scenario through the same machinery as a sweep).
    pub fn single() -> Self {
        ScenarioSet {
            points: vec![SweepPoint {
                tags: Vec::new(),
                params: (),
            }],
        }
    }

    /// Open the first axis: one point per value.
    pub fn over<A: AxisValue>(
        name: impl Into<String>,
        values: impl IntoIterator<Item = A>,
    ) -> ScenarioSet<(A,)> {
        let name = name.into();
        ScenarioSet {
            points: values
                .into_iter()
                .map(|v| SweepPoint {
                    tags: vec![(name.clone(), v.axis_label())],
                    params: (v,),
                })
                .collect(),
        }
    }
}

impl<P: Clone> ScenarioSet<P> {
    /// Cartesian-extend with another axis: every existing point is repeated
    /// once per value, with the new axis as the **inner** loop (the order a
    /// hand-written nested `for` produces).
    ///
    /// # Panics
    /// Panics if `values` is empty — a cartesian product with an empty axis
    /// would silently discard every existing point.
    pub fn by<A: AxisValue>(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = A>,
    ) -> ScenarioSet<P::Out>
    where
        P: TupleAppend<A>,
    {
        let name = name.into();
        let values: Vec<A> = values.into_iter().collect();
        assert!(
            !values.is_empty(),
            "axis {name:?} has no values; a cartesian product with an empty \
             axis would drop every point"
        );
        let mut points = Vec::with_capacity(self.points.len() * values.len());
        for point in self.points {
            for v in &values {
                let mut tags = point.tags.clone();
                tags.push((name.clone(), v.axis_label()));
                points.push(SweepPoint {
                    tags,
                    params: point.params.clone().append(v.clone()),
                });
            }
        }
        ScenarioSet { points }
    }

    /// Zip another axis element-wise against the existing points (the
    /// non-cartesian companion of [`by`](ScenarioSet::by) for axes that
    /// vary together, e.g. a load level and its matching horizon).
    ///
    /// # Panics
    /// Panics unless `values` has exactly one value per existing point.
    pub fn zip<A: AxisValue>(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = A>,
    ) -> ScenarioSet<P::Out>
    where
        P: TupleAppend<A>,
    {
        let name = name.into();
        let values: Vec<A> = values.into_iter().collect();
        assert_eq!(
            values.len(),
            self.points.len(),
            "zipped axis {name:?} must provide exactly one value per point"
        );
        ScenarioSet {
            points: self
                .points
                .into_iter()
                .zip(values)
                .map(|(mut point, v)| {
                    point.tags.push((name.clone(), v.axis_label()));
                    SweepPoint {
                        tags: point.tags,
                        params: point.params.append(v),
                    }
                })
                .collect(),
        }
    }
}

impl<P> ScenarioSet<P> {
    /// The points, in sweep order.
    pub fn points(&self) -> &[SweepPoint<P>] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the set has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// One point's result, tagged with its index and axis labels.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport<R> {
    /// The point's position in sweep order.
    pub index: usize,
    /// The point's `(axis name, value label)` tags.
    pub tags: Vec<(String, String)>,
    /// What the run closure returned for the point.
    pub result: R,
}

impl<R> SweepReport<R> {
    /// The label of one axis, if the point has it.
    pub fn tag(&self, axis: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, label)| label.as_str())
    }

    /// Serialize with a caller-supplied serializer for the result payload
    /// (`body` must emit valid JSON).
    pub fn to_json_with(&self, body: impl Fn(&R) -> String) -> String {
        let axes: String = self
            .tags
            .iter()
            .map(|(name, label)| format!("[\"{}\",\"{}\"]", json_escape(name), json_escape(label)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"index\":{},\"axes\":[{axes}],\"report\":{}}}",
            self.index,
            body(&self.result),
        )
    }
}

impl SweepReport<ScenarioReport> {
    /// Serialize the point: index, axis tags and the scenario report.
    pub fn to_json(&self) -> String {
        self.to_json_with(ScenarioReport::to_json)
    }
}

/// Serialize a whole sweep of scenario reports as one JSON array — the
/// byte-identity surface the serial-vs-parallel acceptance check diffs.
pub fn sweep_to_json(reports: &[SweepReport<ScenarioReport>]) -> String {
    let body: Vec<String> = reports.iter().map(SweepReport::to_json).collect();
    format!("[{}]", body.join(","))
}

/// Fans the points of a [`ScenarioSet`] across a thread pool.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// Run every point on the calling thread, in sweep order.
    pub fn serial() -> Self {
        SweepRunner { threads: 1 }
    }

    /// Fan points across `threads` OS threads (at least one).
    pub fn parallel(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// One thread per core the host offers (falls back to serial when the
    /// parallelism cannot be determined).
    pub fn max_parallel() -> Self {
        SweepRunner {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every point of `set` through `run_point`, returning one
    /// [`SweepReport`] per point **in sweep order** regardless of which
    /// worker finished first.  `run_point` builds, runs and summarizes one
    /// self-contained scenario; it is called exactly once per point.
    ///
    /// # Panics
    /// A panic inside `run_point` propagates once every other in-flight
    /// point has finished (workers are joined by `std::thread::scope`).
    pub fn run<P, R, F>(&self, set: &ScenarioSet<P>, run_point: F) -> Vec<SweepReport<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        let n = set.points.len();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            for (point, slot) in set.points.iter().zip(&slots) {
                *slot.lock().expect("result slot poisoned") = Some(run_point(&point.params));
            }
        } else {
            // Work-stealing by atomic counter: each worker claims the next
            // unclaimed point and writes the result into that point's slot,
            // so completion order cannot leak into the output.
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let result = run_point(&set.points[i].params);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    });
                }
            });
        }
        slots
            .into_iter()
            .enumerate()
            .map(|(index, slot)| SweepReport {
                index,
                tags: set.points[index].tags.clone(),
                result: slot
                    .into_inner()
                    .expect("result slot poisoned")
                    .expect("every point ran to completion"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_axes_nest_like_for_loops() {
        let set = ScenarioSet::over("d", ["WFQ", "FIFO"]).by("load", [1usize, 2, 3]);
        assert_eq!(set.len(), 6);
        let got: Vec<(&str, usize)> = set
            .points()
            .iter()
            .map(|p| (p.params.0, p.params.1))
            .collect();
        assert_eq!(
            got,
            vec![
                ("WFQ", 1),
                ("WFQ", 2),
                ("WFQ", 3),
                ("FIFO", 1),
                ("FIFO", 2),
                ("FIFO", 3)
            ]
        );
        assert_eq!(
            set.points()[4].tags,
            vec![
                ("d".to_string(), "FIFO".to_string()),
                ("load".to_string(), "2".to_string())
            ]
        );
    }

    #[test]
    fn zipped_axes_pair_elementwise() {
        let set = ScenarioSet::over("load", [0.5f64, 1.0, 2.0]).zip("seed", [7u64, 8, 9]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.points()[1].params, (1.0, 8));
        assert_eq!(set.points()[2].tags[0].1, "2.0");
        assert_eq!(set.points()[2].tags[1].1, "9");
    }

    #[test]
    #[should_panic(expected = "exactly one value per point")]
    fn zip_length_mismatch_panics() {
        let _ = ScenarioSet::over("load", [1usize, 2]).zip("seed", [1u64]);
    }

    #[test]
    #[should_panic(expected = "has no values")]
    fn empty_cartesian_axis_panics() {
        let _ = ScenarioSet::over("load", [1usize]).by("d", Vec::<&'static str>::new());
    }

    #[test]
    fn single_point_sets_run_through_the_same_machinery() {
        let set = ScenarioSet::single();
        let out = SweepRunner::serial().run(&set, |_| 42);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].result, 42);
        assert!(out[0].tags.is_empty());
    }

    #[test]
    fn parallel_results_come_back_in_point_order() {
        let set = ScenarioSet::over("i", (0..64usize).collect::<Vec<_>>());
        // Skew the work so late points finish first under parallelism.
        let f = |&(i,): &(usize,)| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            i * i
        };
        let serial = SweepRunner::serial().run(&set, f);
        let parallel = SweepRunner::parallel(8).run(&set, f);
        assert_eq!(serial, parallel);
        for (i, r) in parallel.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.result, i * i);
            assert_eq!(r.tag("i"), Some(i.to_string().as_str()));
        }
    }

    #[test]
    fn sweep_json_tags_every_point_and_escapes_labels() {
        let set = ScenarioSet::over("d", ["evil\"quote"]);
        let out = SweepRunner::serial().run(&set, |_| crate::ScenarioReport {
            horizon_s: 1.0,
            flows: Vec::new(),
            links: Vec::new(),
            classes: Vec::new(),
            disciplines: Vec::new(),
            signaling: None,
        });
        let json = sweep_to_json(&out);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(
            json.contains("\"axes\":[[\"d\",\"evil\\\"quote\"]]"),
            "{json}"
        );
        assert!(json.contains("\"index\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn runner_thread_counts() {
        assert_eq!(SweepRunner::serial().threads(), 1);
        assert_eq!(SweepRunner::parallel(0).threads(), 1);
        assert_eq!(SweepRunner::parallel(6).threads(), 6);
        assert!(SweepRunner::max_parallel().threads() >= 1);
    }
}
