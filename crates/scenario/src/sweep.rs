//! Parallel scenario sweeps: parameterize one scenario over axes, fan the
//! points across a thread pool, get deterministic axis-tagged reports back.
//!
//! Every result in CSZ'92 is a *sweep* — the same topology re-run across
//! loads, mixes and disciplines.  This module gives that shape a first-class
//! API:
//!
//! * [`ScenarioSet`] — a set of scenario points built from named axes.
//!   [`ScenarioSet::over`] opens the first axis, [`by`](ScenarioSet::by)
//!   cartesian-extends (the new axis becomes the inner loop), and
//!   [`zip`](ScenarioSet::zip) pairs a new axis element-wise with the
//!   existing points.  Point parameters are plain tuples, so the run
//!   closure destructures them without any stringly-typed lookups; each
//!   point also carries `(axis name, value label)` tags for reports.
//! * [`SweepRunner`] — runs every point through a caller-supplied closure,
//!   either serially ([`SweepRunner::serial`]) or fanned across `N`
//!   OS threads ([`SweepRunner::parallel`], [`SweepRunner::max_parallel`];
//!   `std::thread::scope`, no pool retained between runs).  Each point
//!   builds and runs its own self-contained [`Sim`](crate::Sim) inside its
//!   worker thread.
//! * [`SweepReport`] — one point's result, tagged with the point's index
//!   and axis labels, serializable to JSON (strings escaped through
//!   [`json_escape`](crate::report::json_escape)).
//! * [`dist::DistRunner`] — the process-level flavor: fan the same points
//!   across supervised **worker subprocesses** speaking the line-framed
//!   JSON protocol of [`wire`], byte-identical to the in-thread runners.
//!   [`worker::serve_worker`] is the loop each experiment bin runs under
//!   `--sweep-worker`, and [`testing::FaultPlan`] injects worker faults
//!   for the supervision tests.
//!
//! # Streaming and fault isolation
//!
//! [`SweepRunner::run_streaming`] is the primitive the other entry points
//! wrap: it emits every point's report to a [`SweepObserver`] the moment
//! the point completes (completion order, from whichever worker thread
//! finished it) while still returning the full `Vec` in point order.
//! Observers are ordinary `Sync` values — a closure, the stderr
//! [`ProgressObserver`], or a [`SweepChannel`] that forwards completions
//! into an `mpsc` receiver.
//!
//! Every point runs under [`std::panic::catch_unwind`], so one exploding
//! scenario no longer takes the whole sweep down: the point's slot carries
//! a structured [`SweepError`] (index, axis tags, panic payload) and every
//! sibling point still runs to completion.  [`SweepRunner::try_run`]
//! surfaces those per-point `Result`s; [`SweepRunner::run`] keeps the
//! historical infallible signature by unwrapping them (panicking with the
//! failing point's tags — after the whole sweep finished).
//!
//! # Determinism
//!
//! Results come back **indexed by point order**, not completion order: the
//! runner writes each result into the slot of the point that produced it
//! and joins every worker before returning.  Since a scenario point is a
//! pure function of its parameters and seeds (each `Sim` owns its
//! `Network` + `Signaling` and a private RNG stream), a sweep produces
//! byte-identical [`SweepReport`]s whatever the thread count — and
//! whatever observer was streaming — pinned by `tests/tests/sweep.rs` and
//! the CI `sweep-smoke` job.
//!
//! ```
//! use ispn_scenario::{ScenarioSet, SweepRunner};
//!
//! let set = ScenarioSet::over("load", [0.5f64, 0.8])
//!     .by("flows", [5usize, 10]);
//! assert_eq!(set.len(), 4);
//! let reports = SweepRunner::parallel(2).run(&set, |&(load, flows)| {
//!     // build a ScenarioBuilder from (load, flows), run it, report…
//!     format!("{load}:{flows}")
//! });
//! assert_eq!(reports[3].result, "0.8:10");
//! assert_eq!(reports[3].tag("flows"), Some("10"));
//! ```

pub mod dist;
pub mod net;
pub mod testing;
pub mod wire;
pub mod worker;

use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use ispn_sim::SimTime;

use crate::discipline::DisciplineSpec;
use crate::report::{json_escape, ScenarioReport};

/// A value usable on a sweep axis: cloneable across threads and able to
/// label itself for axis tags.
pub trait AxisValue: Clone + Send + Sync {
    /// The tag label of this value (e.g. `0.8`, `WFQ`, `10`).
    fn axis_label(&self) -> String;
}

macro_rules! axis_value_display {
    ($($t:ty),*) => {$(
        impl AxisValue for $t {
            fn axis_label(&self) -> String {
                self.to_string()
            }
        }
    )*};
}

axis_value_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl AxisValue for f64 {
    /// `{:?}` keeps a decimal point (`1.0`, not `1`), so float axes
    /// round-trip unambiguously.
    fn axis_label(&self) -> String {
        format!("{self:?}")
    }
}

impl AxisValue for &'static str {
    fn axis_label(&self) -> String {
        (*self).to_string()
    }
}

impl AxisValue for String {
    fn axis_label(&self) -> String {
        self.clone()
    }
}

impl AxisValue for DisciplineSpec {
    fn axis_label(&self) -> String {
        self.label().to_string()
    }
}

impl AxisValue for SimTime {
    fn axis_label(&self) -> String {
        format!("{}s", self.as_secs_f64())
    }
}

/// Tuple types that can grow by one element — the machinery behind
/// [`ScenarioSet::by`] / [`ScenarioSet::zip`] keeping point parameters as
/// plain destructurable tuples.  Implemented for arities 0–3 (a sweep with
/// more than four axes wants a purpose-built parameter struct anyway).
pub trait TupleAppend<T> {
    /// The tuple with `T` appended.
    type Out;
    /// Append `value`.
    fn append(self, value: T) -> Self::Out;
}

impl<T> TupleAppend<T> for () {
    type Out = (T,);
    fn append(self, value: T) -> (T,) {
        (value,)
    }
}

impl<A, T> TupleAppend<T> for (A,) {
    type Out = (A, T);
    fn append(self, value: T) -> (A, T) {
        (self.0, value)
    }
}

impl<A, B, T> TupleAppend<T> for (A, B) {
    type Out = (A, B, T);
    fn append(self, value: T) -> (A, B, T) {
        (self.0, self.1, value)
    }
}

impl<A, B, C, T> TupleAppend<T> for (A, B, C) {
    type Out = (A, B, C, T);
    fn append(self, value: T) -> (A, B, C, T) {
        (self.0, self.1, self.2, value)
    }
}

/// One scenario point: axis tags plus the typed parameters the run closure
/// receives.
#[derive(Debug, Clone)]
pub struct SweepPoint<P> {
    /// `(axis name, value label)` pairs in axis-declaration order.
    pub tags: Vec<(String, String)>,
    /// The point's parameters (a tuple, one element per axis).
    pub params: P,
}

/// A set of scenario points spanned by named axes.
#[derive(Debug, Clone)]
pub struct ScenarioSet<P> {
    points: Vec<SweepPoint<P>>,
}

impl ScenarioSet<()> {
    /// A set with a single unparameterized point (useful to run one
    /// scenario through the same machinery as a sweep).
    pub fn single() -> Self {
        ScenarioSet {
            points: vec![SweepPoint {
                tags: Vec::new(),
                params: (),
            }],
        }
    }

    /// Open the first axis: one point per value.
    pub fn over<A: AxisValue>(
        name: impl Into<String>,
        values: impl IntoIterator<Item = A>,
    ) -> ScenarioSet<(A,)> {
        let name = name.into();
        ScenarioSet {
            points: values
                .into_iter()
                .map(|v| SweepPoint {
                    tags: vec![(name.clone(), v.axis_label())],
                    params: (v,),
                })
                .collect(),
        }
    }
}

impl<P: Clone> ScenarioSet<P> {
    /// Cartesian-extend with another axis: every existing point is repeated
    /// once per value, with the new axis as the **inner** loop (the order a
    /// hand-written nested `for` produces).
    ///
    /// # Panics
    /// Panics if `values` is empty — a cartesian product with an empty axis
    /// would silently discard every existing point.
    pub fn by<A: AxisValue>(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = A>,
    ) -> ScenarioSet<P::Out>
    where
        P: TupleAppend<A>,
    {
        let name = name.into();
        let values: Vec<A> = values.into_iter().collect();
        assert!(
            !values.is_empty(),
            "axis {name:?} has no values; a cartesian product with an empty \
             axis would drop every point"
        );
        let mut points = Vec::with_capacity(self.points.len() * values.len());
        for point in self.points {
            for v in &values {
                let mut tags = point.tags.clone();
                tags.push((name.clone(), v.axis_label()));
                points.push(SweepPoint {
                    tags,
                    params: point.params.clone().append(v.clone()),
                });
            }
        }
        ScenarioSet { points }
    }

    /// Zip another axis element-wise against the existing points (the
    /// non-cartesian companion of [`by`](ScenarioSet::by) for axes that
    /// vary together, e.g. a load level and its matching horizon).
    ///
    /// # Panics
    /// Panics unless `values` has exactly one value per existing point.
    pub fn zip<A: AxisValue>(
        self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = A>,
    ) -> ScenarioSet<P::Out>
    where
        P: TupleAppend<A>,
    {
        let name = name.into();
        let values: Vec<A> = values.into_iter().collect();
        assert_eq!(
            values.len(),
            self.points.len(),
            "zipped axis {name:?} must provide exactly one value per point"
        );
        ScenarioSet {
            points: self
                .points
                .into_iter()
                .zip(values)
                .map(|(mut point, v)| {
                    point.tags.push((name.clone(), v.axis_label()));
                    SweepPoint {
                        tags: point.tags,
                        params: point.params.append(v),
                    }
                })
                .collect(),
        }
    }
}

impl<P> ScenarioSet<P> {
    /// The points, in sweep order.
    pub fn points(&self) -> &[SweepPoint<P>] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the set has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// Structured record of a sweep point that panicked: which point it was
/// (index and axis tags) and what the panic said.  Produced by the
/// per-point [`catch_unwind`](std::panic::catch_unwind) wrapper, so a
/// poisoned point surfaces here instead of aborting its sibling points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// The failing point's position in sweep order.
    pub index: usize,
    /// The failing point's `(axis name, value label)` tags.
    pub tags: Vec<(String, String)>,
    /// The panic payload rendered as text (`&str` / `String` payloads pass
    /// through verbatim; anything else becomes a placeholder).
    pub payload: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "point {}", self.index)?;
        if !self.tags.is_empty() {
            let tags: Vec<String> = self
                .tags
                .iter()
                .map(|(name, label)| format!("{name}={label}"))
                .collect();
            write!(f, " ({})", tags.join(", "))?;
        }
        write!(f, " panicked: {}", self.payload)
    }
}

impl std::error::Error for SweepError {}

/// The outcome of one fault-isolated sweep point: the closure's result, or
/// the structured record of its panic.
pub type PointResult<R> = Result<R, SweepError>;

/// Render a caught panic payload as text.
pub(crate) fn panic_payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One point's result, tagged with its index and axis labels.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport<R> {
    /// The point's position in sweep order.
    pub index: usize,
    /// The point's `(axis name, value label)` tags.
    pub tags: Vec<(String, String)>,
    /// What the run closure returned for the point.
    pub result: R,
}

/// The shared point serializer: `index`, `axes`, then one keyed body —
/// `"report"` for results, `"error"` for panics — so the checked and
/// unchecked JSON surfaces are byte-identical wherever both succeed.
fn point_json(index: usize, tags: &[(String, String)], key: &str, body: &str) -> String {
    let axes: String = tags
        .iter()
        .map(|(name, label)| format!("[\"{}\",\"{}\"]", json_escape(name), json_escape(label)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"index\":{index},\"axes\":[{axes}],\"{key}\":{body}}}")
}

impl<R> SweepReport<R> {
    /// The label of one axis, if the point has it.
    pub fn tag(&self, axis: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, label)| label.as_str())
    }

    /// Serialize with a caller-supplied serializer for the result payload
    /// (`body` must emit valid JSON).
    pub fn to_json_with(&self, body: impl Fn(&R) -> String) -> String {
        point_json(self.index, &self.tags, "report", &body(&self.result))
    }
}

impl<R> SweepReport<PointResult<R>> {
    /// Serialize a checked report: successful points carry `"report"`
    /// (byte-identical to [`to_json_with`](SweepReport::to_json_with) on an
    /// unchecked report), panicked points carry `"error"` with the panic
    /// payload.
    pub fn to_json_checked_with(&self, body: impl Fn(&R) -> String) -> String {
        match &self.result {
            Ok(result) => point_json(self.index, &self.tags, "report", &body(result)),
            Err(e) => point_json(
                self.index,
                &self.tags,
                "error",
                &format!("\"{}\"", json_escape(&e.payload)),
            ),
        }
    }

    /// Unwrap a checked report into the historical infallible shape.
    ///
    /// # Panics
    /// Panics with the failing point's tags and panic payload if the point
    /// errored.
    pub fn expect_ok(self) -> SweepReport<R> {
        match self.result {
            Ok(result) => SweepReport {
                index: self.index,
                tags: self.tags,
                result,
            },
            Err(e) => panic!("sweep {e}"),
        }
    }
}

impl SweepReport<ScenarioReport> {
    /// Serialize the point: index, axis tags and the scenario report.
    pub fn to_json(&self) -> String {
        self.to_json_with(ScenarioReport::to_json)
    }
}

impl SweepReport<PointResult<ScenarioReport>> {
    /// Serialize the checked point: index, axis tags and the scenario
    /// report — or the panic payload under `"error"`.
    pub fn to_json(&self) -> String {
        self.to_json_checked_with(ScenarioReport::to_json)
    }
}

/// Serialize a whole sweep of scenario reports as one JSON array — the
/// byte-identity surface the serial-vs-parallel acceptance check diffs.
pub fn sweep_to_json(reports: &[SweepReport<ScenarioReport>]) -> String {
    let body: Vec<String> = reports
        .iter()
        .map(|r: &SweepReport<ScenarioReport>| r.to_json())
        .collect();
    format!("[{}]", body.join(","))
}

/// Serialize a checked sweep ([`SweepRunner::try_run`] /
/// [`SweepRunner::run_streaming`]) as one JSON array.  When every point
/// succeeded the output is byte-identical to [`sweep_to_json`] on the
/// unchecked reports.
pub fn sweep_to_json_checked(reports: &[SweepReport<PointResult<ScenarioReport>>]) -> String {
    let body: Vec<String> = reports
        .iter()
        .map(|r: &SweepReport<PointResult<ScenarioReport>>| r.to_json())
        .collect();
    format!("[{}]", body.join(","))
}

/// Number of panicked points in a checked sweep — the exit-status check
/// for command-line drivers: a bin that rendered a partially failed sweep
/// should still exit nonzero so CI and scripts see the failure.
pub fn failed_points<R>(reports: &[SweepReport<PointResult<R>>]) -> usize {
    reports.iter().filter(|r| r.result.is_err()).count()
}

/// Out-of-band per-point run stats: wall-clock data measured around one
/// point's execution, streamed to the observer **separately** from the
/// point's result so it can never leak into the byte-identity surface.
/// For a distributed sweep the wall time is the one the *worker process*
/// measured around the point's closure (shipped in a telemetry wire
/// frame); in-process runners measure around the same closure directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointTelemetry {
    /// The point's position in sweep order.
    pub index: usize,
    /// Wall-clock seconds spent running the point's closure.
    pub wall_s: f64,
    /// Parent-measured round-trip seconds for the point in a
    /// *distributed* sweep: from dispatching the point's request (or, for
    /// the later points of a batch, from the previous point's completion)
    /// to receiving its final frame.  `rtt_s − wall_s` is the wire and
    /// supervision overhead the batched-request mode exists to amortize.
    /// `None` for in-process runners, where there is no wire to measure.
    pub rtt_s: Option<f64>,
}

/// Receives each point's report the moment the point completes.
///
/// Implementations must be `Sync`: a parallel runner calls
/// [`point_completed`](SweepObserver::point_completed) from whichever
/// worker thread finished the point, so calls arrive in **completion
/// order** and may be concurrent.  The runner still returns the full
/// result `Vec` in point order afterwards, byte-identical to an unobserved
/// run.  Any `Fn(&SweepReport<PointResult<R>>) + Sync` closure is an
/// observer.
pub trait SweepObserver<R>: Sync {
    /// Called once, before any point runs, with the number of points.
    fn sweep_started(&self, _total: usize) {}

    /// Called with a point's out-of-band run stats, just before that
    /// point's [`point_completed`](SweepObserver::point_completed) (same
    /// thread, same ordering caveats).  Default: ignore — telemetry is
    /// opt-in for observers exactly as it is for reports.  A distributed
    /// runner whose worker died mid-point may complete a point without
    /// ever delivering its telemetry.
    fn point_telemetry(&self, _telemetry: &PointTelemetry) {}

    /// Called as each point completes (completion order; possibly from a
    /// worker thread).  Panicked points arrive as `Err` — streaming
    /// consumers see the failure as soon as it happens, not after the
    /// sweep returns.
    fn point_completed(&self, report: &SweepReport<PointResult<R>>);
}

impl<R, F> SweepObserver<R> for F
where
    F: Fn(&SweepReport<PointResult<R>>) + Sync,
{
    fn point_completed(&self, report: &SweepReport<PointResult<R>>) {
        self(report)
    }
}

/// The do-nothing observer ([`SweepRunner::try_run`] streams into it).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl<R> SweepObserver<R> for NullObserver {
    fn point_completed(&self, _report: &SweepReport<PointResult<R>>) {}
}

/// A progress observer for command-line sweeps: one stderr line per
/// completed point (`[done/total] axis=value … done (r.r pts/s, ETA Ns)`,
/// or the panic payload for a failed point).  This is what the experiment
/// bins wire up under `--stream`; stdout stays untouched, so the final
/// rendered report is byte-identical to a batch run.  The pace and ETA are
/// wall-clock measured *outside* the sim — they exist only on stderr and
/// never influence any result.
#[derive(Debug, Default)]
pub struct ProgressObserver {
    done: AtomicUsize,
    total: AtomicUsize,
    /// When the current sweep started (reset by `sweep_started`), for the
    /// pts/sec + ETA suffix.
    started: Mutex<Option<std::time::Instant>>,
}

impl ProgressObserver {
    /// A fresh progress observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Completions counted so far.  Every point is counted **exactly
    /// once**, whether it ran in-thread or in a worker process and whether
    /// it succeeded or was poisoned — a distributed runner reports each
    /// point's final outcome once, even when a worker death forced its
    /// siblings onto other workers.
    pub fn completed(&self) -> usize {
        self.done.load(Ordering::SeqCst)
    }
}

impl ProgressObserver {
    /// The ` (r.r pts/s, ETA Ns)` suffix, empty until a measurable amount
    /// of wall time has passed.
    fn pace_suffix(&self, done: usize, total: usize) -> String {
        let elapsed = self
            .started
            .lock()
            .expect("progress clock poisoned")
            .map(|t0| t0.elapsed().as_secs_f64());
        match elapsed {
            Some(elapsed) if elapsed > 0.0 && done > 0 => {
                let rate = done as f64 / elapsed;
                let remaining = total.saturating_sub(done);
                format!(" ({rate:.1} pts/s, ETA {:.0}s)", remaining as f64 / rate)
            }
            _ => String::new(),
        }
    }
}

impl<R> SweepObserver<R> for ProgressObserver {
    fn sweep_started(&self, total: usize) {
        // Reset the completion count: an observer reused across runs used
        // to keep counting from the previous sweep's total, so `[done/total]`
        // overflowed and `completed()` double-counted.  The pace clock
        // restarts with it.
        self.done.store(0, Ordering::SeqCst);
        self.total.store(total, Ordering::SeqCst);
        // ispn-lint: allow(wall-clock) -- progress pacing (pts/s, ETA) on
        // stderr only; stdout and report bytes never see this clock.
        #[allow(clippy::disallowed_methods)]
        let now = std::time::Instant::now();
        *self.started.lock().expect("progress clock poisoned") = Some(now);
    }

    fn point_completed(&self, report: &SweepReport<PointResult<R>>) {
        let done = self.done.fetch_add(1, Ordering::SeqCst) + 1;
        let total = self.total.load(Ordering::SeqCst);
        let tags: Vec<String> = report
            .tags
            .iter()
            .map(|(name, label)| format!("{name}={label}"))
            .collect();
        let tags = tags.join(" ");
        let pace = self.pace_suffix(done, total);
        match &report.result {
            Ok(_) => eprintln!("[{done}/{total}] {tags} done{pace}"),
            Err(e) => eprintln!("[{done}/{total}] {tags} PANICKED: {}{pace}", e.payload),
        }
    }
}

/// Aggregate of a sweep's [`PointTelemetry`] stream: how many points
/// reported, total/mean wall time, the slowest point — and, for
/// distributed sweeps, the per-point round-trip overhead (time the parent
/// spent on the wire and in supervision beyond the worker's own wall
/// time), which is what request batching amortizes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepTelemetry {
    points: usize,
    total_wall_s: f64,
    max_wall_s: f64,
    max_index: usize,
    rtt_points: usize,
    total_overhead_s: f64,
}

impl SweepTelemetry {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one point's stats in.
    pub fn record(&mut self, t: &PointTelemetry) {
        self.points += 1;
        self.total_wall_s += t.wall_s;
        if self.points == 1 || t.wall_s > self.max_wall_s {
            self.max_wall_s = t.wall_s;
            self.max_index = t.index;
        }
        if let Some(rtt_s) = t.rtt_s {
            self.rtt_points += 1;
            // Clamped at zero: the two clocks (worker wall vs parent
            // round-trip) are different instants on possibly different
            // machines, and a tiny negative "overhead" is clock noise,
            // not information.
            self.total_overhead_s += (rtt_s - t.wall_s).max(0.0);
        }
    }

    /// Number of points that reported telemetry.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Total wall-clock seconds across the reporting points (note this
    /// sums *per-point* time: parallel execution can make it exceed the
    /// sweep's elapsed time).
    pub fn total_wall_s(&self) -> f64 {
        self.total_wall_s
    }

    /// Mean per-point wall-clock seconds (0 before any point reported).
    pub fn mean_wall_s(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.total_wall_s / self.points as f64
        }
    }

    /// The slowest point's `(index, wall seconds)`, if any reported.
    pub fn slowest(&self) -> Option<(usize, f64)> {
        (self.points > 0).then_some((self.max_index, self.max_wall_s))
    }

    /// Number of points that reported a parent-side round-trip time
    /// (distributed sweeps only; 0 for in-process runs).
    pub fn rtt_points(&self) -> usize {
        self.rtt_points
    }

    /// Total round-trip overhead seconds across the reporting points:
    /// `Σ max(0, rtt − wall)`, the time spent on the wire and in
    /// supervision rather than inside point closures.
    pub fn total_overhead_s(&self) -> f64 {
        self.total_overhead_s
    }

    /// Mean per-point round-trip overhead seconds (0 before any
    /// round-trip reported).  Batched dispatch exists to shrink this.
    pub fn mean_overhead_s(&self) -> f64 {
        if self.rtt_points == 0 {
            0.0
        } else {
            self.total_overhead_s / self.rtt_points as f64
        }
    }

    /// A one-paragraph human-readable summary.
    pub fn render(&self) -> String {
        match self.slowest() {
            None => "sweep telemetry: no points reported".to_string(),
            Some((index, max)) => {
                let overhead = if self.rtt_points > 0 {
                    format!(
                        ", {:.6}s mean round-trip overhead over {} points",
                        self.mean_overhead_s(),
                        self.rtt_points
                    )
                } else {
                    String::new()
                };
                format!(
                    "sweep telemetry: {} points, {:.3}s total point wall time \
                     ({:.3}s mean), slowest point {} at {:.3}s{overhead}",
                    self.points,
                    self.total_wall_s,
                    self.mean_wall_s(),
                    index,
                    max
                )
            }
        }
    }

    /// Serialize as one JSON object (the `--telemetry=FILE` payload).
    pub fn to_json(&self) -> String {
        let slowest = match self.slowest() {
            Some((index, _)) => index.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"points\":{},\"total_wall_s\":{},\"mean_wall_s\":{},\
             \"max_wall_s\":{},\"max_index\":{slowest},\"rtt_points\":{},\
             \"total_overhead_s\":{},\"mean_overhead_s\":{}}}",
            self.points,
            wire::wire_f64(self.total_wall_s),
            wire::wire_f64(self.mean_wall_s()),
            wire::wire_f64(self.max_wall_s),
            self.rtt_points,
            wire::wire_f64(self.total_overhead_s),
            wire::wire_f64(self.mean_overhead_s())
        )
    }
}

/// An observer wrapper that aggregates the telemetry stream into a
/// [`SweepTelemetry`] while forwarding every callback to an inner
/// observer.  This is what the bins' `--telemetry` flag wires around their
/// usual observer: the inner one keeps rendering progress, the collector
/// accumulates the summary to print after the sweep.
pub struct TelemetryCollector<'a, R> {
    inner: &'a dyn SweepObserver<R>,
    aggregate: Mutex<SweepTelemetry>,
}

impl<'a, R> TelemetryCollector<'a, R> {
    /// Wrap `inner`, starting from an empty aggregate.
    pub fn new(inner: &'a dyn SweepObserver<R>) -> Self {
        TelemetryCollector {
            inner,
            aggregate: Mutex::new(SweepTelemetry::new()),
        }
    }

    /// The aggregate so far (a copy; the collector keeps accumulating).
    pub fn summary(&self) -> SweepTelemetry {
        *self.aggregate.lock().expect("telemetry aggregate poisoned")
    }
}

impl<R> std::fmt::Debug for TelemetryCollector<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryCollector")
            .field("aggregate", &self.summary())
            .finish_non_exhaustive()
    }
}

impl<R> SweepObserver<R> for TelemetryCollector<'_, R> {
    fn sweep_started(&self, total: usize) {
        // A collector reused across sweeps restarts its aggregate, like
        // ProgressObserver restarts its counters.
        *self.aggregate.lock().expect("telemetry aggregate poisoned") = SweepTelemetry::new();
        self.inner.sweep_started(total);
    }

    fn point_telemetry(&self, telemetry: &PointTelemetry) {
        self.aggregate
            .lock()
            .expect("telemetry aggregate poisoned")
            .record(telemetry);
        self.inner.point_telemetry(telemetry);
    }

    fn point_completed(&self, report: &SweepReport<PointResult<R>>) {
        self.inner.point_completed(report);
    }
}

/// The channel flavor of streaming: an observer that clones each completed
/// report into an [`mpsc`] channel, so a consumer thread can render or
/// persist points while the sweep is still running.  The receiver sees
/// completion order; the runner's return value stays in point order.
#[derive(Debug)]
pub struct SweepChannel<R> {
    tx: Mutex<mpsc::Sender<SweepReport<PointResult<R>>>>,
}

impl<R> SweepChannel<R> {
    /// A connected observer/receiver pair.
    pub fn new() -> (Self, mpsc::Receiver<SweepReport<PointResult<R>>>) {
        let (tx, rx) = mpsc::channel();
        (SweepChannel { tx: Mutex::new(tx) }, rx)
    }
}

impl<R: Clone + Send> SweepObserver<R> for SweepChannel<R> {
    fn point_completed(&self, report: &SweepReport<PointResult<R>>) {
        // A dropped receiver just means nobody is listening any more; the
        // sweep itself must not care.
        let _ = self
            .tx
            .lock()
            .expect("sweep channel poisoned")
            .send(report.clone());
    }
}

/// Fans the points of a [`ScenarioSet`] across a thread pool.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    threads: usize,
}

impl SweepRunner {
    /// Run every point on the calling thread, in sweep order.
    pub fn serial() -> Self {
        SweepRunner { threads: 1 }
    }

    /// Fan points across `threads` OS threads (at least one).
    pub fn parallel(threads: usize) -> Self {
        SweepRunner {
            threads: threads.max(1),
        }
    }

    /// One thread per core the host offers (falls back to serial when the
    /// parallelism cannot be determined).
    pub fn max_parallel() -> Self {
        SweepRunner {
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run every point of `set` through `run_point`, returning one
    /// [`SweepReport`] per point **in sweep order** regardless of which
    /// worker finished first.  `run_point` builds, runs and summarizes one
    /// self-contained scenario; it is called exactly once per point.
    ///
    /// # Panics
    /// A panic inside `run_point` is caught per point ([`try_run`] exposes
    /// it as a [`SweepError`]); this infallible wrapper re-panics with the
    /// failing point's index, tags and payload — but only after every
    /// sibling point ran to completion.
    ///
    /// [`try_run`]: SweepRunner::try_run
    pub fn run<P, R, F>(&self, set: &ScenarioSet<P>, run_point: F) -> Vec<SweepReport<R>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        self.try_run(set, run_point)
            .into_iter()
            .map(SweepReport::expect_ok)
            .collect()
    }

    /// [`run`](SweepRunner::run) with per-point fault isolation and no
    /// observer: every point's slot carries `Ok(result)` or the
    /// [`SweepError`] describing its panic, and a poisoned point never
    /// aborts its siblings.
    pub fn try_run<P, R, F>(
        &self,
        set: &ScenarioSet<P>,
        run_point: F,
    ) -> Vec<SweepReport<PointResult<R>>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        self.run_streaming(set, run_point, &NullObserver)
    }

    /// The streaming core: run every point of `set` through `run_point`,
    /// handing each completed point's report to `observer` **the moment it
    /// completes** (completion order, from the finishing worker thread),
    /// then return the full checked report list in sweep order — with the
    /// same per-point fault isolation as [`try_run`](SweepRunner::try_run),
    /// and byte-identical results to a serial or unobserved run.
    ///
    /// # Panics
    /// Never from `run_point` (point panics are caught into
    /// [`SweepError`]s); a panic inside the observer itself still
    /// propagates.
    pub fn run_streaming<P, R, F, O>(
        &self,
        set: &ScenarioSet<P>,
        run_point: F,
        observer: &O,
    ) -> Vec<SweepReport<PointResult<R>>>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
        O: SweepObserver<R> + ?Sized,
    {
        let n = set.points.len();
        observer.sweep_started(n);
        // One point, fault-isolated: a panic in `run_point` becomes the
        // point's `SweepError` instead of unwinding through the sweep.
        // The wall time rides back separately — out-of-band stats, never
        // part of the report.
        let run_one = |index: usize| -> (SweepReport<PointResult<R>>, PointTelemetry) {
            let point = &set.points[index];
            // ispn-lint: allow(wall-clock) -- per-point wall-time telemetry,
            // carried out-of-band (PointTelemetry), never in the report.
            #[allow(clippy::disallowed_methods)]
            let started = std::time::Instant::now();
            let result = std::panic::catch_unwind(AssertUnwindSafe(|| run_point(&point.params)))
                .map_err(|payload| SweepError {
                    index,
                    tags: point.tags.clone(),
                    payload: panic_payload_text(payload.as_ref()),
                });
            let telemetry = PointTelemetry {
                index,
                wall_s: started.elapsed().as_secs_f64(),
                // No wire, no round-trip: the closure ran right here.
                rtt_s: None,
            };
            (
                SweepReport {
                    index,
                    tags: point.tags.clone(),
                    result,
                },
                telemetry,
            )
        };
        let workers = self.threads.min(n.max(1));
        if workers <= 1 {
            let mut out = Vec::with_capacity(n);
            for index in 0..n {
                let (report, telemetry) = run_one(index);
                observer.point_telemetry(&telemetry);
                observer.point_completed(&report);
                out.push(report);
            }
            return out;
        }
        // Work-stealing by atomic counter: each worker claims the next
        // unclaimed point and writes the report into that point's slot, so
        // completion order cannot leak into the output (only into the
        // observer, which is its contract).
        let slots: Vec<Mutex<Option<SweepReport<PointResult<R>>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (report, telemetry) = run_one(i);
                    observer.point_telemetry(&telemetry);
                    observer.point_completed(&report);
                    *slots[i].lock().expect("result slot poisoned") = Some(report);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every point produced a report (panics are caught per point)")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_axes_nest_like_for_loops() {
        let set = ScenarioSet::over("d", ["WFQ", "FIFO"]).by("load", [1usize, 2, 3]);
        assert_eq!(set.len(), 6);
        let got: Vec<(&str, usize)> = set
            .points()
            .iter()
            .map(|p| (p.params.0, p.params.1))
            .collect();
        assert_eq!(
            got,
            vec![
                ("WFQ", 1),
                ("WFQ", 2),
                ("WFQ", 3),
                ("FIFO", 1),
                ("FIFO", 2),
                ("FIFO", 3)
            ]
        );
        assert_eq!(
            set.points()[4].tags,
            vec![
                ("d".to_string(), "FIFO".to_string()),
                ("load".to_string(), "2".to_string())
            ]
        );
    }

    #[test]
    fn zipped_axes_pair_elementwise() {
        let set = ScenarioSet::over("load", [0.5f64, 1.0, 2.0]).zip("seed", [7u64, 8, 9]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.points()[1].params, (1.0, 8));
        assert_eq!(set.points()[2].tags[0].1, "2.0");
        assert_eq!(set.points()[2].tags[1].1, "9");
    }

    #[test]
    #[should_panic(expected = "exactly one value per point")]
    fn zip_length_mismatch_panics() {
        let _ = ScenarioSet::over("load", [1usize, 2]).zip("seed", [1u64]);
    }

    #[test]
    #[should_panic(expected = "has no values")]
    fn empty_cartesian_axis_panics() {
        let _ = ScenarioSet::over("load", [1usize]).by("d", Vec::<&'static str>::new());
    }

    #[test]
    fn single_point_sets_run_through_the_same_machinery() {
        let set = ScenarioSet::single();
        let out = SweepRunner::serial().run(&set, |_| 42);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].result, 42);
        assert!(out[0].tags.is_empty());
    }

    #[test]
    fn parallel_results_come_back_in_point_order() {
        let set = ScenarioSet::over("i", (0..64usize).collect::<Vec<_>>());
        // Skew the work so late points finish first under parallelism.
        let f = |&(i,): &(usize,)| {
            if i < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            i * i
        };
        let serial = SweepRunner::serial().run(&set, f);
        let parallel = SweepRunner::parallel(8).run(&set, f);
        assert_eq!(serial, parallel);
        for (i, r) in parallel.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.result, i * i);
            assert_eq!(r.tag("i"), Some(i.to_string().as_str()));
        }
    }

    #[test]
    fn sweep_json_tags_every_point_and_escapes_labels() {
        let set = ScenarioSet::over("d", ["evil\"quote"]);
        let out = SweepRunner::serial().run(&set, |_| crate::ScenarioReport {
            horizon_s: 1.0,
            flows: Vec::new(),
            links: Vec::new(),
            classes: Vec::new(),
            disciplines: Vec::new(),
            signaling: None,
            telemetry: None,
        });
        let json = sweep_to_json(&out);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(
            json.contains("\"axes\":[[\"d\",\"evil\\\"quote\"]]"),
            "{json}"
        );
        assert!(json.contains("\"index\":0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn runner_thread_counts() {
        assert_eq!(SweepRunner::serial().threads(), 1);
        assert_eq!(SweepRunner::parallel(0).threads(), 1);
        assert_eq!(SweepRunner::parallel(6).threads(), 6);
        assert!(SweepRunner::max_parallel().threads() >= 1);
    }

    #[test]
    fn a_panicking_point_is_isolated_and_named() {
        let set = ScenarioSet::over("load", [1usize, 2, 3, 4]);
        let f = |&(load,): &(usize,)| {
            assert!(load != 3, "load 3 is poisoned");
            load * 10
        };
        for runner in [SweepRunner::serial(), SweepRunner::parallel(4)] {
            let reports = runner.try_run(&set, f);
            assert_eq!(reports.len(), 4);
            assert_eq!(failed_points(&reports), 1);
            // Sibling points all completed…
            assert_eq!(reports[0].result, Ok(10));
            assert_eq!(reports[1].result, Ok(20));
            assert_eq!(reports[3].result, Ok(40));
            // …and the poisoned one names itself.
            let err = reports[2].result.as_ref().unwrap_err();
            assert_eq!(err.index, 2);
            assert_eq!(err.tags, vec![("load".to_string(), "3".to_string())]);
            assert!(err.payload.contains("load 3 is poisoned"), "{err}");
            assert!(err.to_string().contains("load=3"), "{err}");
        }
    }

    #[test]
    #[should_panic(expected = "load=3")]
    fn infallible_run_names_the_failing_point() {
        let set = ScenarioSet::over("load", [1usize, 3]);
        let _ = SweepRunner::serial().run(&set, |&(load,): &(usize,)| {
            assert!(load != 3, "boom");
            load
        });
    }

    #[test]
    fn streaming_observes_every_point_and_returns_point_order() {
        let set = ScenarioSet::over("i", (0..32usize).collect::<Vec<_>>());
        let f = |&(i,): &(usize,)| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i + 100
        };
        let seen = Mutex::new(Vec::new());
        let observer = |report: &SweepReport<PointResult<usize>>| {
            seen.lock()
                .unwrap()
                .push((report.index, *report.result.as_ref().unwrap()));
        };
        let streamed = SweepRunner::parallel(8).run_streaming(&set, f, &observer);
        // Every point was emitted exactly once before the sweep returned…
        let mut seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 32);
        seen.sort();
        assert_eq!(seen, (0..32usize).map(|i| (i, i + 100)).collect::<Vec<_>>());
        // …and the returned reports are in point order, matching serial.
        let serial = SweepRunner::serial().try_run(&set, f);
        assert_eq!(streamed, serial);
        for (i, r) in streamed.iter().enumerate() {
            assert_eq!(r.index, i);
        }
    }

    #[test]
    fn channel_observer_streams_completions() {
        let set = ScenarioSet::over("x", [1u64, 2, 3]);
        let (tx, rx) = SweepChannel::new();
        let reports = SweepRunner::parallel(2).run_streaming(&set, |&(x,)| x * x, &tx);
        drop(tx);
        let mut streamed: Vec<u64> = rx
            .into_iter()
            .map(|r| r.result.expect("no panics here"))
            .collect();
        streamed.sort();
        assert_eq!(streamed, vec![1, 4, 9]);
        assert_eq!(reports.len(), 3);
    }

    #[test]
    fn checked_json_matches_unchecked_on_success_and_carries_errors() {
        let set = ScenarioSet::over("d", ["ok"]);
        let report = || crate::ScenarioReport {
            horizon_s: 1.0,
            flows: Vec::new(),
            links: Vec::new(),
            classes: Vec::new(),
            disciplines: Vec::new(),
            signaling: None,
            telemetry: None,
        };
        let plain = SweepRunner::serial().run(&set, |_| report());
        let checked = SweepRunner::serial().try_run(&set, |_| report());
        assert_eq!(sweep_to_json(&plain), sweep_to_json_checked(&checked));

        // A panicked point serializes its payload under "error" (escaped).
        let poisoned: SweepReport<PointResult<crate::ScenarioReport>> = SweepReport {
            index: 1,
            tags: vec![("d".to_string(), "bad".to_string())],
            result: Err(SweepError {
                index: 1,
                tags: vec![("d".to_string(), "bad".to_string())],
                payload: "evil \"quote\"".to_string(),
            }),
        };
        let json = poisoned.to_json();
        assert!(json.contains("\"error\":\"evil \\\"quote\\\"\""), "{json}");
        assert!(!json.contains("\"report\""), "{json}");
    }

    #[test]
    fn progress_observer_resets_its_counter_per_sweep() {
        let observer = ProgressObserver::new();
        let small = ScenarioSet::over("i", [1usize, 2]);
        let big = ScenarioSet::over("i", (0..5usize).collect::<Vec<_>>());
        let _ = SweepRunner::serial().run_streaming(&big, |&(i,)| i, &observer);
        assert_eq!(observer.completed(), 5);
        // Reusing the observer must restart from zero, not keep counting.
        let _ = SweepRunner::serial().run_streaming(&small, |&(i,)| i, &observer);
        assert_eq!(observer.completed(), 2);
    }

    #[test]
    fn every_point_streams_telemetry_with_positive_wall_time() {
        let set = ScenarioSet::over("i", (0..8usize).collect::<Vec<_>>());
        let seen: Mutex<Vec<PointTelemetry>> = Mutex::new(Vec::new());
        struct Capture<'a>(&'a Mutex<Vec<PointTelemetry>>);
        impl<R> SweepObserver<R> for Capture<'_> {
            fn point_telemetry(&self, t: &PointTelemetry) {
                self.0.lock().unwrap().push(*t);
            }
            fn point_completed(&self, _report: &SweepReport<PointResult<R>>) {}
        }
        for runner in [SweepRunner::serial(), SweepRunner::parallel(4)] {
            seen.lock().unwrap().clear();
            let _ = runner.run_streaming(&set, |&(i,)| i, &Capture(&seen));
            let mut indices: Vec<usize> = seen.lock().unwrap().iter().map(|t| t.index).collect();
            indices.sort_unstable();
            assert_eq!(indices, (0..8).collect::<Vec<_>>());
            assert!(seen.lock().unwrap().iter().all(|t| t.wall_s >= 0.0));
        }
    }

    #[test]
    fn telemetry_collector_aggregates_and_resets_per_sweep() {
        let mut agg = SweepTelemetry::new();
        assert_eq!(agg.points(), 0);
        assert_eq!(agg.slowest(), None);
        agg.record(&PointTelemetry {
            index: 0,
            wall_s: 1.0,
            rtt_s: None,
        });
        agg.record(&PointTelemetry {
            index: 3,
            wall_s: 4.0,
            rtt_s: Some(4.5),
        });
        agg.record(&PointTelemetry {
            index: 5,
            wall_s: 1.0,
            // Parent clock behind the worker clock: clamps to zero
            // overhead instead of cancelling real overhead elsewhere.
            rtt_s: Some(0.9),
        });
        assert_eq!(agg.points(), 3);
        assert_eq!(agg.total_wall_s(), 6.0);
        assert_eq!(agg.mean_wall_s(), 2.0);
        assert_eq!(agg.slowest(), Some((3, 4.0)));
        assert_eq!(agg.rtt_points(), 2);
        assert_eq!(agg.total_overhead_s(), 0.5);
        assert_eq!(agg.mean_overhead_s(), 0.25);
        assert!(agg.render().contains("slowest point 3"));
        assert!(
            agg.render().contains("round-trip overhead over 2 points"),
            "{}",
            agg.render()
        );
        assert_eq!(
            agg.to_json(),
            "{\"points\":3,\"total_wall_s\":6.0,\"mean_wall_s\":2.0,\
             \"max_wall_s\":4.0,\"max_index\":3,\"rtt_points\":2,\
             \"total_overhead_s\":0.5,\"mean_overhead_s\":0.25}"
        );

        // The collector wrapper accumulates the stream and forwards to the
        // inner observer; a new sweep restarts its aggregate.
        let set = ScenarioSet::over("i", [1usize, 2, 3]);
        let inner = ProgressObserver::new();
        let collector = TelemetryCollector::new(&inner);
        let _ = SweepRunner::parallel(2).run_streaming(&set, |&(i,)| i, &collector);
        assert_eq!(collector.summary().points(), 3);
        assert_eq!(inner.completed(), 3);
        let pair = ScenarioSet::over("i", [1usize, 2]);
        let _ = SweepRunner::serial().run_streaming(&pair, |&(i,)| i, &collector);
        assert_eq!(collector.summary().points(), 2);
    }

    #[test]
    fn empty_sweep_telemetry_serializes_null_slowest() {
        let agg = SweepTelemetry::new();
        assert!(agg.render().contains("no points reported"));
        assert_eq!(
            agg.to_json(),
            "{\"points\":0,\"total_wall_s\":0.0,\"mean_wall_s\":0.0,\
             \"max_wall_s\":0.0,\"max_index\":null,\"rtt_points\":0,\
             \"total_overhead_s\":0.0,\"mean_overhead_s\":0.0}"
        );
    }

    #[test]
    fn non_string_panic_payloads_get_a_placeholder() {
        let set = ScenarioSet::over("i", [0usize]);
        let reports = SweepRunner::serial().try_run(&set, |_| {
            std::panic::panic_any(42usize);
            // The closure must still name its return type for inference.
            #[allow(unreachable_code)]
            ()
        });
        let err = reports[0].result.as_ref().unwrap_err();
        assert_eq!(err.payload, "non-string panic payload");
    }
}
