//! The vocabulary of the signaling protocol: request identities and the
//! events the engine reports back to its driver.

use ispn_core::FlowId;
use ispn_net::LinkId;
use ispn_sim::SimTime;

/// Identity of one signaling transaction (a setup or a renegotiation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// A completed signaling transaction, reported by
/// [`Signaling::process_until`](crate::Signaling::process_until) in event
/// order (and therefore deterministically for a given seed).
#[derive(Debug, Clone, PartialEq)]
pub enum SignalEvent {
    /// Every hop admitted the setup; the flow is now active.
    Accepted {
        /// The setup transaction.
        request: RequestId,
        /// The admitted flow.
        flow: FlowId,
        /// When the confirmation reached the destination.
        at: SimTime,
    },
    /// A hop refused the setup; all upstream reservations were (or are
    /// being) rolled back and the flow stays inactive.
    Rejected {
        /// The setup transaction.
        request: RequestId,
        /// The flow id that had been allocated to the request.
        flow: FlowId,
        /// Index of the refusing hop along the route.
        hop: usize,
        /// The link whose controller refused.
        link: LinkId,
        /// The failed admission criterion.
        reason: String,
        /// When the refusing hop made its decision.
        at: SimTime,
    },
    /// A teardown finished: the release message has visited every hop.
    TornDown {
        /// The flow whose reservations are gone.
        flow: FlowId,
        /// When the last hop released its state.
        at: SimTime,
    },
    /// A renegotiation succeeded on every hop; the flow's spec (and edge
    /// policer, for predicted flows) now reflects the new parameters.
    Renegotiated {
        /// The renegotiation transaction.
        request: RequestId,
        /// The renegotiated flow.
        flow: FlowId,
        /// When the change committed.
        at: SimTime,
    },
    /// A hop refused the renegotiation; the previous parameters remain in
    /// force on every hop.
    RenegotiationRejected {
        /// The renegotiation transaction.
        request: RequestId,
        /// The flow that keeps its old service.
        flow: FlowId,
        /// Index of the refusing hop along the route.
        hop: usize,
        /// The failed admission criterion.
        reason: String,
        /// When the refusing hop made its decision.
        at: SimTime,
    },
}

impl SignalEvent {
    /// The flow the event concerns.
    pub fn flow(&self) -> FlowId {
        match self {
            SignalEvent::Accepted { flow, .. }
            | SignalEvent::Rejected { flow, .. }
            | SignalEvent::TornDown { flow, .. }
            | SignalEvent::Renegotiated { flow, .. }
            | SignalEvent::RenegotiationRejected { flow, .. } => *flow,
        }
    }

    /// When the event happened.
    pub fn at(&self) -> SimTime {
        match self {
            SignalEvent::Accepted { at, .. }
            | SignalEvent::Rejected { at, .. }
            | SignalEvent::TornDown { at, .. }
            | SignalEvent::Renegotiated { at, .. }
            | SignalEvent::RenegotiationRejected { at, .. } => *at,
        }
    }
}
