//! The hop-by-hop signaling engine.
//!
//! Control traffic is modelled the way the Appendix models data traffic: a
//! setup, release or renegotiate message crossing a link costs one
//! control-packet transmission time plus the link's propagation delay (plus
//! an optional per-switch processing time).  The engine keeps its own
//! deterministic event queue of in-flight control messages and interleaves
//! them with the network's data-plane events, so admission decisions at
//! each hop see exactly the measurement state of that simulated instant.

use std::collections::BTreeMap;

use ispn_core::admission::AdmissionDecision;
use ispn_core::{FlowId, FlowSpec, TokenBucketSpec};
use ispn_net::{FlowConfig, LinkId, Network};
use ispn_sim::{EventQueue, SimTime};

use crate::messages::{RequestId, SignalEvent};

/// Timing parameters of the control plane.
#[derive(Debug, Clone, Copy)]
pub struct SignalConfig {
    /// Size of a control packet in bits (setup/release/renegotiate all use
    /// the same size; the paper's data packets are 1000 bits and control
    /// messages are comparable).
    pub control_packet_bits: u64,
    /// Extra processing time a switch spends on a control message before
    /// forwarding it.
    pub hop_processing: SimTime,
}

impl Default for SignalConfig {
    fn default() -> Self {
        SignalConfig {
            control_packet_bits: 1000,
            hop_processing: SimTime::ZERO,
        }
    }
}

#[derive(Debug, Clone)]
enum RenegKind {
    /// Re-run the Section-9 criterion for a new `(r, b)` declaration.
    Predicted { new_bucket: TokenBucketSpec },
    /// Change a guaranteed clock rate.  Increases are admitted (and
    /// installed) hop by hop; decreases commit only at confirmation so a
    /// failed renegotiation never loses the old reservation.
    Guaranteed { old_rate: f64, new_rate: f64 },
}

#[derive(Debug, Clone)]
struct PendingSetup {
    flow: FlowId,
    route: Vec<LinkId>,
    /// Set when a teardown arrives while the setup is still in flight: the
    /// setup stops installing further hops and its confirmation must not
    /// activate the flow (the teardown wave, always behind the setup wave,
    /// releases whatever was installed).
    cancelled: bool,
}

#[derive(Debug, Clone)]
struct PendingReneg {
    flow: FlowId,
    route: Vec<LinkId>,
    priority: u8,
    kind: RenegKind,
    /// Hops on which a guaranteed rate *increase* has been reserved so far
    /// (so a teardown that cancels the renegotiation can give the deltas
    /// back).
    applied_hops: usize,
}

enum ControlEvent {
    /// A setup message arrives at the switch feeding `route[hop]`.
    Setup { req: RequestId, hop: usize },
    /// A rejection travels upstream, releasing `route[hop]`.
    Rollback { req: RequestId, hop: usize },
    /// The setup message reached the destination: activate.
    Confirm { req: RequestId },
    /// A release message arrives at the switch feeding `route[hop]`.
    Teardown { flow: FlowId, hop: usize },
    /// A renegotiate message arrives at the switch feeding `route[hop]`.
    Renegotiate { req: RequestId, hop: usize },
    /// A renegotiation rejection travels upstream, undoing `route[hop]`.
    RenegotiateRollback { req: RequestId, hop: usize },
    /// The renegotiate message cleared every hop: commit.
    RenegotiateCommit { req: RequestId },
}

/// The signaling engine: owns all in-flight control messages for one
/// [`Network`] and drives them interleaved with the data plane.
///
/// The engine does not own the network — drivers call
/// [`process_until`](Signaling::process_until) with the network they are
/// stepping, which keeps the data plane usable exactly as before for
/// static scenarios.
#[derive(Default)]
pub struct Signaling {
    cfg: SignalConfig,
    queue: EventQueue<ControlEvent>,
    setups: BTreeMap<RequestId, PendingSetup>,
    renegs: BTreeMap<RequestId, PendingReneg>,
    events: Vec<SignalEvent>,
    /// Chronological accept/reject record of every completed setup, kept
    /// for blocking-probability accounting and determinism checks.
    decision_log: Vec<(RequestId, bool)>,
    next_id: u64,
}

impl Signaling {
    /// An engine with explicit control-plane timing.
    pub fn new(cfg: SignalConfig) -> Self {
        Signaling {
            cfg,
            ..Signaling::default()
        }
    }

    fn fresh_id(&mut self) -> RequestId {
        self.next_id += 1;
        RequestId(self.next_id)
    }

    /// One hop's control-message latency across `link`.
    fn hop_delay(&self, net: &Network, link: LinkId) -> SimTime {
        let params = net.topology().link(link);
        ispn_sim::time::transmission_time(self.cfg.control_packet_bits, params.rate_bps)
            + params.propagation
            + self.cfg.hop_processing
    }

    /// Number of signaling transactions still in flight.
    pub fn pending(&self) -> usize {
        self.setups.len() + self.renegs.len()
    }

    /// The chronological accept/reject record of completed setups.
    pub fn decision_log(&self) -> &[(RequestId, bool)] {
        &self.decision_log
    }

    /// Begin a hop-by-hop flow setup.  The flow is registered immediately
    /// (inactive) so its id is known; the admission outcome arrives as a
    /// [`SignalEvent::Accepted`] / [`SignalEvent::Rejected`] from
    /// [`process_until`](Signaling::process_until).
    pub fn submit(&mut self, net: &mut Network, config: FlowConfig) -> (RequestId, FlowId) {
        let req = self.fresh_id();
        let route = config.route.clone();
        assert!(!route.is_empty(), "a setup needs a route");
        let flow = net.add_flow_inactive(config);
        self.setups.insert(
            req,
            PendingSetup {
                flow,
                route,
                cancelled: false,
            },
        );
        // The source's host-to-switch link is infinitely fast (Appendix), so
        // the setup message reaches the first switch after processing only.
        self.queue.push(
            net.now() + self.cfg.hop_processing,
            ControlEvent::Setup { req, hop: 0 },
        );
        (req, flow)
    }

    /// Begin a teardown: the source is silenced immediately (its packets
    /// stop entering the network) and each hop's reservation is released
    /// when the release message reaches it.
    pub fn teardown(&mut self, net: &mut Network, flow: FlowId) {
        net.deactivate_flow(flow);
        // Cancel any setup still in flight for this flow: it stops
        // installing further hops and its confirmation will not activate.
        // (Such a setup never reaches the decision log — the caller
        // withdrew it before the network finished answering.)
        for setup in self.setups.values_mut() {
            if setup.flow == flow {
                setup.cancelled = true;
            }
        }
        // Cancel in-flight renegotiations, returning any rate increases
        // they had already reserved (the teardown wave releases the *old*
        // per-hop reservation, so the deltas would otherwise leak).
        let cancelled: Vec<RequestId> = self
            .renegs
            .iter()
            .filter(|(_, r)| r.flow == flow)
            .map(|(&req, _)| req)
            .collect();
        for req in cancelled {
            let r = self.renegs.remove(&req).expect("collected above");
            if let RenegKind::Guaranteed { old_rate, new_rate } = r.kind {
                let delta = new_rate - old_rate;
                if delta > 0.0 {
                    for &link in &r.route[..r.applied_hops] {
                        if let Some(ctl) = net.admission_mut(link) {
                            ctl.release_guaranteed(delta);
                        }
                    }
                }
            }
        }
        self.queue.push(
            net.now() + self.cfg.hop_processing,
            ControlEvent::Teardown { flow, hop: 0 },
        );
    }

    /// Begin renegotiating a predicted flow's declared `(r, b)` token
    /// bucket (the adaptive-application path of Section 2): every hop
    /// re-runs the Section-9 criterion against the new declaration, and on
    /// success the flow's spec and edge policer switch over.
    ///
    /// # Panics
    /// Panics if the flow is not predicted-service.
    pub fn renegotiate_bucket(
        &mut self,
        net: &mut Network,
        flow: FlowId,
        new_bucket: TokenBucketSpec,
    ) -> RequestId {
        let config = net.flow_config(flow);
        assert!(
            matches!(config.spec, FlowSpec::Predicted { .. }),
            "renegotiate_bucket needs a predicted flow"
        );
        let req = self.fresh_id();
        let pending = PendingReneg {
            flow,
            route: config.route.clone(),
            priority: config.class.priority().unwrap_or(0),
            kind: RenegKind::Predicted { new_bucket },
            applied_hops: 0,
        };
        self.renegs.insert(req, pending);
        self.queue.push(
            net.now() + self.cfg.hop_processing,
            ControlEvent::Renegotiate { req, hop: 0 },
        );
        req
    }

    /// Begin renegotiating a guaranteed flow's clock rate.  Rate increases
    /// are reserved hop by hop (and rolled back upstream if any hop
    /// refuses); decreases are applied only once every hop has agreed, so
    /// the old reservation survives a failed request.
    ///
    /// # Panics
    /// Panics if the flow is not guaranteed-service or `new_rate_bps` is
    /// not positive.
    pub fn renegotiate_clock_rate(
        &mut self,
        net: &mut Network,
        flow: FlowId,
        new_rate_bps: f64,
    ) -> RequestId {
        assert!(new_rate_bps > 0.0);
        let config = net.flow_config(flow);
        let FlowSpec::Guaranteed { clock_rate_bps } = config.spec else {
            panic!("renegotiate_clock_rate needs a guaranteed flow");
        };
        let req = self.fresh_id();
        let pending = PendingReneg {
            flow,
            route: config.route.clone(),
            priority: 0,
            kind: RenegKind::Guaranteed {
                old_rate: clock_rate_bps,
                new_rate: new_rate_bps,
            },
            applied_hops: 0,
        };
        self.renegs.insert(req, pending);
        self.queue.push(
            net.now() + self.cfg.hop_processing,
            ControlEvent::Renegotiate { req, hop: 0 },
        );
        req
    }

    /// The timestamp of the earliest in-flight control message, if any.
    ///
    /// Drivers that interleave the control plane with other event sources
    /// (the `ispn-scenario` `Sim` facade, most notably) use this to find
    /// the next point in global event time at which the control plane needs
    /// the network.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advance the network *through* the next control message's timestamp
    /// (data-plane events at that exact instant run first — the documented
    /// data ≺ control tie-break), process every control message due at that
    /// instant, and return the transactions that completed.  Does nothing
    /// (and returns no events) when no control message is in flight.
    ///
    /// Unlike [`process_until`](Signaling::process_until) this never runs
    /// the data plane past the control event, so a caller can interleave
    /// its own event sources at exact timestamps between control messages.
    pub fn process_next(&mut self, net: &mut Network) -> Vec<SignalEvent> {
        if let Some(t) = self.queue.peek_time() {
            net.run_through(t);
            while self.queue.peek_time() == Some(t) {
                let (at, ev) = self.queue.pop().expect("peeked event exists");
                self.handle(net, at, ev);
            }
        }
        std::mem::take(&mut self.events)
    }

    /// Run the network and the control plane, interleaved in timestamp
    /// order, until `horizon`; returns the signaling transactions that
    /// completed in that window, in completion order.  Data-plane events
    /// due at the same instant as a control message run before it, so
    /// admission decisions always see the measurement state *including*
    /// that instant's arrivals.
    pub fn process_until(&mut self, net: &mut Network, horizon: SimTime) -> Vec<SignalEvent> {
        while let Some(t) = self.queue.peek_time() {
            if t >= horizon {
                break;
            }
            // Bring the data plane (and with it every admission
            // controller's measurements) through the control message's time.
            net.run_through(t);
            let (at, ev) = self.queue.pop().expect("peeked event exists");
            self.handle(net, at, ev);
        }
        net.run_until(horizon);
        std::mem::take(&mut self.events)
    }

    fn handle(&mut self, net: &mut Network, at: SimTime, ev: ControlEvent) {
        match ev {
            ControlEvent::Setup { req, hop } => {
                let (flow, link, last_hop) = {
                    let s = &self.setups[&req];
                    if s.cancelled {
                        // Withdrawn mid-setup: stop here; the teardown wave
                        // (always behind this message) releases the hops
                        // already installed.
                        self.setups.remove(&req);
                        return;
                    }
                    (s.flow, s.route[hop], hop + 1 == s.route.len())
                };
                match net.admit_flow_on_link(flow, link) {
                    AdmissionDecision::Accept => {
                        let next_at = at + self.hop_delay(net, link);
                        let next = if last_hop {
                            ControlEvent::Confirm { req }
                        } else {
                            ControlEvent::Setup { req, hop: hop + 1 }
                        };
                        self.queue.push(next_at, next);
                    }
                    AdmissionDecision::Reject { reason } => {
                        self.decision_log.push((req, false));
                        self.events.push(SignalEvent::Rejected {
                            request: req,
                            flow,
                            hop,
                            link,
                            reason,
                            at,
                        });
                        if hop > 0 {
                            // The rejection travels back over the upstream
                            // link, releasing reservations as it goes.
                            let back = self.setups[&req].route[hop - 1];
                            self.queue.push(
                                at + self.hop_delay(net, back),
                                ControlEvent::Rollback { req, hop: hop - 1 },
                            );
                        } else {
                            self.setups.remove(&req);
                            // Rejected at the very first hop: nothing was
                            // installed, so the flow's id slot can be
                            // reclaimed (a retry would re-activate it).
                            net.retire_flow(flow);
                        }
                    }
                }
            }
            ControlEvent::Rollback { req, hop } => {
                let (flow, link) = {
                    let s = &self.setups[&req];
                    (s.flow, s.route[hop])
                };
                net.release_flow_on_link(flow, link);
                if hop > 0 {
                    let back = self.setups[&req].route[hop - 1];
                    self.queue.push(
                        at + self.hop_delay(net, back),
                        ControlEvent::Rollback { req, hop: hop - 1 },
                    );
                } else {
                    self.setups.remove(&req);
                    // The rollback reached the first hop: every installed
                    // reservation is released, the slot can be reclaimed.
                    net.retire_flow(flow);
                }
            }
            ControlEvent::Confirm { req } => {
                let s = self
                    .setups
                    .remove(&req)
                    .expect("pending setup confirms once");
                if s.cancelled {
                    // Withdrawn mid-setup: the teardown wave (always behind
                    // this message) releases whatever was installed, and the
                    // flow must not come back to life.
                    return;
                }
                net.activate_flow(s.flow);
                self.decision_log.push((req, true));
                self.events.push(SignalEvent::Accepted {
                    request: req,
                    flow: s.flow,
                    at,
                });
            }
            ControlEvent::Teardown { flow, hop } => {
                let route = net.flow_config(flow).route.clone();
                let link = route[hop];
                net.release_flow_on_link(flow, link);
                if hop + 1 < route.len() {
                    self.queue.push(
                        at + self.hop_delay(net, link),
                        ControlEvent::Teardown { flow, hop: hop + 1 },
                    );
                } else {
                    self.events.push(SignalEvent::TornDown { flow, at });
                    // Teardown complete on every hop.  This also covers
                    // setups withdrawn mid-flight (their cancelled Setup /
                    // Confirm messages release nothing themselves — the
                    // teardown wave behind them does, and it always ends
                    // here).  The flow is reported drained once its last
                    // in-flight packet leaves the network.
                    net.retire_flow(flow);
                }
            }
            ControlEvent::Renegotiate { req, hop } => self.reneg_at(net, at, req, hop),
            ControlEvent::RenegotiateRollback { req, hop } => {
                let Some(r) = self.renegs.get(&req) else {
                    return; // cancelled by a teardown
                };
                let link = r.route[hop];
                let flow = r.flow;
                if let RenegKind::Guaranteed { old_rate, new_rate } = r.kind {
                    let delta = new_rate - old_rate;
                    if delta > 0.0 {
                        if let Some(ctl) = net.admission_mut(link) {
                            ctl.release_guaranteed(delta);
                        }
                        net.install_guaranteed_rate(link, flow, old_rate);
                    }
                }
                // Hops ≥ `hop` are now rolled back; keep the applied count
                // in step so a teardown that cancels the rest of this
                // rollback does not release the same hops again.
                self.renegs
                    .get_mut(&req)
                    .expect("pending reneg exists while its rollback is in flight")
                    .applied_hops = hop;
                if hop > 0 {
                    let back = self.renegs[&req].route[hop - 1];
                    self.queue.push(
                        at + self.hop_delay(net, back),
                        ControlEvent::RenegotiateRollback { req, hop: hop - 1 },
                    );
                } else {
                    self.renegs.remove(&req);
                }
            }
            ControlEvent::RenegotiateCommit { req } => {
                let Some(r) = self.renegs.remove(&req) else {
                    return; // cancelled by a teardown
                };
                match r.kind {
                    RenegKind::Predicted { new_bucket } => {
                        net.update_flow_bucket(r.flow, new_bucket);
                    }
                    RenegKind::Guaranteed { old_rate, new_rate } => {
                        // Commit deferred decreases (increases were already
                        // installed on the way out).
                        if new_rate < old_rate {
                            for &link in &r.route {
                                if let Some(ctl) = net.admission_mut(link) {
                                    ctl.release_guaranteed(old_rate - new_rate);
                                }
                                net.install_guaranteed_rate(link, r.flow, new_rate);
                            }
                        }
                        net.update_flow_clock_rate(r.flow, new_rate);
                    }
                }
                self.events.push(SignalEvent::Renegotiated {
                    request: req,
                    flow: r.flow,
                    at,
                });
            }
        }
    }

    fn reneg_at(&mut self, net: &mut Network, at: SimTime, req: RequestId, hop: usize) {
        let (flow, link, last_hop, priority, kind) = {
            let Some(r) = self.renegs.get(&req) else {
                return; // cancelled by a teardown
            };
            (
                r.flow,
                r.route[hop],
                hop + 1 == r.route.len(),
                r.priority,
                r.kind.clone(),
            )
        };
        let decision = match kind {
            RenegKind::Predicted { new_bucket } => match net.admission_mut(link) {
                // The new declaration faces the same criterion a fresh
                // request would; predicted service holds no controller-side
                // reservation, so nothing needs installing here.
                Some(ctl) => ctl.request_predicted(at, new_bucket, priority),
                None => AdmissionDecision::Accept,
            },
            RenegKind::Guaranteed { old_rate, new_rate } => {
                let delta = new_rate - old_rate;
                if delta > 0.0 {
                    let mut d = match net.admission_mut(link) {
                        Some(ctl) => ctl.request_guaranteed(delta),
                        None => AdmissionDecision::Accept,
                    };
                    if d.is_accept() {
                        // The scheduler can refuse the larger reservation
                        // even when the quota said yes; the veto gives the
                        // controller its delta back so accounting stays in
                        // step.
                        d = net.install_guaranteed_or_veto(link, flow, new_rate, delta);
                        if d.is_accept() {
                            self.renegs
                                .get_mut(&req)
                                .expect("pending reneg exists while its message is in flight")
                                .applied_hops = hop + 1;
                        }
                    }
                    d
                } else {
                    // Shrinking always fits; committed at confirmation.
                    AdmissionDecision::Accept
                }
            }
        };
        match decision {
            AdmissionDecision::Accept => {
                let next_at = at + self.hop_delay(net, link);
                let next = if last_hop {
                    ControlEvent::RenegotiateCommit { req }
                } else {
                    ControlEvent::Renegotiate { req, hop: hop + 1 }
                };
                self.queue.push(next_at, next);
            }
            AdmissionDecision::Reject { reason } => {
                self.events.push(SignalEvent::RenegotiationRejected {
                    request: req,
                    flow,
                    hop,
                    reason,
                    at,
                });
                if hop > 0 {
                    let back = self.renegs[&req].route[hop - 1];
                    self.queue.push(
                        at + self.hop_delay(net, back),
                        ControlEvent::RenegotiateRollback { req, hop: hop - 1 },
                    );
                } else {
                    self.renegs.remove(&req);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_core::admission::{AdmissionConfig, AdmissionController};
    use ispn_net::Topology;
    use ispn_sched::{Averaging, Unified};

    const MBIT: f64 = 1_000_000.0;

    fn controller() -> AdmissionController {
        AdmissionController::new(
            AdmissionConfig::new(MBIT, 0.9, vec![SimTime::from_millis(100)]),
            10.0,
        )
    }

    /// Three switches, two 1 Mbit/s links with 1 ms propagation, Unified
    /// scheduling and admission control on both links.
    fn net() -> (Network, Vec<LinkId>) {
        let (topo, _nodes, links) = Topology::chain(3, MBIT, SimTime::MILLISECOND, 200);
        let mut net = Network::new(topo);
        for &l in &links {
            net.set_discipline(l, Unified::new(MBIT, 1, Averaging::RunningMean));
            net.enable_admission(l, controller(), SimTime::SECOND);
        }
        (net, links)
    }

    #[test]
    fn setup_confirms_with_per_hop_latency() {
        let (mut net, links) = net();
        let mut sig = Signaling::default();
        let (req, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 300_000.0));
        assert!(!net.flow_active(flow));
        let events = sig.process_until(&mut net, SimTime::from_secs(1));
        assert_eq!(events.len(), 1);
        match &events[0] {
            SignalEvent::Accepted {
                request,
                flow: f,
                at,
            } => {
                assert_eq!(*request, req);
                assert_eq!(*f, flow);
                // Two hops to install plus the final link to the
                // destination: the confirmation lands after the setup
                // message crossed both links (1 ms tx + 1 ms propagation
                // each), i.e. at 4 ms.
                assert_eq!(*at, SimTime::from_millis(4));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(net.flow_active(flow));
        assert_eq!(sig.pending(), 0);
        assert_eq!(sig.decision_log(), &[(req, true)]);
        for &l in &links {
            assert!((net.admission(l).unwrap().reserved_guaranteed_bps() - 300_000.0).abs() < 1e-6);
        }
    }

    #[test]
    fn rejection_rolls_back_upstream_reservations() {
        let (mut net, links) = net();
        // Fill the second link almost to quota so a wide setup fails there.
        let hog = net
            .request_flow(FlowConfig::guaranteed(vec![links[1]], 800_000.0))
            .unwrap();
        let mut sig = Signaling::default();
        let (req, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 200_000.0));
        let events = sig.process_until(&mut net, SimTime::from_secs(1));
        assert_eq!(events.len(), 1);
        match &events[0] {
            SignalEvent::Rejected {
                request, hop, link, ..
            } => {
                assert_eq!(*request, req);
                assert_eq!(*hop, 1);
                assert_eq!(*link, links[1]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // After the rejection has travelled back, the first link holds no
        // residue from the failed setup.
        assert_eq!(sig.pending(), 0);
        assert_eq!(
            net.admission(links[0]).unwrap().reserved_guaranteed_bps(),
            0.0
        );
        assert!(
            (net.admission(links[1]).unwrap().reserved_guaranteed_bps() - 800_000.0).abs() < 1e-6
        );
        assert!(!net.flow_active(flow));
        assert!(net.installed_links(flow).is_empty());
        let _ = hog;
    }

    #[test]
    fn rollback_takes_time_to_travel_upstream() {
        let (mut net, links) = net();
        net.request_flow(FlowConfig::guaranteed(vec![links[1]], 800_000.0))
            .unwrap();
        let mut sig = Signaling::default();
        let (_req, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 200_000.0));
        // The rejection happens at hop 1 (t = 2 ms) but the upstream release
        // only lands at t = 4 ms; just after the rejection the first link
        // still holds the partial reservation.
        sig.process_until(&mut net, SimTime::from_micros(2500));
        assert!(
            (net.admission(links[0]).unwrap().reserved_guaranteed_bps() - 200_000.0).abs() < 1e-6
        );
        sig.process_until(&mut net, SimTime::from_secs(1));
        assert_eq!(
            net.admission(links[0]).unwrap().reserved_guaranteed_bps(),
            0.0
        );
        assert!(!net.flow_active(flow));
    }

    #[test]
    fn teardown_releases_every_hop() {
        let (mut net, links) = net();
        let mut sig = Signaling::default();
        let (_req, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 400_000.0));
        sig.process_until(&mut net, SimTime::from_secs(1));
        assert!(net.flow_active(flow));
        sig.teardown(&mut net, flow);
        assert!(!net.flow_active(flow), "source silenced immediately");
        let events = sig.process_until(&mut net, SimTime::from_secs(2));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], SignalEvent::TornDown { flow: f, .. } if f == flow));
        for &l in &links {
            assert_eq!(net.admission(l).unwrap().reserved_guaranteed_bps(), 0.0);
        }
        assert!(net.installed_links(flow).is_empty());
    }

    #[test]
    fn predicted_renegotiation_swaps_the_bucket() {
        let (mut net, links) = net();
        let mut sig = Signaling::default();
        let bucket = TokenBucketSpec::per_packets(85.0, 50.0, 1000);
        let (_r, flow) = sig.submit(
            &mut net,
            FlowConfig::predicted(
                links.clone(),
                0,
                bucket,
                SimTime::from_millis(100),
                0.001,
                ispn_net::PoliceAction::Drop,
            ),
        );
        sig.process_until(&mut net, SimTime::from_secs(1));
        assert!(net.flow_active(flow));

        let bigger = TokenBucketSpec::per_packets(120.0, 60.0, 1000);
        let req = sig.renegotiate_bucket(&mut net, flow, bigger);
        let events = sig.process_until(&mut net, SimTime::from_secs(2));
        assert_eq!(events.len(), 1);
        assert!(matches!(&events[0], SignalEvent::Renegotiated { request, .. } if *request == req));
        assert_eq!(net.flow_config(flow).spec.bucket(), Some(bigger));
        assert_eq!(net.flow_config(flow).edge_policer.unwrap().0, bigger);
    }

    #[test]
    fn predicted_renegotiation_refused_keeps_old_bucket() {
        let (mut net, links) = net();
        let mut sig = Signaling::default();
        let bucket = TokenBucketSpec::per_packets(85.0, 50.0, 1000);
        let (_r, flow) = sig.submit(
            &mut net,
            FlowConfig::predicted(
                links.clone(),
                0,
                bucket,
                SimTime::from_millis(100),
                0.001,
                ispn_net::PoliceAction::Drop,
            ),
        );
        sig.process_until(&mut net, SimTime::from_secs(1));

        // An absurd request: more than the real-time quota.
        let absurd = TokenBucketSpec::new(950_000.0, 50_000.0);
        let req = sig.renegotiate_bucket(&mut net, flow, absurd);
        let events = sig.process_until(&mut net, SimTime::from_secs(2));
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            SignalEvent::RenegotiationRejected { request, hop: 0, .. } if *request == req
        ));
        assert_eq!(net.flow_config(flow).spec.bucket(), Some(bucket));
        assert!(net.flow_active(flow), "the flow keeps its old service");
    }

    #[test]
    fn guaranteed_renegotiation_up_and_down() {
        let (mut net, links) = net();
        let mut sig = Signaling::default();
        let (_r, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 200_000.0));
        sig.process_until(&mut net, SimTime::from_secs(1));

        // Up: 200k -> 500k.
        sig.renegotiate_clock_rate(&mut net, flow, 500_000.0);
        let events = sig.process_until(&mut net, SimTime::from_secs(2));
        assert!(matches!(events[0], SignalEvent::Renegotiated { .. }));
        assert_eq!(net.flow_config(flow).spec.clock_rate_bps(), Some(500_000.0));
        for &l in &links {
            assert!((net.admission(l).unwrap().reserved_guaranteed_bps() - 500_000.0).abs() < 1e-6);
        }

        // Down: 500k -> 100k.
        sig.renegotiate_clock_rate(&mut net, flow, 100_000.0);
        let events = sig.process_until(&mut net, SimTime::from_secs(3));
        assert!(matches!(events[0], SignalEvent::Renegotiated { .. }));
        for &l in &links {
            assert!((net.admission(l).unwrap().reserved_guaranteed_bps() - 100_000.0).abs() < 1e-6);
        }

        // Teardown after renegotiation releases the *new* rate exactly.
        sig.teardown(&mut net, flow);
        sig.process_until(&mut net, SimTime::from_secs(4));
        for &l in &links {
            assert_eq!(net.admission(l).unwrap().reserved_guaranteed_bps(), 0.0);
        }
    }

    #[test]
    fn failed_guaranteed_increase_restores_old_rate() {
        let (mut net, links) = net();
        // Leave only a sliver of quota on link 1.
        net.request_flow(FlowConfig::guaranteed(vec![links[1]], 600_000.0))
            .unwrap();
        let mut sig = Signaling::default();
        let (_r, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 200_000.0));
        sig.process_until(&mut net, SimTime::from_secs(1));

        // 200k -> 400k: fits on link 0, not on link 1 (600k + 400k > 900k).
        let req = sig.renegotiate_clock_rate(&mut net, flow, 400_000.0);
        let events = sig.process_until(&mut net, SimTime::from_secs(2));
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            SignalEvent::RenegotiationRejected { request, hop: 1, .. } if *request == req
        ));
        // Old reservation intact everywhere.
        assert_eq!(net.flow_config(flow).spec.clock_rate_bps(), Some(200_000.0));
        assert!(
            (net.admission(links[0]).unwrap().reserved_guaranteed_bps() - 200_000.0).abs() < 1e-6
        );
        assert!(
            (net.admission(links[1]).unwrap().reserved_guaranteed_bps() - 800_000.0).abs() < 1e-6
        );
        assert!(net.flow_active(flow));
    }

    #[test]
    fn teardown_during_inflight_setup_cancels_it_cleanly() {
        let (mut net, links) = net();
        let mut sig = Signaling::default();
        let (_req, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 300_000.0));
        // Let the setup install hop 0 (t = 0) but tear down before the
        // confirmation (t = 4 ms) can activate the flow.
        sig.process_until(&mut net, SimTime::MILLISECOND);
        sig.teardown(&mut net, flow);
        sig.process_until(&mut net, SimTime::from_secs(1));
        assert!(!net.flow_active(flow), "cancelled setup must not activate");
        assert!(net.installed_links(flow).is_empty());
        for &l in &links {
            assert_eq!(net.admission(l).unwrap().reserved_guaranteed_bps(), 0.0);
        }
        assert_eq!(sig.pending(), 0);
        // The withdrawn setup never completed, so it is not in the log.
        assert!(sig.decision_log().is_empty());
    }

    #[test]
    fn teardown_after_last_hop_admission_does_not_reactivate() {
        let (mut net, links) = net();
        let mut sig = Signaling::default();
        let (_req, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 300_000.0));
        // Both hops admit (t = 0 and t = 2 ms) but the confirmation only
        // lands at t = 4 ms; the teardown arrives in between, so the
        // confirm of the withdrawn setup must not bring the flow back.
        sig.process_until(&mut net, SimTime::from_millis(3));
        sig.teardown(&mut net, flow);
        let events = sig.process_until(&mut net, SimTime::from_secs(1));
        assert!(!net.flow_active(flow), "cancelled setup must not activate");
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, SignalEvent::Accepted { .. })),
            "a withdrawn setup must not report acceptance"
        );
        assert!(net.installed_links(flow).is_empty());
        for &l in &links {
            assert_eq!(net.admission(l).unwrap().reserved_guaranteed_bps(), 0.0);
        }
        assert_eq!(sig.pending(), 0);
        assert!(sig.decision_log().is_empty());
    }

    #[test]
    fn teardown_after_reneg_cleared_every_hop_does_not_commit() {
        let (mut net, links) = net();
        let mut sig = Signaling::default();
        let (_r, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 200_000.0));
        sig.process_until(&mut net, SimTime::from_secs(1));
        // Grow 200k -> 500k; both hops accept and the commit message is
        // queued (t = 1 s + 4 ms).  Tear down before it lands: the commit
        // must be a no-op, not a panic or a spec change.
        sig.renegotiate_clock_rate(&mut net, flow, 500_000.0);
        sig.process_until(&mut net, SimTime::from_secs(1) + SimTime::from_millis(3));
        sig.teardown(&mut net, flow);
        let events = sig.process_until(&mut net, SimTime::from_secs(2));
        assert_eq!(sig.pending(), 0);
        assert!(events
            .iter()
            .any(|e| matches!(e, SignalEvent::TornDown { flow: f, .. } if *f == flow)));
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, SignalEvent::Renegotiated { .. })),
            "a cancelled renegotiation must not commit"
        );
        assert_eq!(net.flow_config(flow).spec.clock_rate_bps(), Some(200_000.0));
        for &l in &links {
            assert_eq!(net.admission(l).unwrap().reserved_guaranteed_bps(), 0.0);
        }
    }

    #[test]
    fn guaranteed_increase_vetoed_by_scheduler() {
        // One link, Unified scheduling, no admission controller: only the
        // scheduler can refuse the increase, and that refusal must fail the
        // renegotiation instead of desynchronizing spec and scheduler.
        let (topo, _nodes, links) = Topology::chain(2, MBIT, SimTime::MILLISECOND, 200);
        let mut net = Network::new(topo);
        net.set_discipline(links[0], Unified::new(MBIT, 1, Averaging::RunningMean));
        let mut sig = Signaling::default();
        let (_r, flow) = sig.submit(&mut net, FlowConfig::guaranteed(vec![links[0]], 600_000.0));
        sig.process_until(&mut net, SimTime::from_secs(1));
        assert!(net.flow_active(flow));

        let req = sig.renegotiate_clock_rate(&mut net, flow, 1_200_000.0);
        let events = sig.process_until(&mut net, SimTime::from_secs(2));
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            SignalEvent::RenegotiationRejected { request, hop: 0, .. } if *request == req
        ));
        assert_eq!(net.flow_config(flow).spec.clock_rate_bps(), Some(600_000.0));
        assert!(net.flow_active(flow), "the flow keeps its old reservation");
    }

    #[test]
    fn scheduler_veto_during_reneg_undoes_controller_delta() {
        // A controller with a 100 % quota says yes to a full-link rate, but
        // the Unified scheduler refuses (Σ rates must stay strictly below
        // the link speed); the controller's delta must be given back.
        let (topo, _nodes, links) = Topology::chain(2, MBIT, SimTime::MILLISECOND, 200);
        let mut net = Network::new(topo);
        net.set_discipline(links[0], Unified::new(MBIT, 1, Averaging::RunningMean));
        net.enable_admission(
            links[0],
            AdmissionController::new(
                AdmissionConfig::new(MBIT, 1.0, vec![SimTime::from_millis(100)]),
                10.0,
            ),
            SimTime::SECOND,
        );
        let mut sig = Signaling::default();
        let (_r, flow) = sig.submit(&mut net, FlowConfig::guaranteed(vec![links[0]], 600_000.0));
        sig.process_until(&mut net, SimTime::from_secs(1));

        let req = sig.renegotiate_clock_rate(&mut net, flow, 1_000_000.0);
        let events = sig.process_until(&mut net, SimTime::from_secs(2));
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            SignalEvent::RenegotiationRejected { request, hop: 0, .. } if *request == req
        ));
        assert_eq!(net.flow_config(flow).spec.clock_rate_bps(), Some(600_000.0));
        assert!(
            (net.admission(links[0]).unwrap().reserved_guaranteed_bps() - 600_000.0).abs() < 1e-6,
            "the refused delta must be released from the controller"
        );
    }

    #[test]
    fn teardown_during_inflight_renegotiation_leaks_nothing() {
        let (mut net, links) = net();
        let mut sig = Signaling::default();
        let (_r, flow) = sig.submit(&mut net, FlowConfig::guaranteed(links.clone(), 200_000.0));
        sig.process_until(&mut net, SimTime::from_secs(1));
        // Start growing 200k -> 500k, then tear down while the increase has
        // been applied on hop 0 but the message is still in flight.
        sig.renegotiate_clock_rate(&mut net, flow, 500_000.0);
        sig.process_until(&mut net, SimTime::from_secs(1) + SimTime::MILLISECOND);
        sig.teardown(&mut net, flow);
        sig.process_until(&mut net, SimTime::from_secs(2));
        assert_eq!(sig.pending(), 0);
        for &l in &links {
            assert_eq!(
                net.admission(l).unwrap().reserved_guaranteed_bps(),
                0.0,
                "neither the old rate nor the applied delta may survive"
            );
        }
    }

    #[test]
    fn scheduler_refusal_vetoes_admission_without_a_controller() {
        // No admission controller at all: the quota says yes to anything,
        // but the unified scheduler cannot reserve the whole link, and that
        // refusal must surface as a rejection, not a silent no-op.
        let (topo, _nodes, links) = Topology::chain(2, MBIT, SimTime::ZERO, 200);
        let mut net = Network::new(topo);
        net.set_discipline(links[0], Unified::new(MBIT, 1, Averaging::RunningMean));
        let err = net
            .request_flow(FlowConfig::guaranteed(vec![links[0]], MBIT))
            .expect_err("the scheduler cannot hold a full-link reservation");
        assert!(err.reason.contains("scheduler refused"), "{err:?}");
        assert!(!net.flow_active(err.flow));
        // A sane rate still goes through.
        assert!(net
            .request_flow(FlowConfig::guaranteed(vec![links[0]], 500_000.0))
            .is_ok());
    }

    #[test]
    fn interleaved_setups_are_serialized_by_event_time() {
        let (mut net, links) = net();
        let mut sig = Signaling::default();
        // Two setups racing for the same quota: both fit individually, but
        // not together.  The one submitted first wins deterministically.
        let (ra, fa) = sig.submit(&mut net, FlowConfig::guaranteed(vec![links[0]], 500_000.0));
        let (rb, fb) = sig.submit(&mut net, FlowConfig::guaranteed(vec![links[0]], 500_000.0));
        let events = sig.process_until(&mut net, SimTime::from_secs(1));
        assert_eq!(events.len(), 2);
        assert_eq!(sig.decision_log().len(), 2);
        let accepted: Vec<_> = sig.decision_log().iter().filter(|(_, a)| *a).collect();
        assert_eq!(accepted, vec![&(ra, true)]);
        assert!(net.flow_active(fa));
        assert!(!net.flow_active(fb));
        let _ = rb;
    }
}
