//! Tying a traffic source's lifetime to its reservation.
//!
//! Sources in `ispn-traffic` run forever: every timer callback schedules
//! the next one.  In a churn scenario a flow's reservation is torn down
//! while its source agent still owns pending timers; [`LeasedSource`] wraps
//! any agent and, once its [`Lease`] is revoked, stops forwarding timer
//! callbacks — so no further packets are generated and no further timers
//! are scheduled (the agent goes quiet after at most one already-pending
//! timer fires).

use std::cell::Cell;
use std::rc::Rc;

use ispn_net::{Agent, AgentApi, Delivery};

/// A revocable handle controlling a [`LeasedSource`].
#[derive(Debug, Clone)]
pub struct Lease {
    alive: Rc<Cell<bool>>,
}

impl Lease {
    /// Stop the leased agent: its future timer callbacks become no-ops.
    pub fn revoke(&self) {
        self.alive.set(false);
    }

    /// Whether the lease is still in force.
    pub fn is_active(&self) -> bool {
        self.alive.get()
    }
}

/// An agent wrapper whose timer-driven activity stops when its lease is
/// revoked.  Packet deliveries and setup outcomes still reach the inner
/// agent (a receiver may keep accounting for packets already in flight).
pub struct LeasedSource<A> {
    inner: A,
    alive: Rc<Cell<bool>>,
}

impl<A> LeasedSource<A> {
    /// Wrap `inner`, returning the wrapper and the controlling lease.
    pub fn new(inner: A) -> (Self, Lease) {
        let alive = Rc::new(Cell::new(true));
        let lease = Lease {
            alive: alive.clone(),
        };
        (LeasedSource { inner, alive }, lease)
    }

    /// The wrapped agent.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: Agent> Agent for LeasedSource<A> {
    fn start(&mut self, api: &mut AgentApi) {
        if self.alive.get() {
            self.inner.start(api);
        }
    }

    fn on_timer(&mut self, token: u64, api: &mut AgentApi) {
        if self.alive.get() {
            self.inner.on_timer(token, api);
        }
    }

    fn on_packet(&mut self, delivery: Delivery, api: &mut AgentApi) {
        self.inner.on_packet(delivery, api);
    }

    fn on_setup(
        &mut self,
        token: u64,
        result: Result<ispn_core::FlowId, ispn_net::SetupError>,
        api: &mut AgentApi,
    ) {
        self.inner.on_setup(token, result, api);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_sim::SimTime;

    /// Counts its timer callbacks and always re-arms.
    #[derive(Default)]
    struct Ticker {
        fired: u64,
    }

    impl Agent for Ticker {
        fn start(&mut self, api: &mut AgentApi) {
            api.set_timer(SimTime::MILLISECOND, 0);
        }
        fn on_timer(&mut self, _token: u64, api: &mut AgentApi) {
            self.fired += 1;
            api.set_timer(SimTime::MILLISECOND, 0);
        }
    }

    #[test]
    fn revoked_lease_stops_timers() {
        let (mut leased, lease) = LeasedSource::new(Ticker::default());
        assert!(lease.is_active());
        let mut api = AgentApi::new(SimTime::ZERO);
        leased.start(&mut api);
        leased.on_timer(0, &mut api);
        assert_eq!(leased.inner().fired, 1);
        lease.revoke();
        assert!(!lease.is_active());
        leased.on_timer(0, &mut api);
        leased.on_timer(0, &mut api);
        assert_eq!(
            leased.inner().fired,
            1,
            "timers after revocation are no-ops"
        );
    }
}
