//! # ispn-signal — dynamic flow signaling for the CSZ'92 architecture
//!
//! Sections 8 and 9 of the paper describe a *service interface*: a source
//! asks the network for guaranteed or predicted service, every switch along
//! the path runs (measurement-based) admission control, and flows come and
//! go — "the source first negotiates with the network over the quality of
//! service".  The data plane for that interface lives in `ispn-net`; this
//! crate adds the control plane:
//!
//! * [`Signaling`] — the hop-by-hop setup engine.  A [`Signaling::submit`]
//!   walks a `SetupRequest`'s route as a simulated control packet (one
//!   control-packet transmission plus propagation per hop, see
//!   [`SignalConfig`]); each switch consults the link's
//!   [`AdmissionController`](ispn_core::AdmissionController) — fed live by
//!   the network's measurement plumbing — and installs reservation state on
//!   acceptance.  A rejection travels back *upstream*, rolling back every
//!   partially installed reservation, so a refused setup leaves no residue.
//! * **Teardown** — [`Signaling::teardown`] silences the source at once and
//!   releases each hop's reservation as the release message reaches it.
//! * **Renegotiation** — adaptive applications (Section 2's adaptive
//!   play-back clients) may change their service mid-flow:
//!   [`Signaling::renegotiate_bucket`] re-runs the Section-9 criterion for a
//!   new `(r, b)` on every hop, and
//!   [`Signaling::renegotiate_clock_rate`] grows or shrinks a guaranteed
//!   reservation (increases are admitted hop by hop and rolled back on
//!   failure; decreases commit only once the whole path has agreed, so a
//!   failed renegotiation always leaves the old reservation intact).
//! * [`LeasedSource`] — an agent wrapper tying a traffic source's lifetime
//!   to its reservation, so churn workloads can stop a source the moment
//!   its flow is torn down.
//!
//! Everything is deterministic: outcomes are a pure function of the
//! simulation seed, which the churn experiments rely on.
//!
//! ```
//! use ispn_core::admission::{AdmissionConfig, AdmissionController};
//! use ispn_net::{FlowConfig, Network, Topology};
//! use ispn_signal::{SignalEvent, Signaling};
//! use ispn_sim::SimTime;
//!
//! let (topo, _nodes, links) = Topology::chain(3, 1e6, SimTime::from_millis(1), 200);
//! let mut net = Network::new(topo);
//! for &l in &links {
//!     let ctl = AdmissionController::new(
//!         AdmissionConfig::new(1e6, 0.9, vec![SimTime::from_millis(100)]),
//!         10.0,
//!     );
//!     net.enable_admission(l, ctl, SimTime::SECOND);
//! }
//! let mut signaling = Signaling::default();
//! let (req, _flow) = signaling.submit(&mut net, FlowConfig::guaranteed(links, 300_000.0));
//! let events = signaling.process_until(&mut net, SimTime::from_secs(1));
//! assert!(matches!(events[0], SignalEvent::Accepted { request, .. } if request == req));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod lease;
pub mod messages;

pub use engine::{SignalConfig, Signaling};
pub use lease::{Lease, LeasedSource};
pub use messages::{RequestId, SignalEvent};
