//! Token-bucket traffic filters (Section 4).
//!
//! "A token bucket filter is characterized by two parameters, a rate r and a
//! depth b.  One can think of the token bucket as filling up with tokens
//! continuously at a rate r, with b being its maximal depth.  Every time a
//! packet is generated it removes p tokens from the bucket, where p is the
//! size of the packet.  A traffic source conforms to a token bucket filter
//! (r, b) if there are always enough tokens in the bucket whenever a packet
//! is generated."
//!
//! The same object serves three roles in the reproduction:
//!
//! 1. *source-side policing* — the Appendix subjects every simulated source
//!    to an `(A, 50 packet)` bucket and drops non-conforming packets at the
//!    source (≈2 % of packets for the on/off process used),
//! 2. *edge enforcement* — Section 8 checks predicted flows at the first
//!    switch and drops or tags violations,
//! 3. *traffic characterization* — the `b(r)` curve of a recorded packet
//!    process feeds the Parekh–Gallager bound ([`crate::bounds`]).

use ispn_sim::SimTime;

/// Static description of a token-bucket filter: rate `r` (bits/second) and
/// depth `b` (bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucketSpec {
    /// Token accumulation rate in bits per second.
    pub rate_bps: f64,
    /// Bucket depth in bits.
    pub depth_bits: f64,
}

impl TokenBucketSpec {
    /// Create a spec; both parameters must be positive.
    pub fn new(rate_bps: f64, depth_bits: f64) -> Self {
        assert!(rate_bps > 0.0, "token rate must be positive");
        assert!(depth_bits > 0.0, "bucket depth must be positive");
        TokenBucketSpec {
            rate_bps,
            depth_bits,
        }
    }

    /// Convenience constructor in packet units, matching the paper's
    /// "(A, 50) token bucket filter (50 is the size of the token bucket)"
    /// where both the rate and the depth are expressed in packets.
    pub fn per_packets(rate_pkts_per_sec: f64, depth_pkts: f64, packet_bits: u64) -> Self {
        TokenBucketSpec::new(
            rate_pkts_per_sec * packet_bits as f64,
            depth_pkts * packet_bits as f64,
        )
    }

    /// The worst-case duration of a maximal burst drained at exactly the
    /// token rate: `b / r` — the heart of the Parekh–Gallager bound.
    pub fn burst_drain_time(&self) -> SimTime {
        SimTime::from_secs_f64(self.depth_bits / self.rate_bps)
    }
}

/// The stateful filter: tracks the token level against simulated time.
///
/// The bucket starts full (the paper's recursion starts with `n₀ = b`).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    spec: TokenBucketSpec,
    /// Current token level in bits.
    tokens: f64,
    /// Last time the token level was updated.
    last_update: SimTime,
    /// Counters for observability.
    conforming: u64,
    nonconforming: u64,
}

impl TokenBucket {
    /// Create a full bucket governed by `spec`, with time starting at zero.
    pub fn new(spec: TokenBucketSpec) -> Self {
        TokenBucket {
            spec,
            tokens: spec.depth_bits,
            last_update: SimTime::ZERO,
            conforming: 0,
            nonconforming: 0,
        }
    }

    /// The static parameters of this bucket.
    pub fn spec(&self) -> TokenBucketSpec {
        self.spec
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last_update {
            let dt = (now - self.last_update).as_secs_f64();
            self.tokens = (self.tokens + dt * self.spec.rate_bps).min(self.spec.depth_bits);
            self.last_update = now;
        }
    }

    /// Current token level (after refilling to `now`), in bits.
    pub fn level(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }

    /// Switch the filter to a new `(r, b)` in place (a renegotiated
    /// traffic contract, Section 8).
    ///
    /// The accumulated token level carries over, clamped to the new depth —
    /// renegotiating must never mint a free burst the way constructing a
    /// fresh (full) bucket would.
    pub fn reconfigure(&mut self, now: SimTime, spec: TokenBucketSpec) {
        self.refill(now);
        self.spec = spec;
        self.tokens = self.tokens.min(spec.depth_bits);
    }

    /// Would a packet of `size_bits` generated at `now` conform?  Does not
    /// change the bucket state beyond refilling.
    pub fn conforms(&mut self, now: SimTime, size_bits: u64) -> bool {
        self.refill(now);
        self.tokens >= size_bits as f64 - 1e-9
    }

    /// Offer a packet to the filter at time `now`.
    ///
    /// If the packet conforms the tokens are consumed and `true` is
    /// returned.  If it does not conform the bucket is left unchanged and
    /// `false` is returned — this is the *policing* behaviour used at the
    /// source and at the network edge ("nonconforming packets were dropped
    /// at the source").
    pub fn offer(&mut self, now: SimTime, size_bits: u64) -> bool {
        if self.conforms(now, size_bits) {
            self.tokens -= size_bits as f64;
            self.conforming += 1;
            true
        } else {
            self.nonconforming += 1;
            false
        }
    }

    /// Consume tokens for a packet regardless of conformance (the token
    /// level may go negative).  Used when violations are *tagged* rather
    /// than dropped, so that subsequent packets still see the debt.
    ///
    /// Returns `true` if the packet conformed.
    pub fn offer_tagging(&mut self, now: SimTime, size_bits: u64) -> bool {
        let ok = self.conforms(now, size_bits);
        self.tokens -= size_bits as f64;
        if ok {
            self.conforming += 1;
        } else {
            self.nonconforming += 1;
        }
        ok
    }

    /// Number of conforming packets seen so far.
    pub fn conforming_count(&self) -> u64 {
        self.conforming
    }

    /// Number of non-conforming packets seen so far.
    pub fn nonconforming_count(&self) -> u64 {
        self.nonconforming
    }

    /// Fraction of offered packets that did not conform.
    pub fn violation_rate(&self) -> f64 {
        let total = self.conforming + self.nonconforming;
        if total == 0 {
            0.0
        } else {
            self.nonconforming as f64 / total as f64
        }
    }
}

/// Check whether a recorded packet sequence `(time, size_bits)` conforms to
/// `(r, b)` using exactly the recursion from Section 4:
///
/// `n₀ = b`, `nᵢ = MIN[b, nᵢ₋₁ + (tᵢ − tᵢ₋₁)·r − pᵢ]`, conforming iff every
/// `nᵢ ≥ 0`.
pub fn sequence_conforms(packets: &[(SimTime, u64)], spec: TokenBucketSpec) -> bool {
    let mut n = spec.depth_bits;
    let mut last_t: Option<SimTime> = None;
    for &(t, p) in packets {
        let dt = match last_t {
            None => 0.0,
            Some(prev) => {
                assert!(t >= prev, "packet times must be non-decreasing");
                (t - prev).as_secs_f64()
            }
        };
        n = (n + dt * spec.rate_bps - p as f64).min(spec.depth_bits);
        if n < -1e-6 {
            return false;
        }
        last_t = Some(t);
    }
    true
}

/// Compute the minimal bucket depth `b(r)` (in bits) such that the recorded
/// packet sequence conforms to a token bucket of rate `r`.
///
/// This is the non-increasing function `b(r)` of Section 4 evaluated at one
/// rate; the Parekh–Gallager bound for a flow given clock rate `r` is then
/// `b(r)/r` plus per-hop packetization terms.
pub fn minimal_depth_for_rate(packets: &[(SimTime, u64)], rate_bps: f64) -> f64 {
    assert!(rate_bps > 0.0);
    // A sequence conforms to a token bucket (r, b) that starts full exactly
    // when the backlog of a fluid leaky bucket drained at rate r never
    // exceeds b.  So b(r) is the maximum of that virtual backlog:
    //   backlog_i = max(0, backlog_{i-1} - r·Δt) + p_i.
    let mut backlog: f64 = 0.0;
    let mut worst: f64 = 0.0;
    let mut last_t: Option<SimTime> = None;
    for &(t, p) in packets {
        if let Some(prev) = last_t {
            assert!(t >= prev, "packet times must be non-decreasing");
            backlog = (backlog - (t - prev).as_secs_f64() * rate_bps).max(0.0);
        }
        backlog += p as f64;
        if backlog > worst {
            worst = backlog;
        }
        last_t = Some(t);
    }
    worst
}

/// A fluid leaky-bucket shaper of rate `r`: bits drain at a constant rate
/// and any excess is queued (footnote 6 of the paper).  Used in tests and
/// examples to reason about the "all the queueing happens in the shaper"
/// intuition behind the Parekh–Gallager bound.
#[derive(Debug, Clone)]
pub struct LeakyBucketShaper {
    rate_bps: f64,
    /// Time at which the shaper will have finished draining everything
    /// submitted so far.
    busy_until: SimTime,
}

impl LeakyBucketShaper {
    /// Create a shaper that drains at `rate_bps`.
    pub fn new(rate_bps: f64) -> Self {
        assert!(rate_bps > 0.0);
        LeakyBucketShaper {
            rate_bps,
            busy_until: SimTime::ZERO,
        }
    }

    /// Submit `size_bits` at time `now`; returns the time at which the last
    /// bit of this packet leaves the shaper.
    pub fn submit(&mut self, now: SimTime, size_bits: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let drain = SimTime::from_secs_f64(size_bits as f64 / self.rate_bps);
        self.busy_until = start + drain;
        self.busy_until
    }

    /// The delay a packet submitted at `now` would experience (without
    /// actually submitting it).
    pub fn delay_if_submitted(&self, now: SimTime, size_bits: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let drain = SimTime::from_secs_f64(size_bits as f64 / self.rate_bps);
        (start + drain).saturating_sub(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PKT: u64 = 1000;

    #[test]
    fn spec_constructors() {
        let s = TokenBucketSpec::per_packets(85.0, 50.0, PKT);
        assert_eq!(s.rate_bps, 85_000.0);
        assert_eq!(s.depth_bits, 50_000.0);
        let drain = s.burst_drain_time().as_secs_f64();
        assert!((drain - 50.0 / 85.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_rate_spec_rejected() {
        let _ = TokenBucketSpec::new(0.0, 1.0);
    }

    #[test]
    fn reconfigure_carries_the_token_level_over() {
        // Drain a (85, 5-packet) bucket completely …
        let mut tb = TokenBucket::new(TokenBucketSpec::per_packets(85.0, 5.0, PKT));
        let t = SimTime::ZERO;
        for _ in 0..5 {
            assert!(tb.offer(t, PKT));
        }
        assert!(tb.level(t) < 1.0);
        // … then "renegotiate" to a much deeper profile: the level must
        // carry over, not snap to the new (full) depth.
        tb.reconfigure(t, TokenBucketSpec::per_packets(85.0, 50.0, PKT));
        assert!(tb.level(t) < 1.0, "no free burst from renegotiation");
        assert!(!tb.offer(t, PKT));
        // Shrinking clamps an over-full level down to the new depth.
        let mut tb = TokenBucket::new(TokenBucketSpec::per_packets(85.0, 50.0, PKT));
        tb.reconfigure(t, TokenBucketSpec::per_packets(85.0, 5.0, PKT));
        assert!((tb.level(t) - 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn full_bucket_admits_burst_up_to_depth() {
        let mut tb = TokenBucket::new(TokenBucketSpec::per_packets(85.0, 5.0, PKT));
        let t = SimTime::ZERO;
        for _ in 0..5 {
            assert!(tb.offer(t, PKT));
        }
        assert!(!tb.offer(t, PKT));
        assert_eq!(tb.conforming_count(), 5);
        assert_eq!(tb.nonconforming_count(), 1);
        assert!((tb.violation_rate() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut tb = TokenBucket::new(TokenBucketSpec::new(1000.0, 1000.0));
        assert!(tb.offer(SimTime::ZERO, 1000));
        assert!(!tb.offer(SimTime::ZERO, 1000));
        // After one second exactly one packet worth of tokens has refilled.
        assert!(tb.offer(SimTime::from_secs(1), 1000));
        assert!(!tb.conforms(SimTime::from_secs(1), 1));
    }

    #[test]
    fn refill_caps_at_depth() {
        let mut tb = TokenBucket::new(TokenBucketSpec::new(1000.0, 2000.0));
        // Wait a long time: level must not exceed depth.
        assert_eq!(tb.level(SimTime::from_secs(100)), 2000.0);
    }

    #[test]
    fn source_at_token_rate_always_conforms() {
        // A perfectly paced source at exactly the token rate never violates.
        let spec = TokenBucketSpec::per_packets(100.0, 1.0, PKT);
        let mut tb = TokenBucket::new(spec);
        let mut t = SimTime::ZERO;
        for _ in 0..1000 {
            assert!(tb.offer(t, PKT));
            t += SimTime::from_millis(10); // 100 packets/sec
        }
        assert_eq!(tb.nonconforming_count(), 0);
    }

    #[test]
    fn offer_tagging_tracks_debt() {
        let mut tb = TokenBucket::new(TokenBucketSpec::new(1000.0, 1000.0));
        assert!(tb.offer_tagging(SimTime::ZERO, 1000));
        assert!(!tb.offer_tagging(SimTime::ZERO, 1000));
        // Debt: -1000 bits; after one second level is back to 0, still not
        // enough for a packet, so the next offer is also non-conforming.
        assert!(!tb.offer_tagging(SimTime::from_secs(1), 1000));
        assert_eq!(tb.nonconforming_count(), 2);
    }

    #[test]
    fn sequence_conformance_matches_paper_recursion() {
        let spec = TokenBucketSpec::new(1000.0, 2000.0);
        // Two packets back-to-back fit in the depth; a third does not.
        let ok = vec![(SimTime::ZERO, 1000u64), (SimTime::ZERO, 1000)];
        assert!(sequence_conforms(&ok, spec));
        let bad = vec![
            (SimTime::ZERO, 1000u64),
            (SimTime::ZERO, 1000),
            (SimTime::ZERO, 1000),
        ];
        assert!(!sequence_conforms(&bad, spec));
        // Spaced out at the token rate it conforms again.
        let spaced = vec![
            (SimTime::ZERO, 1000u64),
            (SimTime::ZERO, 1000),
            (SimTime::from_secs(1), 1000),
        ];
        assert!(sequence_conforms(&spaced, spec));
    }

    #[test]
    fn minimal_depth_of_constant_rate_stream_is_one_packet() {
        // 10 packets/sec stream policed at 10 pkt/s needs only one packet of
        // depth.
        let pkts: Vec<(SimTime, u64)> = (0..100)
            .map(|i| (SimTime::from_millis(100 * i), PKT))
            .collect();
        let b = minimal_depth_for_rate(&pkts, 10.0 * PKT as f64);
        assert!((b - PKT as f64).abs() < 1e-6, "b = {b}");
    }

    #[test]
    fn minimal_depth_of_burst_is_burst_size_minus_credit() {
        // 5 packets at t=0 against a slow rate needs ~5 packets of depth.
        let pkts: Vec<(SimTime, u64)> = (0..5).map(|_| (SimTime::ZERO, PKT)).collect();
        let b = minimal_depth_for_rate(&pkts, 1.0);
        assert!((b - 5.0 * PKT as f64).abs() < 1e-3);
    }

    #[test]
    fn minimal_depth_makes_sequence_conform() {
        // Whatever depth we compute, the sequence must conform to it.
        let pkts: Vec<(SimTime, u64)> = vec![
            (SimTime::ZERO, PKT),
            (SimTime::from_millis(1), PKT),
            (SimTime::from_millis(2), PKT),
            (SimTime::from_millis(500), PKT),
            (SimTime::from_millis(501), PKT),
        ];
        let rate = 2.0 * PKT as f64; // 2 packets/sec
        let b = minimal_depth_for_rate(&pkts, rate);
        assert!(sequence_conforms(
            &pkts,
            TokenBucketSpec::new(rate, b.max(1.0))
        ));
    }

    #[test]
    fn leaky_bucket_shaper_delays_excess() {
        let mut sh = LeakyBucketShaper::new(1000.0); // 1 packet/sec for 1000-bit packets
        let d1 = sh.submit(SimTime::ZERO, 1000);
        assert_eq!(d1, SimTime::from_secs(1));
        let d2 = sh.submit(SimTime::ZERO, 1000);
        assert_eq!(d2, SimTime::from_secs(2));
        // A later submission that finds the shaper idle sees only its own
        // drain time.
        let d3 = sh.submit(SimTime::from_secs(10), 1000);
        assert_eq!(d3, SimTime::from_secs(11));
        assert_eq!(
            sh.delay_if_submitted(SimTime::from_secs(11), 1000),
            SimTime::from_secs(1)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const PKT: u64 = 1000;

    proptest! {
        /// Any packet stream accepted by the stateful policer, replayed as a
        /// sequence, conforms under the paper's recursion.
        #[test]
        fn policer_output_conforms(
            gaps in proptest::collection::vec(0u64..200_000_000, 1..200),
            rate_pkts in 1.0f64..500.0,
            depth_pkts in 1.0f64..60.0,
        ) {
            let spec = TokenBucketSpec::per_packets(rate_pkts, depth_pkts, PKT);
            let mut tb = TokenBucket::new(spec);
            let mut t = SimTime::ZERO;
            let mut accepted = Vec::new();
            for g in gaps {
                t += SimTime::from_nanos(g);
                if tb.offer(t, PKT) {
                    accepted.push((t, PKT));
                }
            }
            prop_assert!(sequence_conforms(&accepted, spec));
        }

        /// The minimal depth is monotone non-increasing in the rate.
        #[test]
        fn minimal_depth_non_increasing_in_rate(
            gaps in proptest::collection::vec(0u64..100_000_000, 1..100),
        ) {
            let mut t = SimTime::ZERO;
            let pkts: Vec<(SimTime, u64)> = gaps.iter().map(|&g| {
                t += SimTime::from_nanos(g);
                (t, PKT)
            }).collect();
            let slow = minimal_depth_for_rate(&pkts, 10_000.0);
            let fast = minimal_depth_for_rate(&pkts, 100_000.0);
            prop_assert!(fast <= slow + 1e-6);
        }

        /// The sequence always conforms to (r, minimal_depth_for_rate(r)).
        #[test]
        fn minimal_depth_is_sufficient(
            gaps in proptest::collection::vec(0u64..100_000_000, 1..100),
            rate in 1_000.0f64..1_000_000.0,
        ) {
            let mut t = SimTime::ZERO;
            let pkts: Vec<(SimTime, u64)> = gaps.iter().map(|&g| {
                t += SimTime::from_nanos(g);
                (t, PKT)
            }).collect();
            let b = minimal_depth_for_rate(&pkts, rate).max(1.0) + 1e-3;
            prop_assert!(sequence_conforms(&pkts, TokenBucketSpec::new(rate, b)));
        }
    }
}
