//! The packet format.
//!
//! The architecture needs only a handful of header fields beyond what any
//! datagram network carries: the flow identity (so switches can map a
//! packet to its service commitment), a conformance tag (set by the edge
//! policer of Section 8), and the accumulated jitter offset used by FIFO+
//! (Section 6).  The transport kind and sequence/ack numbers exist so the
//! simplified TCP used as datagram background traffic in Table 3 can run
//! over the same packet type.

use ispn_sim::SimTime;

/// Identifier of a flow (a simplex source → destination stream with one
/// service commitment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The numeric index of the flow.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// Conformance tag stamped by the edge policer.
///
/// Section 8: "Each predicted service flow is checked at the edge of the
/// network … for conformance to its declared token bucket filter;
/// nonconforming packets are dropped or tagged."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Conformance {
    /// The packet was within its flow's declared traffic filter.
    #[default]
    Conforming,
    /// The packet exceeded the filter but was forwarded anyway; switches may
    /// treat it as datagram traffic or drop it first under overload.
    Tagged,
}

/// What the packet carries, as far as the transport layer is concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PacketKind {
    /// Ordinary data (real-time media samples, or TCP segments).
    #[default]
    Data,
    /// A cumulative acknowledgement for every sequence number `< ack`.
    Ack {
        /// The next sequence number expected by the receiver.
        ack: u64,
    },
}

/// A packet in flight.
///
/// Sizes are in bits because the paper specifies link speeds in bits per
/// second and packet sizes in bits (1000-bit packets over 1 Mbit/s links).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Per-flow sequence number, assigned by the source in generation order.
    pub seq: u64,
    /// Size in bits, including headers.
    pub size_bits: u64,
    /// Generation time at the source.
    pub created_at: SimTime,
    /// Accumulated FIFO+ jitter offset in nanoseconds: positive means the
    /// packet has so far experienced *more* queueing than its class average
    /// and should be treated as if it had arrived earlier at later hops.
    pub jitter_offset_ns: i64,
    /// Conformance tag set by the edge policer.
    pub tag: Conformance,
    /// Transport-level interpretation of the payload.
    pub kind: PacketKind,
    /// Index into the flow's route of the next link to traverse; incremented
    /// each time the packet is put on the wire.  When it equals the route
    /// length the packet has reached its destination.  Carrying the hop in
    /// the header keeps the forwarding path free of per-node lookup tables
    /// (the real architecture would derive it from the receiving interface).
    pub hop: u32,
}

impl Packet {
    /// Create a data packet.
    pub fn data(flow: FlowId, seq: u64, size_bits: u64, created_at: SimTime) -> Self {
        Packet {
            flow,
            seq,
            size_bits,
            created_at,
            jitter_offset_ns: 0,
            tag: Conformance::Conforming,
            kind: PacketKind::Data,
            hop: 0,
        }
    }

    /// Create an acknowledgement packet.
    pub fn ack(flow: FlowId, seq: u64, ack: u64, size_bits: u64, created_at: SimTime) -> Self {
        Packet {
            flow,
            seq,
            size_bits,
            created_at,
            jitter_offset_ns: 0,
            tag: Conformance::Conforming,
            kind: PacketKind::Ack { ack },
            hop: 0,
        }
    }

    /// `true` if the edge policer tagged this packet as non-conforming.
    pub fn is_tagged(self) -> bool {
        self.tag == Conformance::Tagged
    }

    /// Add `delta` (may be negative) to the FIFO+ jitter offset.
    ///
    /// The offset accumulates, at each hop, the difference between the
    /// queueing delay this packet experienced and the average queueing delay
    /// of its class at that hop (Section 6).
    pub fn accumulate_offset(&mut self, delta_ns: i64) {
        self.jitter_offset_ns = self.jitter_offset_ns.saturating_add(delta_ns);
    }

    /// The FIFO+ jitter offset as a signed duration in seconds.
    pub fn jitter_offset_secs(&self) -> f64 {
        self.jitter_offset_ns as f64 / 1e9
    }

    /// The "expected arrival time" at a switch for FIFO+ ordering: the
    /// actual arrival time minus the accumulated offset.  A packet that has
    /// been unlucky so far (positive offset) is scheduled as if it had
    /// arrived earlier.
    pub fn expected_arrival(&self, actual_arrival: SimTime) -> SimTime {
        let ns = actual_arrival.as_nanos() as i128 - self.jitter_offset_ns as i128;
        if ns <= 0 {
            SimTime::ZERO
        } else if ns >= u64::MAX as i128 {
            SimTime::MAX
        } else {
            SimTime::from_nanos(ns as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_packet_defaults() {
        let p = Packet::data(FlowId(3), 7, 1000, SimTime::from_millis(5));
        assert_eq!(p.flow, FlowId(3));
        assert_eq!(p.seq, 7);
        assert_eq!(p.size_bits, 1000);
        assert_eq!(p.jitter_offset_ns, 0);
        assert!(!p.is_tagged());
        assert_eq!(p.kind, PacketKind::Data);
    }

    #[test]
    fn ack_packet_carries_cumulative_ack() {
        let p = Packet::ack(FlowId(1), 2, 10, 320, SimTime::ZERO);
        assert_eq!(p.kind, PacketKind::Ack { ack: 10 });
    }

    #[test]
    fn offset_accumulates_in_both_directions() {
        let mut p = Packet::data(FlowId(0), 0, 1000, SimTime::ZERO);
        p.accumulate_offset(500);
        p.accumulate_offset(-200);
        assert_eq!(p.jitter_offset_ns, 300);
        assert!((p.jitter_offset_secs() - 3e-7).abs() < 1e-15);
    }

    #[test]
    fn expected_arrival_shifts_by_offset() {
        let mut p = Packet::data(FlowId(0), 0, 1000, SimTime::ZERO);
        let arrival = SimTime::from_millis(10);
        assert_eq!(p.expected_arrival(arrival), arrival);
        // A packet with positive offset (worse-than-average so far) looks
        // like it arrived earlier.
        p.jitter_offset_ns = 2_000_000; // 2 ms
        assert_eq!(p.expected_arrival(arrival), SimTime::from_millis(8));
        // Negative offset (better than average) looks later.
        p.jitter_offset_ns = -3_000_000;
        assert_eq!(p.expected_arrival(arrival), SimTime::from_millis(13));
    }

    #[test]
    fn expected_arrival_clamps_at_zero() {
        let mut p = Packet::data(FlowId(0), 0, 1000, SimTime::ZERO);
        p.jitter_offset_ns = i64::MAX;
        assert_eq!(p.expected_arrival(SimTime::from_millis(1)), SimTime::ZERO);
    }

    #[test]
    fn flow_id_display_and_index() {
        assert_eq!(FlowId(5).to_string(), "flow5");
        assert_eq!(FlowId(5).index(), 5);
    }

    #[test]
    fn tagging() {
        let mut p = Packet::data(FlowId(0), 0, 1000, SimTime::ZERO);
        p.tag = Conformance::Tagged;
        assert!(p.is_tagged());
    }
}
