//! Worst-case delay bounds for guaranteed service (Section 4).
//!
//! Parekh and Gallager's result: in a network of arbitrary topology, if a
//! flow is given the same WFQ clock rate `r` at every switch and the clock
//! rates at every switch sum to no more than the link speed, then the
//! flow's queueing delay is bounded by `b(r)/r`, where `b(r)` is the token
//! bucket depth of the flow's traffic at rate `r` — "the queueing delays
//! are no worse than if the entire network were replaced by a single link
//! with a speed equal to the flow's clock rate".
//!
//! The packetized (PGPS) version adds per-hop packetization terms.  The
//! bound the paper quotes in Table 3 is the fluid bound plus the
//! `(K−1)·L/r` store-and-forward term for the maximum-size packet, which for
//! the evaluation's parameters evaluates to 23.53 / 11.76 / 611.76 / 588.24
//! packet-times for the four sample flows; [`pg_queueing_bound`] reproduces
//! exactly those numbers (see the tests).

use ispn_sim::SimTime;

use crate::token_bucket::TokenBucketSpec;

/// The Parekh–Gallager bound on end-to-end *queueing* delay for a flow that
/// conforms to `bucket` and receives clock rate `clock_rate_bps` at each of
/// `hops` switches, with maximum packet size `max_packet_bits`.
///
/// `bound = b/r + (K − 1)·L/r`
///
/// This is the quantity the paper's Table 3 lists in its "P-G bound" column
/// (it excludes the fixed per-hop transmission time `L/Cₖ`, which the
/// paper's delay measurements also exclude).
pub fn pg_queueing_bound(
    bucket: TokenBucketSpec,
    clock_rate_bps: f64,
    hops: usize,
    max_packet_bits: u64,
) -> SimTime {
    assert!(clock_rate_bps > 0.0, "clock rate must be positive");
    assert!(hops >= 1, "a path has at least one hop");
    let b_over_r = bucket.depth_bits / clock_rate_bps;
    let per_hop = max_packet_bits as f64 / clock_rate_bps;
    SimTime::from_secs_f64(b_over_r + (hops as f64 - 1.0) * per_hop)
}

/// The full packetized PGPS bound including the per-hop transmission terms
/// `Σₖ L/Cₖ`: an upper bound on total delay (queueing plus store-and-forward
/// transmission) excluding propagation.
pub fn pg_total_bound(
    bucket: TokenBucketSpec,
    clock_rate_bps: f64,
    link_rates_bps: &[f64],
    max_packet_bits: u64,
) -> SimTime {
    assert!(!link_rates_bps.is_empty(), "a path has at least one link");
    let queueing = pg_queueing_bound(
        bucket,
        clock_rate_bps,
        link_rates_bps.len(),
        max_packet_bits,
    );
    let mut tx = 0.0;
    for &c in link_rates_bps {
        assert!(c > 0.0, "link rates must be positive");
        tx += max_packet_bits as f64 / c;
    }
    queueing + SimTime::from_secs_f64(tx)
}

/// The single-link fluid bound `b/r` — the delay of a maximal burst drained
/// at the clock rate, i.e. the intuition behind the P-G result ("all of the
/// queueing delay would occur in the leaky bucket filter").
pub fn fluid_single_link_bound(bucket: TokenBucketSpec, clock_rate_bps: f64) -> SimTime {
    assert!(clock_rate_bps > 0.0);
    SimTime::from_secs_f64(bucket.depth_bits / clock_rate_bps)
}

/// Check whether a set of guaranteed clock rates is admissible on a link of
/// `link_rate_bps`: the P-G result requires `Σ rα ≤ μ` (the paper
/// additionally keeps 10 % headroom for datagram traffic — that stricter
/// check lives in [`crate::admission`]).
pub fn rates_feasible(clock_rates_bps: &[f64], link_rate_bps: f64) -> bool {
    clock_rates_bps.iter().sum::<f64>() <= link_rate_bps + 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    const PKT: u64 = 1000;
    const LINK: f64 = 1_000_000.0;

    /// Express a SimTime in the paper's packet-transmission-time unit (1 ms).
    fn in_packet_times(t: SimTime) -> f64 {
        t.as_millis_f64()
    }

    #[test]
    fn reproduces_table3_pg_bounds() {
        // Guaranteed-Peak flows: clock rate = peak rate = 170 pkt/s, and at
        // that rate the on/off source never backs up more than one packet,
        // so b(r) = 1 packet.
        let peak_bucket = TokenBucketSpec::per_packets(170.0, 1.0, PKT);
        let peak_rate = 170.0 * PKT as f64;
        let b4 = pg_queueing_bound(peak_bucket, peak_rate, 4, PKT);
        let b2 = pg_queueing_bound(peak_bucket, peak_rate, 2, PKT);
        assert!(
            (in_packet_times(b4) - 23.53).abs() < 0.01,
            "{}",
            in_packet_times(b4)
        );
        assert!(
            (in_packet_times(b2) - 11.76).abs() < 0.01,
            "{}",
            in_packet_times(b2)
        );

        // Guaranteed-Average flows: clock rate = average rate = 85 pkt/s,
        // token bucket depth = 50 packets (the Appendix's (A, 50) filter).
        let avg_bucket = TokenBucketSpec::per_packets(85.0, 50.0, PKT);
        let avg_rate = 85.0 * PKT as f64;
        let b3 = pg_queueing_bound(avg_bucket, avg_rate, 3, PKT);
        let b1 = pg_queueing_bound(avg_bucket, avg_rate, 1, PKT);
        assert!(
            (in_packet_times(b3) - 611.76).abs() < 0.05,
            "{}",
            in_packet_times(b3)
        );
        assert!(
            (in_packet_times(b1) - 588.24).abs() < 0.05,
            "{}",
            in_packet_times(b1)
        );
    }

    #[test]
    fn total_bound_adds_transmission_times() {
        let bucket = TokenBucketSpec::per_packets(85.0, 50.0, PKT);
        let rate = 85.0 * PKT as f64;
        let q = pg_queueing_bound(bucket, rate, 3, PKT);
        let t = pg_total_bound(bucket, rate, &[LINK, LINK, LINK], PKT);
        assert_eq!(t, q + SimTime::from_millis(3));
    }

    #[test]
    fn fluid_bound_is_b_over_r() {
        let bucket = TokenBucketSpec::new(10_000.0, 50_000.0);
        assert_eq!(
            fluid_single_link_bound(bucket, 10_000.0),
            SimTime::from_secs(5)
        );
    }

    #[test]
    fn single_hop_bound_equals_fluid_bound() {
        let bucket = TokenBucketSpec::new(10_000.0, 50_000.0);
        assert_eq!(
            pg_queueing_bound(bucket, 10_000.0, 1, PKT),
            fluid_single_link_bound(bucket, 10_000.0)
        );
    }

    #[test]
    fn bound_decreases_with_rate_and_increases_with_hops() {
        let bucket = TokenBucketSpec::new(10_000.0, 50_000.0);
        let slow = pg_queueing_bound(bucket, 10_000.0, 2, PKT);
        let fast = pg_queueing_bound(bucket, 100_000.0, 2, PKT);
        assert!(fast < slow);
        let short = pg_queueing_bound(bucket, 10_000.0, 1, PKT);
        let long = pg_queueing_bound(bucket, 10_000.0, 5, PKT);
        assert!(long > short);
    }

    #[test]
    fn feasibility_check() {
        assert!(rates_feasible(&[300_000.0, 300_000.0, 400_000.0], LINK));
        assert!(!rates_feasible(&[600_000.0, 600_000.0], LINK));
        assert!(rates_feasible(&[], LINK));
    }

    #[test]
    #[should_panic]
    fn zero_hops_rejected() {
        let _ = pg_queueing_bound(TokenBucketSpec::new(1.0, 1.0), 1.0, 0, PKT);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The bound is monotone: more hops or a deeper bucket never shrink
        /// it; a faster clock never grows it.
        #[test]
        fn monotonicity(
            depth in 1_000.0f64..1_000_000.0,
            rate in 1_000.0f64..1_000_000.0,
            hops in 1usize..10,
        ) {
            let b = TokenBucketSpec::new(rate, depth);
            let base = pg_queueing_bound(b, rate, hops, 1000);
            let deeper = pg_queueing_bound(TokenBucketSpec::new(rate, depth * 2.0), rate, hops, 1000);
            let farther = pg_queueing_bound(b, rate, hops + 1, 1000);
            let faster = pg_queueing_bound(b, rate * 2.0, hops, 1000);
            prop_assert!(deeper >= base);
            prop_assert!(farther >= base);
            prop_assert!(faster <= base);
        }
    }
}
