//! # ispn-core — the CSZ'92 Integrated Services architecture
//!
//! This crate holds the paper's *architecture*: the concepts that exist
//! independently of any particular switch scheduling mechanism.
//!
//! * [`packet`] — the packet format, including the jitter-offset header
//!   field that FIFO+ relies on (Section 6: the offset "be defined as part
//!   of the packet header"),
//! * [`flow`] — service classes (guaranteed / predicted / datagram), flow
//!   identities and the service interface of Section 8 ([`flow::FlowSpec`]),
//! * [`token_bucket`] — the `(r, b)` token-bucket traffic filter of
//!   Section 4, used both as a conformance checker and as an edge policer,
//! * [`bounds`] — Parekh–Gallager worst-case queueing-delay bounds for
//!   guaranteed flows,
//! * [`admission`] — the measurement-based admission-control criterion of
//!   Section 9 together with the 10 % datagram quota,
//! * [`playback`] — rigid and adaptive play-back point applications
//!   (Section 2), the client side of the architecture.
//!
//! The scheduling *mechanisms* (WFQ, FIFO+, the unified scheduler) live in
//! `ispn-sched`; the packet network that carries the traffic lives in
//! `ispn-net`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admission;
pub mod arena;
pub mod bounds;
pub mod flow;
pub mod packet;
pub mod playback;
pub mod token_bucket;

pub use admission::{AdmissionController, AdmissionDecision, LinkMeasurement};
pub use arena::{SegQueue, SegmentPool};
pub use flow::{FlowSpec, ServiceClass};
pub use packet::{Conformance, FlowId, Packet, PacketKind};
pub use token_bucket::{TokenBucket, TokenBucketSpec};
