//! Service classes and the service interface (Sections 3 and 8).
//!
//! The paper defines three kinds of service commitment:
//!
//! * **guaranteed** — worst-case delay bounds that hold no matter how other
//!   clients behave, provided the flow itself conforms to its traffic
//!   characterization,
//! * **predicted** — bounds that hold "if the past is a guide to the
//!   future", delivered by measurement rather than worst-case analysis, with
//!   several widely-spaced target delay classes,
//! * **datagram** — traditional best-effort service with no commitment.
//!
//! The *service interface* (Section 8) differs per class: a guaranteed flow
//! only states its WFQ clock rate `r`; a predicted flow declares a token
//! bucket `(r, b)` plus the delay `D` and loss rate `L` it wants; a datagram
//! flow declares nothing.

use ispn_sim::SimTime;

use crate::token_bucket::TokenBucketSpec;

/// Which service commitment a flow's packets receive at switches.
///
/// Priority 0 is the highest predicted-service priority; the datagram class
/// sits below every predicted priority (Section 7: "We assign datagram
/// traffic to the lowest priority class").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// A guaranteed-service flow isolated by WFQ with its own clock rate.
    Guaranteed,
    /// A predicted-service flow assigned to one of the K priority classes.
    Predicted {
        /// Priority level at this switch; 0 is highest.
        priority: u8,
    },
    /// Best-effort datagram traffic.
    Datagram,
}

impl ServiceClass {
    /// `true` for real-time (guaranteed or predicted) classes.
    pub fn is_realtime(self) -> bool {
        !matches!(self, ServiceClass::Datagram)
    }

    /// The predicted-service priority, if any.
    pub fn priority(self) -> Option<u8> {
        match self {
            ServiceClass::Predicted { priority } => Some(priority),
            _ => None,
        }
    }
}

/// The per-flow service interface of Section 8: what the source tells the
/// network when it requests service.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowSpec {
    /// Guaranteed service: "the source only needs to specify the needed
    /// clock rate r".  The network performs no conformance check; the source
    /// uses its own knowledge of `b(r)` to compute its worst-case delay.
    Guaranteed {
        /// Requested WFQ clock rate in bits per second.
        clock_rate_bps: f64,
    },
    /// Predicted service: the traffic characterization `(r, b)` plus the
    /// requested delay target `D` and tolerable loss rate `L`.
    Predicted {
        /// Declared token-bucket filter.
        bucket: TokenBucketSpec,
        /// Requested per-path delay target.
        target_delay: SimTime,
        /// Tolerable loss rate (fraction of packets that may miss the
        /// target), e.g. `0.001`.
        loss_rate: f64,
    },
    /// Datagram (best-effort) service: no parameters.
    Datagram,
}

impl FlowSpec {
    /// A guaranteed-service spec with the given clock rate.
    pub fn guaranteed(clock_rate_bps: f64) -> Self {
        assert!(clock_rate_bps > 0.0, "clock rate must be positive");
        FlowSpec::Guaranteed { clock_rate_bps }
    }

    /// A predicted-service spec.
    pub fn predicted(bucket: TokenBucketSpec, target_delay: SimTime, loss_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate must be a probability"
        );
        FlowSpec::Predicted {
            bucket,
            target_delay,
            loss_rate,
        }
    }

    /// The token bucket declared by a predicted flow, if any.
    pub fn bucket(&self) -> Option<TokenBucketSpec> {
        match self {
            FlowSpec::Predicted { bucket, .. } => Some(*bucket),
            _ => None,
        }
    }

    /// The guaranteed clock rate, if this is a guaranteed flow.
    pub fn clock_rate_bps(&self) -> Option<f64> {
        match self {
            FlowSpec::Guaranteed { clock_rate_bps } => Some(*clock_rate_bps),
            _ => None,
        }
    }

    /// `true` if the flow has any real-time commitment.
    pub fn is_realtime(&self) -> bool {
        !matches!(self, FlowSpec::Datagram)
    }
}

/// The delay bound the network advertises to a flow when its reservation is
/// accepted (Section 7).
///
/// For a guaranteed flow this is the Parekh–Gallager bound; for a predicted
/// flow it is the sum of the per-hop class targets Dᵢ along the path
/// ("the a priori delay bound advertised to a predicted service flow is the
/// sum of the appropriate Dᵢ along the path"); a datagram flow gets none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvertisedBound {
    /// No bound is advertised (datagram service).
    None,
    /// An a-priori upper bound on queueing delay.
    Bound(SimTime),
}

impl AdvertisedBound {
    /// The bound as an option.
    pub fn as_option(self) -> Option<SimTime> {
        match self {
            AdvertisedBound::None => None,
            AdvertisedBound::Bound(t) => Some(t),
        }
    }
}

/// Sum the per-hop predicted-service class targets along a path to produce
/// the advertised a-priori bound (Section 7).
pub fn predicted_path_bound(per_hop_targets: &[SimTime]) -> AdvertisedBound {
    if per_hop_targets.is_empty() {
        return AdvertisedBound::None;
    }
    let mut total = SimTime::ZERO;
    for &t in per_hop_targets {
        total += t;
    }
    AdvertisedBound::Bound(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(ServiceClass::Guaranteed.is_realtime());
        assert!(ServiceClass::Predicted { priority: 1 }.is_realtime());
        assert!(!ServiceClass::Datagram.is_realtime());
        assert_eq!(ServiceClass::Predicted { priority: 2 }.priority(), Some(2));
        assert_eq!(ServiceClass::Guaranteed.priority(), None);
    }

    #[test]
    fn guaranteed_spec_exposes_rate() {
        let s = FlowSpec::guaranteed(170_000.0);
        assert_eq!(s.clock_rate_bps(), Some(170_000.0));
        assert_eq!(s.bucket(), None);
        assert!(s.is_realtime());
    }

    #[test]
    fn predicted_spec_exposes_bucket() {
        let b = TokenBucketSpec::new(85_000.0, 50_000.0);
        let s = FlowSpec::predicted(b, SimTime::from_millis(10), 0.001);
        assert_eq!(s.bucket(), Some(b));
        assert_eq!(s.clock_rate_bps(), None);
        assert!(s.is_realtime());
    }

    #[test]
    fn datagram_spec_is_not_realtime() {
        assert!(!FlowSpec::Datagram.is_realtime());
        assert_eq!(FlowSpec::Datagram.bucket(), None);
    }

    #[test]
    #[should_panic]
    fn zero_clock_rate_rejected() {
        let _ = FlowSpec::guaranteed(0.0);
    }

    #[test]
    #[should_panic]
    fn silly_loss_rate_rejected() {
        let _ = FlowSpec::predicted(TokenBucketSpec::new(1.0, 1.0), SimTime::from_millis(1), 1.5);
    }

    #[test]
    fn path_bound_is_sum_of_hop_targets() {
        let hops = [
            SimTime::from_millis(10),
            SimTime::from_millis(10),
            SimTime::from_millis(30),
        ];
        assert_eq!(
            predicted_path_bound(&hops),
            AdvertisedBound::Bound(SimTime::from_millis(50))
        );
        assert_eq!(predicted_path_bound(&[]), AdvertisedBound::None);
        assert_eq!(
            predicted_path_bound(&hops).as_option(),
            Some(SimTime::from_millis(50))
        );
        assert_eq!(AdvertisedBound::None.as_option(), None);
    }
}
