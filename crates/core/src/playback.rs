//! Play-back applications (Section 2).
//!
//! The paper's taxonomy of real-time clients rests on the *play-back point*:
//! a receiver buffers arriving packets and replays the signal at a fixed
//! offset from generation time; packets that arrive after the play-back
//! point are useless.
//!
//! * A **rigid** application sets the play-back point once, from the a-priori
//!   delay bound advertised by the network, and never moves it.
//! * An **adaptive** application measures the delays its packets actually
//!   receive and moves the play-back point to "the minimal delay that still
//!   produces a sufficiently low loss rate", gambling that the recent past
//!   predicts the near future.
//!
//! These types are the client side of the architecture: the extension
//! experiments use them to test the paper's central conjecture that
//! predicted service plus adaptive clients yields both higher utilization
//! and lower play-back delay than guaranteed service with rigid clients.

use std::collections::VecDeque;

use ispn_sim::SimTime;
use ispn_stats::StreamingStats;

/// Outcome of offering one received packet to a play-back buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaybackOutcome {
    /// The packet arrived before its play-back point and can be played.
    Played,
    /// The packet arrived after its play-back point and is useless.
    Late,
}

/// Statistics common to both application kinds.
#[derive(Debug, Clone, Default)]
pub struct PlaybackStats {
    played: u64,
    late: u64,
    delay: StreamingStats,
    playback_point: StreamingStats,
}

impl PlaybackStats {
    /// Packets that made their play-back point.
    pub fn played(&self) -> u64 {
        self.played
    }

    /// Packets that missed their play-back point.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// Fraction of packets that missed the play-back point.
    pub fn loss_rate(&self) -> f64 {
        let total = self.played + self.late;
        if total == 0 {
            0.0
        } else {
            self.late as f64 / total as f64
        }
    }

    /// Statistics of the network delay experienced by received packets.
    pub fn delay(&self) -> &StreamingStats {
        &self.delay
    }

    /// Statistics of the play-back point in force when each packet arrived
    /// (constant for a rigid application; varies for an adaptive one).
    /// The mean of this series is the application's effective latency.
    pub fn playback_point(&self) -> &StreamingStats {
        &self.playback_point
    }

    fn record(&mut self, delay: SimTime, point: SimTime) -> PlaybackOutcome {
        self.delay.record(delay.as_secs_f64());
        self.playback_point.record(point.as_secs_f64());
        if delay <= point {
            self.played += 1;
            PlaybackOutcome::Played
        } else {
            self.late += 1;
            PlaybackOutcome::Late
        }
    }
}

/// A rigid play-back application: the play-back point is fixed at the
/// network's advertised a-priori bound.
#[derive(Debug, Clone)]
pub struct RigidPlayback {
    point: SimTime,
    stats: PlaybackStats,
}

impl RigidPlayback {
    /// Create an application whose play-back point is `advertised_bound`.
    pub fn new(advertised_bound: SimTime) -> Self {
        RigidPlayback {
            point: advertised_bound,
            stats: PlaybackStats::default(),
        }
    }

    /// The fixed play-back point.
    pub fn playback_point(&self) -> SimTime {
        self.point
    }

    /// Offer a packet that experienced `delay` end-to-end.
    pub fn on_packet(&mut self, delay: SimTime) -> PlaybackOutcome {
        self.stats.record(delay, self.point)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PlaybackStats {
        &self.stats
    }
}

/// An adaptive play-back application.
///
/// The receiver keeps a sliding window of the most recent packet delays and
/// sets the play-back point to the `target_quantile` of that window times a
/// small safety `margin`.  This mirrors how VAT-style audio tools adapt:
/// they track recent delay and aim to lose no more than a small fraction of
/// packets.
#[derive(Debug, Clone)]
pub struct AdaptivePlayback {
    window: VecDeque<SimTime>,
    window_len: usize,
    target_quantile: f64,
    margin: f64,
    /// The play-back point currently in force.
    current_point: SimTime,
    /// Lower bound on the play-back point (e.g. one packet time), so the
    /// point cannot collapse to zero during an idle period.
    floor: SimTime,
    stats: PlaybackStats,
    readjustments: u64,
}

impl AdaptivePlayback {
    /// Create an adaptive application.
    ///
    /// * `initial_point` — play-back point before any delay has been
    ///   measured (a sensible choice is the advertised bound, as a rigid
    ///   client would use),
    /// * `window_len` — number of recent packets the estimate looks at,
    /// * `target_quantile` — the delay quantile the client aims to cover
    ///   (e.g. 0.99 to tolerate ≈1 % loss),
    /// * `margin` — multiplicative safety factor applied to the quantile.
    pub fn new(
        initial_point: SimTime,
        window_len: usize,
        target_quantile: f64,
        margin: f64,
    ) -> Self {
        assert!(window_len >= 2, "adaptation needs at least two samples");
        assert!((0.0..=1.0).contains(&target_quantile));
        assert!(margin >= 1.0, "margin below 1 would be anti-conservative");
        AdaptivePlayback {
            window: VecDeque::with_capacity(window_len),
            window_len,
            target_quantile,
            margin,
            current_point: initial_point,
            floor: SimTime::MILLISECOND,
            stats: PlaybackStats::default(),
            readjustments: 0,
        }
    }

    /// Set the minimum play-back point (default: one millisecond).
    pub fn set_floor(&mut self, floor: SimTime) {
        self.floor = floor;
    }

    /// The play-back point currently in force.
    pub fn playback_point(&self) -> SimTime {
        self.current_point
    }

    /// Number of times the play-back point has been re-computed.
    pub fn readjustments(&self) -> u64 {
        self.readjustments
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PlaybackStats {
        &self.stats
    }

    /// Offer a packet that experienced `delay` end-to-end.  The packet is
    /// judged against the play-back point that was in force *before* this
    /// packet's delay is folded into the estimate (the client cannot see the
    /// future).
    pub fn on_packet(&mut self, delay: SimTime) -> PlaybackOutcome {
        let outcome = self.stats.record(delay, self.current_point);
        self.window.push_back(delay);
        if self.window.len() > self.window_len {
            self.window.pop_front();
        }
        self.recompute();
        outcome
    }

    fn recompute(&mut self) {
        if self.window.len() < 2 {
            return;
        }
        let mut delays: Vec<SimTime> = self.window.iter().copied().collect();
        delays.sort_unstable();
        let pos = (self.target_quantile * (delays.len() - 1) as f64).round() as usize;
        let q = delays[pos.min(delays.len() - 1)];
        let new_point = q.mul_f64(self.margin).max(self.floor);
        if new_point != self.current_point {
            self.readjustments += 1;
            self.current_point = new_point;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rigid_counts_late_packets() {
        let mut app = RigidPlayback::new(SimTime::from_millis(100));
        assert_eq!(
            app.on_packet(SimTime::from_millis(50)),
            PlaybackOutcome::Played
        );
        assert_eq!(
            app.on_packet(SimTime::from_millis(100)),
            PlaybackOutcome::Played
        );
        assert_eq!(
            app.on_packet(SimTime::from_millis(150)),
            PlaybackOutcome::Late
        );
        assert_eq!(app.stats().played(), 2);
        assert_eq!(app.stats().late(), 1);
        assert!((app.stats().loss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(app.playback_point(), SimTime::from_millis(100));
        // The play-back point series is constant.
        assert_eq!(app.stats().playback_point().std_dev(), 0.0);
    }

    #[test]
    fn adaptive_tracks_delays_downward() {
        // Start with a very conservative point (as a rigid client would),
        // then observe consistently small delays: the point must come down.
        let mut app = AdaptivePlayback::new(SimTime::from_millis(500), 20, 0.95, 1.1);
        for _ in 0..100 {
            app.on_packet(SimTime::from_millis(10));
        }
        assert!(app.playback_point() <= SimTime::from_millis(12));
        assert!(app.playback_point() >= SimTime::MILLISECOND);
        assert_eq!(app.stats().late(), 0);
        assert!(app.readjustments() >= 1);
        // Effective latency (mean play-back point) far below the rigid 500ms.
        assert!(app.stats().playback_point().mean() < 0.2);
    }

    #[test]
    fn adaptive_reacts_to_delay_increase_with_transient_loss() {
        let mut app = AdaptivePlayback::new(SimTime::from_millis(15), 20, 0.95, 1.05);
        for _ in 0..50 {
            app.on_packet(SimTime::from_millis(10));
        }
        let low_point = app.playback_point();
        // Network conditions change: delays triple.  The first packets miss
        // the (still low) play-back point, then the client re-adjusts.
        let mut late = 0;
        for _ in 0..50 {
            if app.on_packet(SimTime::from_millis(30)) == PlaybackOutcome::Late {
                late += 1;
            }
        }
        assert!(late > 0, "the gamble must cost something during the change");
        assert!(app.playback_point() > low_point);
        // And afterwards the losses stop.
        let before = app.stats().late();
        for _ in 0..20 {
            app.on_packet(SimTime::from_millis(30));
        }
        assert_eq!(app.stats().late(), before);
    }

    #[test]
    fn adaptive_respects_floor() {
        let mut app = AdaptivePlayback::new(SimTime::from_millis(100), 5, 0.9, 1.0);
        app.set_floor(SimTime::from_millis(4));
        for _ in 0..50 {
            app.on_packet(SimTime::from_micros(100));
        }
        assert_eq!(app.playback_point(), SimTime::from_millis(4));
    }

    #[test]
    fn adaptive_beats_rigid_on_latency_at_similar_loss() {
        // The architectural claim of Section 2.3 in miniature: with delays
        // that are usually small but occasionally spike, the adaptive client
        // achieves a much earlier play-back point than the rigid client that
        // sits at the a-priori bound.
        let advertised = SimTime::from_millis(200);
        let mut rigid = RigidPlayback::new(advertised);
        let mut adaptive = AdaptivePlayback::new(advertised, 50, 0.99, 1.2);
        for i in 0..2000u32 {
            let delay = if i % 97 == 0 {
                SimTime::from_millis(40)
            } else {
                SimTime::from_millis(8 + (i % 5) as u64)
            };
            rigid.on_packet(delay);
            adaptive.on_packet(delay);
        }
        assert_eq!(rigid.stats().loss_rate(), 0.0);
        assert!(adaptive.stats().loss_rate() < 0.02);
        assert!(
            adaptive.stats().playback_point().mean() < 0.5 * rigid.stats().playback_point().mean(),
            "adaptive point {} vs rigid {}",
            adaptive.stats().playback_point().mean(),
            rigid.stats().playback_point().mean()
        );
    }

    #[test]
    #[should_panic]
    fn tiny_window_rejected() {
        let _ = AdaptivePlayback::new(SimTime::ZERO, 1, 0.9, 1.0);
    }

    #[test]
    #[should_panic]
    fn anti_conservative_margin_rejected() {
        let _ = AdaptivePlayback::new(SimTime::ZERO, 10, 0.9, 0.5);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = PlaybackStats::default();
        assert_eq!(s.loss_rate(), 0.0);
        assert_eq!(s.played(), 0);
        assert_eq!(s.late(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The adaptive play-back point never falls below the floor and
        /// never exceeds margin × (max delay in window), whatever the delay
        /// pattern.
        #[test]
        fn adaptive_point_bounded(delays_ms in proptest::collection::vec(1u64..500, 2..200)) {
            let mut app = AdaptivePlayback::new(SimTime::from_millis(1000), 30, 0.99, 1.5);
            let mut max_seen = SimTime::ZERO;
            for &d in &delays_ms {
                let d = SimTime::from_millis(d);
                max_seen = max_seen.max(d);
                app.on_packet(d);
                prop_assert!(app.playback_point() >= SimTime::MILLISECOND);
                prop_assert!(app.playback_point() <= max_seen.mul_f64(1.5).max(SimTime::from_millis(1000)));
            }
            // played + late accounts for every packet
            prop_assert_eq!(app.stats().played() + app.stats().late(), delays_ms.len() as u64);
        }
    }
}
