//! Admission control (Section 9).
//!
//! The paper gives two criteria for deciding whether to admit another flow
//! on a link of speed μ:
//!
//! 1. reserve no more than 90 % of the bandwidth for real-time traffic so
//!    that datagram service "remains operational at all times", and
//! 2. adding the flow must not push any predicted class's delay over its
//!    target bound Dᵢ.
//!
//! The example criterion: a flow promising token bucket `(r, b)` can be
//! admitted to priority level `i` if
//!
//! * `r + ν̂ < 0.9·μ`, and
//! * `b < (Dⱼ − d̂ⱼ)(μ − ν̂ − r)` for every class `j` lower than or equal in
//!   priority to `i`,
//!
//! where ν̂ is the *measured* post-facto bound on real-time utilization and
//! d̂ⱼ the *measured* maximal delay of class `j` — both taken as
//! "consistently conservative estimates" rather than averages.  Guaranteed
//! flows count as higher priority than every predicted class for check (2),
//! and their own admission is the worst-case rate check.

use ispn_sim::SimTime;
use ispn_stats::{WindowedMax, WindowedMean};

use crate::token_bucket::TokenBucketSpec;

/// Result of an admission request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The flow may be admitted.
    Accept,
    /// The flow must be refused, with the failed criterion spelled out.
    Reject {
        /// Human-readable description of which criterion failed.
        reason: String,
    },
}

impl AdmissionDecision {
    /// `true` if the decision is `Accept`.
    pub fn is_accept(&self) -> bool {
        matches!(self, AdmissionDecision::Accept)
    }
}

/// A snapshot of the measured state of one link, as used by the
/// measurement-based criterion.
#[derive(Debug, Clone)]
pub struct LinkMeasurement {
    /// Measured real-time utilization ν̂ in bits per second (a conservative,
    /// post-facto bound — not an average).
    pub realtime_util_bps: f64,
    /// Measured maximal queueing delay d̂ⱼ per predicted class, indexed by
    /// priority (0 = highest).
    pub class_delay: Vec<SimTime>,
}

/// Static configuration of the admission controller for one link.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Link speed μ in bits per second.
    pub link_rate_bps: f64,
    /// Fraction of the link that real-time traffic may occupy (the paper
    /// suggests 0.9, leaving ≥10 % for datagram service).
    pub realtime_quota: f64,
    /// The widely-spaced per-class delay targets Dᵢ at this switch, indexed
    /// by priority (0 = highest priority, smallest target).
    pub class_targets: Vec<SimTime>,
}

impl AdmissionConfig {
    /// Create a configuration; the quota must be in (0, 1].
    pub fn new(link_rate_bps: f64, realtime_quota: f64, class_targets: Vec<SimTime>) -> Self {
        assert!(link_rate_bps > 0.0);
        assert!(realtime_quota > 0.0 && realtime_quota <= 1.0);
        AdmissionConfig {
            link_rate_bps,
            realtime_quota,
            class_targets,
        }
    }
}

/// The admission controller for one link: holds the configuration, the sum
/// of guaranteed clock rates already reserved, and the measurement machinery
/// that produces ν̂ and d̂ⱼ.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Sum of clock rates of guaranteed flows currently reserved.
    reserved_guaranteed_bps: f64,
    /// Windowed mean of measured real-time throughput (bits/s samples).
    util_estimate: WindowedMean,
    /// Safety factor applied to the measured utilization to keep it
    /// conservative (ν̂ = factor × windowed mean, floored by reservations).
    util_safety_factor: f64,
    /// Windowed maximum of per-class queueing delays (seconds), one per
    /// priority level.
    delay_estimates: Vec<WindowedMax>,
    accepted: u64,
    rejected: u64,
}

impl AdmissionController {
    /// Create a controller with the given measurement window (seconds).
    pub fn new(config: AdmissionConfig, measurement_window_secs: f64) -> Self {
        let delay_estimates = config
            .class_targets
            .iter()
            .map(|_| WindowedMax::new(measurement_window_secs))
            .collect();
        AdmissionController {
            config,
            reserved_guaranteed_bps: 0.0,
            util_estimate: WindowedMean::new(measurement_window_secs),
            util_safety_factor: 1.2,
            delay_estimates,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Access the static configuration.
    pub fn config(&self) -> &AdmissionConfig {
        &self.config
    }

    /// Set the multiplicative safety factor applied to measured utilization
    /// (default 1.2; larger is more conservative).
    pub fn set_util_safety_factor(&mut self, f: f64) {
        assert!(f >= 1.0, "a safety factor below 1 is not conservative");
        self.util_safety_factor = f;
    }

    /// Feed one measured sample of real-time throughput on the link
    /// (bits per second averaged over the monitor's sampling interval).
    pub fn observe_utilization(&mut self, now: SimTime, realtime_bps: f64) {
        self.util_estimate.record(now.as_secs_f64(), realtime_bps);
    }

    /// Feed one measured per-packet queueing delay for a predicted class.
    pub fn observe_class_delay(&mut self, now: SimTime, priority: u8, delay: SimTime) {
        if let Some(w) = self.delay_estimates.get_mut(priority as usize) {
            w.record(now.as_secs_f64(), delay.as_secs_f64());
        }
    }

    /// The current conservative measurement snapshot.
    ///
    /// If no utilization samples have been observed recently the estimate
    /// falls back to the sum of guaranteed reservations (the only traffic we
    /// can be sure about); measured delays default to zero.
    pub fn measurement(&mut self, now: SimTime) -> LinkMeasurement {
        let t = now.as_secs_f64();
        let measured = self.util_estimate.current(t, 0.0) * self.util_safety_factor;
        let realtime_util_bps = measured.max(self.reserved_guaranteed_bps);
        let class_delay = self
            .delay_estimates
            .iter_mut()
            .map(|w| SimTime::from_secs_f64(w.current(t, 0.0)))
            .collect();
        LinkMeasurement {
            realtime_util_bps,
            class_delay,
        }
    }

    /// Number of requests accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Sum of clock rates currently reserved by guaranteed flows.
    pub fn reserved_guaranteed_bps(&self) -> f64 {
        self.reserved_guaranteed_bps
    }

    /// Request admission of a guaranteed flow with clock rate `rate_bps`.
    ///
    /// Guaranteed admission is a worst-case check: the sum of all guaranteed
    /// clock rates (including the newcomer) must stay within the real-time
    /// quota of the link so that datagram traffic keeps its share and the
    /// Parekh–Gallager conditions hold.
    pub fn request_guaranteed(&mut self, rate_bps: f64) -> AdmissionDecision {
        assert!(rate_bps > 0.0);
        let quota = self.config.realtime_quota * self.config.link_rate_bps;
        if self.reserved_guaranteed_bps + rate_bps <= quota + 1e-9 {
            self.reserved_guaranteed_bps += rate_bps;
            self.accepted += 1;
            AdmissionDecision::Accept
        } else {
            self.rejected += 1;
            AdmissionDecision::Reject {
                reason: format!(
                    "guaranteed reservation {:.0} + requested {:.0} bps exceeds quota {:.0} bps",
                    self.reserved_guaranteed_bps, rate_bps, quota
                ),
            }
        }
    }

    /// Release a previously admitted guaranteed reservation.
    pub fn release_guaranteed(&mut self, rate_bps: f64) {
        self.reserved_guaranteed_bps = (self.reserved_guaranteed_bps - rate_bps).max(0.0);
    }

    /// Request admission of a predicted flow declaring token bucket `bucket`
    /// at priority `priority`, using the Section 9 example criterion against
    /// the current measurements.
    pub fn request_predicted(
        &mut self,
        now: SimTime,
        bucket: TokenBucketSpec,
        priority: u8,
    ) -> AdmissionDecision {
        let meas = self.measurement(now);
        let decision = admit_predicted(&self.config, &meas, bucket, priority);
        match &decision {
            AdmissionDecision::Accept => self.accepted += 1,
            AdmissionDecision::Reject { .. } => self.rejected += 1,
        }
        decision
    }
}

/// The pure Section-9 criterion, usable without the stateful controller
/// (e.g. in tests or in a centralized reservation agent).
pub fn admit_predicted(
    config: &AdmissionConfig,
    meas: &LinkMeasurement,
    bucket: TokenBucketSpec,
    priority: u8,
) -> AdmissionDecision {
    let mu = config.link_rate_bps;
    let nu = meas.realtime_util_bps;
    let r = bucket.rate_bps;
    let b = bucket.depth_bits;

    if priority as usize >= config.class_targets.len() {
        return AdmissionDecision::Reject {
            reason: format!(
                "priority {} does not exist (only {} classes configured)",
                priority,
                config.class_targets.len()
            ),
        };
    }

    // Criterion 1: r + ν̂ < quota · μ
    let quota = config.realtime_quota * mu;
    if r + nu >= quota {
        return AdmissionDecision::Reject {
            reason: format!(
                "rate check failed: r + ν̂ = {:.0} + {:.0} ≥ {:.0} bps (quota)",
                r, nu, quota
            ),
        };
    }

    // Criterion 2: b < (Dⱼ − d̂ⱼ)(μ − ν̂ − r) for every class j at or below
    // priority i (larger j = lower priority).
    for (j, &target) in config.class_targets.iter().enumerate() {
        if j < priority as usize {
            continue; // strictly higher-priority classes are unaffected
        }
        let d_hat = meas
            .class_delay
            .get(j)
            .copied()
            .unwrap_or(SimTime::ZERO)
            .as_secs_f64();
        let headroom_secs = target.as_secs_f64() - d_hat;
        if headroom_secs <= 0.0 {
            return AdmissionDecision::Reject {
                reason: format!(
                    "class {} already at its delay target ({} measured vs {} target)",
                    j,
                    SimTime::from_secs_f64(d_hat),
                    target
                ),
            };
        }
        let capacity_headroom = mu - nu - r;
        if capacity_headroom <= 0.0 || b >= headroom_secs * capacity_headroom {
            return AdmissionDecision::Reject {
                reason: format!(
                    "burst check failed for class {}: b = {:.0} bits ≥ ({:.4} s)({:.0} bps)",
                    j, b, headroom_secs, capacity_headroom
                ),
            };
        }
    }

    AdmissionDecision::Accept
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINK: f64 = 1_000_000.0;

    fn config() -> AdmissionConfig {
        AdmissionConfig::new(
            LINK,
            0.9,
            vec![SimTime::from_millis(10), SimTime::from_millis(100)],
        )
    }

    fn idle_measurement() -> LinkMeasurement {
        LinkMeasurement {
            realtime_util_bps: 0.0,
            class_delay: vec![SimTime::ZERO, SimTime::ZERO],
        }
    }

    #[test]
    fn empty_link_accepts_reasonable_flow() {
        let bucket = TokenBucketSpec::per_packets(85.0, 5.0, 1000);
        let d = admit_predicted(&config(), &idle_measurement(), bucket, 0);
        assert!(d.is_accept());
    }

    #[test]
    fn rate_check_rejects_when_quota_exceeded() {
        let mut meas = idle_measurement();
        meas.realtime_util_bps = 850_000.0;
        let bucket = TokenBucketSpec::new(100_000.0, 5_000.0);
        let d = admit_predicted(&config(), &meas, bucket, 0);
        assert!(!d.is_accept());
        match d {
            AdmissionDecision::Reject { reason } => assert!(reason.contains("rate check")),
            _ => panic!(),
        }
    }

    #[test]
    fn burst_check_rejects_when_class_near_target() {
        let mut meas = idle_measurement();
        // Low-priority class is measured at 99 ms against a 100 ms target:
        // only 1 ms of headroom, so a 50-packet burst cannot fit.
        meas.class_delay[1] = SimTime::from_millis(99);
        let bucket = TokenBucketSpec::per_packets(85.0, 50.0, 1000);
        let d = admit_predicted(&config(), &meas, bucket, 0);
        assert!(!d.is_accept());
    }

    #[test]
    fn higher_priority_classes_are_not_checked() {
        let mut meas = idle_measurement();
        // The *high* priority class is saturated, but we are asking for the
        // low-priority class, so only class 1's headroom matters.
        meas.class_delay[0] = SimTime::from_millis(10);
        let bucket = TokenBucketSpec::per_packets(10.0, 5.0, 1000);
        let d = admit_predicted(&config(), &meas, bucket, 1);
        assert!(d.is_accept(), "{d:?}");
    }

    #[test]
    fn unknown_priority_rejected() {
        let bucket = TokenBucketSpec::new(1000.0, 1000.0);
        let d = admit_predicted(&config(), &idle_measurement(), bucket, 7);
        assert!(!d.is_accept());
    }

    #[test]
    fn guaranteed_reservations_respect_quota() {
        let mut ac = AdmissionController::new(config(), 30.0);
        // 0.9 Mbit/s quota: five 170 kbit/s reservations fit (850k), a sixth
        // does not.
        for _ in 0..5 {
            assert!(ac.request_guaranteed(170_000.0).is_accept());
        }
        assert!(!ac.request_guaranteed(170_000.0).is_accept());
        assert_eq!(ac.accepted(), 5);
        assert_eq!(ac.rejected(), 1);
        ac.release_guaranteed(170_000.0);
        assert!(ac.request_guaranteed(100_000.0).is_accept());
        assert!((ac.reserved_guaranteed_bps() - 780_000.0).abs() < 1e-6);
    }

    #[test]
    fn controller_uses_measurements() {
        let mut ac = AdmissionController::new(config(), 10.0);
        let bucket = TokenBucketSpec::per_packets(85.0, 5.0, 1000);
        // With no load measured, the flow is accepted.
        assert!(ac
            .request_predicted(SimTime::from_secs(1), bucket, 0)
            .is_accept());
        // Saturate the measured utilization: now it must be rejected.
        for s in 0..10 {
            ac.observe_utilization(SimTime::from_secs(s), 900_000.0);
        }
        assert!(!ac
            .request_predicted(SimTime::from_secs(10), bucket, 0)
            .is_accept());
        // After a long quiet period the window empties and the measured
        // utilization falls back to the guaranteed reservations (zero here),
        // so admission succeeds again.
        assert!(ac
            .request_predicted(SimTime::from_secs(100), bucket, 0)
            .is_accept());
    }

    #[test]
    fn controller_tracks_class_delays() {
        let mut ac = AdmissionController::new(config(), 10.0);
        ac.observe_class_delay(SimTime::from_secs(1), 1, SimTime::from_millis(99));
        let bucket = TokenBucketSpec::per_packets(85.0, 50.0, 1000);
        let d = ac.request_predicted(SimTime::from_secs(2), bucket, 1);
        assert!(!d.is_accept());
        let meas = ac.measurement(SimTime::from_secs(2));
        assert_eq!(meas.class_delay[1], SimTime::from_millis(99));
    }

    #[test]
    fn safety_factor_must_be_conservative() {
        let mut ac = AdmissionController::new(config(), 10.0);
        ac.set_util_safety_factor(2.0);
        ac.observe_utilization(SimTime::from_secs(1), 500_000.0);
        // 2 × 500k = 1 Mbit/s measured: nothing fits any more.
        let bucket = TokenBucketSpec::per_packets(10.0, 2.0, 1000);
        assert!(!ac
            .request_predicted(SimTime::from_secs(1), bucket, 0)
            .is_accept());
    }

    #[test]
    #[should_panic]
    fn non_conservative_safety_factor_panics() {
        let mut ac = AdmissionController::new(config(), 10.0);
        ac.set_util_safety_factor(0.5);
    }

    // ----- edge cases of the Section-9 criterion -------------------------

    #[test]
    fn rate_check_is_strict_at_the_exact_quota_boundary() {
        // r + ν̂ == 0.9·μ exactly: the paper's criterion is a strict
        // inequality, so the flow on the boundary is refused.
        let mut meas = idle_measurement();
        meas.realtime_util_bps = 800_000.0;
        let boundary = TokenBucketSpec::new(100_000.0, 1_000.0);
        let d = admit_predicted(&config(), &meas, boundary, 0);
        assert!(!d.is_accept(), "{d:?}");
        // One bit per second under the boundary passes the rate check (and
        // the tiny burst passes the burst check).
        let under = TokenBucketSpec::new(99_999.0, 1_000.0);
        assert!(admit_predicted(&config(), &meas, under, 0).is_accept());
    }

    #[test]
    fn zero_headroom_class_rejects_everything() {
        // (Dⱼ − d̂ⱼ) == 0: class 1 is measured exactly at its target, so no
        // burst — however small — can be squeezed in at priority ≤ 1.
        let mut meas = idle_measurement();
        meas.class_delay[1] = SimTime::from_millis(100);
        let tiny = TokenBucketSpec::new(1_000.0, 1.0);
        let d = admit_predicted(&config(), &meas, tiny, 1);
        match d {
            AdmissionDecision::Reject { reason } => {
                assert!(reason.contains("delay target"), "{reason}");
            }
            AdmissionDecision::Accept => panic!("zero headroom must reject"),
        }
        // The same holds when the measured delay *exceeds* the target.
        meas.class_delay[1] = SimTime::from_millis(150);
        assert!(!admit_predicted(&config(), &meas, tiny, 1).is_accept());
        // A high-priority request is also caught: class 1 is at or below
        // priority 0 in the ordering, so its exhausted headroom vetoes the
        // newcomer that would add load above it.
        assert!(!admit_predicted(&config(), &meas, tiny, 0).is_accept());
    }

    #[test]
    fn empty_class_delay_measurement_defaults_to_zero() {
        // A controller that has never observed a delay sample reports an
        // empty/zero measurement vector; the criterion must treat missing
        // classes as unloaded rather than panic or reject.
        let meas = LinkMeasurement {
            realtime_util_bps: 0.0,
            class_delay: Vec::new(),
        };
        let bucket = TokenBucketSpec::per_packets(85.0, 5.0, 1000);
        assert!(admit_predicted(&config(), &meas, bucket, 0).is_accept());
        assert!(admit_predicted(&config(), &meas, bucket, 1).is_accept());
    }

    #[test]
    fn guaranteed_worst_case_check_at_the_exact_boundary() {
        // Guaranteed admission is a worst-case rate check against the
        // quota; filling it exactly is allowed, one more bit/s is not.
        let mut ac = AdmissionController::new(config(), 10.0);
        assert!(ac.request_guaranteed(900_000.0).is_accept());
        assert!((ac.reserved_guaranteed_bps() - 900_000.0).abs() < 1e-9);
        let d = ac.request_guaranteed(1.0);
        assert!(!d.is_accept(), "{d:?}");
        // A failed request must not leak into the reserved sum.
        assert!((ac.reserved_guaranteed_bps() - 900_000.0).abs() < 1e-9);
        // Releasing frees the quota again.
        ac.release_guaranteed(900_000.0);
        assert_eq!(ac.reserved_guaranteed_bps(), 0.0);
        assert!(ac.request_guaranteed(900_000.0).is_accept());
    }

    #[test]
    fn release_never_underflows_below_zero() {
        let mut ac = AdmissionController::new(config(), 10.0);
        assert!(ac.request_guaranteed(100_000.0).is_accept());
        ac.release_guaranteed(500_000.0);
        assert_eq!(ac.reserved_guaranteed_bps(), 0.0);
    }

    #[test]
    fn guaranteed_reservations_floor_the_utilization_estimate() {
        // With no recent utilization samples, ν̂ falls back to the sum of
        // guaranteed reservations — so guaranteed load admitted but not yet
        // transmitting still counts against predicted admission.
        let mut ac = AdmissionController::new(config(), 10.0);
        assert!(ac.request_guaranteed(880_000.0).is_accept());
        let bucket = TokenBucketSpec::new(50_000.0, 1_000.0);
        let d = ac.request_predicted(SimTime::from_secs(1), bucket, 0);
        assert!(!d.is_accept(), "{d:?}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the measurements, an accepted flow satisfies the paper's
        /// two inequalities when re-checked directly.
        #[test]
        fn accept_implies_inequalities(
            nu in 0.0f64..1_000_000.0,
            d0 in 0.0f64..0.02,
            d1 in 0.0f64..0.2,
            r in 1_000.0f64..500_000.0,
            b in 1_000.0f64..100_000.0,
            pri in 0u8..2,
        ) {
            let config = AdmissionConfig::new(
                1_000_000.0,
                0.9,
                vec![SimTime::from_millis(10), SimTime::from_millis(100)],
            );
            let meas = LinkMeasurement {
                realtime_util_bps: nu,
                class_delay: vec![SimTime::from_secs_f64(d0), SimTime::from_secs_f64(d1)],
            };
            let bucket = TokenBucketSpec::new(r, b);
            if admit_predicted(&config, &meas, bucket, pri).is_accept() {
                prop_assert!(r + nu < 0.9 * 1_000_000.0);
                for (j, target) in [(0usize, 0.010f64), (1, 0.100)] {
                    if j >= pri as usize {
                        let d_hat = meas.class_delay[j].as_secs_f64();
                        prop_assert!(b < (target - d_hat) * (1_000_000.0 - nu - r) + 1e-6);
                    }
                }
            }
        }
    }
}
