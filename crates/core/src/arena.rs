//! Pooled, arena-style queue storage for the per-hop hot path.
//!
//! The schedulers in `ispn-sched` keep one FIFO queue per lane.  Backing
//! each lane with its own `VecDeque` means the steady-state forwarding
//! path still allocates: every lane that grows past its high-water mark
//! reallocates, and every lane freed on teardown leaks its capacity (or
//! returns it to the global allocator, which is just churn in the other
//! direction).  A [`SegmentPool`] replaces all of that with a shared
//! free list of fixed-granularity ring buffers:
//!
//! * every queue is a [`SegQueue`] — a power-of-two ring whose buffer is
//!   on loan from the pool, so `push_back`/`pop_front`/`front` are plain
//!   masked ring operations touching only the queue's own storage (the
//!   pool is consulted solely when a ring fills or is released);
//! * buffers released by [`release`](SegmentPool::release) (lane
//!   teardown) or outgrown in place go onto per-size free lists and are
//!   handed to the next queue that grows, so after warm-up the steady
//!   state performs **zero** allocations no matter how traffic moves
//!   between lanes;
//! * the pool counts its [`grow_events`](SegmentPool::grow_events) and
//!   segment high-water (one segment = [`SEG_CAP`] element slots), so
//!   "no growth after warm-up" is a checkable invariant, not a hope.
//!
//! Everything is index-based safe Rust (the workspace forbids `unsafe`),
//! and element types are `Copy` — which packets and their scheduling
//! contexts are — so moves in and out of the arena are plain stores, and
//! the slack slots of a pooled buffer may hold stale copies that need no
//! cleanup.

/// Pool granularity: the smallest ring holds `SEG_CAP` elements, and all
/// accounting ([`SegmentPool::bytes`], segment high-water) is in units of
/// `SEG_CAP`-element segments.  Small enough that a near-empty lane
/// wastes little, large enough that growth doublings are rare.
pub const SEG_CAP: usize = 32;

/// A FIFO queue over a ring buffer borrowed from a [`SegmentPool`].
///
/// Detached (no buffer) until its first push.  The buffer's length is
/// always a power of two, so position maths is a mask — and because the
/// live window is tracked as `(head, len)`, an emptied queue keeps its
/// buffer resident: an idle lane that fills and drains repeatedly never
/// touches the pool.
///
/// A queue must only ever grow through (and be released to) the pool
/// that serves its discipline — the type system does not enforce this,
/// the owning discipline does by construction.
#[derive(Debug)]
pub struct SegQueue<T> {
    /// The ring storage, fully initialised (`buf.len()` is the capacity,
    /// zero while detached).  Slots outside the live window hold stale
    /// copies of earlier elements; they are never read.
    buf: Vec<T>,
    /// Ring position of the front element (wrapping; masked on use).
    head: u32,
    /// Number of live elements.
    len: u32,
}

impl<T> SegQueue<T> {
    /// A new, empty queue attached to no storage.
    pub const fn new() -> Self {
        SegQueue {
            buf: Vec::new(),
            head: 0,
            len: 0,
        }
    }

    /// Number of queued elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Copy> SegQueue<T> {
    /// The front element, if any.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            return None;
        }
        let mask = self.buf.len() as u32 - 1;
        Some(&self.buf[(self.head & mask) as usize])
    }

    /// Remove and return the front element.
    #[inline]
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let mask = self.buf.len() as u32 - 1;
        let item = self.buf[(self.head & mask) as usize];
        self.head = self.head.wrapping_add(1);
        self.len -= 1;
        Some(item)
    }

    /// Iterate the elements front to back (used by control-plane paths
    /// such as demoting a removed flow's queued packets).
    pub fn iter(&self) -> SegIter<'_, T> {
        SegIter { q: self, i: 0 }
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        SegQueue::new()
    }
}

/// A shared arena of pooled ring buffers with per-size free lists.
///
/// One pool serves every lane of one discipline instance; see the module
/// docs for the allocation contract.
#[derive(Debug)]
pub struct SegmentPool<T> {
    /// Free buffers by size class: `free[c]` holds rings of capacity
    /// `SEG_CAP << c`, each fully initialised with (dead) elements.
    free: Vec<Vec<Vec<T>>>,
    /// Total element slots ever allocated (outstanding + free); never
    /// shrinks, because retired buffers are pooled, not dropped.
    total_slots: u64,
    /// Element slots currently sitting on the free lists.
    free_slots: u64,
    /// Times a brand-new buffer was allocated (free list empty).
    grow_events: u64,
}

impl<T> Default for SegmentPool<T> {
    fn default() -> Self {
        SegmentPool::new()
    }
}

impl<T> SegmentPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        SegmentPool {
            free: Vec::new(),
            total_slots: 0,
            free_slots: 0,
            grow_events: 0,
        }
    }

    /// Structural size of the pool's storage in bytes: every allocated
    /// slot, occupied or free.  A deterministic length-based estimate
    /// (counts × element sizes), matching the accounting rules of
    /// `Network::flow_table_bytes`.
    pub fn bytes(&self) -> u64 {
        self.total_slots * std::mem::size_of::<T>() as u64
    }

    /// Times the pool allocated a brand-new buffer because the free
    /// list was empty.  Flat between two instants ⇒ zero queue-storage
    /// allocations in between.
    pub fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// Total segments ([`SEG_CAP`]-element units) ever allocated — the
    /// pool's high-water mark, since retired buffers are pooled, never
    /// returned to the allocator.
    pub fn segments_high_water(&self) -> u64 {
        self.total_slots / SEG_CAP as u64
    }

    /// Segments ([`SEG_CAP`]-element units) currently on the free lists.
    pub fn free_segments(&self) -> usize {
        (self.free_slots as usize) / SEG_CAP
    }

    /// The free list serving buffers of capacity `SEG_CAP << class`.
    fn class_list(&mut self, class: usize) -> &mut Vec<Vec<T>> {
        while self.free.len() <= class {
            self.free.push(Vec::new());
        }
        &mut self.free[class]
    }
}

impl<T: Copy> SegmentPool<T> {
    /// Append `item` at the back of `q`.
    #[inline]
    pub fn push_back(&mut self, q: &mut SegQueue<T>, item: T) {
        if (q.len as usize) < q.buf.len() {
            let mask = q.buf.len() as u32 - 1;
            q.buf[(q.head.wrapping_add(q.len) & mask) as usize] = item;
            q.len += 1;
            return;
        }
        self.grow_push(q, item);
    }

    /// Remove and return the front of `q`.
    #[inline]
    pub fn pop_front(&mut self, q: &mut SegQueue<T>) -> Option<T> {
        q.pop_front()
    }

    /// The front element of `q`, if any.
    #[inline]
    pub fn front<'a>(&self, q: &'a SegQueue<T>) -> Option<&'a T> {
        q.front()
    }

    /// Iterate the elements of `q` front to back.
    pub fn iter<'a>(&self, q: &'a SegQueue<T>) -> SegIter<'a, T> {
        q.iter()
    }

    /// Return `q`'s buffer (even an empty resident one) to the free
    /// lists and detach the handle.  This is the teardown path: a freed
    /// lane's backing storage becomes available to other lanes instead
    /// of staying allocated forever.
    pub fn release(&mut self, q: &mut SegQueue<T>) {
        let buf = std::mem::take(&mut q.buf);
        self.retire_buf(buf);
        q.head = 0;
        q.len = 0;
    }

    /// The cold half of [`push_back`](Self::push_back): swap `q` onto a
    /// buffer of the next size up (from the free list or the allocator),
    /// unwrapping the ring in FIFO order, and append `item`.
    fn grow_push(&mut self, q: &mut SegQueue<T>, item: T) {
        let new_cap = if q.buf.is_empty() {
            SEG_CAP
        } else {
            q.buf.len() * 2
        };
        let mut buf = self.acquire_buf(new_cap, item);
        if q.len > 0 {
            let mask = q.buf.len() as u32 - 1;
            for i in 0..q.len {
                buf[i as usize] = q.buf[(q.head.wrapping_add(i) & mask) as usize];
            }
        }
        buf[q.len as usize] = item;
        let old = std::mem::replace(&mut q.buf, buf);
        self.retire_buf(old);
        q.head = 0;
        q.len += 1;
    }

    /// Hand out a fully initialised buffer of capacity `cap` (a power of
    /// two ≥ [`SEG_CAP`]).  A brand-new buffer is seeded by replicating
    /// `fill` — the only way to materialise initialised storage for a
    /// `Copy` type without a `Default` bound — and the replicas are dead
    /// until overwritten.
    fn acquire_buf(&mut self, cap: usize, fill: T) -> Vec<T> {
        let class = (cap / SEG_CAP).trailing_zeros() as usize;
        if let Some(buf) = self.class_list(class).pop() {
            self.free_slots -= cap as u64;
            return buf;
        }
        self.grow_events += 1;
        self.total_slots += cap as u64;
        vec![fill; cap]
    }

    fn retire_buf(&mut self, buf: Vec<T>) {
        if buf.is_empty() {
            return;
        }
        let cap = buf.len();
        let class = (cap / SEG_CAP).trailing_zeros() as usize;
        self.free_slots += cap as u64;
        self.class_list(class).push(buf);
    }
}

/// Front-to-back iterator over one queue's elements.
pub struct SegIter<'a, T> {
    q: &'a SegQueue<T>,
    i: u32,
}

impl<'a, T: Copy> Iterator for SegIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.i == self.q.len {
            return None;
        }
        let mask = self.q.buf.len() as u32 - 1;
        let item = &self.q.buf[(self.q.head.wrapping_add(self.i) & mask) as usize];
        self.i += 1;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_and_across_growth() {
        let mut pool = SegmentPool::new();
        let mut q = SegQueue::new();
        let n = SEG_CAP * 3 + 7;
        for i in 0..n {
            pool.push_back(&mut q, i);
        }
        assert_eq!(q.len(), n);
        for i in 0..n {
            assert_eq!(pool.front(&q), Some(&i));
            assert_eq!(pool.pop_front(&mut q), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(pool.pop_front(&mut q), None);
        assert_eq!(pool.front(&q), None);
    }

    #[test]
    fn emptied_queue_keeps_its_buffer_resident() {
        let mut pool = SegmentPool::new();
        let mut q = SegQueue::new();
        for round in 0..100 {
            for i in 0..SEG_CAP {
                pool.push_back(&mut q, round * SEG_CAP + i);
            }
            for _ in 0..SEG_CAP {
                pool.pop_front(&mut q);
            }
        }
        // One buffer, allocated once, reused every round.
        assert_eq!(pool.grow_events(), 1);
        assert_eq!(pool.segments_high_water(), 1);
    }

    #[test]
    fn retired_buffers_are_reused_across_queues() {
        let mut pool = SegmentPool::new();
        let mut a = SegQueue::new();
        let mut b = SegQueue::new();
        for i in 0..SEG_CAP * 4 {
            pool.push_back(&mut a, i);
        }
        let grown = pool.grow_events();
        pool.release(&mut a);
        assert!(a.is_empty());
        // Queue b retraces a's growth entirely out of the free lists.
        for i in 0..SEG_CAP * 4 {
            pool.push_back(&mut b, i);
        }
        assert_eq!(pool.grow_events(), grown);
        for i in 0..SEG_CAP * 4 {
            assert_eq!(pool.pop_front(&mut b), Some(i));
        }
    }

    #[test]
    fn interleaved_push_pop_wraps_the_ring() {
        let mut pool = SegmentPool::new();
        let mut q = SegQueue::new();
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        // Keep ~1.5 segments in flight for a long time.
        for _ in 0..10_000 {
            pool.push_back(&mut q, next_in);
            next_in += 1;
            if q.len() > SEG_CAP + SEG_CAP / 2 {
                assert_eq!(pool.pop_front(&mut q), Some(next_out));
                next_out += 1;
            }
        }
        while let Some(v) = pool.pop_front(&mut q) {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, next_in);
        // Bounded depth ⇒ bounded pool, regardless of throughput.
        assert!(pool.segments_high_water() <= 4);
    }

    #[test]
    fn iter_sees_exactly_the_queued_elements() {
        let mut pool = SegmentPool::new();
        let mut q = SegQueue::new();
        for i in 0..SEG_CAP * 2 + 5 {
            pool.push_back(&mut q, i);
        }
        for _ in 0..7 {
            pool.pop_front(&mut q);
        }
        let seen: Vec<usize> = pool.iter(&q).copied().collect();
        let want: Vec<usize> = (7..SEG_CAP * 2 + 5).collect();
        assert_eq!(seen, want);
    }

    #[test]
    fn release_of_an_empty_resident_buffer_frees_it() {
        let mut pool = SegmentPool::new();
        let mut q = SegQueue::new();
        pool.push_back(&mut q, 1u32);
        pool.pop_front(&mut q);
        assert!(q.is_empty());
        pool.release(&mut q);
        assert_eq!(pool.free_segments(), 1);
        // And the handle is safe to use again.
        pool.push_back(&mut q, 2u32);
        assert_eq!(pool.pop_front(&mut q), Some(2));
        assert_eq!(pool.grow_events(), 1);
    }

    #[test]
    fn bytes_reflects_total_allocated_capacity() {
        let mut pool: SegmentPool<u64> = SegmentPool::new();
        let mut q = SegQueue::new();
        assert_eq!(pool.bytes(), 0);
        pool.push_back(&mut q, 9);
        assert_eq!(pool.bytes(), (SEG_CAP * std::mem::size_of::<u64>()) as u64);
    }

    #[test]
    fn growth_unwraps_a_wrapped_ring_in_order() {
        let mut pool = SegmentPool::new();
        let mut q = SegQueue::new();
        // Wrap the head deep into the first buffer, then force growth.
        for i in 0..SEG_CAP {
            pool.push_back(&mut q, i);
        }
        for _ in 0..SEG_CAP - 2 {
            pool.pop_front(&mut q);
        }
        for i in SEG_CAP..3 * SEG_CAP {
            pool.push_back(&mut q, i);
        }
        let want: Vec<usize> = (SEG_CAP - 2..3 * SEG_CAP).collect();
        let mut got = Vec::new();
        while let Some(v) = pool.pop_front(&mut q) {
            got.push(v);
        }
        assert_eq!(got, want);
    }
}
