//! A minimal discrete-event executor.
//!
//! The network model in `ispn-net` owns all the mutable state (switches,
//! links, sources); the executor only needs to pop the next event, advance
//! the clock and hand the event to the world.  Keeping the loop here means
//! that every crate that needs "run a world of events until time T" (the
//! network, unit tests of schedulers driven by synthetic arrivals, the
//! benchmark harness) shares the exact same semantics.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A simulated world: something that can react to its own events.
///
/// The world receives mutable access to the event queue so handling one
/// event can schedule any number of future events.  Events may never be
/// scheduled in the past; [`run`] checks this and panics, because a
/// causality violation always indicates a modelling bug.
pub trait World {
    /// The type of events this world exchanges with itself.
    type Event;

    /// Handle one event occurring at time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Outcome of a call to [`run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// The event queue drained before the horizon was reached.
    Drained {
        /// Time of the last dispatched event (zero if none were dispatched).
        last_event: SimTime,
    },
    /// The horizon was reached; events at or beyond it remain pending.
    HorizonReached,
}

/// Run `world` until the event queue is empty.
///
/// Returns the timestamp of the final event, or `SimTime::ZERO` if the
/// queue was empty to begin with.
pub fn run<W: World>(world: &mut W, queue: &mut EventQueue<W::Event>) -> SimTime {
    match run_until(world, queue, SimTime::MAX) {
        StepResult::Drained { last_event } => last_event,
        StepResult::HorizonReached => unreachable!("MAX horizon cannot be reached"),
    }
}

/// Run `world` until the event queue is empty or the next event would occur
/// at or after `horizon`.
///
/// Events timestamped exactly at the horizon are *not* dispatched; this
/// makes `run_until(.., t)` followed by `run_until(.., t2)` equivalent to a
/// single `run_until(.., t2)`.
pub fn run_until<W: World>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    horizon: SimTime,
) -> StepResult {
    let mut now = SimTime::ZERO;
    loop {
        match queue.peek_time() {
            None => return StepResult::Drained { last_event: now },
            Some(t) if t >= horizon => return StepResult::HorizonReached,
            Some(t) => {
                assert!(
                    t >= now,
                    "causality violation: event scheduled at {t} before current time {now}"
                );
                let (t, ev) = queue.pop().expect("peeked event must exist");
                now = t;
                world.handle(now, ev, queue);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy world: a ball bouncing every `interval` until `bounces` runs out.
    struct Bouncer {
        interval: SimTime,
        remaining: u32,
        observed: Vec<SimTime>,
    }

    enum Ev {
        Bounce,
    }

    impl World for Bouncer {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, _ev: Ev, queue: &mut EventQueue<Ev>) {
            self.observed.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.push(now + self.interval, Ev::Bounce);
            }
        }
    }

    #[test]
    fn run_drains_queue() {
        let mut world = Bouncer {
            interval: SimTime::from_millis(10),
            remaining: 5,
            observed: vec![],
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, Ev::Bounce);
        let end = run(&mut world, &mut q);
        assert_eq!(world.observed.len(), 6);
        assert_eq!(end, SimTime::from_millis(50));
        assert!(q.is_empty());
    }

    #[test]
    fn run_until_stops_at_horizon_and_resumes() {
        let mut world = Bouncer {
            interval: SimTime::from_millis(10),
            remaining: 100,
            observed: vec![],
        };
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, Ev::Bounce);
        let r = run_until(&mut world, &mut q, SimTime::from_millis(35));
        assert_eq!(r, StepResult::HorizonReached);
        // events at 0,10,20,30 dispatched; 40 pending
        assert_eq!(world.observed.len(), 4);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(40)));
        // Horizon boundary is exclusive: an event at exactly 40 is not run.
        let r = run_until(&mut world, &mut q, SimTime::from_millis(40));
        assert_eq!(r, StepResult::HorizonReached);
        assert_eq!(world.observed.len(), 4);
    }

    #[test]
    fn empty_queue_drains_immediately() {
        let mut world = Bouncer {
            interval: SimTime::MILLISECOND,
            remaining: 0,
            observed: vec![],
        };
        let mut q: EventQueue<Ev> = EventQueue::new();
        assert_eq!(
            run_until(&mut world, &mut q, SimTime::from_secs(1)),
            StepResult::Drained {
                last_event: SimTime::ZERO
            }
        );
    }
}
