//! Deterministic random numbers and the distributions used by the paper.
//!
//! The Appendix of CSZ'92 drives every traffic source from two random
//! processes: a geometrically distributed burst length (mean `B = 5`
//! packets) and an exponentially distributed idle period.  Reproducing the
//! tables therefore only needs uniform, exponential, geometric and Bernoulli
//! variates.  Rather than pulling in `rand_distr`, we implement a small
//! PCG-64 generator (O'Neill's PCG XSL-RR 128/64) and inverse-CDF samplers
//! here.  This keeps every experiment a pure function of its `u64` seed —
//! the same property the event queue gives us for ordering.

/// SplitMix64 — used to expand a single `u64` seed into the 128-bit PCG
/// state and to provide a tiny independent generator for tests.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG XSL-RR 128/64: a small, fast, statistically strong generator with a
/// 2^128 period.  All simulation randomness in the workspace flows through
/// this type so that runs are reproducible across platforms and toolchains.
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u128,
    inc: u128,
}

const PCG_MULT: u128 = 0x2360_ED05_1FC6_5DA4_4385_DF64_9FCC_F645;

impl Pcg64 {
    /// Create a generator from a 64-bit seed.  Distinct seeds give
    /// independent-looking streams; the per-flow sources in the experiments
    /// derive their seeds from a base seed plus the flow id.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s0 = sm.next_u64() as u128;
        let s1 = sm.next_u64() as u128;
        let i0 = sm.next_u64() as u128;
        let i1 = sm.next_u64() as u128;
        let mut rng = Pcg64 {
            state: 0,
            inc: ((i0 << 64) | i1) | 1,
        };
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng.state = rng.state.wrapping_add((s0 << 64) | s1);
        rng.state = rng.state.wrapping_mul(PCG_MULT).wrapping_add(rng.inc);
        rng
    }

    /// Derive a new, statistically independent generator (e.g. one per
    /// traffic source) from this one.
    pub fn fork(&mut self) -> Pcg64 {
        Pcg64::new(self.next_u64())
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1]` — what the inverse-CDF
    /// exponential sampler needs so that `ln` never sees zero.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Uniform integer in `[0, bound)`.  Uses Lemire's multiply-shift with a
    /// rejection step to avoid modulo bias.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn next_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi);
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed variate with the given mean.
    ///
    /// The Appendix uses this for the idle period of the two-state Markov
    /// source ("the source remains idle for some exponentially distributed
    /// random time period").
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * self.next_f64_open().ln()
    }

    /// Geometrically distributed variate on `{1, 2, 3, …}` with the given
    /// mean (≥ 1).
    ///
    /// The Appendix draws the number of packets in a burst from a geometric
    /// distribution with mean `B = 5`; a burst always contains at least one
    /// packet, so the support starts at 1 and the success probability is
    /// `p = 1/mean`.
    pub fn geometric(&mut self, mean: f64) -> u64 {
        assert!(mean >= 1.0, "geometric mean must be at least 1");
        if mean == 1.0 {
            return 1;
        }
        let p = 1.0 / mean;
        // Inverse CDF: k = ceil(ln(1-U) / ln(1-p)) for U in [0,1).
        let u = self.next_f64();
        let k = ((1.0 - u).ln() / (1.0 - p).ln()).ceil();
        if !k.is_finite() || k < 1.0 {
            1
        } else {
            k as u64
        }
    }

    /// Pareto-distributed variate with shape `alpha` and scale `xm`
    /// (minimum value).  Used by extension experiments for heavy-tailed
    /// burst sizes; not needed for the paper's tables.
    pub fn pareto(&mut self, shape: f64, scale: f64) -> f64 {
        assert!(shape > 0.0 && scale > 0.0);
        scale / self.next_f64_open().powf(1.0 / shape)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.next_below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_and_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg64::new(42);
        let mut b = Pcg64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn uniform_f64_in_unit_interval_with_correct_moments() {
        let mut rng = Pcg64::new(7);
        let xs: Vec<f64> = (0..200_000).map(|_| rng.next_f64()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let (mean, var) = mean_and_var(&xs);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.01, "var {var}");
    }

    #[test]
    fn exponential_has_requested_mean() {
        let mut rng = Pcg64::new(9);
        let mean_target = 0.0294; // the Table-1 source idle time, seconds
        let xs: Vec<f64> = (0..200_000).map(|_| rng.exponential(mean_target)).collect();
        let (mean, _) = mean_and_var(&xs);
        assert!(
            (mean - mean_target).abs() / mean_target < 0.02,
            "mean {mean} target {mean_target}"
        );
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn geometric_has_requested_mean_and_min_one() {
        let mut rng = Pcg64::new(11);
        let xs: Vec<u64> = (0..200_000).map(|_| rng.geometric(5.0)).collect();
        assert!(xs.iter().all(|&x| x >= 1));
        let mean = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_mean_one_is_constant() {
        let mut rng = Pcg64::new(3);
        assert!((0..100).all(|_| rng.geometric(1.0) == 1));
    }

    #[test]
    fn bernoulli_probability() {
        let mut rng = Pcg64::new(13);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.02)).count();
        let p = hits as f64 / 100_000.0;
        assert!((p - 0.02).abs() < 0.005, "p {p}");
    }

    #[test]
    fn next_below_is_unbiased_enough() {
        let mut rng = Pcg64::new(17);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn next_range_inclusive_bounds() {
        let mut rng = Pcg64::new(19);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let x = rng.next_range(3, 5);
            assert!((3..=5).contains(&x));
            saw_lo |= x == 3;
            saw_hi |= x == 5;
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(rng.next_range(9, 9), 9);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = Pcg64::new(23);
        assert!((0..10_000).all(|_| rng.pareto(1.5, 2.0) >= 2.0));
    }

    #[test]
    fn fork_produces_distinct_stream() {
        let mut a = Pcg64::new(29);
        let mut b = a.fork();
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg64::new(31);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn splitmix_reproducible() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn next_below_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut rng = Pcg64::new(seed);
            for _ in 0..50 {
                prop_assert!(rng.next_below(bound) < bound);
            }
        }

        #[test]
        fn unit_uniform_in_range(seed in any::<u64>()) {
            let mut rng = Pcg64::new(seed);
            for _ in 0..100 {
                let x = rng.next_f64();
                prop_assert!((0.0..1.0).contains(&x));
                let y = rng.next_f64_open();
                prop_assert!(y > 0.0 && y <= 1.0);
            }
        }

        #[test]
        fn exponential_nonnegative(seed in any::<u64>(), mean in 0.001f64..1000.0) {
            let mut rng = Pcg64::new(seed);
            for _ in 0..50 {
                prop_assert!(rng.exponential(mean) >= 0.0);
            }
        }

        #[test]
        fn geometric_at_least_one(seed in any::<u64>(), mean in 1.0f64..100.0) {
            let mut rng = Pcg64::new(seed);
            for _ in 0..50 {
                prop_assert!(rng.geometric(mean) >= 1);
            }
        }
    }
}
