//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds since the start of the
//! simulation.  Integer time keeps event ordering exact: the paper's link
//! speed (1 Mbit/s) and packet size (1000 bits) give a per-packet
//! transmission time of exactly 1 ms, which is representable without
//! rounding, and repeated additions never drift the way `f64` arithmetic
//! would.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// `SimTime` is also used for durations (the paper never needs dates); the
/// arithmetic operators saturate at zero rather than wrapping so that a
/// spurious negative duration cannot silently corrupt the event queue.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero — the start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// One nanosecond.
    pub const NANOSECOND: SimTime = SimTime(1);
    /// One microsecond.
    pub const MICROSECOND: SimTime = SimTime(1_000);
    /// One millisecond — the per-packet transmission time of the paper's
    /// evaluation (1000-bit packets over 1 Mbit/s links) and therefore the
    /// unit in which all of the paper's delay tables are expressed.
    pub const MILLISECOND: SimTime = SimTime(1_000_000);
    /// One second.
    pub const SECOND: SimTime = SimTime(1_000_000_000);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond.  Negative and non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as fractional milliseconds.  Since one packet transmission time
    /// in the paper's configuration is 1 ms, this is the "packet time" unit
    /// used by Tables 1–3 when the default configuration is in force.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - other`, or zero if `other > self`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_sub(other.0).map(SimTime)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Multiply a duration by an integer factor (saturating).
    #[inline]
    pub fn saturating_mul(self, k: u64) -> SimTime {
        SimTime(self.0.saturating_mul(k))
    }

    /// Scale a duration by a floating-point factor (e.g. "1.5 packet
    /// times"); clamps negative results to zero.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimTime {
        SimTime::from_secs_f64(self.as_secs_f64() * k)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Is this time zero?
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Panics in debug builds on underflow; use [`SimTime::saturating_sub`]
    /// when the operands may legitimately be out of order.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// Convert a transmission rate in bits per second and a size in bits into
/// the time needed to serialize that many bits onto the link.
///
/// This is the single conversion the packet model uses everywhere, so the
/// rounding convention (round to nearest nanosecond) lives in one place.
#[inline]
pub fn transmission_time(bits: u64, rate_bps: f64) -> SimTime {
    assert!(rate_bps > 0.0, "link rate must be positive");
    SimTime::from_secs_f64(bits as f64 / rate_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert!((SimTime::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_or_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NEG_INFINITY), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(2);
        assert_eq!(a + b, SimTime::from_millis(7));
        assert_eq!(a - b, SimTime::from_millis(3));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.saturating_mul(3), SimTime::from_millis(15));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn paper_packet_time_is_one_millisecond() {
        // 1000-bit packets over a 1 Mbit/s link: exactly 1 ms.
        assert_eq!(transmission_time(1000, 1_000_000.0), SimTime::MILLISECOND);
    }

    #[test]
    fn mul_f64_scales() {
        assert_eq!(
            SimTime::from_millis(10).mul_f64(2.5),
            SimTime::from_millis(25)
        );
        assert_eq!(SimTime::from_millis(10).mul_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn zero_rate_transmission_panics() {
        let _ = transmission_time(1000, 0.0);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
