//! The pending-event set.
//!
//! A discrete-event simulator is, at its heart, a loop around a priority
//! queue of `(time, event)` pairs.  The only subtlety worth engineering for
//! is determinism: Rust's `BinaryHeap` is not stable for equal keys, and a
//! packet simulator generates *many* simultaneous events (a transmission
//! that completes at exactly the moment another source wakes up).  We
//! therefore key the heap by `(time, sequence-number)` so that events
//! scheduled earlier pop earlier when times tie, making every run a pure
//! function of the initial seed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A deterministic min-priority queue of timestamped events.
///
/// Events with equal timestamps are returned in the order they were pushed.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    popped: u64,
    depth_high_water: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
            depth_high_water: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            popped: 0,
            depth_high_water: 0,
        }
    }

    /// Schedule `event` to fire at absolute simulated time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
        let depth = self.heap.len() as u64;
        if depth > self.depth_high_water {
            self.depth_high_water = depth;
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| {
            self.popped += 1;
            (e.time, e.event)
        })
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events ever dispatched (popped) from this queue.
    pub fn dispatched_count(&self) -> u64 {
        self.popped
    }

    /// The largest number of events that were ever pending at once (a
    /// deterministic function of the event sequence; survives `clear`).
    pub fn depth_high_water(&self) -> u64 {
        self.depth_high_water
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), "c");
        q.push(SimTime::from_millis(1), "a");
        q.push(SimTime::from_millis(3), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(3), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.dispatched_count(), 1);
        q.clear();
        assert!(q.is_empty());
        // counters survive a clear
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.depth_high_water(), 2);
    }

    #[test]
    fn depth_high_water_tracks_the_peak_pending_count() {
        let mut q = EventQueue::new();
        assert_eq!(q.depth_high_water(), 0);
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        q.push(SimTime::from_secs(3), ());
        q.pop();
        q.pop();
        // Draining does not lower the mark…
        assert_eq!(q.depth_high_water(), 3);
        q.push(SimTime::from_secs(4), ());
        // …and re-filling below the peak does not raise it.
        assert_eq!(q.depth_high_water(), 3);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 10u32);
        q.push(SimTime::from_millis(30), 30);
        assert_eq!(q.pop().unwrap().1, 10);
        q.push(SimTime::from_millis(20), 20);
        q.push(SimTime::from_millis(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping everything from the queue yields a non-decreasing time
        /// sequence regardless of insertion order.
        #[test]
        fn pop_order_is_monotone(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Events that share a timestamp preserve their insertion order.
        #[test]
        fn ties_preserve_fifo(groups in proptest::collection::vec((0u64..1000, 1usize..5), 1..50)) {
            let mut q = EventQueue::new();
            let mut counter = 0usize;
            for (t, n) in &groups {
                for _ in 0..*n {
                    q.push(SimTime::from_millis(*t), counter);
                    counter += 1;
                }
            }
            // Collect pops grouped by timestamp and check each group's ids
            // are increasing (insertion order).
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, id)) = q.pop() {
                if let Some((pt, pid)) = prev {
                    if pt == t {
                        prop_assert!(id > pid);
                    }
                }
                prev = Some((t, id));
            }
        }
    }
}
