//! The pending-event set.
//!
//! A discrete-event simulator is, at its heart, a loop around a priority
//! queue of `(time, event)` pairs.  Two properties matter:
//!
//! * **Determinism.**  A packet simulator generates *many* simultaneous
//!   events (a transmission that completes at exactly the moment another
//!   source wakes up), so equal timestamps must break ties reproducibly.
//!   Every entry carries a sequence number and the queue orders by
//!   `(time, seq)`: events scheduled earlier pop earlier when times tie,
//!   making every run a pure function of the initial seed.
//!
//! * **Hot-path cost.**  The simulator pushes and pops one event per packet
//!   per hop.  A binary heap pays `O(log n)` pointer-chasing comparisons on
//!   both operations.  This queue is instead a *calendar queue* (Brown,
//!   CACM 1988): time is divided into fixed-width "days", each day hashes
//!   to a bucket of a power-of-two wheel, and a push into the current
//!   window is an `O(1)` append.  Only the day actually being drained
//!   lives in a (binary-heap) ordered structure, and days are short enough
//!   (≈1 ms, about one packet time) that the heap holds a handful of
//!   entries at a time.  Events beyond the wheel's horizon go to a
//!   spillover heap, which is only consulted when the wheel runs dry.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Number of buckets in the wheel (one "day" each); must be a power of two.
const NUM_BUCKETS: u64 = 1024;
/// log2 of the day width in nanoseconds: 2^20 ns ≈ 1.05 ms, about one
/// 1000-bit packet time on the paper's 1 Mbit/s links, so a day holds the
/// events of roughly one packet slot per link.
const DAY_SHIFT: u32 = 20;

/// The day (bucket key) a timestamp falls into.
fn day(t: SimTime) -> u64 {
    t.as_nanos() >> DAY_SHIFT
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events with equal timestamps are returned in the order they were pushed.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// The near-term set: every event of days before `base_day`, kept in
    /// a small min-heap.  Every entry here sorts before every entry still
    /// in the wheel or the spillover (their days are `>= base_day`, ours
    /// is earlier), so the global minimum is always `ready`'s minimum.
    /// Days are promoted into `ready` only on the pop side — a push never
    /// advances the wheel — and a push into an already-drained day is an
    /// `O(log r)` heap insert where `r` stays around one day's worth of
    /// events, not the whole queue.
    ready: BinaryHeap<Reverse<Entry<E>>>,
    /// The wheel: `buckets[d & (NUM_BUCKETS-1)]` holds exactly the events
    /// of day `d`, for `d` in `[base_day, base_day + NUM_BUCKETS)`.
    /// Buckets are unsorted; a bucket is sorted once, when its day starts.
    buckets: Vec<Vec<Entry<E>>>,
    /// One bit per bucket, set iff the bucket is non-empty, so advancing
    /// to the next occupied day is a word scan rather than a walk over
    /// (possibly hundreds of) empty `Vec`s when the wheel is sparse.
    occupied: [u64; (NUM_BUCKETS / 64) as usize],
    /// Number of entries across all wheel buckets.
    wheel_len: usize,
    /// First day still in the wheel; days before it have been drained into
    /// `ready` (or were never occupied).
    base_day: u64,
    /// Events scheduled beyond the wheel's horizon
    /// (`day >= base_day + NUM_BUCKETS`), kept in a heap and migrated into
    /// the wheel as `base_day` advances.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
    popped: u64,
    depth_high_water: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            ready: BinaryHeap::new(),
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; (NUM_BUCKETS / 64) as usize],
            wheel_len: 0,
            base_day: 0,
            overflow: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
            depth_high_water: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.ready.reserve(cap);
        q
    }

    /// Schedule `event` to fire at absolute simulated time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = Entry { time, seq, event };
        let d = day(time);
        if d < self.base_day {
            // The entry belongs to a day already being drained (or one the
            // wheel has moved past): merge it into the near-term heap.
            // `seq` is fresh and part of the order, so it lands after
            // existing ties.
            self.ready.push(Reverse(entry));
        } else if d < self.base_day + NUM_BUCKETS {
            let idx = (d & (NUM_BUCKETS - 1)) as usize;
            self.buckets[idx].push(entry);
            self.occupied[idx >> 6] |= 1 << (idx & 63);
            self.wheel_len += 1;
        } else {
            self.overflow.push(Reverse(entry));
        }
        let depth = self.len() as u64;
        if depth > self.depth_high_water {
            self.depth_high_water = depth;
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.ready.is_empty() {
            self.refill();
        }
        let Reverse(e) = self.ready.pop()?;
        self.popped += 1;
        if self.ready.is_empty() {
            // Promote the next day eagerly so the engine's peek-then-pop
            // loop sees an `O(1)` `peek_time` on its hot path.
            self.refill();
        }
        Some((e.time, e.event))
    }

    /// Promote the next occupied day into `ready`: advance `base_day` to
    /// it, migrate spillover events that the advance brought inside the
    /// wheel's horizon, and merge that day's bucket into the near-term
    /// heap.  No-op when `ready` still has events or the queue is empty.
    fn refill(&mut self) {
        if !self.ready.is_empty() {
            return;
        }
        if self.wheel_len == 0 {
            // The wheel is dry: jump straight to the spillover's first day
            // (no point stepping the wheel across an empty span).
            let Some(Reverse(first)) = self.overflow.peek() else {
                return;
            };
            self.base_day = day(first.time);
            self.drain_overflow();
            debug_assert!(self.wheel_len > 0);
        }
        // Jump to the next occupied day.  Advancing `base_day` in one leap
        // (rather than day by day with a spillover drain at each step) is
        // equivalent: spillover entries all have days at or beyond the
        // *old* window's end, so none could have entered any intermediate
        // window earlier than they enter the final one.
        let base_idx = (self.base_day & (NUM_BUCKETS - 1)) as usize;
        let idx = self
            .next_occupied(base_idx)
            .expect("wheel_len > 0 implies an occupied bucket");
        let delta = (idx + NUM_BUCKETS as usize - base_idx) & (NUM_BUCKETS as usize - 1);
        self.base_day += delta as u64;
        // Drain (not take) the bucket so its allocation is recycled the
        // next time that day comes around, instead of churning the
        // allocator once per day.
        let promoted = self.buckets[idx].len();
        self.ready.extend(self.buckets[idx].drain(..).map(Reverse));
        self.occupied[idx >> 6] &= !(1 << (idx & 63));
        self.wheel_len -= promoted;
        self.base_day += 1;
        self.drain_overflow();
    }

    /// The index of the first occupied bucket at or (circularly) after
    /// `start`, from the occupancy bitmap.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        let (w0, b0) = (start >> 6, start & 63);
        let first = self.occupied[w0] & (!0u64 << b0);
        if first != 0 {
            return Some((w0 << 6) + first.trailing_zeros() as usize);
        }
        for off in 1..self.occupied.len() {
            let w = (w0 + off) & (self.occupied.len() - 1);
            let word = self.occupied[w];
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
        }
        let wrapped = self.occupied[w0] & !(!0u64 << b0);
        if wrapped != 0 {
            return Some((w0 << 6) + wrapped.trailing_zeros() as usize);
        }
        None
    }

    /// Move spillover events whose day now falls inside
    /// `[base_day, base_day + NUM_BUCKETS)` into the wheel.  Called after
    /// every `base_day` advance so the wheel window and the spillover
    /// stay disjoint.
    fn drain_overflow(&mut self) {
        while let Some(Reverse(first)) = self.overflow.peek() {
            let d = day(first.time);
            if d >= self.base_day + NUM_BUCKETS {
                return;
            }
            let Reverse(entry) = self.overflow.pop().expect("peeked entry exists");
            let idx = (d & (NUM_BUCKETS - 1)) as usize;
            self.buckets[idx].push(entry);
            self.occupied[idx >> 6] |= 1 << (idx & 63);
            self.wheel_len += 1;
        }
    }

    /// The timestamp of the earliest pending event.
    ///
    /// `O(1)` whenever `ready` is non-empty (always, right after a pop);
    /// after a push into an empty `ready` it scans the next occupied
    /// day's bucket without promoting it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(Reverse(e)) = self.ready.peek() {
            return Some(e.time);
        }
        if self.wheel_len > 0 {
            let base_idx = (self.base_day & (NUM_BUCKETS - 1)) as usize;
            let idx = self
                .next_occupied(base_idx)
                .expect("wheel_len > 0 implies an occupied bucket");
            // The wheel's earliest day beats every spillover entry (their
            // days are beyond the window), so the bucket minimum decides.
            return self.buckets[idx].iter().map(|e| e.time).min();
        }
        self.overflow.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ready.len() + self.wheel_len + self.overflow.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty() && self.wheel_len == 0 && self.overflow.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Total number of events ever dispatched (popped) from this queue.
    pub fn dispatched_count(&self) -> u64 {
        self.popped
    }

    /// The largest number of events that were ever pending at once (a
    /// deterministic function of the event sequence; survives `clear`).
    pub fn depth_high_water(&self) -> u64 {
        self.depth_high_water
    }

    /// Drop every pending event.
    pub fn clear(&mut self) {
        self.ready.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.occupied = [0; (NUM_BUCKETS / 64) as usize];
        self.wheel_len = 0;
        self.base_day = 0;
        self.overflow.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), "c");
        q.push(SimTime::from_millis(1), "a");
        q.push(SimTime::from_millis(3), "b");
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(3), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_millis(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        q.pop();
        assert_eq!(q.dispatched_count(), 1);
        q.clear();
        assert!(q.is_empty());
        // counters survive a clear
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.depth_high_water(), 2);
    }

    #[test]
    fn depth_high_water_tracks_the_peak_pending_count() {
        let mut q = EventQueue::new();
        assert_eq!(q.depth_high_water(), 0);
        q.push(SimTime::from_secs(1), ());
        q.push(SimTime::from_secs(2), ());
        q.push(SimTime::from_secs(3), ());
        q.pop();
        q.pop();
        // Draining does not lower the mark…
        assert_eq!(q.depth_high_water(), 3);
        q.push(SimTime::from_secs(4), ());
        // …and re-filling below the peak does not raise it.
        assert_eq!(q.depth_high_water(), 3);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 10u32);
        q.push(SimTime::from_millis(30), 30);
        assert_eq!(q.pop().unwrap().1, 10);
        q.push(SimTime::from_millis(20), 20);
        q.push(SimTime::from_millis(5), 5);
        assert_eq!(q.pop().unwrap().1, 5);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }

    #[test]
    fn far_future_events_spill_over_and_come_back() {
        // Beyond the wheel horizon (1024 days of ~1 ms ≈ 1.07 s): these
        // take the overflow path and must still pop in order.
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3600), "far");
        q.push(SimTime::MAX, "sentinel");
        q.push(SimTime::from_millis(1), "near");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert_eq!(q.pop().unwrap().1, "sentinel");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pushes_into_the_day_being_drained_merge_in_order() {
        // Two events in one day; pop one, then push an event between the
        // popped one and the remaining one.  The push lands in `ready`
        // (its day is already being drained) and must merge in order.
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(900), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_micros(500), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn ties_pushed_into_the_drained_day_keep_fifo_order() {
        let t = SimTime::from_micros(700);
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 0u32);
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        // Same timestamp as the entry already sorted into `ready`: the
        // earlier push must still pop first.
        q.push(t, 2);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping everything from the queue yields a non-decreasing time
        /// sequence regardless of insertion order.
        #[test]
        fn pop_order_is_monotone(times in proptest::collection::vec(0u64..1_000_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Events that share a timestamp preserve their insertion order.
        #[test]
        fn ties_preserve_fifo(groups in proptest::collection::vec((0u64..1000, 1usize..5), 1..50)) {
            let mut q = EventQueue::new();
            let mut counter = 0usize;
            for (t, n) in &groups {
                for _ in 0..*n {
                    q.push(SimTime::from_millis(*t), counter);
                    counter += 1;
                }
            }
            // Collect pops grouped by timestamp and check each group's ids
            // are increasing (insertion order).
            let mut prev: Option<(SimTime, usize)> = None;
            while let Some((t, id)) = q.pop() {
                if let Some((pt, pid)) = prev {
                    if pt == t {
                        prop_assert!(id > pid);
                    }
                }
                prev = Some((t, id));
            }
        }

        /// The calendar queue and a plain `(time, seq)` binary heap agree
        /// on every pop, under interleaved pushes and pops with heavy
        /// timestamp ties and the occasional far-future (spillover) push.
        /// Times are drawn from a few coarse scales so runs hit the
        /// ready-merge, in-window, and overflow paths in one sequence.
        #[test]
        fn matches_a_reference_heap(
            ops in proptest::collection::vec(
                // (is_push, time_class, time_raw): pop when !is_push.
                (any::<bool>(), 0u8..4, 0u64..1_000),
                1..400,
            )
        ) {
            let mut q = EventQueue::new();
            let mut reference: std::collections::BinaryHeap<
                std::cmp::Reverse<(SimTime, u64, usize)>,
            > = std::collections::BinaryHeap::new();
            let mut seq = 0u64;
            let mut id = 0usize;
            for (is_push, class, raw) in ops {
                if is_push {
                    // Coarse quantization produces many exact ties; class 3
                    // lands beyond the 1024-day wheel horizon.
                    let t = match class {
                        0 => SimTime::from_millis(raw / 100),      // heavy ties
                        1 => SimTime::from_millis(raw),            // in-window
                        2 => SimTime::from_micros(raw * 37),       // sub-day spread
                        _ => SimTime::from_secs(2 + raw),          // spillover
                    };
                    q.push(t, id);
                    reference.push(std::cmp::Reverse((t, seq, id)));
                    seq += 1;
                    id += 1;
                } else {
                    let got = q.pop();
                    let want = reference
                        .pop()
                        .map(|std::cmp::Reverse((t, _, i))| (t, i));
                    prop_assert_eq!(got, want);
                }
            }
            // Drain both to the end.
            while let Some(std::cmp::Reverse((t, _, i))) = reference.pop() {
                prop_assert_eq!(q.pop(), Some((t, i)));
            }
            prop_assert_eq!(q.pop(), None);
        }
    }
}
