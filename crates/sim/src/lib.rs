//! # ispn-sim — deterministic discrete-event simulation engine
//!
//! This crate is the lowest substrate of the ISPN reproduction of
//! Clark, Shenker and Zhang, *"Supporting Real-Time Applications in an
//! Integrated Services Packet Network: Architecture and Mechanism"*
//! (SIGCOMM 1992).  The paper's evaluation is driven by a discrete-event
//! packet-network simulator; this crate provides the pieces of that
//! simulator that are independent of networking:
//!
//! * [`SimTime`] — integer-nanosecond simulated time (no floating point in
//!   event ordering, so runs are exactly reproducible),
//! * [`EventQueue`] — a deterministic pending-event set with FIFO
//!   tie-breaking for simultaneous events,
//! * [`World`] and [`run`] — a minimal executor loop,
//! * [`rng`] — a small, self-contained PCG-64 random number generator plus
//!   the inverse-CDF samplers (exponential, geometric, …) needed by the
//!   paper's two-state Markov traffic sources.
//!
//! Everything is single-threaded and allocation-light by design: the
//! evaluation scenarios of the paper involve a handful of switches and a few
//! million events, and determinism is far more valuable than parallelism for
//! reproducing tables.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod event;
pub mod rng;
pub mod time;

pub use engine::{run, run_until, StepResult, World};
pub use event::EventQueue;
pub use rng::{Pcg64, SplitMix64};
pub use time::SimTime;
