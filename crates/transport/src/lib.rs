//! # ispn-transport — the datagram transport substrate
//!
//! Table 3 of CSZ'92 adds "2 datagram TCP connections" to the real-time
//! load so that the network runs at over 99 % utilization while the
//! datagram class absorbs whatever bandwidth the real-time classes leave
//! over, experiencing a small (≈0.1 %) drop rate.  This crate provides that
//! substrate: a simplified, window-based TCP (greedy sender, slow start,
//! congestion avoidance, fast retransmit on triple duplicate ACKs, and a
//! retransmission timeout with Jacobson/Karels RTT estimation) running as a
//! pair of datagram-class flows (data forward, ACKs on a reverse route).
//!
//! The goal is behavioural fidelity at the level the paper relies on —
//! elastic load that fills residual capacity and backs off under loss — not
//! byte-level RFC 793 compliance.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod tcp;

pub use tcp::{
    install_tcp, SharedTcpStats, TcpConfig, TcpHandles, TcpReceiver, TcpSender, TcpStats,
};
