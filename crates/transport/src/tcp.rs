//! A simplified TCP Reno sender/receiver pair.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use ispn_core::{FlowId, Packet, PacketKind};
use ispn_net::topology::LinkId;
use ispn_net::{Agent, AgentApi, AgentId, Delivery, FlowConfig, Network};
use ispn_sim::SimTime;

/// Static transport parameters.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Data segment size in bits (the paper's packets are 1000 bits).
    pub segment_bits: u64,
    /// ACK packet size in bits.
    pub ack_bits: u64,
    /// Initial congestion window, in segments.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, in segments.
    pub initial_ssthresh: f64,
    /// Receiver window: the sender never has more than this many segments
    /// outstanding.
    pub max_window: f64,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimTime,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimTime,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            segment_bits: 1000,
            ack_bits: 320,
            initial_cwnd: 1.0,
            initial_ssthresh: 32.0,
            max_window: 64.0,
            min_rto: SimTime::from_millis(10),
            max_rto: SimTime::from_secs(10),
        }
    }
}

/// Counters shared between a connection and the experiment that created it.
#[derive(Debug, Default, Clone)]
pub struct TcpStats {
    /// Segments transmitted (including retransmissions).
    pub segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Retransmission timeouts that fired.
    pub timeouts: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Highest cumulative sequence number acknowledged.
    pub acked: u64,
    /// Data segments received in order by the receiver.
    pub received_in_order: u64,
    /// ACK packets the receiver sent.
    pub acks_sent: u64,
}

impl TcpStats {
    /// Goodput in segments per second over `secs` of simulated time.
    pub fn goodput_pps(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            0.0
        } else {
            self.acked as f64 / secs
        }
    }

    /// Fraction of transmitted segments that were retransmissions.
    pub fn retransmission_rate(&self) -> f64 {
        if self.segments_sent == 0 {
            0.0
        } else {
            self.retransmissions as f64 / self.segments_sent as f64
        }
    }
}

/// Shared handle to a connection's counters.
pub type SharedTcpStats = Rc<RefCell<TcpStats>>;

// ---------------------------------------------------------------------------
// Sender
// ---------------------------------------------------------------------------

/// The greedy TCP sender: always has data to send.
pub struct TcpSender {
    data_flow: FlowId,
    config: TcpConfig,
    /// Lowest unacknowledged sequence number.
    snd_una: u64,
    /// Next sequence number to send.
    next_seq: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    /// End of the current fast-recovery episode (packets below this were
    /// outstanding when loss was detected).
    recover: u64,
    in_recovery: bool,
    /// RTT estimation (Jacobson/Karels), in seconds.
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimTime,
    /// Send times of segments eligible for RTT sampling (removed when
    /// retransmitted — Karn's rule).
    send_times: BTreeMap<u64, SimTime>,
    /// Incremented every time the RTO is re-armed so stale timer events can
    /// be recognized and ignored.
    rto_generation: u64,
    stats: SharedTcpStats,
}

impl TcpSender {
    /// Create a sender for `data_flow`.
    pub fn new(data_flow: FlowId, config: TcpConfig) -> Self {
        let rto = SimTime::from_millis(200).max(config.min_rto);
        TcpSender {
            data_flow,
            snd_una: 0,
            next_seq: 0,
            cwnd: config.initial_cwnd,
            ssthresh: config.initial_ssthresh,
            dup_acks: 0,
            recover: 0,
            in_recovery: false,
            srtt: None,
            rttvar: 0.0,
            rto,
            send_times: BTreeMap::new(),
            rto_generation: 0,
            stats: Rc::new(RefCell::new(TcpStats::default())),
            config,
        }
    }

    /// Shared counter handle.
    pub fn stats(&self) -> SharedTcpStats {
        self.stats.clone()
    }

    /// Current congestion window in segments (for tests and reporting).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn flight(&self) -> u64 {
        self.next_seq - self.snd_una
    }

    fn window(&self) -> u64 {
        self.cwnd.min(self.config.max_window).floor().max(1.0) as u64
    }

    fn send_segment(&mut self, seq: u64, api: &mut AgentApi, is_retransmission: bool) {
        let pkt = Packet::data(self.data_flow, seq, self.config.segment_bits, api.now());
        api.send(pkt);
        let mut st = self.stats.borrow_mut();
        st.segments_sent += 1;
        if is_retransmission {
            st.retransmissions += 1;
            self.send_times.remove(&seq);
        } else {
            self.send_times.insert(seq, api.now());
        }
    }

    fn fill_window(&mut self, api: &mut AgentApi) {
        while self.flight() < self.window() {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.send_segment(seq, api, false);
        }
    }

    fn arm_rto(&mut self, api: &mut AgentApi) {
        self.rto_generation += 1;
        api.set_timer(self.rto, self.rto_generation);
    }

    fn rto_from_estimator(&self) -> SimTime {
        let raw = match self.srtt {
            Some(srtt) => SimTime::from_secs_f64(srtt + 4.0 * self.rttvar),
            None => SimTime::from_millis(200),
        };
        raw.max(self.config.min_rto).min(self.config.max_rto)
    }

    fn update_rtt(&mut self, sample_secs: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample_secs);
                self.rttvar = sample_secs / 2.0;
            }
            Some(srtt) => {
                let err = sample_secs - srtt;
                self.srtt = Some(srtt + 0.125 * err);
                self.rttvar += 0.25 * (err.abs() - self.rttvar);
            }
        }
        self.rto = self.rto_from_estimator();
    }

    fn on_new_ack(&mut self, ack: u64, api: &mut AgentApi) {
        let newly_acked = ack - self.snd_una;
        // RTT sample from the highest newly acked, never-retransmitted
        // segment (Karn's rule is enforced by removal on retransmission).
        let sampled: Vec<u64> = self.send_times.range(..ack).map(|(&s, _)| s).collect();
        if let Some(&last) = sampled.last() {
            let sent = self.send_times[&last];
            let sample = api.now().saturating_sub(sent).as_secs_f64();
            self.update_rtt(sample);
        }
        for s in sampled {
            self.send_times.remove(&s);
        }
        self.snd_una = ack;
        self.dup_acks = 0;
        self.stats.borrow_mut().acked = ack;
        // An acknowledged segment ends any exponential RTO backoff: go back
        // to the estimator-derived timeout.
        self.rto = self.rto_from_estimator();

        if self.in_recovery {
            if ack >= self.recover {
                // Full recovery: every segment outstanding at loss detection
                // has now been acknowledged.
                self.in_recovery = false;
                self.cwnd = self.ssthresh;
            } else {
                // Partial ACK (NewReno): the next hole is now at the new
                // snd_una — retransmit it immediately instead of waiting for
                // a timeout.
                let una = self.snd_una;
                self.send_segment(una, api, true);
            }
        }
        if !self.in_recovery {
            if self.cwnd < self.ssthresh {
                // Slow start: one segment per acked segment.
                self.cwnd += newly_acked as f64;
            } else {
                // Congestion avoidance: roughly one segment per RTT.
                self.cwnd += newly_acked as f64 / self.cwnd;
            }
        }
        self.fill_window(api);
        if self.flight() > 0 {
            self.arm_rto(api);
        }
    }

    fn on_dup_ack(&mut self, api: &mut AgentApi) {
        self.dup_acks += 1;
        if self.dup_acks == 3 && !self.in_recovery {
            // Fast retransmit / fast recovery (simplified: no window
            // inflation during recovery).
            self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
            self.in_recovery = true;
            self.recover = self.next_seq;
            self.stats.borrow_mut().fast_retransmits += 1;
            let una = self.snd_una;
            self.send_segment(una, api, true);
            self.arm_rto(api);
        }
    }
}

impl Agent for TcpSender {
    fn start(&mut self, api: &mut AgentApi) {
        self.fill_window(api);
        self.arm_rto(api);
    }

    fn on_timer(&mut self, token: u64, api: &mut AgentApi) {
        if token != self.rto_generation {
            return; // stale timer from an earlier arming
        }
        if self.flight() == 0 {
            return;
        }
        // Retransmission timeout.
        self.stats.borrow_mut().timeouts += 1;
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.in_recovery = false;
        self.dup_acks = 0;
        // Exponential backoff.
        self.rto = (self.rto + self.rto).min(self.config.max_rto);
        let una = self.snd_una;
        self.send_segment(una, api, true);
        self.arm_rto(api);
    }

    fn on_packet(&mut self, delivery: Delivery, api: &mut AgentApi) {
        let PacketKind::Ack { ack } = delivery.packet.kind else {
            return; // data packets are never routed to the sender
        };
        if ack > self.snd_una {
            self.on_new_ack(ack, api);
        } else {
            self.on_dup_ack(api);
        }
    }
}

// ---------------------------------------------------------------------------
// Receiver
// ---------------------------------------------------------------------------

/// The TCP receiver: acknowledges every data segment with the cumulative
/// next-expected sequence number.
pub struct TcpReceiver {
    ack_flow: FlowId,
    ack_bits: u64,
    rcv_next: u64,
    out_of_order: BTreeSet<u64>,
    ack_seq: u64,
    stats: SharedTcpStats,
}

impl TcpReceiver {
    /// Create a receiver that sends its ACKs on `ack_flow`, sharing the
    /// sender's counter handle.
    pub fn new(ack_flow: FlowId, ack_bits: u64, stats: SharedTcpStats) -> Self {
        TcpReceiver {
            ack_flow,
            ack_bits,
            rcv_next: 0,
            out_of_order: BTreeSet::new(),
            ack_seq: 0,
            stats,
        }
    }

    /// Next in-order sequence number the receiver expects.
    pub fn rcv_next(&self) -> u64 {
        self.rcv_next
    }
}

impl Agent for TcpReceiver {
    fn on_packet(&mut self, delivery: Delivery, api: &mut AgentApi) {
        let seq = delivery.packet.seq;
        if seq == self.rcv_next {
            self.rcv_next += 1;
            self.stats.borrow_mut().received_in_order += 1;
            while self.out_of_order.remove(&self.rcv_next) {
                self.rcv_next += 1;
                self.stats.borrow_mut().received_in_order += 1;
            }
        } else if seq > self.rcv_next {
            self.out_of_order.insert(seq);
        }
        let ack = Packet::ack(
            self.ack_flow,
            self.ack_seq,
            self.rcv_next,
            self.ack_bits,
            api.now(),
        );
        self.ack_seq += 1;
        self.stats.borrow_mut().acks_sent += 1;
        api.send(ack);
    }
}

// ---------------------------------------------------------------------------
// Wiring helper
// ---------------------------------------------------------------------------

/// Everything the caller needs to observe an installed connection.
pub struct TcpHandles {
    /// The forward (data) flow.
    pub data_flow: FlowId,
    /// The reverse (ACK) flow.
    pub ack_flow: FlowId,
    /// The sender agent.
    pub sender: AgentId,
    /// The receiver agent.
    pub receiver: AgentId,
    /// Shared statistics for the connection.
    pub stats: SharedTcpStats,
}

/// Install a greedy TCP connection on the network: a datagram data flow
/// along `data_route`, a datagram ACK flow along `ack_route`, and the two
/// endpoint agents wired to each other.
pub fn install_tcp(
    net: &mut Network,
    data_route: Vec<LinkId>,
    ack_route: Vec<LinkId>,
    config: TcpConfig,
) -> TcpHandles {
    let data_flow = net.add_flow(FlowConfig::datagram(data_route));
    let ack_flow = net.add_flow(FlowConfig::datagram(ack_route));
    let sender = TcpSender::new(data_flow, config.clone());
    let stats = sender.stats();
    let receiver = TcpReceiver::new(ack_flow, config.ack_bits, stats.clone());
    let sender_id = net.add_agent(Box::new(sender));
    let receiver_id = net.add_agent(Box::new(receiver));
    net.set_flow_sink(data_flow, receiver_id);
    net.set_flow_sink(ack_flow, sender_id);
    TcpHandles {
        data_flow,
        ack_flow,
        sender: sender_id,
        receiver: receiver_id,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ispn_net::Topology;

    const MBIT: f64 = 1_000_000.0;

    /// A two-switch dumbbell with a forward and a reverse link.
    fn duplex_net(buffer: usize) -> (Network, LinkId, LinkId) {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        let fwd = topo.add_link(a, b, MBIT, SimTime::from_millis(5), buffer);
        let rev = topo.add_link(b, a, MBIT, SimTime::from_millis(5), buffer);
        (Network::new(topo), fwd, rev)
    }

    #[test]
    fn lone_connection_fills_the_link() {
        let (mut net, fwd, rev) = duplex_net(200);
        let tcp = install_tcp(&mut net, vec![fwd], vec![rev], TcpConfig::default());
        net.run_until(SimTime::from_secs(30));
        let stats = tcp.stats.borrow();
        // The link carries 1000 packets/s; a lone greedy TCP should achieve
        // the lion's share of that.
        let goodput = stats.goodput_pps(30.0);
        assert!(goodput > 850.0, "goodput {goodput} pps");
        // In-order delivery at the receiver tracks the acked count.
        assert!(stats.received_in_order >= stats.acked);
        let util = net.monitor().link_report(fwd.index()).utilization;
        assert!(util > 0.85, "utilization {util}");
    }

    #[test]
    fn recovers_from_buffer_overflow_losses() {
        // A tiny buffer forces drops; the connection must keep making
        // progress (retransmitting as needed) rather than stalling.
        let (mut net, fwd, rev) = duplex_net(5);
        let tcp = install_tcp(&mut net, vec![fwd], vec![rev], TcpConfig::default());
        net.run_until(SimTime::from_secs(20));
        let stats = tcp.stats.borrow();
        assert!(
            stats.retransmissions > 0,
            "expected losses with a 5-packet buffer"
        );
        assert!(
            stats.acked > 10_000,
            "connection should keep making progress, acked {}",
            stats.acked
        );
        // Loss recovery is mostly via fast retransmit, not timeouts.
        assert!(stats.fast_retransmits > 0);
        let drops = net.monitor().link_report(fwd.index()).drops;
        assert!(drops > 0);
    }

    #[test]
    fn two_connections_share_a_bottleneck() {
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        let fwd = topo.add_link(a, b, MBIT, SimTime::from_millis(2), 50);
        let rev = topo.add_link(b, a, MBIT, SimTime::from_millis(2), 50);
        let mut net = Network::new(topo);
        let t1 = install_tcp(&mut net, vec![fwd], vec![rev], TcpConfig::default());
        let t2 = install_tcp(&mut net, vec![fwd], vec![rev], TcpConfig::default());
        net.run_until(SimTime::from_secs(30));
        let g1 = t1.stats.borrow().goodput_pps(30.0);
        let g2 = t2.stats.borrow().goodput_pps(30.0);
        assert!(g1 + g2 > 800.0, "aggregate goodput {g1}+{g2}");
        // Rough fairness: neither connection is starved.
        assert!(g1 > 150.0 && g2 > 150.0, "goodputs {g1} / {g2}");
    }

    #[test]
    fn rto_recovers_when_every_ack_is_lost() {
        // ACK path with a 1-packet buffer and a bursty forward path: force
        // pathological conditions and check the sender still uses timeouts
        // to make progress.
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        let fwd = topo.add_link(a, b, 100_000.0, SimTime::from_millis(1), 2);
        let rev = topo.add_link(b, a, 100_000.0, SimTime::from_millis(1), 1);
        let mut net = Network::new(topo);
        let tcp = install_tcp(&mut net, vec![fwd], vec![rev], TcpConfig::default());
        net.run_until(SimTime::from_secs(30));
        let stats = tcp.stats.borrow();
        assert!(stats.acked > 100, "acked {}", stats.acked);
    }

    #[test]
    fn stats_helpers() {
        let mut s = TcpStats::default();
        assert_eq!(s.goodput_pps(10.0), 0.0);
        assert_eq!(s.retransmission_rate(), 0.0);
        s.acked = 500;
        s.segments_sent = 550;
        s.retransmissions = 11;
        assert!((s.goodput_pps(10.0) - 50.0).abs() < 1e-12);
        assert!((s.retransmission_rate() - 0.02).abs() < 1e-12);
        assert_eq!(s.goodput_pps(0.0), 0.0);
    }

    #[test]
    fn sender_window_accessors() {
        let s = TcpSender::new(FlowId(0), TcpConfig::default());
        assert_eq!(s.cwnd(), 1.0);
        let r = TcpReceiver::new(FlowId(1), 320, s.stats());
        assert_eq!(r.rcv_next(), 0);
    }
}
