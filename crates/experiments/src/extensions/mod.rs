//! Extension experiments beyond the paper's three tables.
//!
//! These exercise claims the paper argues but does not tabulate:
//!
//! * [`hops`] — how the 99.9th-percentile jitter grows with path length
//!   under FIFO, FIFO+ and WFQ (the Section-6 motivation for FIFO+),
//! * [`playback`] — adaptive versus rigid play-back points over predicted
//!   service (the Section 2/12 conjecture that adaptation buys lower
//!   latency at equal loss),
//! * [`admission`] — the Section-9 measurement-based admission control
//!   criterion in a dynamic setting, compared against accepting everything,
//! * [`utilization`] — delay versus offered load on a single shared link
//!   (the sharing-versus-isolation trade-off as the link saturates).

pub mod admission;
pub mod hops;
pub mod playback;
pub mod utilization;
