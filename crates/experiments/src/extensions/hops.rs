//! Jitter growth with path length (the Section-6 claim behind FIFO+).
//!
//! "One of the problems with the FIFO algorithm is that if we generalize our
//! gedanken experiment to include several links, then the jitter tends to
//! increase dramatically with the number of hops … The key is to correlate
//! the sharing experience which a packet has at the successive nodes in its
//! path."
//!
//! The scenario generalizes Figure 1: a chain of `n` links, each 83.5 %
//! utilized by ten flows — two flows that traverse the whole chain plus
//! eight one-hop flows per link — and we track the end-to-end jitter of a
//! full-path flow as `n` grows.

use ispn_core::FlowSpec;
use ispn_net::{FlowConfig, Network, Topology};
use ispn_sim::SimTime;

use crate::config::PaperConfig;
use crate::support::{attach_onoff, realtime_class, DisciplineKind};

/// Flows sharing each link (matches the paper's evaluation).
pub const FLOWS_PER_LINK: usize = 10;
/// Flows that traverse the entire chain.
pub const LONG_FLOWS: usize = 2;

/// Result for one (discipline, chain length) pair, in packet times.
#[derive(Debug, Clone)]
pub struct HopsPoint {
    /// Scheduling discipline.
    pub scheduler: &'static str,
    /// Number of links in the chain.
    pub hops: usize,
    /// Mean end-to-end queueing delay of the full-path sample flow.
    pub mean: f64,
    /// 99.9th percentile of the full-path sample flow.
    pub p999: f64,
}

/// Run one chain length under one discipline.
pub fn run_chain(cfg: &PaperConfig, discipline: DisciplineKind, hops: usize) -> HopsPoint {
    assert!(hops >= 1);
    let (topo, _nodes, links) = Topology::chain(
        hops + 1,
        cfg.link_rate_bps,
        SimTime::ZERO,
        cfg.buffer_packets,
    );
    let mut net = Network::new(topo);
    for &l in &links {
        net.set_discipline(l, discipline.build(cfg, FLOWS_PER_LINK));
    }
    let mut seed = 0u32;
    let add_flow = |net: &mut Network, route: Vec<_>, seed: &mut u32| {
        let f = net.add_flow(FlowConfig {
            route,
            spec: FlowSpec::Datagram,
            class: realtime_class(),
            edge_policer: None,
            sink: None,
        });
        attach_onoff(net, f, cfg, *seed);
        *seed += 1;
        f
    };
    // The measured long flows.
    let long: Vec<_> = (0..LONG_FLOWS)
        .map(|_| add_flow(&mut net, links.clone(), &mut seed))
        .collect();
    // Fill every link to FLOWS_PER_LINK with one-hop cross traffic.
    for &l in &links {
        for _ in 0..(FLOWS_PER_LINK - LONG_FLOWS) {
            add_flow(&mut net, vec![l], &mut seed);
        }
    }
    net.run_until(cfg.duration);
    let pt = cfg.packet_time().as_secs_f64();
    let r = net.monitor_mut().flow_report(long[0]);
    HopsPoint {
        scheduler: discipline.label(),
        hops,
        mean: r.mean_delay / pt,
        p999: r.p999_delay / pt,
    }
}

/// Sweep chain lengths for the three Table-2 disciplines.
pub fn run_sweep(cfg: &PaperConfig, hop_counts: &[usize]) -> Vec<HopsPoint> {
    let mut out = Vec::new();
    for &h in hop_counts {
        for d in DisciplineKind::table2_set() {
            out.push(run_chain(cfg, d, h));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_grows_with_hops_and_fifo_plus_grows_slowest() {
        let cfg = PaperConfig::fast();
        let points = run_sweep(&cfg, &[1, 3]);
        assert_eq!(points.len(), 6);
        let get = |s: &str, h: usize| {
            points
                .iter()
                .find(|p| p.scheduler == s && p.hops == h)
                .unwrap()
                .clone()
        };
        for d in ["WFQ", "FIFO", "FIFO+"] {
            assert!(
                get(d, 3).mean > get(d, 1).mean,
                "{d} mean must grow with hops"
            );
            assert!(
                get(d, 3).p999 > get(d, 1).p999,
                "{d} p999 must grow with hops"
            );
        }
        // At 3 hops FIFO+ has the smallest tail of the three (small slack
        // for the shortened run).
        let fp = get("FIFO+", 3).p999;
        assert!(fp <= get("FIFO", 3).p999 * 1.1, "FIFO+ {fp}");
        assert!(fp <= get("WFQ", 3).p999 * 1.1, "FIFO+ {fp}");
    }
}
