//! Delay versus offered load on a single shared link.
//!
//! Section 4 argues that offering only guaranteed (peak-rate style) service
//! caps real-time utilization near 50 %, which motivates predicted service;
//! this sweep quantifies how the mean and tail delays of a shared FIFO /
//! WFQ link grow as the number of identical on/off sources rises toward the
//! link capacity.

use ispn_core::FlowSpec;
use ispn_net::{FlowConfig, Network, Topology};
use ispn_sim::SimTime;

use crate::config::PaperConfig;
use crate::support::{attach_onoff, realtime_class, DisciplineKind};

/// One point of the sweep (delays in packet times).
#[derive(Debug, Clone)]
pub struct UtilizationPoint {
    /// Scheduling discipline.
    pub scheduler: &'static str,
    /// Number of on/off sources sharing the link.
    pub flows: usize,
    /// Measured link utilization.
    pub utilization: f64,
    /// Mean queueing delay of a sample flow.
    pub mean: f64,
    /// 99.9th-percentile queueing delay of a sample flow.
    pub p999: f64,
}

/// Run one point.
pub fn run_point(cfg: &PaperConfig, discipline: DisciplineKind, flows: usize) -> UtilizationPoint {
    let (topo, _nodes, links) =
        Topology::chain(2, cfg.link_rate_bps, SimTime::ZERO, cfg.buffer_packets);
    let mut net = Network::new(topo);
    net.set_discipline(links[0], discipline.build(cfg, flows));
    let mut ids = Vec::new();
    for i in 0..flows {
        let f = net.add_flow(FlowConfig {
            route: vec![links[0]],
            spec: FlowSpec::Datagram,
            class: realtime_class(),
            edge_policer: None,
            sink: None,
        });
        attach_onoff(&mut net, f, cfg, i as u32);
        ids.push(f);
    }
    net.run_until(cfg.duration);
    let pt = cfg.packet_time().as_secs_f64();
    let r = net.monitor_mut().flow_report(ids[0]);
    UtilizationPoint {
        scheduler: discipline.label(),
        flows,
        utilization: net.monitor().link_report(0).utilization,
        mean: r.mean_delay / pt,
        p999: r.p999_delay / pt,
    }
}

/// Sweep source counts for FIFO and WFQ.
pub fn run_sweep(cfg: &PaperConfig, flow_counts: &[usize]) -> Vec<UtilizationPoint> {
    let mut out = Vec::new();
    for &n in flow_counts {
        for d in [DisciplineKind::Fifo, DisciplineKind::Wfq] {
            out.push(run_point(cfg, d, n));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delay_grows_with_load() {
        let cfg = PaperConfig::fast();
        let points = run_sweep(&cfg, &[6, 10]);
        assert_eq!(points.len(), 4);
        let get = |s: &str, n: usize| {
            points
                .iter()
                .find(|p| p.scheduler == s && p.flows == n)
                .unwrap()
                .clone()
        };
        for d in ["FIFO", "WFQ"] {
            let light = get(d, 6);
            let heavy = get(d, 10);
            assert!(heavy.utilization > light.utilization);
            assert!(heavy.mean > light.mean, "{d}");
            assert!(heavy.p999 > light.p999, "{d}");
        }
        // Utilization tracks the offered load (6 × 83.3 ≈ 0.50, 10 × ≈ 0.835).
        assert!((get("FIFO", 6).utilization - 0.50).abs() < 0.05);
        assert!((get("FIFO", 10).utilization - 0.835).abs() < 0.05);
    }
}
