//! Adaptive versus rigid play-back points (Sections 2.3 and 12).
//!
//! "We conjecture that with predictive service and adaptive clients we can
//! achieve both higher link utilizations and superior application
//! performance (because the play-back points will be at the de facto
//! bounds, not the a priori worst-case bounds)."
//!
//! The experiment runs the Table-1 single-link scenario under FIFO+, takes
//! the delivered delay sequence of one flow, and feeds it to a rigid client
//! (play-back point fixed at the advertised a-priori bound) and to an
//! adaptive client (play-back point tracking a high quantile of recent
//! delays).  The comparison reports each client's effective latency — the
//! average play-back point — and its loss rate against that point.

use ispn_core::playback::{AdaptivePlayback, RigidPlayback};
use ispn_core::FlowSpec;
use ispn_net::{FlowConfig, Network, Topology};
use ispn_sim::SimTime;

use crate::config::PaperConfig;
use crate::support::{attach_onoff, realtime_class, DisciplineKind};

/// Results of the comparison, in packet times / fractions.
#[derive(Debug, Clone)]
pub struct PlaybackComparison {
    /// The a-priori bound advertised to the rigid client.
    pub advertised_bound: f64,
    /// The rigid client's loss rate (should be ≈0 if the bound is honest).
    pub rigid_loss: f64,
    /// The rigid client's effective latency (equal to the bound).
    pub rigid_latency: f64,
    /// The adaptive client's loss rate.
    pub adaptive_loss: f64,
    /// The adaptive client's effective latency (mean play-back point).
    pub adaptive_latency: f64,
    /// Number of delay samples driving the comparison.
    pub samples: usize,
}

impl PlaybackComparison {
    /// The latency saving of adaptation, as a fraction of the advertised
    /// bound.
    pub fn latency_saving(&self) -> f64 {
        if self.rigid_latency <= 0.0 {
            0.0
        } else {
            1.0 - self.adaptive_latency / self.rigid_latency
        }
    }
}

/// The per-hop a-priori delay bound (in packet times) the network advertises
/// to the predicted class in this experiment.
pub const ADVERTISED_PER_HOP_PKT: f64 = 60.0;

/// Run the comparison.
pub fn run(cfg: &PaperConfig) -> PlaybackComparison {
    // Table-1 style single link, FIFO+ discipline.
    let (topo, _nodes, links) =
        Topology::chain(2, cfg.link_rate_bps, SimTime::ZERO, cfg.buffer_packets);
    let mut net = Network::new(topo);
    net.set_discipline(links[0], DisciplineKind::FifoPlus.build(cfg, 10));
    let mut flows = Vec::new();
    for i in 0..10 {
        let f = net.add_flow(FlowConfig {
            route: vec![links[0]],
            spec: FlowSpec::Datagram,
            class: realtime_class(),
            edge_policer: None,
            sink: None,
        });
        attach_onoff(&mut net, f, cfg, i as u32);
        flows.push(f);
    }
    net.run_until(cfg.duration);

    let pt = cfg.packet_time();
    let advertised = pt.mul_f64(ADVERTISED_PER_HOP_PKT);
    let mut rigid = RigidPlayback::new(advertised);
    let mut adaptive = AdaptivePlayback::new(advertised, 200, 0.999, 1.3);
    let samples = net.monitor().flow_delays(flows[0]).samples().to_vec();
    for &d in &samples {
        let delay = SimTime::from_secs_f64(d);
        rigid.on_packet(delay);
        adaptive.on_packet(delay);
    }
    let pt_secs = pt.as_secs_f64();
    PlaybackComparison {
        advertised_bound: ADVERTISED_PER_HOP_PKT,
        rigid_loss: rigid.stats().loss_rate(),
        rigid_latency: rigid.stats().playback_point().mean() / pt_secs,
        adaptive_loss: adaptive.stats().loss_rate(),
        adaptive_latency: adaptive.stats().playback_point().mean() / pt_secs,
        samples: samples.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_buys_latency_at_small_loss() {
        let cfg = PaperConfig::fast();
        let c = run(&cfg);
        assert!(c.samples > 1000, "not enough samples ({})", c.samples);
        // The rigid client at the a-priori bound loses essentially nothing.
        assert!(c.rigid_loss < 0.002, "rigid loss {}", c.rigid_loss);
        assert!((c.rigid_latency - ADVERTISED_PER_HOP_PKT).abs() < 1e-6);
        // The adaptive client sits far below the bound with modest loss.
        assert!(
            c.adaptive_latency < 0.7 * c.rigid_latency,
            "adaptive latency {} vs rigid {}",
            c.adaptive_latency,
            c.rigid_latency
        );
        assert!(c.adaptive_loss < 0.02, "adaptive loss {}", c.adaptive_loss);
        assert!(c.latency_saving() > 0.3);
    }
}
