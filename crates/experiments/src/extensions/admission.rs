//! Measurement-based admission control in a dynamic setting (Section 9).
//!
//! Predicted-service flows arrive one after another, each declaring the
//! `(A, 50-packet)` token bucket and asking for one of two priority classes
//! with widely spaced per-hop delay targets.  One run uses the Section-9
//! example criterion driven by measured utilization and per-class delays;
//! the control run accepts every request.  The controlled network should
//! keep every class below its target (and leave the datagram quota free)
//! while the uncontrolled one overloads the link and blows through the
//! bounds.

use ispn_core::admission::{AdmissionConfig, AdmissionController};
use ispn_core::{FlowSpec, ServiceClass, TokenBucketSpec};
use ispn_net::{FlowConfig, Network, Topology};
use ispn_sched::{Discipline, FifoPlus, StrictPriority};
use ispn_sim::SimTime;

use crate::config::PaperConfig;
use crate::support::attach_onoff;

/// Per-hop target of the high-priority predicted class, in packet times.
pub const HIGH_TARGET_PKT: f64 = 30.0;
/// Per-hop target of the low-priority predicted class, in packet times.
pub const LOW_TARGET_PKT: f64 = 300.0;

/// Outcome of one run (controlled or uncontrolled).
#[derive(Debug, Clone)]
pub struct AdmissionOutcome {
    /// Whether the Section-9 criterion was applied.
    pub controlled: bool,
    /// Flows accepted.
    pub accepted: usize,
    /// Flows rejected.
    pub rejected: usize,
    /// Final link utilization.
    pub utilization: f64,
    /// Worst measured queueing delay of any high-priority flow (packet times).
    pub worst_high_delay: f64,
    /// Worst measured queueing delay of any low-priority flow (packet times).
    pub worst_low_delay: f64,
    /// Number of admitted flows whose measured maximum delay exceeded their
    /// class target.
    pub violations: usize,
}

/// The dynamic-arrival experiment.
pub fn run(cfg: &PaperConfig, controlled: bool, offered_flows: usize) -> AdmissionOutcome {
    let (topo, _nodes, links) =
        Topology::chain(2, cfg.link_rate_bps, SimTime::ZERO, cfg.buffer_packets);
    let link = links[0];
    let mut net = Network::new(topo);
    net.set_discipline(link, Discipline::custom(StrictPriority::<FifoPlus>::new(2)));

    let pt = cfg.packet_time();
    let targets = vec![pt.mul_f64(HIGH_TARGET_PKT), pt.mul_f64(LOW_TARGET_PKT)];
    let mut controller = AdmissionController::new(
        AdmissionConfig::new(cfg.link_rate_bps, 0.9, targets.clone()),
        10.0,
    );

    let bucket = TokenBucketSpec::per_packets(cfg.avg_rate_pps, 50.0, cfg.packet_bits);
    // Spread the requests over the first half of the run so the second half
    // measures the steady state.
    let arrival_gap = cfg.duration.mul_f64(0.5 / offered_flows.max(1) as f64);
    let step = SimTime::SECOND;

    let mut admitted: Vec<(ispn_core::FlowId, u8)> = Vec::new();
    let mut accepted = 0;
    let mut rejected = 0;
    let mut next_arrival = SimTime::ZERO;
    let mut offered = 0usize;
    let mut now = SimTime::ZERO;
    let mut last_rt_bits = 0u64;

    while now < cfg.duration {
        // Offer new flows that are due.
        while offered < offered_flows && next_arrival <= now {
            let priority = (offered % 2) as u8;
            let accept = if controlled {
                controller
                    .request_predicted(now, bucket, priority)
                    .is_accept()
            } else {
                true
            };
            if accept {
                let flow = net.add_flow(FlowConfig {
                    route: vec![link],
                    spec: FlowSpec::predicted(bucket, targets[priority as usize], 0.001),
                    class: ServiceClass::Predicted { priority },
                    edge_policer: None,
                    sink: None,
                });
                attach_onoff(&mut net, flow, cfg, 1000 + offered as u32);
                admitted.push((flow, priority));
                accepted += 1;
            } else {
                rejected += 1;
            }
            offered += 1;
            next_arrival += arrival_gap;
        }

        now += step;
        net.run_until(now);

        // Feed the controller its conservative measurements: real-time
        // throughput over the last second and the per-class worst delays
        // observed so far.
        let rt_bits = net.monitor().link_realtime_bits_sent(link.index());
        let rt_bps = (rt_bits - last_rt_bits) as f64 / step.as_secs_f64();
        last_rt_bits = rt_bits;
        controller.observe_utilization(now, rt_bps);
        for &(flow, priority) in &admitted {
            let max = net.monitor_mut().flow_report(flow).max_delay;
            controller.observe_class_delay(now, priority, SimTime::from_secs_f64(max));
        }
    }

    let pt_secs = pt.as_secs_f64();
    let mut worst = [0.0f64; 2];
    let mut violations = 0;
    for &(flow, priority) in &admitted {
        let max = net.monitor_mut().flow_report(flow).max_delay / pt_secs;
        worst[priority as usize] = worst[priority as usize].max(max);
        let target = if priority == 0 {
            HIGH_TARGET_PKT
        } else {
            LOW_TARGET_PKT
        };
        if max > target {
            violations += 1;
        }
    }

    AdmissionOutcome {
        controlled,
        accepted,
        rejected,
        utilization: net.monitor().link_report(link.index()).utilization,
        worst_high_delay: worst[0],
        worst_low_delay: worst[1],
        violations,
    }
}

/// Run both the controlled and the uncontrolled variant.
pub fn run_comparison(
    cfg: &PaperConfig,
    offered_flows: usize,
) -> (AdmissionOutcome, AdmissionOutcome) {
    (
        run(cfg, true, offered_flows),
        run(cfg, false, offered_flows),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_control_protects_the_delay_targets() {
        let cfg = PaperConfig::medium();
        // Offer twice as many flows as the link can carry within the
        // real-time quota.
        let (controlled, uncontrolled) = run_comparison(&cfg, 20);
        assert!(controlled.controlled);
        assert!(!uncontrolled.controlled);

        // The controller turned some flows away; accepting everything did not.
        assert!(controlled.rejected > 0, "{controlled:?}");
        assert_eq!(uncontrolled.rejected, 0);
        assert!(controlled.accepted < uncontrolled.accepted);

        // The uncontrolled run carries more load than the controlled one
        // (the utilization is averaged over the whole run including the
        // arrival ramp, so it does not reach 100 % even though the second
        // half of the run is saturated).
        assert!(
            uncontrolled.utilization > controlled.utilization + 0.03,
            "uncontrolled {uncontrolled:?} vs controlled {controlled:?}"
        );
        // The controlled run keeps real utilization near or under the 90 %
        // quota.
        assert!(controlled.utilization < 0.93, "{controlled:?}");

        // Delay damage: the uncontrolled run is dramatically worse for the
        // low-priority class.
        assert!(
            uncontrolled.worst_low_delay > 2.0 * controlled.worst_low_delay,
            "uncontrolled {uncontrolled:?} vs controlled {controlled:?}"
        );
        // And the controlled run keeps violations rare (the criterion is a
        // heuristic, so allow a stray one in a short run).
        assert!(controlled.violations <= 1, "{controlled:?}");
        assert!(
            uncontrolled.violations > controlled.violations,
            "{uncontrolled:?}"
        );
    }
}
