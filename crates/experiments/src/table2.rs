//! Table 2: WFQ vs FIFO vs FIFO+ on the Figure-1 chain.
//!
//! "Table 2 displays the mean and 99.9'th percentile queueing delays for a
//! single sample flow for each path length (the data from the other flows
//! are similar).  We compare the WFQ, FIFO, and FIFO+ algorithms (where we
//! have used equal clock rates in the WFQ algorithm).  Note that the mean
//! delays are comparable in all three cases.  While the 99.9'th percentile
//! delays increase with path length for all three algorithms, the rate of
//! growth is much smaller with the FIFO+ algorithm."

use ispn_core::FlowId;
use ispn_scenario::{
    json_escape, wire_f64, FlowDef, JsonValue, MeasurementPlan, NullObserver, PointResult,
    RunTelemetry, ScenarioBuilder, ScenarioSet, Sim, SourceSpec, SweepExec, SweepObserver,
    SweepReport, SweepRunner, TopologySpec, WireError, WireResult,
};

use crate::config::PaperConfig;
use crate::fig1::{self, Fig1Network, FlowPlacement};
use crate::support::{intern_discipline_label, DisciplineKind};

/// One cell group of Table 2: the sample flow of one path length under one
/// discipline (delays in packet transmission times).
#[derive(Debug, Clone)]
pub struct Table2Cell {
    /// Scheduling discipline.
    pub scheduler: &'static str,
    /// Path length in inter-switch links (1–4).
    pub path_length: usize,
    /// Mean queueing delay of the sample flow.
    pub mean: f64,
    /// 99.9th-percentile queueing delay of the sample flow.
    pub p999: f64,
}

impl WireResult for Table2Cell {
    fn to_wire_json(&self) -> String {
        format!(
            "{{\"scheduler\":\"{}\",\"path_length\":{},\"mean\":{},\"p999\":{}}}",
            json_escape(self.scheduler),
            self.path_length,
            wire_f64(self.mean),
            wire_f64(self.p999),
        )
    }

    fn from_wire_json(v: &JsonValue) -> Result<Self, WireError> {
        Ok(Table2Cell {
            scheduler: intern_discipline_label(v.field("scheduler")?.as_str()?)?,
            path_length: v.field("path_length")?.as_usize()?,
            mean: v.field("mean")?.as_f64_or_nan()?,
            p999: v.field("p999")?.as_f64_or_nan()?,
        })
    }
}

/// The full Table-2 result: cells for every (discipline, path length) pair
/// plus the measured per-link utilizations for the last discipline run.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// All cells, ordered by discipline then path length.
    pub cells: Vec<Table2Cell>,
    /// Mean utilization over the four inter-switch links (per discipline).
    pub utilization: Vec<(&'static str, f64)>,
}

/// One discipline's sweep point: its four path-length cells plus the mean
/// inter-switch link utilization of the run.
#[derive(Debug, Clone)]
pub struct Table2Point {
    /// Scheduling discipline label.
    pub scheduler: &'static str,
    /// The four path-length cells, in path order.
    pub cells: Vec<Table2Cell>,
    /// Mean utilization over the four inter-switch links.
    pub utilization: f64,
}

impl WireResult for Table2Point {
    fn to_wire_json(&self) -> String {
        format!(
            "{{\"scheduler\":\"{}\",\"cells\":{},\"utilization\":{}}}",
            json_escape(self.scheduler),
            self.cells.to_wire_json(),
            wire_f64(self.utilization),
        )
    }

    fn from_wire_json(v: &JsonValue) -> Result<Self, WireError> {
        Ok(Table2Point {
            scheduler: intern_discipline_label(v.field("scheduler")?.as_str()?)?,
            cells: Vec::from_wire_json(v.field("cells")?)?,
            utilization: v.field("utilization")?.as_f64_or_nan()?,
        })
    }
}

impl Table2 {
    /// Look up a cell.
    pub fn cell(&self, scheduler: &str, path_length: usize) -> Option<&Table2Cell> {
        self.cells
            .iter()
            .find(|c| c.scheduler == scheduler && c.path_length == path_length)
    }
}

/// Build the Figure-1 network with 22 identically distributed on/off flows
/// (Table 2 ignores the Table-3 class assignment) under one discipline,
/// declared through the scenario API, run it, and return the simulation
/// alongside the placed flows.
pub fn run_chain(
    cfg: &PaperConfig,
    discipline: DisciplineKind,
) -> (Sim, Vec<(FlowPlacement, FlowId)>) {
    let placements = fig1::placement();
    let mut builder = ScenarioBuilder::new(TopologySpec::chain_duplex(5))
        .link_profile(Fig1Network::link_profile(cfg))
        .discipline(discipline.spec());
    for (i, p) in placements.iter().enumerate() {
        builder = builder.flow(FlowDef::best_effort_realtime(p.first_link, p.hops).source(
            SourceSpec::onoff_paper(cfg.avg_rate_pps, cfg.flow_seed(i as u32)),
        ));
    }
    let mut sim = builder.build().expect("the Table-2 scenario is valid");
    let flows = placements.into_iter().zip(sim.flows().to_vec()).collect();
    sim.run_until(cfg.duration);
    (sim, flows)
}

/// Pick the sample flow the table reports for each path length: the flow of
/// that length whose route starts earliest in the chain (deterministic and
/// crosses the most-loaded prefix).
fn sample_flow(flows: &[(FlowPlacement, FlowId)], path_length: usize) -> FlowId {
    flows
        .iter()
        .filter(|(p, _)| p.hops == path_length)
        .min_by_key(|(p, _)| p.first_link)
        .map(|(_, f)| *f)
        .expect("every path length 1-4 exists in the placement")
}

/// Run one Table-2 sweep point: the Figure-1 chain under one discipline,
/// summarized into the discipline's four path-length cells.
pub fn run_point(cfg: &PaperConfig, discipline: DisciplineKind) -> Table2Point {
    let (mut sim, flows) = run_chain(cfg, discipline);
    let net = sim.network_mut();
    let pt = cfg.packet_time().as_secs_f64();
    let cells: Vec<Table2Cell> = (1..=4)
        .map(|path_length| {
            let flow = sample_flow(&flows, path_length);
            let r = net.monitor_mut().flow_report(flow);
            Table2Cell {
                scheduler: discipline.label(),
                path_length,
                mean: r.mean_delay / pt,
                p999: r.p999_delay / pt,
            }
        })
        .collect();
    let utilization: f64 = (0..fig1::NUM_LINKS)
        .map(|i| net.monitor().link_report(i).utilization)
        .sum::<f64>()
        / fig1::NUM_LINKS as f64;
    Table2Point {
        scheduler: discipline.label(),
        cells,
        utilization,
    }
}

/// Run the WFQ Figure-1 chain with run telemetry enabled and return the
/// engine's counters (the probe behind the `ispn-bench` snapshot harness).
pub fn telemetry_probe(cfg: &PaperConfig) -> RunTelemetry {
    let (mut sim, _flows) = run_chain(cfg, DisciplineKind::Wfq);
    sim.report(&MeasurementPlan::default().with_run_telemetry())
        .telemetry
        .expect("run telemetry was requested")
}

/// The discipline axis of the Table-2 sweep (WFQ, FIFO, FIFO+ in the
/// paper's order).
pub fn scenario_set() -> ScenarioSet<(DisciplineKind,)> {
    ScenarioSet::over("discipline", DisciplineKind::table2_set())
}

/// Run the Table-2 discipline sweep through the given runner, streaming
/// each point's report to `observer` as it completes; the checked,
/// axis-tagged reports feed [`crate::report::render_table2`].
pub fn run_reports(
    cfg: &PaperConfig,
    runner: &SweepRunner,
    observer: &dyn SweepObserver<Table2Point>,
) -> Vec<SweepReport<PointResult<Table2Point>>> {
    exec_reports(cfg, &SweepExec::InProcess(*runner), observer)
}

/// [`run_reports`] generalized over the execution level: in-process
/// threads or distributed worker subprocesses, byte-identical either way.
pub fn exec_reports(
    cfg: &PaperConfig,
    exec: &SweepExec,
    observer: &dyn SweepObserver<Table2Point>,
) -> Vec<SweepReport<PointResult<Table2Point>>> {
    exec.run_streaming(
        &scenario_set(),
        |&(discipline,)| run_point(cfg, discipline),
        observer,
    )
}

/// Serve Table-2 sweep points to a distributed parent over stdin/stdout
/// (the `table2` bin's `--sweep-worker` mode).
pub fn serve_worker(cfg: &PaperConfig) -> std::io::Result<()> {
    ispn_scenario::serve_worker(&scenario_set(), |&(discipline,)| run_point(cfg, discipline))
}

/// Serve Table-2 sweep points over a TCP listener bound to `addr` (the
/// `table2` bin's `--serve` mode).
pub fn serve_listener(cfg: &PaperConfig, addr: &str) -> std::io::Result<()> {
    ispn_scenario::serve_listener(addr, &scenario_set(), |&(discipline,)| {
        run_point(cfg, discipline)
    })
}

/// Run the full Table-2 comparison through the given sweep runner: one
/// scenario point per discipline, fanned across threads, folded back in
/// the paper's discipline order.
pub fn run_with(cfg: &PaperConfig, runner: &SweepRunner) -> Table2 {
    let mut cells = Vec::new();
    let mut utilization = Vec::new();
    for report in run_reports(cfg, runner, &NullObserver) {
        let point = report.expect_ok().result;
        cells.extend(point.cells);
        utilization.push((point.scheduler, point.utilization));
    }
    Table2 { cells, utilization }
}

/// Run the full Table-2 comparison serially.
pub fn run(cfg: &PaperConfig) -> Table2 {
    run_with(cfg, &SweepRunner::serial())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortened_run_reproduces_the_tables_shape() {
        let cfg = PaperConfig::fast();
        let t = run(&cfg);
        assert_eq!(t.cells.len(), 12);
        // Every discipline ran at roughly 83.5 % utilization.
        for (name, util) in &t.utilization {
            assert!((util - 0.835).abs() < 0.06, "{name} utilization {util}");
        }
        // Delays grow with path length for every discipline (means).
        for d in ["WFQ", "FIFO", "FIFO+"] {
            let m1 = t.cell(d, 1).unwrap().mean;
            let m4 = t.cell(d, 4).unwrap().mean;
            assert!(m4 > m1, "{d}: mean at 4 hops {m4} vs 1 hop {m1}");
            for h in 1..=4 {
                let c = t.cell(d, h).unwrap();
                assert!(c.p999 >= c.mean);
            }
        }
        // FIFO+ controls the long-path tail at least as well as FIFO, which
        // in turn beats WFQ (a 40-second run is noisy, so allow 15 % slack).
        let f4 = t.cell("FIFO", 4).unwrap().p999;
        let fp4 = t.cell("FIFO+", 4).unwrap().p999;
        let w4 = t.cell("WFQ", 4).unwrap().p999;
        assert!(fp4 <= f4 * 1.15, "FIFO+ {fp4} vs FIFO {f4}");
        assert!(fp4 <= w4 * 1.15, "FIFO+ {fp4} vs WFQ {w4}");
    }

    #[test]
    fn sample_flows_prefer_earliest_entry() {
        let flows: Vec<(FlowPlacement, FlowId)> = fig1::placement()
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, FlowId(i as u32)))
            .collect();
        for h in 1..=4 {
            let f = sample_flow(&flows, h);
            let (p, _) = flows.iter().find(|(_, id)| *id == f).unwrap();
            assert_eq!(p.hops, h);
        }
    }
}
