//! Rendering experiment results next to the paper's published numbers.
//!
//! We do not expect to match the absolute values (the original simulator and
//! its random streams are not available); the point of printing them side by
//! side is to check the *shape*: who wins, by roughly what factor, and where
//! the qualitative crossovers fall.  EXPERIMENTS.md records one full run.
//!
//! The sweep-shaped experiments (Tables 1–2, `hetmix`, `mesh`, `churn` and
//! the Table-3 seed replication) render through the axis-aware
//! [`SweepTable`] of `ispn-scenario`: the leading columns come straight
//! from each point's axis tags, so the renderers declare only their value
//! columns — and a point that panicked prints its payload in place
//! instead of suppressing the rest of the sweep.

use ispn_scenario::{PointResult, SweepReport, SweepTable};
use ispn_stats::TextTable;

use crate::churn::ChurnOutcome;
use crate::extensions::admission::AdmissionOutcome;
use crate::extensions::hops::HopsPoint;
use crate::extensions::playback::PlaybackComparison;
use crate::extensions::utilization::UtilizationPoint;
use crate::fig1::FlowKind;
use crate::hetmix::HetMixPoint;
use crate::mesh::MeshOutcome;
use crate::table1::Table1Row;
use crate::table2::Table2Point;
use crate::table3::Table3;

/// The paper's Table 1 (scheduler, mean, 99.9th percentile).
pub const PAPER_TABLE1: [(&str, f64, f64); 2] = [("WFQ", 3.16, 53.86), ("FIFO", 3.17, 34.72)];

/// The paper's Table 2: (scheduler, path length, mean, 99.9th percentile).
pub const PAPER_TABLE2: [(&str, usize, f64, f64); 12] = [
    ("WFQ", 1, 2.65, 45.31),
    ("WFQ", 2, 4.74, 60.31),
    ("WFQ", 3, 7.51, 65.86),
    ("WFQ", 4, 9.64, 80.59),
    ("FIFO", 1, 2.54, 30.49),
    ("FIFO", 2, 4.73, 41.22),
    ("FIFO", 3, 7.97, 52.36),
    ("FIFO", 4, 10.33, 58.13),
    ("FIFO+", 1, 2.71, 33.59),
    ("FIFO+", 2, 4.69, 38.15),
    ("FIFO+", 3, 7.76, 43.30),
    ("FIFO+", 4, 10.11, 45.25),
];

/// One published Table-3 row: (class, path length, mean, 99.9th, max,
/// Parekh–Gallager bound where one applies).
pub type PaperTable3Row = (&'static str, usize, f64, f64, f64, Option<f64>);

/// The paper's Table 3.
pub const PAPER_TABLE3: [PaperTable3Row; 8] = [
    ("Guaranteed-Peak", 4, 8.07, 14.41, 15.99, Some(23.53)),
    ("Guaranteed-Peak", 2, 2.91, 8.12, 8.79, Some(11.76)),
    ("Guaranteed-Average", 3, 56.44, 270.13, 296.23, Some(611.76)),
    ("Guaranteed-Average", 1, 36.27, 206.75, 247.24, Some(588.24)),
    ("Predicted-High", 4, 3.06, 8.20, 11.13, None),
    ("Predicted-High", 2, 1.60, 5.83, 7.48, None),
    ("Predicted-Low", 3, 19.22, 104.83, 148.70, None),
    ("Predicted-Low", 1, 7.43, 79.57, 108.56, None),
];

fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// The paper's published value for a Table-2 cell.
pub fn paper_table2_value(scheduler: &str, path_length: usize) -> Option<(f64, f64)> {
    PAPER_TABLE2
        .iter()
        .find(|(s, p, _, _)| *s == scheduler && *p == path_length)
        .map(|(_, _, mean, p999)| (*mean, *p999))
}

/// The paper's published row for a Table-3 class/path pair.
pub fn paper_table3_value(kind: FlowKind, path_length: usize) -> Option<(f64, f64, f64)> {
    PAPER_TABLE3
        .iter()
        .find(|(s, p, ..)| *s == kind.label() && *p == path_length)
        .map(|(_, _, mean, p999, max, _)| (*mean, *p999, *max))
}

/// Render Table 1 with the paper's numbers alongside — axis-aware: the
/// discipline column comes from the sweep's axis tags.
pub fn render_table1(reports: &[SweepReport<PointResult<Table1Row>>]) -> String {
    SweepTable::new(
        "Table 1 — single link, 10 on/off flows, 83.5% utilization\n\
         (queueing delay in packet transmission times; 'paper' columns are the published values)",
    )
    .columns([
        "mean",
        "99.9 %ile",
        "paper mean",
        "paper 99.9 %ile",
        "utilization",
    ])
    .render(reports, |row| {
        let paper = PAPER_TABLE1.iter().find(|(s, _, _)| *s == row.scheduler);
        vec![vec![
            f2(row.mean),
            f2(row.p999),
            paper.map(|p| f2(p.1)).unwrap_or_default(),
            paper.map(|p| f2(p.2)).unwrap_or_default(),
            format!("{:.1}%", row.utilization * 100.0),
        ]]
    })
}

/// Render Table 2 with the paper's numbers alongside — axis-aware: one
/// row per path length under each discipline point, keyed by the
/// discipline tag.
pub fn render_table2(reports: &[SweepReport<PointResult<Table2Point>>]) -> String {
    let table = SweepTable::new(
        "Table 2 — Figure-1 chain, 22 on/off flows, 83.5% per-link utilization\n\
         (queueing delay in packet transmission times; 'paper' columns are the published values)",
    )
    .columns(["path", "mean", "99.9 %ile", "paper mean", "paper 99.9 %ile"])
    .render(reports, |point| {
        point
            .cells
            .iter()
            .map(|cell| {
                let paper = paper_table2_value(cell.scheduler, cell.path_length);
                vec![
                    cell.path_length.to_string(),
                    f2(cell.mean),
                    f2(cell.p999),
                    paper.map(|p| f2(p.0)).unwrap_or_default(),
                    paper.map(|p| f2(p.1)).unwrap_or_default(),
                ]
            })
            .collect()
    });
    let util: String = reports
        .iter()
        .filter_map(|r| r.result.as_ref().ok())
        .map(|p| format!("{} {:.1}%", p.scheduler, p.utilization * 100.0))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{table}\nmean link utilization: {util}\n")
}

/// Render Table 3 with the paper's numbers alongside.
pub fn render_table3(t: &Table3) -> String {
    let mut table = TextTable::new(
        "Table 3 — unified scheduler on the Figure-1 chain (guaranteed + predicted + 2 TCP)\n\
         (queueing delay in packet transmission times; 'paper' columns are the published values)",
    )
    .header([
        "type",
        "path",
        "mean",
        "99.9 %ile",
        "max",
        "P-G bound",
        "paper mean",
        "paper max",
    ]);
    for row in &t.rows {
        let paper = paper_table3_value(row.kind, row.path_length);
        table.row([
            row.kind.label().to_string(),
            row.path_length.to_string(),
            f2(row.mean),
            f2(row.p999),
            f2(row.max),
            row.pg_bound.map(f2).unwrap_or_default(),
            paper.map(|p| f2(p.0)).unwrap_or_default(),
            paper.map(|p| f2(p.2)).unwrap_or_default(),
        ]);
    }
    format!(
        "{}\ndatagram drop rate: {:.3}%  (paper: ~0.1%)\n\
         mean utilization: {:.1}%  (paper: >99%)   real-time share: {:.1}%  (paper: 83.5%)\n\
         TCP goodput: {} packets/s\n",
        table.render(),
        t.datagram_drop_rate * 100.0,
        t.mean_utilization * 100.0,
        t.realtime_utilization * 100.0,
        t.tcp_goodput_pps
            .iter()
            .map(|g| format!("{g:.0}"))
            .collect::<Vec<_>>()
            .join(" / "),
    )
}

/// Render a Table-3 seed-axis replication: one full table per seed, in
/// seed order; a panicked replication reports its failure in place
/// without suppressing the other seeds.
pub fn render_table3_seeds(reports: &[SweepReport<PointResult<(u64, Table3)>>]) -> String {
    let mut out = String::new();
    for report in reports {
        match &report.result {
            Ok((seed, t)) => {
                out.push_str(&format!("seed {seed:#x}:\n{}\n", render_table3(t)));
            }
            Err(e) => {
                out.push_str(&format!(
                    "seed {}: panicked: {}\n",
                    report.tag("seed").unwrap_or("?"),
                    e.payload
                ));
            }
        }
    }
    out
}

/// Render the hop-count sweep.
pub fn render_hops(points: &[HopsPoint]) -> String {
    let mut table = TextTable::new(
        "Extension — 99.9th-percentile queueing delay vs path length (packet times)",
    )
    .header(["scheduling", "hops", "mean", "99.9 %ile"]);
    for p in points {
        table.row([
            p.scheduler.to_string(),
            p.hops.to_string(),
            f2(p.mean),
            f2(p.p999),
        ]);
    }
    table.render()
}

/// Render the playback comparison.
pub fn render_playback(c: &PlaybackComparison) -> String {
    let mut table = TextTable::new(
        "Extension — adaptive vs rigid play-back point over predicted service (packet times)",
    )
    .header(["client", "effective latency", "loss rate"]);
    table.row([
        "rigid (a-priori bound)".to_string(),
        f2(c.rigid_latency),
        format!("{:.3}%", c.rigid_loss * 100.0),
    ]);
    table.row([
        "adaptive".to_string(),
        f2(c.adaptive_latency),
        format!("{:.3}%", c.adaptive_loss * 100.0),
    ]);
    format!(
        "{}\nlatency saving from adaptation: {:.0}%  ({} samples)\n",
        table.render(),
        c.latency_saving() * 100.0,
        c.samples
    )
}

/// Render the admission-control comparison.
pub fn render_admission(controlled: &AdmissionOutcome, uncontrolled: &AdmissionOutcome) -> String {
    let mut table = TextTable::new(
        "Extension — measurement-based admission control (Section 9 criterion) vs accept-all",
    )
    .header([
        "policy",
        "accepted",
        "rejected",
        "utilization",
        "worst high-class delay",
        "worst low-class delay",
        "violations",
    ]);
    for o in [controlled, uncontrolled] {
        table.row([
            if o.controlled {
                "Section 9 criterion"
            } else {
                "accept everything"
            }
            .to_string(),
            o.accepted.to_string(),
            o.rejected.to_string(),
            format!("{:.1}%", o.utilization * 100.0),
            f2(o.worst_high_delay),
            f2(o.worst_low_delay),
            o.violations.to_string(),
        ]);
    }
    table.render()
}

/// Render the churn sweep: blocking probability and bound compliance as
/// offered load rises — axis-aware, keyed by the arrival-rate tag.
pub fn render_churn(reports: &[SweepReport<PointResult<ChurnOutcome>>]) -> String {
    SweepTable::new(
        "Churn — dynamic signaling on the Figure-1 chain\n\
         (Poisson arrivals, exponential holding times, Section-9 admission per link)",
    )
    .columns([
        "offered (erl)",
        "requests",
        "accepted",
        "rejected",
        "blocking",
        "mean util",
        "worst util",
        "bound violations",
        "worst bound use",
    ])
    .render(reports, |o| {
        vec![vec![
            format!("{:.1}", o.offered_erlangs),
            o.offered.to_string(),
            o.accepted.to_string(),
            o.rejected.to_string(),
            format!("{:.1}%", o.blocking_probability() * 100.0),
            format!("{:.1}%", o.mean_utilization * 100.0),
            format!("{:.1}%", o.worst_utilization * 100.0),
            o.violations.to_string(),
            format!("{:.0}%", o.worst_bound_fraction * 100.0),
        ]]
    })
}

/// Render the mesh cross-traffic study — axis-aware: the cross-traffic
/// column comes from the sweep's `cross` tag, one row per traffic class.
pub fn render_mesh(reports: &[SweepReport<PointResult<MeshOutcome>>]) -> String {
    let mut out = SweepTable::new(
        "Mesh — cross-traffic on the 3×3 grid's interior links, unified scheduler\n\
         (delays in packet times; 'cross' = Predicted-Low flows per row)",
    )
    .columns([
        "class",
        "flows",
        "mean",
        "worst 99.9 %ile",
        "worst max",
        "jitter",
        "loss",
    ])
    .render(reports, |o| {
        o.classes
            .iter()
            .map(|c| {
                vec![
                    c.class.to_string(),
                    c.flows.to_string(),
                    f2(c.mean),
                    f2(c.worst_p999),
                    f2(c.worst_max),
                    f2(c.jitter),
                    format!("{:.3}%", c.loss_rate * 100.0),
                ]
            })
            .collect()
    });
    for o in reports.iter().filter_map(|r| r.result.as_ref().ok()) {
        out.push_str(&format!(
            "cross {}: interior links {:.1}% busy ({} drops), edge links {:.1}%\n",
            o.cross_flows_per_row,
            o.interior_utilization * 100.0,
            o.interior_drops,
            o.edge_utilization * 100.0,
        ));
    }
    out
}

/// Render the heterogeneous-mix sweep — axis-aware: the discipline and
/// level columns come from the sweep's axis tags, one row per class.
pub fn render_hetmix(reports: &[SweepReport<PointResult<HetMixPoint>>]) -> String {
    SweepTable::new(
        "Heterogeneous mix — CBR + on/off + Poisson per class on one link\n\
         (delays in packet times; 'level' = flows per class)",
    )
    .columns([
        "utilization",
        "class",
        "mean",
        "worst 99.9 %ile",
        "jitter",
        "loss",
    ])
    .render(reports, |p| {
        p.classes
            .iter()
            .map(|c| {
                vec![
                    format!("{:.1}%", p.utilization * 100.0),
                    c.class.to_string(),
                    f2(c.mean),
                    f2(c.worst_p999),
                    f2(c.jitter),
                    format!("{:.3}%", c.loss_rate * 100.0),
                ]
            })
            .collect()
    })
}

/// Render the utilization sweep.
pub fn render_utilization(points: &[UtilizationPoint]) -> String {
    let mut table =
        TextTable::new("Extension — delay vs offered load on a single shared link (packet times)")
            .header(["scheduling", "flows", "utilization", "mean", "99.9 %ile"]);
    for p in points {
        table.row([
            p.scheduler.to_string(),
            p.flows.to_string(),
            format!("{:.1}%", p.utilization * 100.0),
            f2(p.mean),
            f2(p.p999),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lookups() {
        assert_eq!(paper_table2_value("FIFO+", 4), Some((10.11, 45.25)));
        assert_eq!(paper_table2_value("FIFO", 9), None);
        assert_eq!(
            paper_table3_value(FlowKind::GuaranteedPeak, 4),
            Some((8.07, 14.41, 15.99))
        );
        assert_eq!(paper_table3_value(FlowKind::PredictedLow, 4), None);
    }

    #[test]
    fn paper_constants_are_consistent_with_the_text() {
        // Table 1: FIFO's tail is far below WFQ's while means are equal-ish.
        assert!(PAPER_TABLE1[1].2 < PAPER_TABLE1[0].2);
        assert!((PAPER_TABLE1[0].1 - PAPER_TABLE1[1].1).abs() < 0.1);
        // Table 2: FIFO+ grows slowest from 1 to 4 hops.
        let growth = |s: &str| {
            let one = paper_table2_value(s, 1).unwrap().1;
            let four = paper_table2_value(s, 4).unwrap().1;
            four - one
        };
        assert!(growth("FIFO+") < growth("FIFO"));
        assert!(growth("FIFO") < growth("WFQ"));
        // Table 3: every guaranteed max is below its P-G bound.
        for (_, _, _, _, max, bound) in PAPER_TABLE3 {
            if let Some(b) = bound {
                assert!(max < b);
            }
        }
    }

    #[test]
    fn rendering_smoke_test() {
        let row = Table1Row {
            scheduler: "FIFO",
            mean: 3.0,
            p999: 30.0,
            all_flows_mean: 3.0,
            all_flows_worst_p999: 31.0,
            utilization: 0.83,
        };
        let reports = vec![SweepReport {
            index: 0,
            tags: vec![("discipline".to_string(), "FIFO".to_string())],
            result: Ok(row),
        }];
        let s = render_table1(&reports);
        assert!(s.contains("discipline"), "{s}"); // axis column from the tag
        assert!(s.contains("FIFO"));
        assert!(s.contains("34.72")); // paper value included
    }

    #[test]
    fn panicked_points_render_in_place() {
        let reports = vec![SweepReport::<PointResult<Table1Row>> {
            index: 0,
            tags: vec![("discipline".to_string(), "WFQ".to_string())],
            result: Err(ispn_scenario::SweepError {
                index: 0,
                tags: vec![("discipline".to_string(), "WFQ".to_string())],
                payload: "scheduler imploded".to_string(),
            }),
        }];
        let s = render_table1(&reports);
        assert!(s.contains("panicked: scheduler imploded"), "{s}");
        assert!(s.contains("WFQ"), "{s}");
    }
}
