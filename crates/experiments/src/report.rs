//! Rendering experiment results next to the paper's published numbers.
//!
//! We do not expect to match the absolute values (the original simulator and
//! its random streams are not available); the point of printing them side by
//! side is to check the *shape*: who wins, by roughly what factor, and where
//! the qualitative crossovers fall.  EXPERIMENTS.md records one full run.

use ispn_stats::TextTable;

use crate::churn::ChurnOutcome;
use crate::extensions::admission::AdmissionOutcome;
use crate::extensions::hops::HopsPoint;
use crate::extensions::playback::PlaybackComparison;
use crate::extensions::utilization::UtilizationPoint;
use crate::fig1::FlowKind;
use crate::hetmix::HetMixPoint;
use crate::mesh::MeshOutcome;
use crate::table1::Table1;
use crate::table2::Table2;
use crate::table3::Table3;

/// The paper's Table 1 (scheduler, mean, 99.9th percentile).
pub const PAPER_TABLE1: [(&str, f64, f64); 2] = [("WFQ", 3.16, 53.86), ("FIFO", 3.17, 34.72)];

/// The paper's Table 2: (scheduler, path length, mean, 99.9th percentile).
pub const PAPER_TABLE2: [(&str, usize, f64, f64); 12] = [
    ("WFQ", 1, 2.65, 45.31),
    ("WFQ", 2, 4.74, 60.31),
    ("WFQ", 3, 7.51, 65.86),
    ("WFQ", 4, 9.64, 80.59),
    ("FIFO", 1, 2.54, 30.49),
    ("FIFO", 2, 4.73, 41.22),
    ("FIFO", 3, 7.97, 52.36),
    ("FIFO", 4, 10.33, 58.13),
    ("FIFO+", 1, 2.71, 33.59),
    ("FIFO+", 2, 4.69, 38.15),
    ("FIFO+", 3, 7.76, 43.30),
    ("FIFO+", 4, 10.11, 45.25),
];

/// One published Table-3 row: (class, path length, mean, 99.9th, max,
/// Parekh–Gallager bound where one applies).
pub type PaperTable3Row = (&'static str, usize, f64, f64, f64, Option<f64>);

/// The paper's Table 3.
pub const PAPER_TABLE3: [PaperTable3Row; 8] = [
    ("Guaranteed-Peak", 4, 8.07, 14.41, 15.99, Some(23.53)),
    ("Guaranteed-Peak", 2, 2.91, 8.12, 8.79, Some(11.76)),
    ("Guaranteed-Average", 3, 56.44, 270.13, 296.23, Some(611.76)),
    ("Guaranteed-Average", 1, 36.27, 206.75, 247.24, Some(588.24)),
    ("Predicted-High", 4, 3.06, 8.20, 11.13, None),
    ("Predicted-High", 2, 1.60, 5.83, 7.48, None),
    ("Predicted-Low", 3, 19.22, 104.83, 148.70, None),
    ("Predicted-Low", 1, 7.43, 79.57, 108.56, None),
];

fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// The paper's published value for a Table-2 cell.
pub fn paper_table2_value(scheduler: &str, path_length: usize) -> Option<(f64, f64)> {
    PAPER_TABLE2
        .iter()
        .find(|(s, p, _, _)| *s == scheduler && *p == path_length)
        .map(|(_, _, mean, p999)| (*mean, *p999))
}

/// The paper's published row for a Table-3 class/path pair.
pub fn paper_table3_value(kind: FlowKind, path_length: usize) -> Option<(f64, f64, f64)> {
    PAPER_TABLE3
        .iter()
        .find(|(s, p, ..)| *s == kind.label() && *p == path_length)
        .map(|(_, _, mean, p999, max, _)| (*mean, *p999, *max))
}

/// Render Table 1 with the paper's numbers alongside.
pub fn render_table1(t: &Table1) -> String {
    let mut table = TextTable::new(
        "Table 1 — single link, 10 on/off flows, 83.5% utilization\n\
         (queueing delay in packet transmission times; 'paper' columns are the published values)",
    )
    .header([
        "scheduling",
        "mean",
        "99.9 %ile",
        "paper mean",
        "paper 99.9 %ile",
        "utilization",
    ]);
    for row in &t.rows {
        let paper = PAPER_TABLE1.iter().find(|(s, _, _)| *s == row.scheduler);
        table.row([
            row.scheduler.to_string(),
            f2(row.mean),
            f2(row.p999),
            paper.map(|p| f2(p.1)).unwrap_or_default(),
            paper.map(|p| f2(p.2)).unwrap_or_default(),
            format!("{:.1}%", row.utilization * 100.0),
        ]);
    }
    table.render()
}

/// Render Table 2 with the paper's numbers alongside.
pub fn render_table2(t: &Table2) -> String {
    let mut table = TextTable::new(
        "Table 2 — Figure-1 chain, 22 on/off flows, 83.5% per-link utilization\n\
         (queueing delay in packet transmission times; 'paper' columns are the published values)",
    )
    .header([
        "scheduling",
        "path",
        "mean",
        "99.9 %ile",
        "paper mean",
        "paper 99.9 %ile",
    ]);
    for cell in &t.cells {
        let paper = paper_table2_value(cell.scheduler, cell.path_length);
        table.row([
            cell.scheduler.to_string(),
            cell.path_length.to_string(),
            f2(cell.mean),
            f2(cell.p999),
            paper.map(|p| f2(p.0)).unwrap_or_default(),
            paper.map(|p| f2(p.1)).unwrap_or_default(),
        ]);
    }
    let util: String = t
        .utilization
        .iter()
        .map(|(s, u)| format!("{s} {:.1}%", u * 100.0))
        .collect::<Vec<_>>()
        .join(", ");
    format!("{}\nmean link utilization: {util}\n", table.render())
}

/// Render Table 3 with the paper's numbers alongside.
pub fn render_table3(t: &Table3) -> String {
    let mut table = TextTable::new(
        "Table 3 — unified scheduler on the Figure-1 chain (guaranteed + predicted + 2 TCP)\n\
         (queueing delay in packet transmission times; 'paper' columns are the published values)",
    )
    .header([
        "type",
        "path",
        "mean",
        "99.9 %ile",
        "max",
        "P-G bound",
        "paper mean",
        "paper max",
    ]);
    for row in &t.rows {
        let paper = paper_table3_value(row.kind, row.path_length);
        table.row([
            row.kind.label().to_string(),
            row.path_length.to_string(),
            f2(row.mean),
            f2(row.p999),
            f2(row.max),
            row.pg_bound.map(f2).unwrap_or_default(),
            paper.map(|p| f2(p.0)).unwrap_or_default(),
            paper.map(|p| f2(p.2)).unwrap_or_default(),
        ]);
    }
    format!(
        "{}\ndatagram drop rate: {:.3}%  (paper: ~0.1%)\n\
         mean utilization: {:.1}%  (paper: >99%)   real-time share: {:.1}%  (paper: 83.5%)\n\
         TCP goodput: {} packets/s\n",
        table.render(),
        t.datagram_drop_rate * 100.0,
        t.mean_utilization * 100.0,
        t.realtime_utilization * 100.0,
        t.tcp_goodput_pps
            .iter()
            .map(|g| format!("{g:.0}"))
            .collect::<Vec<_>>()
            .join(" / "),
    )
}

/// Render the hop-count sweep.
pub fn render_hops(points: &[HopsPoint]) -> String {
    let mut table = TextTable::new(
        "Extension — 99.9th-percentile queueing delay vs path length (packet times)",
    )
    .header(["scheduling", "hops", "mean", "99.9 %ile"]);
    for p in points {
        table.row([
            p.scheduler.to_string(),
            p.hops.to_string(),
            f2(p.mean),
            f2(p.p999),
        ]);
    }
    table.render()
}

/// Render the playback comparison.
pub fn render_playback(c: &PlaybackComparison) -> String {
    let mut table = TextTable::new(
        "Extension — adaptive vs rigid play-back point over predicted service (packet times)",
    )
    .header(["client", "effective latency", "loss rate"]);
    table.row([
        "rigid (a-priori bound)".to_string(),
        f2(c.rigid_latency),
        format!("{:.3}%", c.rigid_loss * 100.0),
    ]);
    table.row([
        "adaptive".to_string(),
        f2(c.adaptive_latency),
        format!("{:.3}%", c.adaptive_loss * 100.0),
    ]);
    format!(
        "{}\nlatency saving from adaptation: {:.0}%  ({} samples)\n",
        table.render(),
        c.latency_saving() * 100.0,
        c.samples
    )
}

/// Render the admission-control comparison.
pub fn render_admission(controlled: &AdmissionOutcome, uncontrolled: &AdmissionOutcome) -> String {
    let mut table = TextTable::new(
        "Extension — measurement-based admission control (Section 9 criterion) vs accept-all",
    )
    .header([
        "policy",
        "accepted",
        "rejected",
        "utilization",
        "worst high-class delay",
        "worst low-class delay",
        "violations",
    ]);
    for o in [controlled, uncontrolled] {
        table.row([
            if o.controlled {
                "Section 9 criterion"
            } else {
                "accept everything"
            }
            .to_string(),
            o.accepted.to_string(),
            o.rejected.to_string(),
            format!("{:.1}%", o.utilization * 100.0),
            f2(o.worst_high_delay),
            f2(o.worst_low_delay),
            o.violations.to_string(),
        ]);
    }
    table.render()
}

/// Render the churn sweep: blocking probability and bound compliance as
/// offered load rises.
pub fn render_churn(points: &[ChurnOutcome]) -> String {
    let mut table = TextTable::new(
        "Churn — dynamic signaling on the Figure-1 chain\n\
         (Poisson arrivals, exponential holding times, Section-9 admission per link)",
    )
    .header([
        "offered (erl)",
        "requests",
        "accepted",
        "rejected",
        "blocking",
        "mean util",
        "worst util",
        "bound violations",
        "worst bound use",
    ]);
    for o in points {
        table.row([
            format!("{:.1}", o.offered_erlangs),
            o.offered.to_string(),
            o.accepted.to_string(),
            o.rejected.to_string(),
            format!("{:.1}%", o.blocking_probability() * 100.0),
            format!("{:.1}%", o.mean_utilization * 100.0),
            format!("{:.1}%", o.worst_utilization * 100.0),
            o.violations.to_string(),
            format!("{:.0}%", o.worst_bound_fraction * 100.0),
        ]);
    }
    table.render()
}

/// Render the mesh cross-traffic study.
pub fn render_mesh(points: &[MeshOutcome]) -> String {
    let mut table = TextTable::new(
        "Mesh — cross-traffic on the 3×3 grid's interior links, unified scheduler\n\
         (delays in packet times; 'cross' = Predicted-Low flows per row)",
    )
    .header([
        "cross",
        "class",
        "flows",
        "mean",
        "worst 99.9 %ile",
        "worst max",
        "jitter",
        "loss",
    ]);
    for o in points {
        for c in &o.classes {
            table.row([
                o.cross_flows_per_row.to_string(),
                c.class.to_string(),
                c.flows.to_string(),
                f2(c.mean),
                f2(c.worst_p999),
                f2(c.worst_max),
                f2(c.jitter),
                format!("{:.3}%", c.loss_rate * 100.0),
            ]);
        }
    }
    let mut out = table.render();
    for o in points {
        out.push_str(&format!(
            "cross {}: interior links {:.1}% busy ({} drops), edge links {:.1}%\n",
            o.cross_flows_per_row,
            o.interior_utilization * 100.0,
            o.interior_drops,
            o.edge_utilization * 100.0,
        ));
    }
    out
}

/// Render the heterogeneous-mix sweep.
pub fn render_hetmix(points: &[HetMixPoint]) -> String {
    let mut table = TextTable::new(
        "Heterogeneous mix — CBR + on/off + Poisson per class on one link\n\
         (delays in packet times; 'level' = flows per class)",
    )
    .header([
        "scheduling",
        "level",
        "utilization",
        "class",
        "mean",
        "worst 99.9 %ile",
        "jitter",
        "loss",
    ]);
    for p in points {
        for c in &p.classes {
            table.row([
                p.scheduler.to_string(),
                p.level.to_string(),
                format!("{:.1}%", p.utilization * 100.0),
                c.class.to_string(),
                f2(c.mean),
                f2(c.worst_p999),
                f2(c.jitter),
                format!("{:.3}%", c.loss_rate * 100.0),
            ]);
        }
    }
    table.render()
}

/// Render the utilization sweep.
pub fn render_utilization(points: &[UtilizationPoint]) -> String {
    let mut table =
        TextTable::new("Extension — delay vs offered load on a single shared link (packet times)")
            .header(["scheduling", "flows", "utilization", "mean", "99.9 %ile"]);
    for p in points {
        table.row([
            p.scheduler.to_string(),
            p.flows.to_string(),
            format!("{:.1}%", p.utilization * 100.0),
            f2(p.mean),
            f2(p.p999),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lookups() {
        assert_eq!(paper_table2_value("FIFO+", 4), Some((10.11, 45.25)));
        assert_eq!(paper_table2_value("FIFO", 9), None);
        assert_eq!(
            paper_table3_value(FlowKind::GuaranteedPeak, 4),
            Some((8.07, 14.41, 15.99))
        );
        assert_eq!(paper_table3_value(FlowKind::PredictedLow, 4), None);
    }

    #[test]
    fn paper_constants_are_consistent_with_the_text() {
        // Table 1: FIFO's tail is far below WFQ's while means are equal-ish.
        assert!(PAPER_TABLE1[1].2 < PAPER_TABLE1[0].2);
        assert!((PAPER_TABLE1[0].1 - PAPER_TABLE1[1].1).abs() < 0.1);
        // Table 2: FIFO+ grows slowest from 1 to 4 hops.
        let growth = |s: &str| {
            let one = paper_table2_value(s, 1).unwrap().1;
            let four = paper_table2_value(s, 4).unwrap().1;
            four - one
        };
        assert!(growth("FIFO+") < growth("FIFO"));
        assert!(growth("FIFO") < growth("WFQ"));
        // Table 3: every guaranteed max is below its P-G bound.
        for (_, _, _, _, max, bound) in PAPER_TABLE3 {
            if let Some(b) = bound {
                assert!(max < b);
            }
        }
    }

    #[test]
    fn rendering_smoke_test() {
        let t1 = Table1 {
            rows: vec![crate::table1::Table1Row {
                scheduler: "FIFO",
                mean: 3.0,
                p999: 30.0,
                all_flows_mean: 3.0,
                all_flows_worst_p999: 31.0,
                utilization: 0.83,
            }],
        };
        let s = render_table1(&t1);
        assert!(s.contains("FIFO"));
        assert!(s.contains("34.72")); // paper value included
    }
}
