//! Shared command-line plumbing for the experiment bins.
//!
//! Every sweep-shaped bin understands the same execution flags:
//!
//! * *(none)* — fan sweep points across in-process threads
//!   ([`SweepRunner::max_parallel`]);
//! * `--workers N` — fan sweep points across `N` supervised worker
//!   subprocesses ([`DistRunner`]), each the same binary re-invoked with
//!   `--sweep-worker` plus the run's configuration flags.  Stdout stays
//!   byte-identical to the in-process run;
//! * `--hosts LIST` — fan sweep points across already-listening worker
//!   hosts over TCP ([`DistRunner::over_hosts`]); `LIST` is
//!   comma-separated `host:port[=limit]` entries ([`HostSpec`]).
//!   Mutually exclusive with `--workers`.  `--batch N` (either mode)
//!   lets the parent pipeline up to `N` point requests per worker
//!   dispatch;
//! * `--sweep-worker` — serve sweep points over stdin/stdout for a
//!   distributed parent (checked by the bin **before anything prints to
//!   stdout**, which belongs to the frame stream in this mode);
//! * `--serve ADDR` — bind a TCP listener on `ADDR` and serve sweep
//!   points over accepted connections forever
//!   ([`serve_listener`](ispn_scenario::serve_listener)), for a parent
//!   run elsewhere with `--hosts`.  Like `--sweep-worker`, checked
//!   before anything else prints to stdout (the listener owns stdout for
//!   its discovery banner).
//!
//! Sweep-shaped bins additionally understand `--telemetry[=FILE]`: collect
//! the sweep's per-point wall-time stream (worker-measured in distributed
//! runs) and render the [`SweepTelemetry`] summary to stderr, or write its
//! JSON to `FILE`.  Stdout is untouched either way, so telemetry never
//! breaks table byte-identity; the flag is also **not** forwarded to
//! workers (it selects parent-side aggregation, not sweep shape).
//!
//! This module only parses the flags and assembles the
//! [`SweepExec`]; the per-experiment worker loops live next to their
//! sweeps in the experiment modules.

use std::path::PathBuf;

use ispn_scenario::{
    DistRunner, HostSpec, RunTelemetry, SweepExec, SweepRunner, SweepTelemetry, WorkerCommand,
    WORKER_FLAG,
};

/// Whether this invocation is a `--sweep-worker` child.
pub fn is_sweep_worker(args: &[String]) -> bool {
    args.iter().any(|a| a == WORKER_FLAG)
}

/// The `--serve ADDR` flag, if present: run this bin as a TCP sweep
/// listener bound to `ADDR` instead of printing a table.
///
/// Exits with status 2 on a missing address — the same convention the
/// bins' other flags use.
pub fn parse_serve(args: &[String]) -> Option<String> {
    let i = args.iter().position(|a| a == "--serve")?;
    match args.get(i + 1) {
        Some(addr) if !addr.is_empty() && !addr.starts_with("--") => Some(addr.clone()),
        _ => {
            eprintln!("--serve needs a bind address, e.g. `--serve 127.0.0.1:7600`");
            std::process::exit(2);
        }
    }
}

/// The `--workers N` flag, if present.
///
/// Exits with status 2 on a malformed value — the same convention the
/// bins' other flags use.
pub fn parse_workers(args: &[String]) -> Option<usize> {
    let i = args.iter().position(|a| a == "--workers")?;
    match args.get(i + 1).map(|n| n.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => Some(n),
        _ => {
            eprintln!("--workers needs a positive integer, e.g. `--workers 4`");
            std::process::exit(2);
        }
    }
}

/// The `--hosts LIST` flag, if present: comma-separated
/// `host:port[=limit]` entries naming already-listening TCP workers.
///
/// Exits with status 2 on a malformed list — the same convention the
/// bins' other flags use.
pub fn parse_hosts(args: &[String]) -> Option<Vec<HostSpec>> {
    let i = args.iter().position(|a| a == "--hosts")?;
    let Some(list) = args.get(i + 1) else {
        eprintln!("--hosts needs a host list, e.g. `--hosts hostA:7600=4,hostB:7600=8`");
        std::process::exit(2);
    };
    match HostSpec::parse_list(list) {
        Ok(hosts) => Some(hosts),
        Err(e) => {
            eprintln!("bad --hosts list: {e}");
            std::process::exit(2);
        }
    }
}

/// The `--batch N` flag, if present: pipeline up to `N` point requests
/// per worker dispatch (distributed modes only; harmless otherwise).
///
/// Exits with status 2 on a malformed value — the same convention the
/// bins' other flags use.
pub fn parse_batch(args: &[String]) -> Option<usize> {
    let i = args.iter().position(|a| a == "--batch")?;
    match args.get(i + 1).map(|n| n.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => Some(n),
        _ => {
            eprintln!("--batch needs a positive integer, e.g. `--batch 4`");
            std::process::exit(2);
        }
    }
}

/// Choose the sweep execution level from the command line: `--workers N`
/// selects a distributed run whose workers re-invoke the current
/// executable with `--sweep-worker` plus `worker_args` (the configuration
/// flags the parent run received, so both sides build the same sweep);
/// `--hosts LIST` connects to already-listening `--serve` workers over
/// TCP instead; otherwise points fan across in-process threads.
/// `--batch N` applies to either distributed mode.
///
/// `--workers` and `--hosts` are mutually exclusive (exit 2): one names
/// subprocesses to spawn, the other machines that already run.
pub fn sweep_exec(args: &[String], worker_args: &[String]) -> SweepExec {
    let workers = parse_workers(args);
    let hosts = parse_hosts(args);
    if workers.is_some() && hosts.is_some() {
        eprintln!("--workers and --hosts are mutually exclusive: pick subprocesses or sockets");
        std::process::exit(2);
    }
    let batch = parse_batch(args).unwrap_or(1);
    if let Some(hosts) = hosts {
        return SweepExec::Distributed(DistRunner::over_hosts(&hosts).batch(batch));
    }
    match workers {
        Some(n) => {
            let command = WorkerCommand::current_exe()
                .arg(WORKER_FLAG)
                .args(worker_args.iter().cloned());
            SweepExec::Distributed(DistRunner::new(n, command).batch(batch))
        }
        None => SweepExec::InProcess(SweepRunner::max_parallel()),
    }
}

/// Where `--telemetry[=FILE]` sends the sweep telemetry summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetrySink {
    /// `--telemetry`: render the summary to stderr after the sweep.
    Stderr,
    /// `--telemetry=FILE`: write the summary JSON to the file.
    File(PathBuf),
}

/// The `--telemetry[=FILE]` flag, if present.
///
/// Exits with status 2 on an empty file path — the same convention the
/// bins' other flags use.
pub fn parse_telemetry(args: &[String]) -> Option<TelemetrySink> {
    for arg in args {
        if arg == "--telemetry" {
            return Some(TelemetrySink::Stderr);
        }
        if let Some(path) = arg.strip_prefix("--telemetry=") {
            if path.is_empty() {
                eprintln!("--telemetry= needs a file path, e.g. `--telemetry=sweep.json`");
                std::process::exit(2);
            }
            return Some(TelemetrySink::File(PathBuf::from(path)));
        }
    }
    None
}

/// Deliver a finished sweep's telemetry summary to its sink.  Writes only
/// to stderr or the named file — never stdout, which belongs to the
/// byte-identical table.
pub fn emit_telemetry(sink: &TelemetrySink, summary: &SweepTelemetry) {
    match sink {
        TelemetrySink::Stderr => eprintln!("{}", summary.render()),
        TelemetrySink::File(path) => {
            if let Err(e) = std::fs::write(path, format!("{}\n", summary.to_json())) {
                eprintln!("could not write telemetry to {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("sweep telemetry written to {}", path.display());
        }
    }
}

/// Like [`emit_telemetry`], with a representative run's [`RunTelemetry`]
/// block (engine counters and memory footprint) appended: the JSON gains a
/// `"run"` key next to the sweep summary's fields, the stderr rendering
/// one extra line.  Used by bins whose footprint is the interesting part
/// (churn: bounded flow-table growth under slot reclamation).
pub fn emit_telemetry_with_run(sink: &TelemetrySink, summary: &SweepTelemetry, run: &RunTelemetry) {
    let sweep = summary.to_json();
    // Splice the run block into the summary object: {...,"run":{...}}.
    let json = format!("{},\"run\":{}}}", &sweep[..sweep.len() - 1], run.to_json());
    let line = format!(
        "run telemetry: flow table {} B, reservations {} B, \
         queue pools {} grows / {} segs peak",
        run.flow_table_bytes,
        run.reservation_state_bytes,
        run.sched_pool_grow_events,
        run.sched_pool_segments_high_water
    );
    match sink {
        TelemetrySink::Stderr => eprintln!("{}\n{line}", summary.render()),
        TelemetrySink::File(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("could not write telemetry to {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("sweep telemetry written to {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn worker_flag_is_detected() {
        assert!(is_sweep_worker(&args(&["bin", "--sweep-worker"])));
        assert!(!is_sweep_worker(&args(&["bin", "--stream"])));
    }

    #[test]
    fn workers_flag_parses() {
        assert_eq!(parse_workers(&args(&["bin"])), None);
        assert_eq!(parse_workers(&args(&["bin", "--workers", "3"])), Some(3));
    }

    #[test]
    fn telemetry_flag_parses_both_shapes() {
        assert_eq!(parse_telemetry(&args(&["bin"])), None);
        assert_eq!(
            parse_telemetry(&args(&["bin", "--telemetry"])),
            Some(TelemetrySink::Stderr)
        );
        assert_eq!(
            parse_telemetry(&args(&["bin", "--telemetry=sweep.json"])),
            Some(TelemetrySink::File(PathBuf::from("sweep.json")))
        );
    }

    #[test]
    fn exec_levels_follow_the_flags() {
        match sweep_exec(&args(&["bin"]), &[]) {
            SweepExec::InProcess(_) => {}
            other => panic!("expected in-process exec, got {other:?}"),
        }
        match sweep_exec(&args(&["bin", "--workers", "2"]), &args(&["--fast"])) {
            SweepExec::Distributed(d) => assert_eq!(d.workers(), 2),
            other => panic!("expected distributed exec, got {other:?}"),
        }
        match sweep_exec(&args(&["bin", "--hosts", "a:1=2,b:1", "--batch", "4"]), &[]) {
            SweepExec::Distributed(d) => {
                assert_eq!(d.workers(), 3, "one slot per host connection");
                assert_eq!(d.batch_size(), 4);
            }
            other => panic!("expected socket exec, got {other:?}"),
        }
    }

    #[test]
    fn serve_and_hosts_and_batch_flags_parse() {
        assert_eq!(parse_serve(&args(&["bin"])), None);
        assert_eq!(
            parse_serve(&args(&["bin", "--serve", "127.0.0.1:0"])),
            Some("127.0.0.1:0".to_string())
        );
        assert_eq!(parse_hosts(&args(&["bin"])), None);
        assert_eq!(
            parse_hosts(&args(&["bin", "--hosts", "a:1=2"])),
            Some(vec![HostSpec::new("a:1", 2)])
        );
        assert_eq!(parse_batch(&args(&["bin"])), None);
        assert_eq!(parse_batch(&args(&["bin", "--batch", "8"])), Some(8));
    }
}
