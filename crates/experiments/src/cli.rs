//! Shared command-line plumbing for the experiment bins.
//!
//! Every sweep-shaped bin understands the same three execution flags:
//!
//! * *(none)* — fan sweep points across in-process threads
//!   ([`SweepRunner::max_parallel`]);
//! * `--workers N` — fan sweep points across `N` supervised worker
//!   subprocesses ([`DistRunner`]), each the same binary re-invoked with
//!   `--sweep-worker` plus the run's configuration flags.  Stdout stays
//!   byte-identical to the in-process run;
//! * `--sweep-worker` — serve sweep points over stdin/stdout for a
//!   distributed parent (checked by the bin **before anything prints to
//!   stdout**, which belongs to the frame stream in this mode).
//!
//! This module only parses the flags and assembles the
//! [`SweepExec`]; the per-experiment worker loops live next to their
//! sweeps in the experiment modules.

use ispn_scenario::{DistRunner, SweepExec, SweepRunner, WorkerCommand, WORKER_FLAG};

/// Whether this invocation is a `--sweep-worker` child.
pub fn is_sweep_worker(args: &[String]) -> bool {
    args.iter().any(|a| a == WORKER_FLAG)
}

/// The `--workers N` flag, if present.
///
/// Exits with status 2 on a malformed value — the same convention the
/// bins' other flags use.
pub fn parse_workers(args: &[String]) -> Option<usize> {
    let i = args.iter().position(|a| a == "--workers")?;
    match args.get(i + 1).map(|n| n.parse::<usize>()) {
        Some(Ok(n)) if n >= 1 => Some(n),
        _ => {
            eprintln!("--workers needs a positive integer, e.g. `--workers 4`");
            std::process::exit(2);
        }
    }
}

/// Choose the sweep execution level from the command line: `--workers N`
/// selects a distributed run whose workers re-invoke the current
/// executable with `--sweep-worker` plus `worker_args` (the configuration
/// flags the parent run received, so both sides build the same sweep);
/// otherwise points fan across in-process threads.
pub fn sweep_exec(args: &[String], worker_args: &[String]) -> SweepExec {
    match parse_workers(args) {
        Some(n) => {
            let command = WorkerCommand::current_exe()
                .arg(WORKER_FLAG)
                .args(worker_args.iter().cloned());
            SweepExec::Distributed(DistRunner::new(n, command))
        }
        None => SweepExec::InProcess(SweepRunner::max_parallel()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn worker_flag_is_detected() {
        assert!(is_sweep_worker(&args(&["bin", "--sweep-worker"])));
        assert!(!is_sweep_worker(&args(&["bin", "--stream"])));
    }

    #[test]
    fn workers_flag_parses() {
        assert_eq!(parse_workers(&args(&["bin"])), None);
        assert_eq!(parse_workers(&args(&["bin", "--workers", "3"])), Some(3));
    }

    #[test]
    fn exec_levels_follow_the_flags() {
        match sweep_exec(&args(&["bin"]), &[]) {
            SweepExec::InProcess(_) => {}
            other => panic!("expected in-process exec, got {other:?}"),
        }
        match sweep_exec(&args(&["bin", "--workers", "2"]), &args(&["--fast"])) {
            SweepExec::Distributed(d) => assert_eq!(d.workers(), 2),
            other => panic!("expected distributed exec, got {other:?}"),
        }
    }
}
