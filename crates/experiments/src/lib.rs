//! # ispn-experiments — reproducing the CSZ'92 evaluation
//!
//! One module per table or figure of the paper, plus the extension
//! experiments listed in DESIGN.md:
//!
//! * [`config`] — the Appendix constants (1 Mbit/s links, 1000-bit packets,
//!   200-packet buffers, 600-second runs, A = 85 pkt/s on/off sources),
//! * [`fig1`] — the Figure-1 five-switch chain and the verified placement of
//!   its 22 flows (and the Table-3 class assignment and TCP connections),
//! * [`table1`] — WFQ vs FIFO on a single shared link (Table 1),
//! * [`table2`] — WFQ vs FIFO vs FIFO+ across path lengths (Table 2),
//! * [`table3`] — the unified scheduler carrying guaranteed, predicted and
//!   datagram traffic together (Table 3),
//! * [`extensions`] — hop-count sweeps, adaptive-vs-rigid playback,
//!   measurement-based admission control, and utilization sweeps,
//! * [`churn`] — dynamic flow signaling under Poisson arrivals and
//!   exponential holding times (`ispn-signal` exercised end to end through
//!   the `ispn-scenario` facade): blocking probability and bound
//!   compliance versus offered load,
//! * [`mesh`] — guaranteed + predicted + datagram cross-traffic on the
//!   shared interior links of a 3×3 grid (scenario-API study),
//! * [`hetmix`] — per-class delay/jitter versus offered load for a
//!   heterogeneous CBR / on-off / Poisson mix across all four disciplines
//!   (scenario-API study),
//! * [`report`] — text rendering next to the paper's published numbers,
//! * [`support`] — shared plumbing (discipline factory, source wiring),
//! * [`cli`] — the shared `--workers N` / `--sweep-worker` flags every
//!   sweep-shaped bin understands (distributed execution).
//!
//! Every experiment takes a [`config::PaperConfig`] so tests can run
//! shortened versions while the bench harness runs the full ten simulated
//! minutes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod cli;
pub mod config;
pub mod extensions;
pub mod fig1;
pub mod hetmix;
pub mod mesh;
pub mod report;
pub mod support;
pub mod table1;
pub mod table2;
pub mod table3;

pub use config::PaperConfig;
pub use fig1::{Fig1Network, FlowKind, FlowPlacement};
pub use support::DisciplineKind;
