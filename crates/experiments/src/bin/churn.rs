//! Regenerates the flow-churn experiment: dynamic signaling with Poisson
//! arrivals and exponential holding times on the Figure-1 topology, swept
//! over offered load.  `ISPN_FAST=1` runs a shortened sweep; `--stream`
//! prints one stderr progress line per completed point while stdout stays
//! byte-identical to a batch run.

use ispn_experiments::config::PaperConfig;
use ispn_experiments::{churn, report};
use ispn_scenario::{NullObserver, ProgressObserver, SweepObserver, SweepRunner};

fn main() {
    let fast = std::env::var("ISPN_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let stream = std::env::args().any(|a| a == "--stream");
    let paper = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::medium()
    };
    let holding_secs = 15.0;
    let arrival_rates = [0.2, 0.5, 1.0, 2.0, 4.0];
    let runner = SweepRunner::max_parallel();
    eprintln!(
        "running {} churn scenarios of {}s simulated time each on {} threads …",
        arrival_rates.len(),
        paper.duration.as_secs_f64(),
        runner.threads()
    );
    let progress = ProgressObserver::new();
    let observer: &dyn SweepObserver<churn::ChurnOutcome> =
        if stream { &progress } else { &NullObserver };
    let reports = churn::sweep_reports(&paper, &arrival_rates, holding_secs, &runner, observer);
    println!("{}", report::render_churn(&reports));
    let failures = ispn_scenario::failed_points(&reports);
    if failures > 0 {
        eprintln!("{failures} sweep point(s) panicked - see the report above");
        std::process::exit(1);
    }
    for o in reports.iter().filter_map(|r| r.result.as_ref().ok()) {
        assert_eq!(
            o.residual_reserved_bps, 0.0,
            "a finished run must leave no reservation state behind"
        );
    }
    println!("residual reservations after drain: 0 bps on every link (checked)");
}
