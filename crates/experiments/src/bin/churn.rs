//! Regenerates the flow-churn experiment: dynamic signaling with Poisson
//! arrivals and exponential holding times on the Figure-1 topology, swept
//! over offered load.  `ISPN_FAST=1` runs a shortened sweep.

use ispn_experiments::config::PaperConfig;
use ispn_experiments::{churn, report};
use ispn_scenario::SweepRunner;

fn main() {
    let fast = std::env::var("ISPN_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let paper = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::medium()
    };
    let holding_secs = 15.0;
    let arrival_rates = [0.2, 0.5, 1.0, 2.0, 4.0];
    let runner = SweepRunner::max_parallel();
    eprintln!(
        "running {} churn scenarios of {}s simulated time each on {} threads …",
        arrival_rates.len(),
        paper.duration.as_secs_f64(),
        runner.threads()
    );
    let outcomes = churn::sweep_with(&paper, &arrival_rates, holding_secs, &runner);
    println!("{}", report::render_churn(&outcomes));
    for o in &outcomes {
        assert_eq!(
            o.residual_reserved_bps, 0.0,
            "a finished run must leave no reservation state behind"
        );
    }
    println!("residual reservations after drain: 0 bps on every link (checked)");
}
