//! Regenerates the flow-churn experiment: dynamic signaling with Poisson
//! arrivals and exponential holding times on the Figure-1 topology, swept
//! over offered load.  `ISPN_FAST=1` runs a shortened sweep; `--stream`
//! prints one stderr progress line per completed point; `--workers N`
//! fans the sweep across N worker subprocesses (this binary re-invoked
//! with `--sweep-worker`; the `ISPN_FAST` configuration is inherited);
//! `--hosts LIST` fans it across already-listening `--serve` workers over
//! TCP instead (`--batch N` pipelines requests in either mode);
//! `--serve ADDR` turns this invocation into such a TCP worker (set the
//! same `ISPN_FAST` on both sides); `--telemetry[=FILE]` renders the
//! sweep's per-point wall-time summary to stderr (or JSON to FILE).
//! Stdout stays byte-identical to a batch in-process run in every mode —
//! including the accept/reject decision sequence behind the table.

use ispn_experiments::config::PaperConfig;
use ispn_experiments::{churn, cli, report};
use ispn_scenario::{NullObserver, ProgressObserver, SweepObserver, TelemetryCollector};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = std::env::var("ISPN_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let stream = args.iter().any(|a| a == "--stream");
    let telemetry = cli::parse_telemetry(&args);
    let paper = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::medium()
    };
    let holding_secs = 15.0;
    let arrival_rates = [0.2, 0.5, 1.0, 2.0, 4.0];
    if cli::is_sweep_worker(&args) {
        churn::serve_worker(&paper, &arrival_rates, holding_secs).expect("sweep worker I/O");
        return;
    }
    if let Some(addr) = cli::parse_serve(&args) {
        churn::serve_listener(&paper, &arrival_rates, holding_secs, &addr)
            .expect("sweep listener I/O");
        return;
    }
    let exec = cli::sweep_exec(&args, &[]);
    eprintln!(
        "running {} churn scenarios of {}s simulated time each on {} …",
        arrival_rates.len(),
        paper.duration.as_secs_f64(),
        exec.description()
    );
    let progress = ProgressObserver::new();
    let base: &dyn SweepObserver<churn::ChurnOutcome> =
        if stream { &progress } else { &NullObserver };
    let collector = TelemetryCollector::new(base);
    let observer: &dyn SweepObserver<churn::ChurnOutcome> = if telemetry.is_some() {
        &collector
    } else {
        base
    };
    let reports = churn::sweep_exec(&paper, &arrival_rates, holding_secs, &exec, observer);
    println!("{}", report::render_churn(&reports));
    if let Some(sink) = &telemetry {
        // The footprint block (flow-table bytes, queue-pool counters) comes
        // from one representative churn run probed with run telemetry on —
        // the same probe the bench snapshot records.
        let run = churn::telemetry_probe(&paper);
        cli::emit_telemetry_with_run(sink, &collector.summary(), &run);
    }
    let failures = ispn_scenario::failed_points(&reports);
    if failures > 0 {
        eprintln!("{failures} sweep point(s) failed - see the report above");
        std::process::exit(1);
    }
    for o in reports.iter().filter_map(|r| r.result.as_ref().ok()) {
        assert_eq!(
            o.residual_reserved_bps, 0.0,
            "a finished run must leave no reservation state behind"
        );
    }
    println!("residual reservations after drain: 0 bps on every link (checked)");
}
