//! Regenerate Table 2 of CSZ'92 (WFQ vs FIFO vs FIFO+ on the Figure-1 chain).
//!
//! Usage: `cargo run --release -p ispn-experiments --bin table2 [--fast]`

use ispn_experiments::{config::PaperConfig, report, table2};
use ispn_scenario::SweepRunner;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let cfg = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    };
    let runner = SweepRunner::max_parallel();
    eprintln!(
        "running Table 2 ({} simulated seconds per discipline, {} threads)...",
        cfg.duration.as_secs_f64(),
        runner.threads()
    );
    let t = table2::run_with(&cfg, &runner);
    println!("{}", report::render_table2(&t));
}
