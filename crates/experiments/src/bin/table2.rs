//! Regenerate Table 2 of CSZ'92 (WFQ vs FIFO vs FIFO+ on the Figure-1 chain).
//!
//! Usage: `cargo run --release -p ispn-experiments --bin table2 [--fast] [--stream] [--workers N | --hosts LIST] [--batch N] [--serve ADDR] [--telemetry[=FILE]]`
//!
//! `--stream` prints one stderr progress line per completed sweep point;
//! `--workers N` fans the sweep across N worker subprocesses (this binary
//! re-invoked with `--sweep-worker`); `--hosts LIST` fans it across
//! already-listening `--serve` workers over TCP instead (`--batch N`
//! pipelines requests in either mode); `--serve ADDR` turns this
//! invocation into such a TCP worker; `--telemetry[=FILE]` renders the
//! sweep's per-point wall-time summary to stderr (or JSON to FILE).
//! Stdout (the final table) is byte-identical to a batch in-process run in
//! every mode.

use ispn_experiments::{cli, config::PaperConfig, report, table2};
use ispn_scenario::{NullObserver, ProgressObserver, SweepObserver, TelemetryCollector};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let stream = args.iter().any(|a| a == "--stream");
    let telemetry = cli::parse_telemetry(&args);
    let cfg = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    };
    if cli::is_sweep_worker(&args) {
        table2::serve_worker(&cfg).expect("sweep worker I/O");
        return;
    }
    if let Some(addr) = cli::parse_serve(&args) {
        table2::serve_listener(&cfg, &addr).expect("sweep listener I/O");
        return;
    }
    let mut worker_args = Vec::new();
    if fast {
        worker_args.push("--fast".to_string());
    }
    let exec = cli::sweep_exec(&args, &worker_args);
    eprintln!(
        "running Table 2 ({} simulated seconds per discipline, {})...",
        cfg.duration.as_secs_f64(),
        exec.description()
    );
    let progress = ProgressObserver::new();
    let base: &dyn SweepObserver<table2::Table2Point> =
        if stream { &progress } else { &NullObserver };
    let collector = TelemetryCollector::new(base);
    let observer: &dyn SweepObserver<table2::Table2Point> = if telemetry.is_some() {
        &collector
    } else {
        base
    };
    let reports = table2::exec_reports(&cfg, &exec, observer);
    println!("{}", report::render_table2(&reports));
    if let Some(sink) = &telemetry {
        cli::emit_telemetry(sink, &collector.summary());
    }
    let failures = ispn_scenario::failed_points(&reports);
    if failures > 0 {
        eprintln!("{failures} sweep point(s) failed - see the report above");
        std::process::exit(1);
    }
}
