//! Run the heterogeneous-mix sweep: per-class delay and jitter versus
//! offered load for a CBR + on/off + Poisson mix under FIFO, FIFO+, WFQ
//! and the unified scheduler.  `ISPN_FAST=1` runs a shortened sweep (the
//! CI smoke configuration); `--stream` prints one stderr progress line per
//! completed point while stdout stays byte-identical to a batch run.

use ispn_experiments::config::PaperConfig;
use ispn_experiments::{hetmix, report};
use ispn_scenario::{NullObserver, ProgressObserver, SweepObserver, SweepRunner};

fn main() {
    let fast = std::env::var("ISPN_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let stream = std::env::args().any(|a| a == "--stream");
    let (cfg, levels): (PaperConfig, &[usize]) = if fast {
        (
            PaperConfig {
                duration: ispn_sim::SimTime::from_secs(20),
                ..PaperConfig::paper()
            },
            &[1, 3],
        )
    } else {
        (PaperConfig::medium(), &[1, 2, 3])
    };
    let runner = SweepRunner::max_parallel();
    eprintln!(
        "running {} heterogeneous-mix points of {} simulated seconds each on {} threads …",
        4 * levels.len(),
        cfg.duration.as_secs_f64(),
        runner.threads()
    );
    let progress = ProgressObserver::new();
    let observer: &dyn SweepObserver<hetmix::HetMixPoint> =
        if stream { &progress } else { &NullObserver };
    let reports = hetmix::sweep_reports(&cfg, levels, &runner, observer);
    println!("{}", report::render_hetmix(&reports));
    let failures = ispn_scenario::failed_points(&reports);
    if failures > 0 {
        eprintln!("{failures} sweep point(s) panicked - see the report above");
        std::process::exit(1);
    }
}
