//! Run the heterogeneous-mix sweep: per-class delay and jitter versus
//! offered load for a CBR + on/off + Poisson mix under FIFO, FIFO+, WFQ
//! and the unified scheduler.  `ISPN_FAST=1` runs a shortened sweep (the
//! CI smoke configuration); `--stream` prints one stderr progress line per
//! completed point; `--workers N` fans the sweep across N worker
//! subprocesses (this binary re-invoked with `--sweep-worker`; the
//! `ISPN_FAST` configuration is inherited); `--hosts LIST` fans it across
//! already-listening `--serve` workers over TCP instead (`--batch N`
//! pipelines requests in either mode); `--serve ADDR` turns this
//! invocation into such a TCP worker (set the same `ISPN_FAST` on both
//! sides); `--telemetry[=FILE]` renders the sweep's per-point wall-time
//! summary to stderr (or JSON to FILE).
//! Stdout stays byte-identical to a batch in-process run in every mode.

use ispn_experiments::config::PaperConfig;
use ispn_experiments::{cli, hetmix, report};
use ispn_scenario::{NullObserver, ProgressObserver, SweepObserver, TelemetryCollector};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = std::env::var("ISPN_FAST")
        .map(|v| v == "1")
        .unwrap_or(false);
    let stream = args.iter().any(|a| a == "--stream");
    let telemetry = cli::parse_telemetry(&args);
    let (cfg, levels): (PaperConfig, &[usize]) = if fast {
        (
            PaperConfig {
                duration: ispn_sim::SimTime::from_secs(20),
                ..PaperConfig::paper()
            },
            &[1, 3],
        )
    } else {
        (PaperConfig::medium(), &[1, 2, 3])
    };
    if cli::is_sweep_worker(&args) {
        hetmix::serve_worker(&cfg, levels).expect("sweep worker I/O");
        return;
    }
    if let Some(addr) = cli::parse_serve(&args) {
        hetmix::serve_listener(&cfg, levels, &addr).expect("sweep listener I/O");
        return;
    }
    let exec = cli::sweep_exec(&args, &[]);
    eprintln!(
        "running {} heterogeneous-mix points of {} simulated seconds each on {} …",
        4 * levels.len(),
        cfg.duration.as_secs_f64(),
        exec.description()
    );
    let progress = ProgressObserver::new();
    let base: &dyn SweepObserver<hetmix::HetMixPoint> =
        if stream { &progress } else { &NullObserver };
    let collector = TelemetryCollector::new(base);
    let observer: &dyn SweepObserver<hetmix::HetMixPoint> = if telemetry.is_some() {
        &collector
    } else {
        base
    };
    let reports = hetmix::sweep_exec(&cfg, levels, &exec, observer);
    println!("{}", report::render_hetmix(&reports));
    if let Some(sink) = &telemetry {
        cli::emit_telemetry(sink, &collector.summary());
    }
    let failures = ispn_scenario::failed_points(&reports);
    if failures > 0 {
        eprintln!("{failures} sweep point(s) failed - see the report above");
        std::process::exit(1);
    }
}
