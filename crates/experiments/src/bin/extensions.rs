//! Run the extension experiments (hop sweep, playback, admission control,
//! utilization sweep).
//!
//! Usage: `cargo run --release -p ispn-experiments --bin extensions [--fast]`

use ispn_experiments::config::PaperConfig;
use ispn_experiments::extensions::{admission, hops, playback, utilization};
use ispn_experiments::report;

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let cfg = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::medium()
    };
    eprintln!(
        "running extension experiments ({} simulated seconds per run)...",
        cfg.duration.as_secs_f64()
    );

    let points = hops::run_sweep(&cfg, &[1, 2, 3, 4, 5, 6]);
    println!("{}", report::render_hops(&points));

    let pb = playback::run(&cfg);
    println!("{}", report::render_playback(&pb));

    let (controlled, uncontrolled) = admission::run_comparison(&cfg, 20);
    println!("{}", report::render_admission(&controlled, &uncontrolled));

    let util = utilization::run_sweep(&cfg, &[6, 8, 9, 10, 11]);
    println!("{}", report::render_utilization(&util));
}
