//! Print and verify the Figure-1 topology and flow placement.
//!
//! Usage: `cargo run -p ispn-experiments --bin fig1`

use ispn_experiments::config::PaperConfig;
use ispn_experiments::fig1::{self, FlowKind};
use ispn_stats::TextTable;

fn main() {
    let cfg = PaperConfig::paper();
    let net = fig1::Fig1Network::build(&cfg);
    println!(
        "Figure 1: {} switches, {} forward links at {} bit/s, {}-packet buffers\n",
        net.nodes.len(),
        net.links.len(),
        cfg.link_rate_bps,
        cfg.buffer_packets
    );

    let placement = fig1::placement();
    let mut flows = TextTable::new("Real-time flows (Table-3 classes shown; Table 2 ignores them)")
        .header(["#", "class", "first link", "path length"]);
    for (i, p) in placement.iter().enumerate() {
        flows.row([
            i.to_string(),
            p.kind.label().to_string(),
            format!("L{}", p.first_link + 1),
            p.hops.to_string(),
        ]);
    }
    println!("{}", flows.render());

    let census = fig1::per_link_census(&placement);
    let mut table =
        TextTable::new("Per-link census (paper: 2 G-Peak, 1 G-Avg, 3 P-High, 4 P-Low, 1 TCP)")
            .header(["link", "G-Peak", "G-Avg", "P-High", "P-Low", "total", "TCP"]);
    let tcp = fig1::tcp_placement();
    for (i, link) in census.iter().enumerate() {
        let get = |k| link.get(&k).copied().unwrap_or(0);
        let tcp_here = tcp
            .iter()
            .filter(|(first, hops)| (*first..first + hops).contains(&i))
            .count();
        table.row([
            format!("L{}", i + 1),
            get(FlowKind::GuaranteedPeak).to_string(),
            get(FlowKind::GuaranteedAverage).to_string(),
            get(FlowKind::PredictedHigh).to_string(),
            get(FlowKind::PredictedLow).to_string(),
            link.values().sum::<usize>().to_string(),
            tcp_here.to_string(),
        ]);
    }
    println!("{}", table.render());
}
