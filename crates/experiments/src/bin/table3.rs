//! Regenerate Table 3 of CSZ'92 (the unified scheduler carrying guaranteed,
//! predicted and datagram traffic on the Figure-1 chain).
//!
//! Usage: `cargo run --release -p ispn-experiments --bin table3 [--fast]`

use ispn_experiments::{config::PaperConfig, report, table3};

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let cfg = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    };
    eprintln!(
        "running Table 3 ({} simulated seconds)...",
        cfg.duration.as_secs_f64()
    );
    let t = table3::run(&cfg);
    println!("{}", report::render_table3(&t));
}
