//! Regenerate Table 3 of CSZ'92 (the unified scheduler carrying guaranteed,
//! predicted and datagram traffic on the Figure-1 chain).
//!
//! Usage: `cargo run --release -p ispn-experiments --bin table3 [--fast] [--seeds N] [--stream]`
//!
//! `--seeds N` replicates the table across `N` derived seeds (a seed-axis
//! sweep fanned across threads) and prints each replication — the paper
//! reports one random run; the sweep shows how much the sample rows move.
//! `--stream` prints one stderr progress line per completed replication;
//! stdout is byte-identical to a batch run.

use ispn_experiments::{config::PaperConfig, report, table3};
use ispn_scenario::{NullObserver, ProgressObserver, SweepObserver, SweepRunner};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let stream = args.iter().any(|a| a == "--stream");
    let cfg = if fast {
        PaperConfig::fast()
    } else {
        PaperConfig::paper()
    };
    let seeds = match args.iter().position(|a| a == "--seeds") {
        None => 1,
        Some(i) => match args.get(i + 1).map(|n| n.parse::<u64>()) {
            Some(Ok(n)) if n >= 1 => n,
            _ => {
                eprintln!("--seeds needs a positive integer, e.g. `table3 --seeds 5`");
                std::process::exit(2);
            }
        },
    };
    if seeds <= 1 {
        eprintln!(
            "running Table 3 ({} simulated seconds)...",
            cfg.duration.as_secs_f64()
        );
        let t = table3::run(&cfg);
        println!("{}", report::render_table3(&t));
        return;
    }
    let runner = SweepRunner::max_parallel();
    let seed_axis: Vec<u64> = (0..seeds).map(|i| cfg.seed.wrapping_add(i)).collect();
    eprintln!(
        "running Table 3 across {} seeds ({} simulated seconds each, {} threads)...",
        seeds,
        cfg.duration.as_secs_f64(),
        runner.threads()
    );
    let progress = ProgressObserver::new();
    let observer: &dyn SweepObserver<(u64, table3::Table3)> =
        if stream { &progress } else { &NullObserver };
    let reports = table3::run_seeds_reports(&cfg, &seed_axis, &runner, observer);
    print!("{}", report::render_table3_seeds(&reports));
    let failures = ispn_scenario::failed_points(&reports);
    if failures > 0 {
        eprintln!("{failures} sweep point(s) panicked - see the report above");
        std::process::exit(1);
    }
}
